"""Legacy setup shim: the offline environment lacks the ``wheel`` package,
so editable installs go through ``--no-use-pep517`` + this file."""

from setuptools import setup

setup()
