"""The per-rank engine: bindings validation, executor equivalence, splits.

All three executors run the same (program, bindings) pair through the
byte-identical gather/compute/scatter machinery, so on one address space
their results must match the reference solver — and repeated dependency-
scheduled runs must be bit-identical (static chunking + static fold order).
"""

import numpy as np
import pytest

from repro.airfoil import ReferenceAirfoil, generate_mesh
from repro.airfoil.constants import DEFAULT_CONSTANTS
from repro.airfoil.kernels import make_kernels
from repro.dist.app import build_rank_state
from repro.dist.plan import build_dist_plan
from repro.engine import ProgramBindings, airfoil_timestep, make_executor
from repro.engine.executors import (
    DependencyExecutor,
    ForkJoinExecutor,
    SerialExecutor,
)
from repro.engine.program import ExchangeStep, LoopProgram, LoopStep
from repro.hpx.threadpool import ThreadPoolEngine
from repro.op2 import OpGlobal
from repro.procs.worker import split_boundary
from repro.util.validate import ValidationError

NITER = 3


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(ni=24, nj=12)


@pytest.fixture(scope="module")
def reference(mesh):
    ref = ReferenceAirfoil(mesh)
    ref.run(NITER)
    return ref


def single_rank_state(mesh):
    """One rank owning the whole mesh: local program, no exchanges."""
    owner = np.zeros(mesh.cells.size, dtype=np.int64)
    dplan = build_dist_plan(mesh, owner)
    kernels = make_kernels(DEFAULT_CONSTANTS)
    freestream = DEFAULT_CONSTANTS.freestream()
    g_qinf = OpGlobal("qinf", 4, freestream)
    return build_rank_state(dplan.plans[0], kernels, g_qinf, freestream)


def run_program(mesh, executor_factory):
    state = single_rank_state(mesh)
    program = airfoil_timestep()
    bindings = ProgramBindings(loops=state.loops)
    bindings.validate_for(program)
    executor = executor_factory()
    for _ in range(NITER):
        executor.run(program, bindings)
    return state


class TestExecutorEquivalence:
    def test_serial_matches_reference(self, mesh, reference):
        state = run_program(mesh, SerialExecutor)
        assert float(np.abs(state.q - reference.q).max()) <= 1e-12
        assert state.rms.value() == pytest.approx(reference.rms, rel=1e-12)

    def test_forkjoin_matches_reference(self, mesh, reference):
        pool = ThreadPoolEngine(2)
        try:
            state = run_program(mesh, lambda: ForkJoinExecutor(pool))
        finally:
            pool.close()
        assert float(np.abs(state.q - reference.q).max()) <= 1e-12

    def test_dependency_matches_reference(self, mesh, reference):
        pool = ThreadPoolEngine(2)
        try:
            state = run_program(mesh, lambda: DependencyExecutor(pool))
        finally:
            pool.close()
        assert float(np.abs(state.q - reference.q).max()) <= 1e-12

    def test_dependency_runs_are_bit_identical(self, mesh):
        results = []
        for _ in range(2):
            pool = ThreadPoolEngine(3)
            try:
                state = run_program(mesh, lambda: DependencyExecutor(pool))
            finally:
                pool.close()
            results.append((state.q.copy(), float(state.rms.value())))
        assert np.array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]


class TestMakeExecutor:
    def test_no_pool_is_serial(self):
        assert isinstance(make_executor("blocking", None), SerialExecutor)
        assert isinstance(make_executor("overlapped", None), SerialExecutor)

    def test_pool_selection(self):
        pool = ThreadPoolEngine(2)
        try:
            assert isinstance(
                make_executor("blocking", pool), ForkJoinExecutor
            )
            assert isinstance(
                make_executor("overlapped", pool), DependencyExecutor
            )
        finally:
            pool.close()


class TestBindingsValidation:
    def test_missing_loop_rejected(self):
        program = LoopProgram("p", (LoopStep("res_calc"),))
        with pytest.raises(ValidationError, match="missing loops"):
            ProgramBindings(loops={}).validate_for(program)

    def test_missing_subset_rejected(self):
        step = LoopStep("res_calc", "interior_edges")
        b = ProgramBindings(loops={})
        with pytest.raises(ValidationError, match="needs subset"):
            b.elements(step)

    def test_exchange_without_transport_rejected(self):
        b = ProgramBindings(loops={})
        with pytest.raises(ValidationError, match="no transport"):
            b.exchange(ExchangeStep("update", "blocking", ("q",)))

    def test_overlapping_partition_rejected(self):
        program = LoopProgram(
            "p", (), partitions={"cells": ("a", "b")}
        )
        b = ProgramBindings(
            loops={},
            subsets={"a": np.array([0, 1]), "b": np.array([1, 2])},
        )
        with pytest.raises(ValidationError, match="overlap"):
            b.validate_for(program)

    def test_incomplete_partition_rejected(self):
        program = LoopProgram(
            "p", (), partitions={"cells": ("a", "b")}
        )
        b = ProgramBindings(
            loops={},
            subsets={"a": np.array([0]), "b": np.array([2])},
            space_sizes={"cells": 4},
        )
        with pytest.raises(ValidationError, match="do not partition"):
            b.validate_for(program)

    def test_exact_partition_accepted(self):
        program = LoopProgram(
            "p", (), partitions={"cells": ("a", "b")}
        )
        ProgramBindings(
            loops={},
            subsets={"a": np.array([3, 0]), "b": np.array([2, 1])},
            space_sizes={"cells": 4},
        ).validate_for(program)


class TestSplitBoundary:
    """The rank-local subset split the overlapped schedule executes against."""

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_split_properties(self, mesh, ranks):
        from repro.dist.partition import cell_centroids, rcb_partition

        owner = rcb_partition(cell_centroids(mesh), ranks)
        dplan = build_dist_plan(mesh, owner)
        for rp in dplan.plans:
            split = split_boundary(rp)
            boundary = split["boundary_cells"]
            interior = split["interior_cells"]
            ext = split["exterior_edges"]
            inte = split["interior_edges"]
            # cells: disjoint, exact cover of the owned rows
            merged = np.sort(np.concatenate([boundary, interior]))
            assert np.array_equal(merged, np.arange(rp.n_owned))
            # edges: disjoint, exact cover of the rank's edges
            emerged = np.sort(np.concatenate([ext, inte]))
            assert np.array_equal(emerged, np.arange(rp.pecell.values.shape[0]))
            # every exported row is boundary (remote increments land there)
            for idx in rp.exports.values():
                assert np.isin(idx, boundary).all()
            # every *owned* endpoint of an exterior edge is boundary, even
            # when no neighbor imports it — the race fixed by this split
            pecell = rp.pecell.values
            owned_ext_endpoints = pecell[ext].ravel()
            owned_ext_endpoints = owned_ext_endpoints[
                owned_ext_endpoints < rp.n_owned
            ]
            assert np.isin(owned_ext_endpoints, boundary).all()
            # interior edges touch no halo rows
            assert (pecell[inte] < rp.n_owned).all()

    def test_some_rank_has_unexported_boundary_endpoint(self, mesh):
        """The subtle case exists on real meshes: a cut edge's owned endpoint
        that no neighbor imports, which still must not update early."""
        from repro.dist.partition import cell_centroids, rcb_partition

        owner = rcb_partition(cell_centroids(mesh), 2)
        dplan = build_dist_plan(mesh, owner)
        extra = 0
        for rp in dplan.plans:
            split = split_boundary(rp)
            exported = (
                np.unique(np.concatenate(list(rp.exports.values())))
                if rp.exports
                else np.empty(0, np.int64)
            )
            extra += int(
                np.setdiff1d(split["boundary_cells"], exported).size
            )
        assert extra > 0
