"""The loop-program IR: structure, conflicts, derived edges.

The engine's correctness rests on the programs being *data* with accurate
footprints: every consumer (drivers, emitters, executors) derives its
ordering from these, so the tests pin both the structural invariants and
the dependence-analysis semantics (strict vs commuting increments).
"""

import pytest

from repro.engine import INNER_ITERS, airfoil_timestep
from repro.engine.program import (
    ExchangeStep,
    LoopProgram,
    LoopStep,
    steps_conflict,
)
from repro.util.validate import ValidationError


class TestStepBasics:
    def test_loop_step_label(self):
        assert LoopStep("res_calc").label == "res_calc"
        assert (
            LoopStep("res_calc", "interior_edges").label
            == "res_calc[interior_edges]"
        )
        assert LoopStep("res_calc").kind == "loop"

    def test_exchange_step_method_and_label(self):
        s = ExchangeStep("update", "start", ("q", "adt"))
        assert s.method == "update_start"
        assert s.label == "halo.update.start"
        assert s.kind == "exchange"

    def test_exchange_step_rejects_unknown_op_and_phase(self):
        with pytest.raises(ValidationError, match="exchange op"):
            ExchangeStep("gossip", "start", ("q",))
        with pytest.raises(ValidationError, match="exchange phase"):
            ExchangeStep("update", "maybe", ("q",))


class TestConflicts:
    def test_read_write_conflicts(self):
        w = LoopStep("a", writes=("q",))
        r = LoopStep("b", reads=("q",))
        assert steps_conflict(w, r)
        assert steps_conflict(r, w)
        assert not steps_conflict(r, LoopStep("c", reads=("q",)))

    def test_disjoint_footprints_do_not_conflict(self):
        a = LoopStep("a", reads=("x",), writes=("adt:int",))
        b = LoopStep("b", reads=("x",), incs=("res:bnd",))
        assert not steps_conflict(a, b)
        assert not steps_conflict(a, b, commute_incs=True)

    def test_incs_commute_only_when_asked(self):
        res = LoopStep("res_calc", reads=("q",), incs=("res",))
        bres = LoopStep("bres_calc", reads=("q",), incs=("res",))
        # strict: concurrent increments into shared rows are a data race
        assert steps_conflict(res, bres)
        # loop-granularity consumers may commute them
        assert not steps_conflict(res, bres, commute_incs=True)

    def test_incs_still_conflict_with_reads_and_writes(self):
        inc = LoopStep("a", incs=("res",))
        rd = LoopStep("b", reads=("res",))
        wr = LoopStep("c", writes=("res",))
        for commute in (False, True):
            assert steps_conflict(inc, rd, commute_incs=commute)
            assert steps_conflict(rd, inc, commute_incs=commute)
            assert steps_conflict(inc, wr, commute_incs=commute)
            assert steps_conflict(wr, inc, commute_incs=commute)


class TestAirfoilPrograms:
    def test_shapes(self):
        local = airfoil_timestep()
        blocking = airfoil_timestep(dist=True)
        overlapped = airfoil_timestep(dist=True, overlap=True)
        assert len(local) == 1 + 4 * INNER_ITERS
        assert len(blocking) == 1 + 6 * INNER_ITERS
        assert len(overlapped) == 1 + 11 * INNER_ITERS
        for p in (local, blocking, overlapped):
            p.validate()
        assert local.loop_names() == (
            "save_soln", "adt_calc", "res_calc", "bres_calc", "update",
        )

    def test_overlap_requires_dist(self):
        with pytest.raises(ValueError, match="dist=True"):
            airfoil_timestep(overlap=True)

    def test_overlapped_declares_exact_partitions(self):
        p = airfoil_timestep(dist=True, overlap=True)
        assert p.partitions == {
            "cells": ("boundary_cells", "interior_cells"),
            "edges": ("interior_edges", "exterior_edges"),
        }
        assert set(p.subset_names()) == {
            "boundary_cells", "interior_cells",
            "interior_edges", "exterior_edges",
        }

    def test_local_strict_edges(self):
        # save -> (adt -> res -> bres -> update) x2, update feeding back into
        # the next adt and save's qold feeding the first update.
        p = airfoil_timestep()
        assert p.edges() == (
            (), (), (1,), (2,), (0, 3), (4,), (5,), (6,), (7,),
        )

    def test_local_commuting_edges_free_res_and_bres(self):
        p = airfoil_timestep()
        strict = p.edges()
        commuting = p.edges(commute_incs=True)
        # bres_calc (index 3) no longer waits on res_calc (index 2)
        assert 2 in strict[3]
        assert 2 not in commuting[3]
        # but update still waits on both residual producers
        assert set(commuting[4]) >= {2, 3}

    def test_overlapped_interior_compute_ignores_inflight_halo(self):
        p = airfoil_timestep(dist=True, overlap=True)
        edges = p.edges()
        steps = p.steps
        start = next(
            i for i, s in enumerate(steps)
            if s.kind == "exchange" and s.phase == "start" and s.op == "update"
        )
        wait = next(
            i for i, s in enumerate(steps)
            if s.kind == "exchange" and s.phase == "wait" and s.op == "update"
        )
        interior = [
            i for i, s in enumerate(steps)
            if s.kind == "loop" and s.subset in ("interior_cells", "interior_edges")
            and i < wait
        ]
        assert interior, "program must place interior work before the wait"
        for i in interior:
            assert start not in edges[i]
            assert wait not in edges[i]
        # the exterior edges do wait for the imports
        ext = next(
            i for i, s in enumerate(steps)
            if s.kind == "loop" and s.subset == "exterior_edges"
        )
        assert wait in edges[ext]

    def test_unrolled_edges_chain_timesteps(self):
        p = airfoil_timestep()
        n = len(p)
        edges = p.unrolled_edges(2)
        assert len(edges) == 2 * n
        # the second timestep's save_soln reads q written by the first
        # timestep's final update -> a cross-repeat edge, no global barrier
        cross = [j for i in range(n, 2 * n) for j in edges[i] if j < n]
        assert cross, "expected cross-timestep dependence edges"
        with pytest.raises(ValidationError, match="repeats"):
            p.unrolled_edges(0)


class TestValidate:
    def test_double_start_rejected(self):
        p = LoopProgram("bad", (
            ExchangeStep("update", "start", ("q",)),
            ExchangeStep("update", "start", ("q",)),
        ))
        with pytest.raises(ValidationError, match="started twice"):
            p.validate()

    def test_wait_without_start_rejected(self):
        p = LoopProgram("bad", (ExchangeStep("update", "wait", ("q",)),))
        with pytest.raises(ValidationError, match="without a matching start"):
            p.validate()

    def test_blocking_during_inflight_rejected(self):
        p = LoopProgram("bad", (
            ExchangeStep("update", "start", ("q",)),
            ExchangeStep("update", "blocking", ("q",)),
        ))
        with pytest.raises(ValidationError, match="in flight"):
            p.validate()

    def test_dangling_inflight_rejected(self):
        p = LoopProgram("bad", (ExchangeStep("accumulate", "start", ("res",)),))
        with pytest.raises(ValidationError, match="ends with in-flight"):
            p.validate()
