"""Tests for the heat-conduction application (second OP2 app)."""

import numpy as np
import pytest

from repro.airfoil import generate_mesh
from repro.apps.heat import HeatApp, make_heat_kernels, reference_heat_run
from repro.op2 import op2_session

BACKENDS = ["seq", "openmp", "foreach", "hpx_async", "hpx_dataflow"]


@pytest.fixture(scope="module")
def heat_mesh():
    return generate_mesh(ni=16, nj=8)


@pytest.fixture(scope="module")
def heat_reference(heat_mesh):
    return reference_heat_run(heat_mesh, steps=40)


class TestHeatKernels:
    def test_flux_elemental_matches_vectorized(self):
        rng = np.random.default_rng(0)
        k = make_heat_kernels(1e-3)["flux"]
        n = 12
        cond = rng.random((n, 1))
        t1, t2 = rng.random((n, 1)), rng.random((n, 1))
        fv1, fv2 = np.zeros((n, 1)), np.zeros((n, 1))
        fe1, fe2 = np.zeros((n, 1)), np.zeros((n, 1))
        k.vectorized(cond, t1, t2, fv1, fv2)
        for i in range(n):
            k.elemental(cond[i], t1[i], t2[i], fe1[i], fe2[i])
        np.testing.assert_allclose(fv1, fe1)
        np.testing.assert_allclose(fv2, fe2)

    def test_flux_antisymmetric(self):
        k = make_heat_kernels(1e-3)["flux"]
        cond = np.array([[2.0]])
        f1, f2 = np.zeros((1, 1)), np.zeros((1, 1))
        k.vectorized(cond, np.array([[0.0]]), np.array([[1.0]]), f1, f2)
        assert f1[0, 0] == 2.0
        assert f2[0, 0] == -2.0

    def test_advance_elemental_matches_vectorized(self):
        rng = np.random.default_rng(1)
        k = make_heat_kernels(0.01)["advance"]
        n = 9
        t_v, t_e = rng.random((n, 1)), None
        t_e = t_v.copy()
        f_v, f_e = rng.random((n, 1)), None
        f_e = f_v.copy()
        dmax_v = np.full((n, 1), -np.inf)
        dmax_e = np.full((n, 1), -np.inf)
        en_v, en_e = np.zeros((n, 1)), np.zeros((n, 1))
        k.vectorized(t_v, f_v, dmax_v, en_v)
        for i in range(n):
            k.elemental(t_e[i], f_e[i], dmax_e[i], en_e[i])
        np.testing.assert_allclose(t_v, t_e)
        np.testing.assert_allclose(dmax_v, dmax_e)
        np.testing.assert_allclose(en_v, en_e)
        assert np.all(f_v == 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestHeatBackends:
    def test_matches_reference(self, backend, heat_mesh, heat_reference):
        ref_t, ref_energy = heat_reference
        with op2_session(backend=backend, num_threads=3, block_size=16) as rt:
            app = HeatApp(heat_mesh)
            result = app.run(rt, max_steps=40, check_every=10)
        np.testing.assert_allclose(app.t.data[:, 0], ref_t, atol=1e-12)
        assert result.total_energy == pytest.approx(ref_energy)


class TestHeatPhysics:
    def test_energy_conserved(self, heat_mesh):
        # Pure conduction on a closed graph: total energy is invariant.
        with op2_session(backend="seq", block_size=16) as rt:
            app = HeatApp(heat_mesh)
            initial = float(app.t.data.sum())
            res = app.run(rt, max_steps=30)
        assert res.total_energy == pytest.approx(initial, rel=1e-12)

    def test_heat_spreads(self, heat_mesh):
        with op2_session(backend="seq", block_size=16) as rt:
            app = HeatApp(heat_mesh)
            cold_before = float(app.t.data[heat_mesh.ni * 2 :].max())
            app.run(rt, max_steps=50)
        assert cold_before == 0.0
        assert float(app.t.data[heat_mesh.ni * 2 :].max()) > 0.0

    def test_temperatures_bounded(self, heat_mesh):
        with op2_session(backend="seq", block_size=16) as rt:
            app = HeatApp(heat_mesh)
            app.run(rt, max_steps=50)
        assert np.all(app.t.data >= -1e-12)
        assert np.all(app.t.data <= 1.0 + 1e-12)

    def test_convergence_flag(self, heat_mesh):
        with op2_session(backend="seq", block_size=16) as rt:
            app = HeatApp(heat_mesh, dt=1e-4)
            res = app.run(rt, max_steps=200, tol=1e3, check_every=5)
        # Absurdly loose tolerance: converges at the first check.
        assert res.converged
        assert res.steps == 5

    def test_history_recorded_at_checks(self, heat_mesh):
        with op2_session(backend="seq", block_size=16) as rt:
            app = HeatApp(heat_mesh)
            res = app.run(rt, max_steps=20, check_every=10)
        assert len(res.energy_history) == 2
