"""Tests for the shallow-water application (third OP2 app)."""

import numpy as np
import pytest

from repro.airfoil import generate_mesh
from repro.apps.shallow_water import (
    G,
    ShallowWaterApp,
    cell_geometry,
    make_sw_kernels,
)
from repro.op2 import op2_session

BACKENDS = ["seq", "openmp", "foreach", "hpx_async", "hpx_dataflow"]


@pytest.fixture(scope="module")
def sw_mesh():
    return generate_mesh(ni=24, nj=12)


class TestCellGeometry:
    def test_areas_positive(self, sw_mesh):
        area, perim = cell_geometry(sw_mesh)
        assert np.all(area > 0)
        assert np.all(perim > 0)

    def test_total_area_is_exact_polygon_difference(self, sw_mesh):
        # Straight-edge quads tile the annulus exactly: total cell area ==
        # outer boundary polygon area minus airfoil polygon area.
        area, _ = cell_geometry(sw_mesh)

        def polygon_area(pts):
            x, y = pts[:, 0], pts[:, 1]
            return 0.5 * float(
                np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
            )

        ni, nj = sw_mesh.ni, sw_mesh.nj
        inner = sw_mesh.x.data[:ni]  # wall nodes (j = 0)
        outer = sw_mesh.x.data[nj * ni :]  # far-field nodes (j = nj)
        expected = abs(polygon_area(outer)) - abs(polygon_area(inner))
        assert float(area.sum()) == pytest.approx(expected, rel=1e-12)

    def test_isoperimetric_bound(self, sw_mesh):
        area, perim = cell_geometry(sw_mesh)
        # 4*pi*A <= P^2 for any planar region.
        assert np.all(4 * np.pi * area <= perim**2 + 1e-12)


class TestSwKernels:
    def test_flux_elemental_matches_vectorized(self):
        rng = np.random.default_rng(0)
        k = make_sw_kernels(0.4)["sw_flux"]
        n = 14
        x1, x2 = rng.random((n, 2)), rng.random((n, 2))
        u1 = np.stack([1 + rng.random(n), rng.normal(0, 0.1, n), rng.normal(0, 0.1, n)], axis=1)
        u2 = np.stack([1 + rng.random(n), rng.normal(0, 0.1, n), rng.normal(0, 0.1, n)], axis=1)
        rv1, rv2 = np.zeros((n, 3)), np.zeros((n, 3))
        re1, re2 = np.zeros((n, 3)), np.zeros((n, 3))
        k.vectorized(x1, x2, u1, u2, rv1, rv2)
        for i in range(n):
            k.elemental(x1[i], x2[i], u1[i], u2[i], re1[i], re2[i])
        np.testing.assert_allclose(rv1, re1, rtol=1e-13)
        np.testing.assert_allclose(rv2, re2, rtol=1e-13)

    def test_flux_antisymmetric(self):
        rng = np.random.default_rng(1)
        k = make_sw_kernels(0.4)["sw_flux"]
        n = 6
        x1, x2 = rng.random((n, 2)), rng.random((n, 2))
        u1 = np.stack([np.full(n, 1.2), rng.normal(0, 0.1, n), rng.normal(0, 0.1, n)], axis=1)
        u2 = np.stack([np.full(n, 0.9), rng.normal(0, 0.1, n), rng.normal(0, 0.1, n)], axis=1)
        r1, r2 = np.zeros((n, 3)), np.zeros((n, 3))
        k.vectorized(x1, x2, u1, u2, r1, r2)
        np.testing.assert_allclose(r1, -r2, rtol=1e-13)

    def test_still_water_zero_flux(self):
        # Lake at rest: equal depth, zero momentum -> central flux cancels
        # except the pressure term, which is equal on both sides.
        k = make_sw_kernels(0.4)["sw_flux"]
        u = np.array([[1.0, 0.0, 0.0]])
        x1 = np.array([[0.0, 0.0]])
        x2 = np.array([[1.0, 0.5]])
        r1, r2 = np.zeros((1, 3)), np.zeros((1, 3))
        k.vectorized(x1, x2, u, u, r1, r2)
        assert r1[0, 0] == 0.0  # no mass flux
        # Momentum flux is pure pressure: p*n, n = (dy, -dx), dx/dy = x1-x2.
        dx, dy = x1[0] - x2[0]
        np.testing.assert_allclose(r1[0, 1:], 0.5 * G * np.array([dy, -dx]))

    def test_wavespeed_matches_analytic(self):
        k = make_sw_kernels(0.5)["sw_wavespeed"]
        u = np.array([[1.0, 0.0, 0.0]])
        area = np.array([[2.0]])
        perim = np.array([[6.0]])
        dtmin = np.full((1, 1), np.inf)
        k.vectorized(u, area, perim, dtmin)
        expected = 0.5 * 2.0 * 2.0 / (6.0 * np.sqrt(G))
        assert dtmin[0, 0] == pytest.approx(expected)

    def test_update_elemental_matches_vectorized(self):
        rng = np.random.default_rng(2)
        k = make_sw_kernels(0.4)["sw_update"]
        n = 9
        uv = np.stack([1 + rng.random(n), rng.normal(0, 0.1, n), rng.normal(0, 0.1, n)], axis=1)
        ue = uv.copy()
        resv = rng.normal(0, 0.1, (n, 3))
        rese = resv.copy()
        area = 0.5 + rng.random((n, 1))
        dt = np.array([0.01])
        rmsv, rmse = np.zeros((n, 1)), np.zeros((n, 1))
        k.vectorized(uv, resv, area, dt, rmsv)
        for i in range(n):
            k.elemental(ue[i], rese[i], area[i], dt, rmse[i])
        np.testing.assert_allclose(uv, ue, rtol=1e-14)
        np.testing.assert_allclose(rmsv, rmse, rtol=1e-13)
        assert np.all(resv == 0.0)


class TestShallowWaterPhysics:
    def test_mass_exactly_conserved(self, sw_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = ShallowWaterApp(sw_mesh)
            m0 = app.total_mass()
            res = app.run(rt, 40)
        assert res.mass == pytest.approx(m0, rel=1e-13)

    def test_still_water_stays_still(self, sw_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = ShallowWaterApp(sw_mesh, bump_height=0.0)
            res = app.run(rt, 10)
        assert res.h_range == pytest.approx((1.0, 1.0))
        assert res.rms_total == pytest.approx(0.0, abs=1e-20)

    def test_bump_spreads_and_decays(self, sw_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = ShallowWaterApp(sw_mesh, bump_height=0.1)
            h_max0 = float(app.u.data[:, 0].max())
            res = app.run(rt, 60)
        assert res.h_range[1] < h_max0  # peak radiates away
        assert res.h_range[0] > 0.5  # no drying / blow-up

    def test_positive_timesteps(self, sw_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = ShallowWaterApp(sw_mesh)
            res = app.run(rt, 5)
        assert all(dt > 0 for dt in res.dt_history)
        assert res.time == pytest.approx(sum(res.dt_history))


@pytest.mark.parametrize("backend", BACKENDS)
class TestShallowWaterBackends:
    def test_backends_agree(self, sw_mesh, backend):
        with op2_session(backend="seq", block_size=32) as rt:
            ref_app = ShallowWaterApp(sw_mesh)
            ref = ref_app.run(rt, 10)
        with op2_session(backend=backend, num_threads=3, block_size=32) as rt:
            app = ShallowWaterApp(sw_mesh)
            res = app.run(rt, 10)
        np.testing.assert_allclose(app.u.data, ref_app.u.data, rtol=1e-10, atol=1e-13)
        assert res.mass == pytest.approx(ref.mass)
        assert res.time == pytest.approx(ref.time)
