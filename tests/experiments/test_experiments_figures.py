"""Tests for figure builders and claim checking, at reduced scale.

These use a small mesh / thread sweep so they run in seconds; the
paper-scale claims (5% / 21% at 32 threads) are exercised by the integration
test and the benchmark harness.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    fig15_exec_time,
    fig16_foreach_chunking,
    fig17_async,
    fig18_dataflow,
    fig19_weak_scaling,
    render_figure,
)
from repro.experiments.report import ExperimentReport, claim_check

SMALL = ExperimentConfig(ni=32, nj=12, niter=2, block_size=16, threads=(1, 4, 8))


@pytest.fixture(scope="module")
def f15():
    return fig15_exec_time(SMALL)


@pytest.fixture(scope="module")
def f17():
    return fig17_async(SMALL)


@pytest.fixture(scope="module")
def f18():
    return fig18_dataflow(SMALL)


class TestFig15:
    def test_four_series(self, f15):
        assert set(f15.series) == {
            "omp parallel for",
            "for_each",
            "async",
            "dataflow",
        }

    def test_equal_at_one_thread(self, f15):
        # Loose band at this tiny scale, where constant overheads are a
        # visible share of the run; the integration test asserts <5% at the
        # calibrated mesh size.
        assert f15.notes["max_1thread_spread"] < 0.15

    def test_time_decreases_with_threads(self, f15):
        for xs, ys in f15.series.values():
            assert ys[0] > ys[-1]


class TestFig16:
    def test_static_beats_auto(self):
        fig = fig16_foreach_chunking(SMALL)
        assert fig.notes["static_over_auto_at_max"] > 0


class TestFig17And18:
    def test_speedup_normalized_to_one(self, f17):
        for xs, ys in f17.series.values():
            assert ys[0] == pytest.approx(1.0)

    def test_dataflow_beats_async_gain(self, f17, f18):
        assert (
            f18.notes["dataflow_gain_at_max"] >= f17.notes["async_gain_at_max"] - 0.02
        )


class TestFig19:
    def test_weak_efficiency_starts_at_one(self):
        cfg = ExperimentConfig(ni=16, nj=8, niter=1, block_size=16, threads=(1, 2, 4))
        fig = fig19_weak_scaling(cfg)
        for xs, ys in fig.series.values():
            assert ys[0] == pytest.approx(1.0)
            assert all(y <= 1.05 for y in ys)


class TestRendering:
    def test_render_contains_table_and_plot(self, f15):
        out = render_figure(f15)
        assert "fig15" in out
        assert "threads" in out
        assert "dataflow" in out

    def test_render_without_plot(self, f15):
        out = render_figure(f15, plot=False)
        assert "y in [" not in out

    def test_gain_helper_time_series(self, f15):
        g = f15.gain("dataflow", "omp parallel for", f15.series["dataflow"][0][-1])
        assert isinstance(g, float)

    def test_gain_helper_speedup_series(self, f17):
        g = f17.gain("async", "omp parallel for", f17.series["async"][0][-1])
        assert g == pytest.approx(f17.notes["async_gain_at_max"])


class TestClaimCheck:
    def test_report_renders_markdown_table(self, f15, f17, f18):
        report = claim_check(fig15=f15, fig17=f17, fig18=f18)
        out = report.render()
        assert out.startswith("| claim |")
        assert len(report.checks) >= 3

    def test_empty_report(self):
        report = claim_check()
        assert report.checks == []
        assert report.all_hold

    def test_manual_report(self):
        r = ExperimentReport()
        r.add("x", "1", "2", False)
        assert not r.all_hold
        assert "NO" in r.render()
