"""Tests for the experiment runner and config."""

import pytest

from repro.backends.costs import LoopCostModel
from repro.experiments.config import DEFAULT_THREADS, ExperimentConfig, PAPER_CLAIMS
from repro.experiments.runner import run_backend, simulate_backend, sweep

SMALL = ExperimentConfig(ni=16, nj=6, niter=2, block_size=16, threads=(1, 2, 4))


class TestConfig:
    def test_defaults_match_paper_setup(self):
        cfg = ExperimentConfig()
        assert cfg.machine.max_threads == 32
        assert DEFAULT_THREADS[-1] == 32

    def test_paper_claims_documented(self):
        assert PAPER_CLAIMS["async_gain_at_32"] == pytest.approx(0.05)
        assert PAPER_CLAIMS["dataflow_gain_at_32"] == pytest.approx(0.21)

    def test_mesh_kwargs(self):
        assert SMALL.mesh_kwargs() == {"ni": 16, "nj": 6}

    def test_frozen(self):
        with pytest.raises(Exception):
            SMALL.niter = 10


class TestRunBackend:
    def test_functional_run_validates(self):
        run = run_backend("openmp", SMALL)
        assert run.validation
        assert max(run.validation.values()) < 1e-9

    def test_log_collected(self):
        run = run_backend("openmp", SMALL)
        assert len(run.log.loops()) == 2 * 9

    def test_validation_skippable(self):
        run = run_backend("seq", SMALL, validate=False)
        assert run.validation == {}

    def test_mesh_reused_when_given(self):
        from repro.airfoil import generate_mesh

        mesh = generate_mesh(ni=16, nj=6)
        run = run_backend("seq", SMALL, mesh)
        assert run.mesh is mesh


class TestSimulateBackend:
    def test_more_threads_faster(self):
        run = run_backend("hpx_dataflow", SMALL)
        cm = LoopCostModel(jitter=SMALL.cost_jitter)
        t1 = simulate_backend(run, SMALL, 1, cm).makespan
        t4 = simulate_backend(run, SMALL, 4, cm).makespan
        assert t4 < t1

    def test_trace_collection_optional(self):
        run = run_backend("openmp", SMALL)
        res = simulate_backend(run, SMALL, 2, trace=True)
        assert res.trace.records

    def test_default_cost_model_used(self):
        run = run_backend("openmp", SMALL)
        assert simulate_backend(run, SMALL, 2).makespan > 0


class TestSweep:
    def test_sweep_covers_configured_threads(self):
        run, results = sweep("openmp", SMALL)
        assert set(results) == set(SMALL.threads)
        times = [results[p].makespan for p in SMALL.threads]
        assert times[0] > times[-1]
