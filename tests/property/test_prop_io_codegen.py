"""Property-based tests: archive round-trips and codegen idempotence."""

import io

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codegen import translate_source
from repro.codegen.parser import parse_loops, rewrite_calls
from repro.op2 import OpDat, OpMap, OpSet
from repro.op2.io import load_problem, save_problem

ACCESSES = ["OP_READ", "OP_WRITE", "OP_RW", "OP_INC"]


@st.composite
def random_world(draw):
    nsets = draw(st.integers(1, 3))
    sets = [OpSet(f"s{i}", draw(st.integers(1, 20))) for i in range(nsets)]
    maps = []
    for j in range(draw(st.integers(0, 3))):
        frm = draw(st.sampled_from(sets))
        to = draw(st.sampled_from(sets))
        arity = draw(st.integers(1, 3))
        values = draw(
            st.lists(
                st.lists(st.integers(0, to.size - 1), min_size=arity, max_size=arity),
                min_size=frm.size,
                max_size=frm.size,
            )
        )
        maps.append(OpMap(f"m{j}", frm, to, arity, np.array(values, dtype=np.int64)))
    dats = []
    for j in range(draw(st.integers(0, 3))):
        s = draw(st.sampled_from(sets))
        dim = draw(st.integers(1, 4))
        data = draw(
            st.lists(
                st.lists(
                    st.floats(-1e6, 1e6, allow_nan=False),
                    min_size=dim,
                    max_size=dim,
                ),
                min_size=s.size,
                max_size=s.size,
            )
        )
        dats.append(OpDat(f"d{j}", s, dim, np.array(data)))
    return sets, maps, dats


@settings(max_examples=20)
@given(random_world())
def test_problem_archive_round_trip(world):
    sets, maps, dats = world
    buf = io.BytesIO()
    save_problem(buf, sets, maps, dats)
    buf.seek(0)
    rsets, rmaps, rdats = load_problem(buf)
    assert {s.name: s.size for s in sets} == {
        name: s.size for name, s in rsets.items()
    }
    for m in maps:
        np.testing.assert_array_equal(rmaps[m.name].values, m.values)
        assert rmaps[m.name].from_set.name == m.from_set.name
    for d in dats:
        np.testing.assert_array_equal(rdats[d.name].data, d.data)


@st.composite
def random_loop_source(draw):
    """Source text with 1..4 well-formed op_par_loop call sites."""
    nloops = draw(st.integers(1, 4))
    lines = []
    names = []
    for i in range(nloops):
        name = f"loop{draw(st.integers(0, 2))}"
        nargs = draw(st.integers(1, 4))
        args = []
        for a in range(nargs):
            if draw(st.booleans()):
                args.append(
                    f"op_arg_dat(ctx.d{a}, -1, OP_ID, "
                    f"{draw(st.sampled_from(ACCESSES))})"
                )
            else:
                idx = draw(st.integers(0, 2))
                args.append(
                    f"op_arg_dat(ctx.d{a}, {idx}, ctx.m, "
                    f"{draw(st.sampled_from(ACCESSES))})"
                )
        # Keep repeated names signature-consistent: suffix by arg count.
        name = f"{name}_{nargs}"
        names.append(name)
        lines.append(
            f'op_par_loop(ctx.k, "{name}", ctx.s, ' + ", ".join(args) + ")"
        )
    return "\n".join(lines), names


@settings(max_examples=25)
@given(random_loop_source())
def test_parser_finds_every_loop(src_names):
    source, names = src_names
    loops = parse_loops(source)
    assert [l.name for l in loops] == names


@settings(max_examples=25)
@given(random_loop_source())
def test_rewrite_is_idempotent(src_names):
    source, _ = src_names
    once = rewrite_calls(source)
    twice = rewrite_calls(once)
    assert once == twice


@settings(max_examples=15)
@given(random_loop_source(), st.sampled_from(["seq", "openmp", "hpx_dataflow"]))
def test_translation_always_produces_valid_python(src_names, target):
    import ast

    source, names = src_names
    text, loops = translate_source(source, target)
    ast.parse(text)
    for name in set(names):
        assert f"def op_par_loop_{name}(" in text
