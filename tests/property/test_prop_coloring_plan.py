"""Property-based tests: coloring and plan invariants on random meshes."""

import numpy as np
from hypothesis import given, strategies as st

from repro.op2 import OP_INC, OpDat, OpMap, OpSet, op_arg_dat
from repro.op2.coloring import (
    build_block_conflicts,
    color_classes,
    degree_coloring,
    greedy_coloring,
    validate_coloring,
)
from repro.op2.partition import contiguous_blocks, validate_blocks
from repro.op2.plan import build_plan


@st.composite
def random_map_world(draw):
    """A random (from_set, to_set, arity-2 map) triple."""
    nfrom = draw(st.integers(1, 120))
    nto = draw(st.integers(1, 60))
    arity = draw(st.integers(1, 3))
    values = draw(
        st.lists(
            st.lists(st.integers(0, nto - 1), min_size=arity, max_size=arity),
            min_size=nfrom,
            max_size=nfrom,
        )
    )
    from_set = OpSet("from", nfrom)
    to_set = OpSet("to", nto)
    m = OpMap("m", from_set, to_set, arity, np.array(values, dtype=np.int64))
    return from_set, to_set, m


@given(random_map_world(), st.integers(1, 32))
def test_plan_color_classes_are_conflict_free(world, block_size):
    from_set, to_set, m = world
    dat = OpDat("d", to_set, 1)
    args = [op_arg_dat(dat, i, m, OP_INC) for i in range(m.arity)]
    plan = build_plan(from_set, args, block_size=block_size)

    # Invariant 1: blocks tile the set.
    validate_blocks(plan.blocks, from_set.size)
    # Invariant 2: classes partition the blocks.
    assert sorted(b for cls in plan.classes for b in cls) == list(range(plan.nblocks))
    # Invariant 3: within a color, no two blocks touch a common target.
    for cls in plan.classes:
        seen: set[int] = set()
        for b in cls:
            blk = plan.blocks[b]
            targets = set(m.values[blk.start : blk.stop].ravel().tolist())
            assert not (seen & targets)
            seen |= targets


@given(random_map_world(), st.integers(1, 16))
def test_greedy_and_degree_colorings_both_proper(world, block_size):
    from_set, to_set, m = world
    blocks = contiguous_blocks(from_set.size, block_size)
    targets = [
        np.unique(m.values[b.start : b.stop].ravel()) for b in blocks
    ]
    adj = build_block_conflicts(targets)
    for colors in (greedy_coloring(adj), degree_coloring(adj)):
        validate_coloring(adj, colors)
        classes = color_classes(colors)
        assert sorted(b for cls in classes for b in cls) == list(range(len(adj)))


@given(random_map_world(), st.integers(1, 16))
def test_color_count_bounded_by_max_degree_plus_one(world, block_size):
    from_set, to_set, m = world
    blocks = contiguous_blocks(from_set.size, block_size)
    targets = [np.unique(m.values[b.start : b.stop].ravel()) for b in blocks]
    adj = build_block_conflicts(targets)
    colors = greedy_coloring(adj)
    max_degree = max((len(a) for a in adj), default=0)
    assert max(colors, default=-1) + 1 <= max_degree + 1


@given(st.integers(0, 500), st.integers(1, 64))
def test_contiguous_blocks_always_tile(n, block_size):
    blocks = contiguous_blocks(n, block_size)
    validate_blocks(blocks, n)
    assert all(0 < len(b) <= block_size for b in blocks)
