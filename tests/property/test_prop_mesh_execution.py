"""Property-based tests: mesh invariants and gather/scatter correctness."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.airfoil import generate_mesh
from repro.backends.base import execute_loop, execute_loop_by_plan
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    Kernel,
    OpDat,
    OpMap,
    OpSet,
    op_arg_dat,
)
from repro.op2.parloop import ParLoop
from repro.op2.plan import build_plan

mesh_dims = st.tuples(
    st.integers(4, 20).map(lambda k: 2 * k),  # even ni in [8, 40]
    st.integers(2, 12),
)


@settings(max_examples=15)
@given(mesh_dims)
def test_mesh_euler_characteristic(dims):
    """V - E + F = 0 for the O-mesh annulus (Euler characteristic of an
    annulus is 0), counting boundary edges and both faces of nothing."""
    ni, nj = dims
    mesh = generate_mesh(ni=ni, nj=nj)
    V = mesh.nodes.size
    E = mesh.edges.size + mesh.bedges.size
    F = mesh.cells.size
    assert V - E + F == 0


@settings(max_examples=15)
@given(mesh_dims)
def test_mesh_positively_oriented_everywhere(dims):
    ni, nj = dims
    mesh = generate_mesh(ni=ni, nj=nj)
    x = mesh.x.data
    pc = mesh.pcell.values
    areas = np.zeros(mesh.cells.size)
    for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
        areas += x[pc[:, a], 0] * x[pc[:, b], 1] - x[pc[:, b], 0] * x[pc[:, a], 1]
    assert np.all(areas > 0)


@settings(max_examples=15)
@given(mesh_dims)
def test_mesh_face_vectors_close(dims):
    ni, nj = dims
    mesh = generate_mesh(ni=ni, nj=nj)
    x = mesh.x.data
    net = np.zeros((mesh.cells.size, 2))
    d = x[mesh.pedge.values[:, 0]] - x[mesh.pedge.values[:, 1]]
    np.add.at(net, mesh.pecell.values[:, 0], d)
    np.add.at(net, mesh.pecell.values[:, 1], -d)
    db = x[mesh.pbedge.values[:, 0]] - x[mesh.pbedge.values[:, 1]]
    np.add.at(net, mesh.pbecell.values[:, 0], db)
    assert np.max(np.abs(net)) < 1e-10


@st.composite
def scatter_world(draw):
    nfrom = draw(st.integers(1, 60))
    nto = draw(st.integers(1, 30))
    col0 = draw(st.lists(st.integers(0, nto - 1), min_size=nfrom, max_size=nfrom))
    col1 = draw(st.lists(st.integers(0, nto - 1), min_size=nfrom, max_size=nfrom))
    weights = draw(
        st.lists(
            st.floats(-5, 5, allow_nan=False), min_size=nfrom, max_size=nfrom
        )
    )
    return nfrom, nto, np.array([col0, col1]).T, np.array(weights)


@given(scatter_world(), st.integers(1, 16))
def test_indirect_inc_equals_dense_matvec(world, block_size):
    """op_par_loop INC through a map == explicit incidence-matrix product,
    at any block size / coloring."""
    nfrom, nto, mapvals, w = world
    edges = OpSet("edges", nfrom)
    cells = OpSet("cells", nto)
    m = OpMap("m", edges, cells, 2, mapvals)
    wdat = OpDat("w", edges, 1, w)
    acc = OpDat("acc", cells, 1)

    def kv(wv, a, b):
        a[:] = wv
        b[:] = -wv

    loop = ParLoop(
        Kernel("scatter", lambda w, a, b: None, kv),
        "scatter",
        edges,
        (
            op_arg_dat(wdat, -1, OP_ID, OP_READ),
            op_arg_dat(acc, 0, m, OP_INC),
            op_arg_dat(acc, 1, m, OP_INC),
        ),
    )
    plan = build_plan(edges, list(loop.args), block_size=block_size)
    execute_loop_by_plan(loop, plan)

    expected = np.zeros(nto)
    np.add.at(expected, mapvals[:, 0], w)
    np.add.at(expected, mapvals[:, 1], -w)
    np.testing.assert_allclose(acc.data[:, 0], expected, atol=1e-9)


@given(scatter_world())
def test_whole_set_and_plan_execution_agree(world):
    nfrom, nto, mapvals, w = world
    edges = OpSet("edges", nfrom)
    cells = OpSet("cells", nto)
    m = OpMap("m", edges, cells, 2, mapvals)
    wdat = OpDat("w", edges, 1, w)
    acc1 = OpDat("a1", cells, 1)
    acc2 = OpDat("a2", cells, 1)

    def kv(wv, a):
        a[:] = wv * 2.0

    def mkloop(acc):
        return ParLoop(
            Kernel("s", lambda w, a: None, kv),
            "s",
            edges,
            (op_arg_dat(wdat, -1, OP_ID, OP_READ), op_arg_dat(acc, 0, m, OP_INC)),
        )

    execute_loop(mkloop(acc1))
    plan = build_plan(edges, list(mkloop(acc2).args), block_size=7)
    execute_loop_by_plan(mkloop(acc2), plan)
    np.testing.assert_allclose(acc1.data, acc2.data, atol=1e-9)
