"""Property-based tests: simulator makespan bounds on random DAGs."""

from hypothesis import given, strategies as st

from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph

IDEAL = MachineConfig(
    num_cores=32,
    smt_ways=1,
    task_overhead=0.0,
    steal_overhead=0.0,
)


@st.composite
def random_dag(draw):
    """A random DAG built in topological order (deps point backwards)."""
    n = draw(st.integers(1, 40))
    g = TaskGraph()
    for i in range(n):
        cost = draw(st.floats(0.1, 10.0))
        ndeps = draw(st.integers(0, min(i, 3)))
        deps = draw(
            st.lists(st.integers(0, i - 1), min_size=ndeps, max_size=ndeps, unique=True)
        ) if i else []
        g.add(f"t{i}", cost, deps)
    return g


@given(random_dag(), st.integers(1, 32))
def test_makespan_bounded_below_by_critical_path(g, threads):
    res = simulate(g, IDEAL, threads)
    assert res.makespan >= g.critical_path() - 1e-9


@given(random_dag(), st.integers(1, 32))
def test_makespan_bounded_above_by_total_work(g, threads):
    res = simulate(g, IDEAL, threads)
    assert res.makespan <= g.total_work() + 1e-9


@given(random_dag(), st.integers(1, 32))
def test_makespan_bounded_by_graham_list_scheduling(g, threads):
    # Graham's bound for any list scheduler: T <= work/p + critical_path.
    res = simulate(g, IDEAL, threads)
    assert res.makespan <= g.total_work() / threads + g.critical_path() + 1e-9


@given(random_dag())
def test_single_thread_equals_total_work(g):
    res = simulate(g, IDEAL, 1)
    assert abs(res.makespan - g.total_work()) < 1e-9


@given(random_dag(), st.integers(1, 16))
def test_all_tasks_execute_exactly_once(g, threads):
    res = simulate(g, IDEAL, threads, trace=True)
    assert res.tasks_executed == len(g)
    assert len(res.trace.records) == len(g)
    assert sorted(r.tid for r in res.trace.records) == list(range(len(g)))


@given(random_dag(), st.integers(1, 16))
def test_trace_respects_dependencies(g, threads):
    res = simulate(g, IDEAL, threads, trace=True)
    end_of = {r.tid: r.end for r in res.trace.records}
    start_of = {r.tid: r.start for r in res.trace.records}
    for t in g:
        for d in t.deps:
            assert start_of[t.tid] >= end_of[d] - 1e-9


@given(random_dag(), st.integers(1, 16))
def test_no_thread_overlap_in_trace(g, threads):
    res = simulate(g, IDEAL, threads, trace=True)
    per_thread: dict[int, list] = {}
    for r in res.trace.records:
        per_thread.setdefault(r.thread, []).append((r.start, r.end))
    for intervals in per_thread.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9


@given(random_dag())
def test_determinism(g):
    a = simulate(g, IDEAL, 4).makespan
    b = simulate(g, IDEAL, 4).makespan
    assert a == b
