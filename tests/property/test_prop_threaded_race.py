"""Property tests: the threaded execution path cannot race on shared rows.

The threads mode dispatches all same-color plan blocks concurrently
(``repro/backends/threaded.py``), so its memory-safety argument rests on two
invariants checked here over hypothesis-generated meshes:

1. no two blocks sharing a color write to a common target row through *any*
   indirect-reduction map argument (multiple maps and multiple target dats
   included);
2. the chunker/span machinery hands each pool task a disjoint slice of the
   color class — spans tile the class's elements exactly, so concurrent
   direct writes never overlap either.
"""

import numpy as np
from hypothesis import given, strategies as st

from repro.backends.threaded import chunk_spans
from repro.hpx.chunking import (
    AutoPartitioner,
    GuessChunkSize,
    StaticChunkSize,
)
from repro.op2 import OP_INC, OP_MAX, OP_MIN, OpDat, OpMap, OpSet, op_arg_dat
from repro.op2.plan import build_plan

REDUCTIONS = [OP_INC, OP_MIN, OP_MAX]


@st.composite
def reduction_world(draw):
    """Random iteration set + 1-2 reduction maps into 1-2 target dats."""
    nfrom = draw(st.integers(1, 150))
    from_set = OpSet("iter", nfrom)
    nmaps = draw(st.integers(1, 2))
    args = []
    maps = []
    for mi in range(nmaps):
        nto = draw(st.integers(1, 80))
        arity = draw(st.integers(1, 3))
        to_set = OpSet(f"to{mi}", nto)
        values = draw(
            st.lists(
                st.lists(st.integers(0, nto - 1), min_size=arity, max_size=arity),
                min_size=nfrom,
                max_size=nfrom,
            )
        )
        m = OpMap(f"m{mi}", from_set, to_set, arity,
                  np.array(values, dtype=np.int64))
        dat = OpDat(f"d{mi}", to_set, 1)
        access = draw(st.sampled_from(REDUCTIONS))
        for idx in range(arity):
            args.append(op_arg_dat(dat, idx, m, access))
        maps.append((m, dat))
    return from_set, maps, args


def _written_rows(arg, start: int, stop: int) -> set[tuple[str, int]]:
    """(dat name, row) pairs this reduction arg writes for elements [start, stop)."""
    col = arg.map_.values[start:stop, arg.idx]
    return {(arg.dat.name, int(r)) for r in col}


@given(reduction_world(), st.integers(1, 24))
def test_same_color_blocks_write_disjoint_rows(world, block_size):
    from_set, maps, args = world
    plan = build_plan(from_set, args, block_size=block_size)
    reduction_args = [a for a in args if a.is_indirect and a.access.is_reduction]
    for cls in plan.classes:
        written: list[set[tuple[str, int]]] = []
        for b in cls:
            blk = plan.blocks[b]
            rows: set[tuple[str, int]] = set()
            for arg in reduction_args:
                rows |= _written_rows(arg, blk.start, blk.stop)
            written.append(rows)
        for i in range(len(written)):
            for j in range(i + 1, len(written)):
                assert not (written[i] & written[j]), (
                    "two same-color blocks write a common row — the threaded "
                    "dispatcher would race on it"
                )


@given(
    reduction_world(),
    st.integers(1, 24),
    st.integers(1, 8),
    st.sampled_from(["guess", "static", "auto"]),
)
def test_chunked_spans_tile_each_color_class(world, block_size, workers, kind):
    """Pool tasks receive disjoint element spans covering the class exactly."""
    from_set, maps, args = world
    plan = build_plan(from_set, args, block_size=block_size)
    chunker = {
        "guess": GuessChunkSize(),
        "static": StaticChunkSize(2),
        "auto": AutoPartitioner(),
    }[kind]
    for cls in plan.classes:
        if not cls:
            continue
        chunks = chunker.chunks(len(cls), workers)
        elements: list[int] = []
        for chunk in chunks:
            for span in chunk_spans(plan, list(cls), chunk):
                assert span.stop > span.start
                elements.extend(range(span.start, span.stop))
        expected = sorted(
            e
            for b in cls
            for e in range(plan.blocks[b].start, plan.blocks[b].stop)
        )
        # Tiling (no element lost) + disjointness (no element duplicated).
        assert sorted(elements) == expected
        assert len(elements) == len(set(elements))


@given(reduction_world(), st.integers(1, 24))
def test_classes_execute_every_block_exactly_once(world, block_size):
    """The color-by-color outer loop covers the whole iteration set once."""
    from_set, maps, args = world
    plan = build_plan(from_set, args, block_size=block_size)
    seen = sorted(b for cls in plan.classes for b in cls)
    assert seen == list(range(plan.nblocks))
    total = sum(
        plan.blocks[b].stop - plan.blocks[b].start
        for cls in plan.classes
        for b in cls
    )
    assert total == from_set.size
