"""Property-based tests: dependence-tracker serializability and future algebra."""

from hypothesis import given, strategies as st

from repro.hpx.executor import TaskExecutor
from repro.hpx.future import when_all
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_RW,
    OP_WRITE,
    OpDat,
    OpSet,
    op_arg_dat,
)
from repro.op2.access import Access
from repro.op2.deps import DatDependencyTracker

ACCESSES = [OP_READ, OP_WRITE, OP_RW, OP_INC]


@st.composite
def access_program(draw):
    """A random program: each loop touches a random subset of 3 dats."""
    cells = OpSet("cells", 4)
    dats = [OpDat(f"d{i}", cells, 1) for i in range(3)]
    nloops = draw(st.integers(1, 12))
    program = []
    for _ in range(nloops):
        nargs = draw(st.integers(1, 3))
        picks = draw(
            st.lists(st.integers(0, 2), min_size=nargs, max_size=nargs, unique=True)
        )
        args = [
            op_arg_dat(dats[p], -1, OP_ID, draw(st.sampled_from(ACCESSES)))
            for p in picks
        ]
        program.append(args)
    return dats, program


def strongest(accesses):
    if any(a in (Access.WRITE, Access.RW) for a in accesses):
        return "write"
    if any(a.is_reduction for a in accesses):
        return "inc"
    return "read"


@given(access_program())
def test_conflicting_loops_are_always_ordered(prog):
    """Any two loops with a non-commuting conflict on a dat must be ordered
    (directly or transitively) by the tracker's dependence edges."""
    dats, program = prog
    tracker = DatDependencyTracker()
    edges: dict[int, set[int]] = {}
    per_loop_access: list[dict[int, str]] = []
    for token, args in enumerate(program):
        deps = tracker.dependencies(args, token=token)
        edges[token] = set(deps)
        acc: dict[int, list] = {}
        for a in args:
            acc.setdefault(id(a.dat), []).append(a.access)
        per_loop_access.append({k: strongest(v) for k, v in acc.items()})

    # Transitive closure of predecessor sets.
    reach: dict[int, set[int]] = {}
    for t in range(len(program)):
        r = set(edges[t])
        for d in edges[t]:
            r |= reach[d]
        reach[t] = r

    def conflicts(a: str, b: str) -> bool:
        if a == "read" and b == "read":
            return False
        if a == "inc" and b == "inc":
            return False  # increments commute
        return True

    for i in range(len(program)):
        for j in range(i + 1, len(program)):
            shared = set(per_loop_access[i]) & set(per_loop_access[j])
            for dat_id in shared:
                if conflicts(per_loop_access[i][dat_id], per_loop_access[j][dat_id]):
                    assert i in reach[j], (
                        f"loops {i} and {j} conflict on a dat but are unordered"
                    )


@given(access_program())
def test_dependencies_only_point_backwards(prog):
    dats, program = prog
    tracker = DatDependencyTracker()
    for token, args in enumerate(program):
        deps = tracker.dependencies(args, token=token)
        assert all(d < token for d in deps)
        assert len(deps) == len(set(deps))


@given(st.lists(st.integers(-100, 100), min_size=0, max_size=30))
def test_when_all_preserves_values_and_order(values):
    ex = TaskExecutor(3)
    futures = [ex.submit(lambda v=v: v) for v in values]
    assert when_all(futures, ex).get() == values


@given(st.lists(st.integers(0, 100), min_size=1, max_size=20), st.integers(1, 8))
def test_executor_executes_everything_once(values, workers):
    ex = TaskExecutor(workers)
    log = []
    for v in values:
        ex.post(lambda v=v: log.append(v))
    ex.drain()
    assert sorted(log) == sorted(values)
    assert ex.stats.tasks_executed == len(values)
