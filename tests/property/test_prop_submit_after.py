"""Property tests for dependency release ordering in the thread pool.

Two layers of the same invariant:

1. raw engine: over random task DAGs, ``submit_after`` never starts a task
   before every one of its dependencies completed — checked through the
   engine-global sequence counters stamped at each state transition;
2. scheduled loops: over random meshes and block sizes, the dataflow
   scheduler's block-refined edges guarantee that a chunk never starts
   before every *conflicting* producer block (recomputed independently from
   the plans) has finished — the memory-safety argument of barrier-free
   measured execution.
"""

from hypothesis import given, settings, strategies as st

from repro.airfoil import generate_mesh
from repro.apps.heat import HeatApp
from repro.backends.blockdeps import block_dependencies, hazard_dats
from repro.hpx.threadpool import ThreadPoolEngine
from repro.op2 import op2_session


@st.composite
def task_dag(draw):
    """Adjacency lists of a random DAG: deps of task i point at j < i."""
    n = draw(st.integers(2, 24))
    deps = [[]]
    for i in range(1, n):
        width = draw(st.integers(0, min(i, 3)))
        deps.append(
            sorted(draw(st.sets(st.integers(0, i - 1), min_size=width, max_size=width)))
        )
    return deps


@settings(max_examples=25)
@given(task_dag(), st.integers(1, 4))
def test_no_task_starts_before_its_dependencies_complete(dag, workers):
    with ThreadPoolEngine(workers) as pool:
        pool.keep_history = True
        tasks = []
        for i, dep_ids in enumerate(dag):
            tasks.append(
                pool.submit_after(lambda i=i: i, [tasks[j] for j in dep_ids])
            )
        results = pool.wait_all(tasks)
    assert results == list(range(len(dag)))
    for task, dep_ids in zip(tasks, dag):
        assert task.done_seq > task.started_seq > task.released_seq > 0
        for j in dep_ids:
            dep = tasks[j]
            # Release (and therefore start) strictly follows every
            # dependency's completion — the submit_after contract.
            assert task.released_seq > dep.done_seq
            assert task.started_seq > dep.done_seq


@settings(max_examples=8)
@given(
    st.sampled_from([(8, 4), (12, 4), (16, 6)]),
    st.sampled_from([8, 16, 32]),
    st.integers(1, 4),
    st.integers(1, 3),
)
def test_scheduled_chunks_wait_for_all_conflicting_producer_blocks(
    dims, block_size, workers, steps
):
    """Dataflow threads mode: recompute every block-level conflict edge from
    the recorded plans and check it against the pool's sequence counters."""
    ni, nj = dims
    mesh = generate_mesh(ni=ni, nj=nj)
    with op2_session(
        backend="hpx_dataflow",
        num_threads=workers,
        block_size=block_size,
        mode="threads",
        num_workers=workers,
    ) as rt:
        app = HeatApp(mesh)
        for _ in range(steps):
            app.loop_flux()
            app.loop_advance()
        # Snapshot before finish(): finalize clears the scheduler's handles.
        handles = sorted(rt.backend._sched.handles.items())
        rt.finish()

    assert len(handles) == 2 * steps
    for pi, (p_id, producer) in enumerate(handles):
        for c_id, consumer in handles[pi + 1 :]:
            for dat in hazard_dats(producer.rec, consumer.rec):
                refined = block_dependencies(producer.rec, consumer.rec, dat)
                for b, producer_blocks in enumerate(refined):
                    ctask = consumer.block_task.get(b)
                    if ctask is None:
                        continue
                    for j in producer_blocks:
                        ptask = producer.block_task.get(int(j))
                        if ptask is None:
                            continue
                        assert ctask.started_seq > ptask.done_seq > 0, (
                            f"loop {c_id} block {b} started before conflicting "
                            f"block {int(j)} of loop {p_id} (dat {dat.name}) "
                            "completed"
                        )
