"""Property-based tests for chunkers."""

from hypothesis import given, strategies as st

from repro.hpx.chunking import (
    AutoPartitioner,
    DynamicChunkSize,
    GuessChunkSize,
    StaticChunkSize,
    validate_cover,
)

chunkers = st.one_of(
    st.builds(StaticChunkSize, st.integers(1, 100)),
    st.builds(DynamicChunkSize, st.integers(1, 100)),
    st.builds(GuessChunkSize),
    st.builds(
        AutoPartitioner,
        measure_fraction=st.floats(0.001, 0.5),
        chunks_per_worker=st.integers(1, 8),
    ),
)


@given(chunkers, st.integers(0, 5000), st.integers(1, 64))
def test_chunks_exactly_tile_iteration_space(chunker, n, workers):
    chunks = chunker.chunks(n, workers)
    validate_cover(chunks, n)


@given(chunkers, st.integers(1, 5000), st.integers(1, 64))
def test_chunks_nonempty_and_ordered(chunker, n, workers):
    chunks = chunker.chunks(n, workers)
    assert all(len(c) > 0 for c in chunks)
    assert all(a.stop == b.start for a, b in zip(chunks, chunks[1:]))


@given(st.integers(1, 5000), st.integers(1, 64))
def test_auto_partitioner_prefix_at_most_half(n, workers):
    ap = AutoPartitioner()
    chunks = ap.chunks(n, workers)
    prefix = [c for c in chunks if c.serial_prefix]
    assert len(prefix) <= 1
    if n > 1:
        assert sum(len(c) for c in prefix) <= max(1, n // 2)


@given(st.integers(2, 5000))
def test_auto_prefix_close_to_one_percent(n):
    ap = AutoPartitioner()
    assert ap.prefix_length(n) == max(1, round(n * 0.01))


@given(st.integers(1, 1000), st.integers(1, 64))
def test_guess_chunker_balanced(n, workers):
    chunks = GuessChunkSize().chunks(n, workers)
    sizes = [len(c) for c in chunks]
    assert max(sizes) - min(sizes) <= max(sizes)  # trivially true guard
    assert len(chunks) <= workers
