"""Property-based tests for the distributed layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.airfoil import ReferenceAirfoil, generate_mesh
from repro.airfoil.validation import max_rel_diff
from repro.dist.app import DistAirfoil, build_rank_state
from repro.dist.exchange import HaloExchange
from repro.dist.partition import rcb_partition
from repro.dist.plan import build_dist_plan


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(ni=16, nj=8)


@pytest.fixture(scope="module")
def reference(mesh):
    ref = ReferenceAirfoil(mesh)
    ref.run(2)
    return ref


@st.composite
def random_owner(draw, ncells=128, max_ranks=6):
    """A random rank assignment where every rank owns at least one cell."""
    ranks = draw(st.integers(1, max_ranks))
    owner = draw(
        st.lists(st.integers(0, ranks - 1), min_size=ncells, max_size=ncells)
    )
    owner = np.array(owner, dtype=np.int64)
    # Guarantee non-empty ranks by seeding one cell per rank.
    for r in range(ranks):
        owner[r] = r
    return owner


@settings(max_examples=12)
@given(random_owner())
def test_any_partition_matches_reference(mesh, reference, owner):
    """The SPMD solver is partition-invariant: ANY owner map (even absurd
    scattered ones) reproduces the single-rank solution."""
    dist = DistAirfoil.__new__(DistAirfoil)
    # Bypass the partitioner: inject the arbitrary owner map directly.
    from repro.airfoil.constants import DEFAULT_CONSTANTS
    from repro.airfoil.kernels import make_kernels
    from repro.op2 import OpGlobal

    dist.mesh = mesh
    dist.constants = DEFAULT_CONSTANTS
    dist.dplan = build_dist_plan(mesh, owner)
    dist.exchange = HaloExchange(dist.dplan)
    dist.kernels = make_kernels(DEFAULT_CONSTANTS)
    freestream = DEFAULT_CONSTANTS.freestream()
    dist.g_qinf = OpGlobal("qinf", 4, freestream)
    dist.states = [
        build_rank_state(rp, dist.kernels, dist.g_qinf, freestream)
        for rp in dist.dplan.plans
    ]
    dist.iterations = 0

    dist.run(2)
    assert max_rel_diff(dist.gather_q(), reference.q) < 1e-11


@settings(max_examples=12)
@given(random_owner(), st.integers(1, 4))
def test_halo_update_restores_global_consistency(mesh, owner, dim):
    rng = np.random.default_rng(int(owner.sum()) % 2**32)
    field = rng.random((mesh.cells.size, dim))
    dplan = build_dist_plan(mesh, owner)
    arrays = []
    for p in dplan.plans:
        local = np.zeros((p.n_owned + p.n_halo, dim))
        local[: p.n_owned] = field[p.owned_cells]
        arrays.append(local)
    HaloExchange(dplan).update(arrays)
    for p, arr in zip(dplan.plans, arrays):
        np.testing.assert_array_equal(arr[p.n_owned :], field[p.halo_cells])


@settings(max_examples=12)
@given(random_owner())
def test_accumulate_conserves_total(mesh, owner):
    """accumulate moves mass, never creates or destroys it."""
    rng = np.random.default_rng(int(owner[0]) + 7)
    dplan = build_dist_plan(mesh, owner)
    arrays = []
    total = 0.0
    for p in dplan.plans:
        local = rng.random((p.n_owned + p.n_halo, 2))
        total += float(local.sum())
        arrays.append(local)
    HaloExchange(dplan).accumulate(arrays)
    after = sum(float(a.sum()) for a in arrays)
    assert after == pytest.approx(total, rel=1e-12)


@settings(max_examples=10)
@given(st.integers(2, 9))
def test_rcb_partition_deterministic(mesh, ranks):
    from repro.dist.partition import cell_centroids

    centers = cell_centroids(mesh)
    a = rcb_partition(centers, ranks)
    b = rcb_partition(centers, ranks)
    np.testing.assert_array_equal(a, b)
