"""Failure injection: errors must surface loudly, never corrupt silently."""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, generate_mesh
from repro.hpx.future import FutureError
from repro.op2 import (
    OP_ID,
    OP_READ,
    OP_WRITE,
    Kernel,
    OpDat,
    OpSet,
    op_arg_dat,
    op_par_loop,
    op2_session,
)


def failing_kernel(fail_at: int):
    """A kernel that raises once a counter reaches ``fail_at`` elements."""
    seen = {"n": 0}

    def k(src, dst):
        seen["n"] += 1
        if seen["n"] >= fail_at:
            raise RuntimeError("injected kernel failure")
        dst[0] = src[0]

    def kv(src, dst):
        seen["n"] += src.shape[0]
        if seen["n"] >= fail_at:
            raise RuntimeError("injected kernel failure")
        dst[:] = src

    return Kernel("failing", k, kv)


@pytest.fixture()
def world():
    cells = OpSet("cells", 32)
    src = OpDat("src", cells, 1, np.arange(32.0))
    dst = OpDat("dst", cells, 1)
    return cells, src, dst


class TestKernelFailurePropagation:
    @pytest.mark.parametrize("backend", ["seq", "openmp", "foreach"])
    def test_sync_backends_raise_immediately(self, world, backend):
        cells, src, dst = world
        with pytest.raises(RuntimeError, match="injected"):
            with op2_session(backend=backend, num_threads=2, block_size=8):
                op_par_loop(
                    failing_kernel(1),
                    "boom",
                    cells,
                    op_arg_dat(src, -1, OP_ID, OP_READ),
                    op_arg_dat(dst, -1, OP_ID, OP_WRITE),
                )

    @pytest.mark.parametrize("backend", ["hpx_async", "hpx_dataflow"])
    def test_async_backends_raise_at_sync(self, world, backend):
        cells, src, dst = world
        with pytest.raises(RuntimeError, match="injected"):
            with op2_session(backend=backend, num_threads=2, block_size=8) as rt:
                fut = op_par_loop(
                    failing_kernel(1),
                    "boom",
                    cells,
                    op_arg_dat(src, -1, OP_ID, OP_READ),
                    op_arg_dat(dst, -1, OP_ID, OP_WRITE),
                )
                rt.sync(fut)

    def test_dataflow_failure_poisons_dependents(self, world):
        cells, src, dst = world
        other = OpDat("other", cells, 1)
        with pytest.raises(RuntimeError, match="injected"):
            with op2_session(backend="hpx_dataflow", num_threads=2, block_size=8) as rt:
                op_par_loop(
                    failing_kernel(1),
                    "boom",
                    cells,
                    op_arg_dat(src, -1, OP_ID, OP_READ),
                    op_arg_dat(dst, -1, OP_ID, OP_WRITE),
                )
                # Depends on dst -> must observe the upstream failure.
                ok = Kernel(
                    "copy", lambda a, b: None,
                    lambda a, b: b.__setitem__(slice(None), a),
                )
                f2 = op_par_loop(
                    ok,
                    "copy",
                    cells,
                    op_arg_dat(dst, -1, OP_ID, OP_READ),
                    op_arg_dat(other, -1, OP_ID, OP_WRITE),
                )
                rt.sync(f2)

    def test_failure_midway_leaves_partial_state_visible(self, world):
        # Block-granular execution fails partway: earlier blocks committed.
        # This documents (and pins) at-least-once visibility — no rollback.
        cells, src, dst = world
        with pytest.raises(RuntimeError):
            with op2_session(
                backend="foreach", num_threads=2, block_size=8
            ):
                op_par_loop(
                    failing_kernel(20),
                    "boom",
                    cells,
                    op_arg_dat(src, -1, OP_ID, OP_READ),
                    op_arg_dat(dst, -1, OP_ID, OP_WRITE),
                )
        assert np.any(dst.data != 0.0)
        assert not np.array_equal(dst.data, src.data)


class TestDeadlockDetection:
    def test_get_on_never_produced_future(self, hpx_rt):
        from repro.hpx.future import Future

        orphan = Future(hpx_rt.executor, name="orphan")
        with pytest.raises(FutureError, match="deadlock|ran out"):
            orphan.get()

    def test_airfoil_unaffected_after_failed_run(self):
        # A failed session must not poison the next one (global state reset).
        mesh = generate_mesh(ni=16, nj=6)
        cells = OpSet("cells", 8)
        src = OpDat("s", cells, 1)
        dst = OpDat("d", cells, 1)
        with pytest.raises(RuntimeError):
            with op2_session(backend="hpx_dataflow", num_threads=2) as rt:
                f = op_par_loop(
                    failing_kernel(1),
                    "boom",
                    cells,
                    op_arg_dat(src, -1, OP_ID, OP_READ),
                    op_arg_dat(dst, -1, OP_ID, OP_WRITE),
                )
                rt.sync(f)
        with op2_session(backend="hpx_dataflow", num_threads=2, block_size=16) as rt:
            app = AirfoilApp(mesh)
            result = app.run(rt, 1)
        assert np.isfinite(result.q_norm)
