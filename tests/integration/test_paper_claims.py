"""Integration test: the paper's headline claims at full machine scale.

Runs the complete pipeline (mesh -> functional backend run -> validation ->
task-graph emission -> machine simulation) on a mid-size mesh and checks the
orderings the paper reports at 32 threads. Magnitudes are asserted loosely —
the calibrated defaults land near 5% / 21%, but the *orderings* are the
reproduction's substance.
"""

import pytest

from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_backend, simulate_backend

# The default config is the calibrated scale (~46k cells): enough blocks
# per thread at 32 threads that scheduling effects, not block-count
# quantization, dominate — as on the paper's 720k-cell mesh.
CFG = ExperimentConfig(niter=2)


@pytest.fixture(scope="module")
def times32():
    cm = LoopCostModel(jitter=CFG.cost_jitter)
    out = {}
    for backend in ("openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"):
        run = run_backend(backend, CFG)
        out[backend] = {
            p: simulate_backend(run, CFG, p, cm).makespan for p in (1, 16, 32)
        }
    return out


class TestOneThreadEquality:
    def test_all_backends_equal_at_one_thread(self, times32):
        t1 = [t[1] for t in times32.values()]
        assert max(t1) / min(t1) - 1.0 < 0.05


class TestStrongScalingOrdering:
    def test_dataflow_fastest_at_32(self, times32):
        t = {b: v[32] for b, v in times32.items()}
        assert t["hpx_dataflow"] == min(t.values())

    def test_async_beats_openmp_at_32(self, times32):
        assert times32["hpx_async"][32] < times32["openmp"][32]

    def test_openmp_beats_plain_foreach(self, times32):
        assert times32["openmp"][32] < times32["foreach"][32]
        assert times32["openmp"][32] <= times32["foreach_static"][32] * 1.01

    def test_static_chunking_beats_auto(self, times32):
        assert times32["foreach_static"][32] < times32["foreach"][32]

    def test_gains_in_paper_ballpark(self, times32):
        async_gain = times32["openmp"][32] / times32["hpx_async"][32] - 1.0
        dflow_gain = times32["openmp"][32] / times32["hpx_dataflow"][32] - 1.0
        # Paper: ~5% and ~21%. Allow generous bands; ordering is strict.
        assert 0.0 < async_gain < 0.15
        assert 0.10 < dflow_gain < 0.35
        assert dflow_gain > async_gain

    def test_hyperthreading_knee(self, times32):
        # Speedup grows past 16 threads but sub-proportionally (HT knee).
        for backend in ("hpx_async", "hpx_dataflow"):
            t = times32[backend]
            assert t[32] < t[16]
            assert t[16] / t[32] < 1.7


class TestScalingSanity:
    def test_openmp_speedup_reasonable(self, times32):
        sp = times32["openmp"][1] / times32["openmp"][32]
        assert 8.0 < sp < 20.0

    def test_dataflow_speedup_higher(self, times32):
        sp_omp = times32["openmp"][1] / times32["openmp"][32]
        sp_df = times32["hpx_dataflow"][1] / times32["hpx_dataflow"][32]
        assert sp_df > sp_omp
