"""End-to-end determinism: identical inputs -> bitwise-identical outputs.

Reproducibility is a deliverable of the harness: meshes, cost models,
emissions and simulations are all seeded/deterministic, so every figure in
EXPERIMENTS.md is exactly regenerable.
"""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, generate_mesh
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_backend, simulate_backend
from repro.op2 import op2_session

SMALL = ExperimentConfig(ni=16, nj=6, niter=2, block_size=16, threads=(1, 4))


class TestMeshDeterminism:
    def test_generation_bitwise_stable(self):
        a = generate_mesh(ni=16, nj=6)
        b = generate_mesh(ni=16, nj=6)
        np.testing.assert_array_equal(a.x.data, b.x.data)
        np.testing.assert_array_equal(a.pecell.values, b.pecell.values)


class TestSolverDeterminism:
    @pytest.mark.parametrize("backend", ["openmp", "hpx_dataflow"])
    def test_repeated_runs_bitwise_equal(self, backend):
        mesh = generate_mesh(ni=16, nj=6)

        def run():
            with op2_session(backend=backend, num_threads=3, block_size=16) as rt:
                app = AirfoilApp(mesh)
                app.run(rt, 2)
            return app.p_q.data.copy()

        np.testing.assert_array_equal(run(), run())


class TestPipelineDeterminism:
    @pytest.mark.parametrize("backend", ["openmp", "foreach", "hpx_async", "hpx_dataflow"])
    def test_simulated_makespan_stable(self, backend):
        def measure():
            run = run_backend(backend, SMALL, validate=False)
            cm = LoopCostModel(jitter=SMALL.cost_jitter)
            return simulate_backend(run, SMALL, 4, cm).makespan

        assert measure() == measure()

    def test_cost_model_jitter_seeded(self):
        run = run_backend("openmp", SMALL, validate=False)
        a = simulate_backend(run, SMALL, 4, LoopCostModel(jitter=0.2)).makespan
        b = simulate_backend(run, SMALL, 4, LoopCostModel(jitter=0.2)).makespan
        c = simulate_backend(run, SMALL, 4, LoopCostModel(jitter=0.2, seed=7)).makespan
        assert a == b
        assert a != c  # a different seed is a different (but stable) world

    def test_emission_graph_identical(self):
        run = run_backend("hpx_dataflow", SMALL, validate=False)
        cm = LoopCostModel(jitter=0.1)
        g1 = run.emit_graph(SMALL, 4, cm)
        g2 = run.emit_graph(SMALL, 4, cm)
        assert len(g1) == len(g2)
        for t1, t2 in zip(g1, g2):
            assert t1.name == t2.name
            assert t1.cost == t2.cost
            assert t1.deps == t2.deps
