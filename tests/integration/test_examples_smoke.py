"""Smoke tests: every example script runs to completion offline.

`scaling_comparison.py` is exercised by the figure tests/benches instead —
even its --quick mode is too heavy for the unit suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", []),
    ("airfoil_simulation.py", ["--ni", "24", "--nj", "10", "--iters", "3", "--validate"]),
    ("codegen_translate.py", []),
    ("heat_diffusion.py", ["--ni", "16", "--nj", "8", "--steps", "30"]),
    ("trace_gantt.py", []),
    ("distributed_airfoil.py", ["--ranks", "2", "--ni", "24", "--nj", "12", "--iters", "2"]),
    ("shallow_water_waves.py", ["--ni", "24", "--nj", "12", "--steps", "12"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print something"


def test_all_examples_covered():
    """Every example script is either smoke-tested here or exempted."""
    exempt = {"scaling_comparison.py"}
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {c[0] for c in CASES} | exempt
    assert scripts == covered, f"unaccounted examples: {scripts ^ covered}"
