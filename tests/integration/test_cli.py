"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subactions = [
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        ]
        commands = set(subactions[0].choices)
        assert commands == {"info", "figures", "airfoil", "heat", "translate", "dist"}

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "backends:" in out
        assert "hpx_dataflow" in out

    def test_airfoil_small(self, capsys):
        rc = main(
            ["airfoil", "--ni", "16", "--nj", "6", "--iters", "2",
             "--backend", "openmp", "--block-size", "16"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rms" in out and "c_d" in out

    def test_heat_small(self, capsys):
        rc = main(["heat", "--ni", "16", "--nj", "8", "--steps", "20",
                   "--backend", "seq"])
        assert rc == 0
        assert "energy" in capsys.readouterr().out

    def test_translate_to_stdout(self, capsys):
        assert main(["translate", "--target", "openmp"]) == 0
        out = capsys.readouterr().out
        assert "def op_par_loop_save_soln(" in out

    def test_translate_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "gen.py"
        assert main(
            ["translate", "--target", "seq", "--output", str(out_file)]
        ) == 0
        assert out_file.exists()
        assert "op_par_loop_update" in out_file.read_text()

    def test_translate_custom_input(self, tmp_path, capsys):
        src = tmp_path / "app.py"
        src.write_text(
            'op_par_loop(k, "solo", s, op_arg_dat(d, -1, OP_ID, OP_READ))\n'
        )
        assert main(["translate", "--input", str(src)]) == 0
        assert "op_par_loop_solo" in capsys.readouterr().out

    def test_dist_small(self, capsys):
        rc = main(["dist", "--ranks", "2", "--ni", "24", "--nj", "12",
                   "--iters", "2", "--threads", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlapped" in out

    def test_figures_subset_quick(self, capsys):
        rc = main(["figures", "--quick", "--only", "17"])
        out = capsys.readouterr().out
        assert "fig17" in out
        assert rc in (0, 1)  # claim table only printed for full sets

    def test_figures_unknown_figure(self, capsys):
        assert main(["figures", "--only", "99"]) == 2


class TestObservabilityFlags:
    def test_airfoil_threads_trace_and_timing(self, tmp_path, capsys):
        import json

        trace = tmp_path / "airfoil.json"
        rc = main(
            ["airfoil", "--ni", "16", "--nj", "6", "--iters", "2",
             "--mode", "threads", "--workers", "2", "--block-size", "16",
             "--timing", "--trace", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "kernel" in out and "res_calc" in out  # the timing table
        assert "utilization" in out
        assert f"to {trace}" in out
        events = json.loads(trace.read_text())
        kinds = {
            e["args"]["kind"] for e in events
            if e.get("ph") == "X" and "kind" in e.get("args", {})
        }
        # The default backend (hpx_dataflow) is dependency-scheduled in
        # threads mode: chunk releases replace per-color barriers, so the
        # trace carries "release" spans and no "color" spans.
        assert {"loop", "task", "release"} <= kinds
        assert "pool:" in out and "color joins" in out

    def test_heat_sim_trace_and_timing(self, tmp_path, capsys):
        import json

        trace = tmp_path / "heat.json"
        rc = main(
            ["heat", "--ni", "16", "--nj", "8", "--steps", "10",
             "--backend", "openmp", "--timing", "--trace", str(trace)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sim busy" in out  # simulated per-loop table
        events = json.loads(trace.read_text())
        assert isinstance(events, list) and events
        loops = {
            e["args"].get("loop") for e in events if e.get("ph") == "X"
        }
        assert "flux" in loops

    def test_timing_without_trace_writes_no_file(self, tmp_path, capsys):
        rc = main(
            ["airfoil", "--ni", "16", "--nj", "6", "--iters", "1",
             "--mode", "threads", "--workers", "1", "--block-size", "16",
             "--timing"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "op_timing_output" in out
        assert list(tmp_path.iterdir()) == []
