"""Cross-backend numerical agreement on the Airfoil application."""

import pytest

from repro.airfoil import AirfoilApp, ReferenceAirfoil
from repro.airfoil.validation import compare_results, compare_states
from repro.backends.registry import available_backends, create_backend, register_backend
from repro.op2 import op2_session
from repro.op2.exceptions import Op2Error

BACKENDS = ["seq", "openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"]
NITER = 3


@pytest.fixture(scope="module")
def reference(small_mesh_module):
    ref = ReferenceAirfoil(small_mesh_module)
    ref.run(NITER)
    return ref


@pytest.fixture(scope="module")
def small_mesh_module():
    from repro.airfoil import generate_mesh

    return generate_mesh(ni=24, nj=10)


class TestRegistry:
    def test_all_builtin_backends_available(self):
        names = available_backends()
        for b in BACKENDS:
            assert b in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(Op2Error):
            create_backend("nonexistent")

    def test_register_custom_backend(self):
        from repro.backends.seq import SeqBackend

        register_backend("custom_seq", SeqBackend)
        assert "custom_seq" in available_backends()
        assert create_backend("custom_seq").name == "seq"


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendMatchesReference:
    def test_state_matches(self, backend, small_mesh_module, reference):
        with op2_session(backend=backend, num_threads=4, block_size=16) as rt:
            app = AirfoilApp(small_mesh_module)
            app.run(rt, NITER)
        diffs = compare_states(app, reference, tol=1e-9)
        assert max(diffs.values()) < 1e-9

    def test_result_matches_reference_result(self, backend, small_mesh_module, reference):
        with op2_session(backend=backend, num_threads=2, block_size=32) as rt:
            app = AirfoilApp(small_mesh_module)
            result = app.run(rt, NITER)
        ref_result = ReferenceAirfoil(small_mesh_module)
        compare_results(result, ref_result.run(NITER), tol=1e-9)


class TestThreadCountInvariance:
    @pytest.mark.parametrize("backend", ["hpx_async", "hpx_dataflow"])
    def test_results_identical_across_worker_counts(self, backend, small_mesh_module):
        norms = []
        for workers in (1, 3, 8):
            with op2_session(backend=backend, num_threads=workers, block_size=16) as rt:
                app = AirfoilApp(small_mesh_module)
                res = app.run(rt, 2)
            norms.append((res.q_norm, res.rms_total))
        assert norms[0] == pytest.approx(norms[1])
        assert norms[0] == pytest.approx(norms[2])


class TestBlockGranularity:
    @pytest.mark.parametrize("backend", ["seq", "openmp"])
    def test_block_granularity_matches_reference(
        self, backend, small_mesh_module, reference
    ):
        with op2_session(
            backend=backend, num_threads=2, block_size=16, granularity="block"
        ) as rt:
            app = AirfoilApp(small_mesh_module)
            app.run(rt, NITER)
        compare_states(app, reference, tol=1e-9)


class TestAsyncSemantics:
    def test_async_backend_returns_futures(self, small_mesh_module):
        from repro.hpx.future import Future

        with op2_session(backend="hpx_async", num_threads=2, block_size=16) as rt:
            app = AirfoilApp(small_mesh_module)
            fut = app.loop_save_soln()
            assert isinstance(fut, Future)
            rt.sync(fut)

    def test_dataflow_defers_execution_until_finish(self, small_mesh_module):
        with op2_session(backend="hpx_dataflow", num_threads=2, block_size=16) as rt:
            app = AirfoilApp(small_mesh_module)
            app.loop_save_soln()
            # Not yet guaranteed to have run; finish() forces completion.
            rt.finish()
            assert app.p_qold.version >= 1

    def test_sync_backend_returns_none(self, small_mesh_module):
        with op2_session(backend="openmp", num_threads=2, block_size=16):
            app = AirfoilApp(small_mesh_module)
            assert app.loop_save_soln() is None
