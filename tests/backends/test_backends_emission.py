"""Structural tests for task-graph emission per backend."""

import pytest

from repro.airfoil import AirfoilApp, generate_mesh
from repro.backends.costs import LoopCostModel
from repro.op2 import op2_session
from repro.sim.barriers import barrier_cost
from repro.sim.engine import simulate
from repro.sim.machine import paper_machine


@pytest.fixture(scope="module")
def runs():
    """Functional runs of every backend on a tiny mesh, with their logs."""
    mesh = generate_mesh(ni=16, nj=6)
    out = {}
    for backend in ("seq", "openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"):
        with op2_session(backend=backend, num_threads=2, block_size=16) as rt:
            app = AirfoilApp(mesh)
            app.run(rt, 2)
        out[backend] = rt
    return out


MACHINE = paper_machine()
CM = LoopCostModel(jitter=0.1)


def emit(runs, backend, threads=4):
    rt = runs[backend]
    return rt.backend.emit(rt.log, MACHINE, threads, CM)


class TestEmissionCommon:
    @pytest.mark.parametrize(
        "backend",
        ["seq", "openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"],
    )
    def test_graph_is_valid_and_simulates(self, runs, backend):
        graph = emit(runs, backend)
        graph.validate()
        res = simulate(graph, MACHINE, 4)
        assert res.makespan > 0.0
        assert res.tasks_executed == len(graph)

    @pytest.mark.parametrize(
        "backend", ["openmp", "foreach", "hpx_async", "hpx_dataflow"]
    )
    def test_work_identical_across_backends(self, runs, backend):
        # All backends execute the same blocks: identical useful-work cost
        # (the auto partitioner books its measurement prefix as 'prefix').
        base = emit(runs, "seq").total_work("work")
        graph = emit(runs, backend)
        useful = graph.total_work("work") + graph.total_work("prefix")
        assert useful == pytest.approx(base)

    @pytest.mark.parametrize(
        "backend", ["openmp", "foreach", "hpx_async", "hpx_dataflow"]
    )
    def test_makespan_bounded_by_critical_path_and_work(self, runs, backend):
        graph = emit(runs, backend)
        res = simulate(graph, MACHINE, 4)
        assert res.makespan >= graph.critical_path() - 1e-9


class TestSeqEmission:
    def test_pure_serial_chain(self, runs):
        graph = emit(runs, "seq")
        # Every task depends on the previous one: critical path == work.
        assert graph.critical_path() == pytest.approx(graph.total_work())

    def test_all_tasks_pinned_to_thread_zero(self, runs):
        graph = emit(runs, "seq")
        assert all(t.affinity == 0 for t in graph)


class TestOpenMPEmission:
    def test_one_barrier_per_color_region(self, runs):
        rt = runs["openmp"]
        graph = emit(runs, "openmp")
        regions = sum(r.plan.ncolors for r in rt.log.loops())
        assert graph.by_kind()["barrier"] == regions

    def test_barrier_cost_matches_model(self, runs):
        graph = emit(runs, "openmp", threads=8)
        barriers = [t for t in graph if t.kind == "barrier"]
        assert all(
            t.cost == pytest.approx(barrier_cost(MACHINE, 8)) for t in barriers
        )

    def test_work_tasks_have_affinity(self, runs):
        graph = emit(runs, "openmp")
        assert all(t.affinity is not None for t in graph if t.kind == "work")

    def test_loops_fully_serialized_by_barriers(self, runs):
        # No work task of loop N+1 may start before loop N's barrier: every
        # work task (except the first region's) depends transitively on a
        # barrier. Cheap proxy: roots contain only the first fork.
        graph = emit(runs, "openmp")
        roots = graph.roots()
        assert len(roots) == 1
        assert graph.tasks[roots[0]].kind == "spawn"


class TestForeachEmission:
    def test_auto_has_serial_prefix_tasks(self, runs):
        graph = emit(runs, "foreach")
        assert graph.by_kind().get("prefix", 0) > 0

    def test_static_has_no_prefix(self, runs):
        graph = emit(runs, "foreach_static")
        assert graph.by_kind().get("prefix", 0) == 0

    def test_join_per_region(self, runs):
        rt = runs["foreach_static"]
        graph = emit(runs, "foreach_static")
        regions = sum(r.plan.ncolors for r in rt.log.loops())
        assert graph.by_kind()["join"] == regions

    def test_chunks_are_unpinned(self, runs):
        graph = emit(runs, "foreach_static")
        assert all(t.affinity is None for t in graph if t.kind == "work")

    def test_no_barriers(self, runs):
        assert "barrier" not in emit(runs, "foreach").by_kind()


class TestAsyncEmission:
    def test_syncs_present_as_joins(self, runs):
        rt = runs["hpx_async"]
        graph = emit(runs, "hpx_async")
        from repro.op2.runtime import SyncRecord

        syncs = sum(1 for e in rt.log.entries if isinstance(e, SyncRecord))
        assert syncs > 0
        # Each sync appears as a join task (plus zero-cost color gates).
        joins = [t for t in graph if t.kind == "join" and t.name.startswith("sync")]
        assert len(joins) == syncs

    def test_no_barriers(self, runs):
        assert "barrier" not in emit(runs, "hpx_async").by_kind()

    def test_spawn_chain_serializes_driver(self, runs):
        graph = emit(runs, "hpx_async")
        spawns = [t for t in graph if t.kind == "spawn"]
        assert all(t.affinity == 0 for t in spawns)


class TestDataflowEmission:
    def test_no_barriers_no_syncs(self, runs):
        kinds = emit(runs, "hpx_dataflow").by_kind()
        assert "barrier" not in kinds
        assert "spawn" not in kinds

    def test_cheapest_structure_has_shortest_makespan(self, runs):
        times = {
            b: simulate(emit(runs, b, threads=8), MACHINE, 8).makespan
            for b in ("openmp", "hpx_async", "hpx_dataflow")
        }
        assert times["hpx_dataflow"] <= times["hpx_async"] <= times["openmp"] * 1.02

    def test_cross_step_pipelining_edges_exist(self, runs):
        # save_soln of step 2 must NOT depend on everything of step 1: its
        # block tasks depend only on update blocks (via q/qold), so the
        # graph's second save_soln blocks have in-degree <= a few blocks.
        rt = runs["hpx_dataflow"]
        graph = emit(runs, "hpx_dataflow")
        saves = [t for t in graph if t.loop == "save_soln" and t.kind == "work"]
        # Two steps -> two generations of save blocks.
        second_gen = saves[len(saves) // 2 :]
        assert all(len(t.deps) <= 8 for t in second_gen)
