"""Threaded mode must be deterministic: same input, same bits, every run.

Real thread pools complete tasks in nondeterministic order; the threads mode
still promises bit-identical results because (a) dats are only written to
disjoint rows/spans inside a color and (b) global MIN/MAX/INC partials are
combined in task-*submission* order, never completion order
(see ``repro/hpx/threadpool.py`` and ``repro/backends/threaded.py``).
"""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_MAX,
    OP_MIN,
    OP_READ,
    Kernel,
    OpDat,
    OpGlobal,
    OpSet,
    op2_session,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
)

NITER = 3
WORKERS = 8
STATE_DATS = ["p_q", "p_qold", "p_res", "p_adt"]


def _run_airfoil(mesh, backend):
    with op2_session(
        backend=backend,
        num_threads=WORKERS,
        block_size=16,
        mode="threads",
        num_workers=WORKERS,
    ) as rt:
        app = AirfoilApp(mesh)
        result = app.run(rt, NITER)
    state = {name: getattr(app, name).data.copy() for name in STATE_DATS}
    return state, result


@pytest.mark.parametrize(
    "backend", ["openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"]
)
def test_airfoil_bit_identical_across_runs(backend, tiny_mesh):
    s1, r1 = _run_airfoil(tiny_mesh, backend)
    s2, r2 = _run_airfoil(tiny_mesh, backend)
    for name in STATE_DATS:
        assert np.array_equal(s1[name], s2[name]), (
            f"{backend}: {name} differs between identical threaded runs"
        )
    # Exact equality, not approx: the rms flows through deferred partials.
    assert r1.rms_total == r2.rms_total
    assert r1.q_norm == r2.q_norm


def _global_reduction_run():
    """One direct loop reducing INC/MIN/MAX globals over many chunks."""
    n = 4096
    with op2_session(
        backend="foreach_static",
        num_threads=WORKERS,
        block_size=32,  # 128 blocks -> many concurrent tasks per batch
        mode="threads",
        num_workers=WORKERS,
        backend_options={"static_chunk": 3},
    ) as rt:
        cells = OpSet("cells", n)
        # Irrational-frequency samples: well spread, reproducible, no RNG.
        src = OpDat("src", cells, 1, np.sin(np.arange(n) * 0.7537) * 1e3)
        total = OpGlobal("total", 1, 0.0)
        lo = OpGlobal("lo", 1, np.inf)
        hi = OpGlobal("hi", 1, -np.inf)

        def kv(a, t, mn, mx):
            t[:] = a * a
            mn[:] = a
            mx[:] = a

        op_par_loop(
            Kernel("reduce3", lambda a, t, mn, mx: None, kv),
            "reduce3",
            cells,
            op_arg_dat(src, -1, OP_ID, OP_READ),
            op_arg_gbl(total, OP_INC),
            op_arg_gbl(lo, OP_MIN),
            op_arg_gbl(hi, OP_MAX),
        )
        rt.finish()
        return total.value(), lo.value(), hi.value()


def test_global_reductions_bit_identical_across_runs():
    first = _global_reduction_run()
    second = _global_reduction_run()
    # == on floats: bit-identity is the contract, approx would hide the bug.
    assert first == second


def test_global_inc_partials_combined_in_submission_order():
    """The INC total equals a fixed left-to-right chunkwise fold.

    If partials were folded in completion order the value would drift between
    runs; here we also pin it to the *predicted* fold so a silent reordering
    of submission itself would fail.
    """
    n = 1024
    chunk = 37
    data = np.sin(np.arange(n) * 1.317) * 1e3
    expected = 0.0
    for start in range(0, n, chunk):
        expected += float(np.sum(data[start : start + chunk] ** 2))

    with op2_session(
        backend="foreach_static",
        num_threads=WORKERS,
        block_size=chunk,
        mode="threads",
        num_workers=WORKERS,
        backend_options={"static_chunk": 1},  # one task per block
    ) as rt:
        cells = OpSet("cells", n)
        src = OpDat("src", cells, 1, data)
        total = OpGlobal("total", 1, 0.0)

        def kv(a, t):
            t[:] = a * a

        op_par_loop(
            Kernel("sumsq", lambda a, t: None, kv),
            "sumsq",
            cells,
            op_arg_dat(src, -1, OP_ID, OP_READ),
            op_arg_gbl(total, OP_INC),
        )
        rt.finish()
        assert total.value() == expected
