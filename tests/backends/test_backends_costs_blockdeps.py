"""Tests for the cost model and block-level dependence computation."""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, generate_mesh
from repro.backends.blockdeps import (
    ElementBlockIndex,
    block_dependencies,
    dependency_edge_count,
    touched_per_block,
)
from repro.backends.costs import LoopCostModel, block_costs
from repro.op2 import op2_session
from repro.sim.machine import paper_machine


@pytest.fixture(scope="module")
def airfoil_log():
    mesh = generate_mesh(ni=16, nj=6)
    with op2_session(backend="seq", block_size=16) as rt:
        app = AirfoilApp(mesh)
        app.run(rt, 1)
        return app, rt.log


def find_loop(log, name, occurrence=0):
    loops = [r for r in log.loops() if r.loop.name == name]
    return loops[occurrence]


class TestLoopCostModel:
    def test_deterministic(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "adt_calc")
        m = paper_machine()
        a = block_costs(LoopCostModel(), "adt_calc", rec.loop.kernel, rec.plan, m, 4)
        b = block_costs(LoopCostModel(), "adt_calc", rec.loop.kernel, rec.plan, m, 4)
        assert a == b

    def test_costs_scale_with_block_size(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "adt_calc")
        m = paper_machine()
        costs = block_costs(LoopCostModel(jitter=0.0), "adt_calc", rec.loop.kernel, rec.plan, m, 1)
        sizes = [len(b) for b in rec.plan.blocks]
        ratio = [c / s for c, s in zip(costs, sizes)]
        assert max(ratio) == pytest.approx(min(ratio))

    def test_jitter_bounded(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "adt_calc")
        m = paper_machine()
        j = 0.2
        jittered = block_costs(LoopCostModel(jitter=j), "adt_calc", rec.loop.kernel, rec.plan, m, 1)
        flat = block_costs(LoopCostModel(jitter=0.0), "adt_calc", rec.loop.kernel, rec.plan, m, 1)
        for a, b in zip(jittered, flat):
            assert abs(a / b - 1.0) <= j + 1e-12

    def test_contention_raises_memory_bound_cost(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "update")  # mem_fraction 0.8
        m = paper_machine()
        cm = LoopCostModel(jitter=0.0)
        low = cm.loop_work("update", rec.loop.kernel, rec.plan, m, 4)
        high = cm.loop_work("update", rec.loop.kernel, rec.plan, m, 16)
        assert high > low

    def test_invalid_jitter(self):
        with pytest.raises(Exception):
            LoopCostModel(jitter=0.95)


class TestElementBlockIndex:
    def test_single_block_per_row(self):
        per_block = [np.array([0, 1]), np.array([2, 3])]
        idx = ElementBlockIndex(per_block, 4)
        np.testing.assert_array_equal(idx.blocks_for(np.array([0])), [0])
        np.testing.assert_array_equal(idx.blocks_for(np.array([3])), [1])

    def test_shared_rows_report_all_blocks(self):
        per_block = [np.array([0, 1]), np.array([1, 2])]
        idx = ElementBlockIndex(per_block, 3)
        np.testing.assert_array_equal(idx.blocks_for(np.array([1])), [0, 1])

    def test_untouched_rows_empty(self):
        idx = ElementBlockIndex([np.array([0])], 4)
        assert idx.blocks_for(np.array([3])).size == 0

    def test_empty_query(self):
        idx = ElementBlockIndex([np.array([0])], 2)
        assert idx.blocks_for(np.array([], dtype=np.int64)).size == 0

    def test_no_blocks(self):
        idx = ElementBlockIndex([], 3)
        assert idx.blocks_for(np.array([0, 1, 2])).size == 0


class TestTouchedPerBlock:
    def test_direct_loop_blocks_touch_own_rows(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "save_soln")
        touched = touched_per_block(rec, app.p_q)
        for block, rows in zip(rec.plan.blocks, touched):
            np.testing.assert_array_equal(rows, np.arange(block.start, block.stop))

    def test_untouched_dat_gives_empty(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "save_soln")
        touched = touched_per_block(rec, app.p_adt)
        assert all(t.size == 0 for t in touched)

    def test_indirect_loop_touches_mapped_rows(self, airfoil_log):
        app, log = airfoil_log
        rec = find_loop(log, "res_calc")
        touched = touched_per_block(rec, app.p_res)
        mesh_map = app.mesh.pecell.values
        for block, rows in zip(rec.plan.blocks, touched):
            expected = np.unique(mesh_map[block.start : block.stop])
            np.testing.assert_array_equal(rows, expected)


class TestBlockDependencies:
    def test_direct_to_direct_same_blocking_is_identity(self, airfoil_log):
        app, log = airfoil_log
        save = find_loop(log, "save_soln")
        update = find_loop(log, "update")
        deps = block_dependencies(save, update, app.p_qold)
        # Same set, same block size: each block depends exactly on itself.
        for b, producers in enumerate(deps):
            np.testing.assert_array_equal(producers, [b])

    def test_indirect_consumer_depends_on_touching_producers(self, airfoil_log):
        app, log = airfoil_log
        adt = find_loop(log, "adt_calc")
        res = find_loop(log, "res_calc")
        deps = block_dependencies(adt, res, app.p_adt)
        # Every consumer block needs at least one producer block, and the
        # producer blocks it names must cover exactly the cells it reads.
        for b, producers in enumerate(deps):
            assert len(producers) >= 1
            blk = res.plan.blocks[b]
            cells_needed = np.unique(app.mesh.pecell.values[blk.start : blk.stop])
            covered = np.concatenate(
                [adt.plan.block_elements(int(p)) for p in producers]
            )
            assert np.isin(cells_needed, covered).all()

    def test_refinement_is_sparse(self, airfoil_log):
        app, log = airfoil_log
        adt = find_loop(log, "adt_calc")
        res = find_loop(log, "res_calc")
        deps = block_dependencies(adt, res, app.p_adt)
        total = dependency_edge_count(deps)
        # Far fewer edges than the dense bipartite graph.
        assert total < 0.5 * len(deps) * adt.plan.nblocks
