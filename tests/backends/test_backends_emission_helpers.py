"""Tests for the shared emission helpers and reentrancy corners."""

import pytest

from repro.backends.emission import add_gate, static_split
from repro.hpx import for_each, par, par_task
from repro.hpx.runtime import async_
from repro.sim.task import TaskGraph


class TestStaticSplit:
    def test_partitions_preserving_order(self):
        parts = static_split(list(range(10)), 3)
        assert sum(parts, []) == list(range(10))
        assert len(parts) == 3

    def test_near_even(self):
        parts = static_split(list(range(11)), 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_items(self):
        parts = static_split([1, 2], 5)
        assert sum(parts, []) == [1, 2]
        assert len(parts) == 5  # some empty

    def test_single_part(self):
        assert static_split([3, 1, 4], 1) == [[3, 1, 4]]

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            static_split([1], 0)

    def test_empty_items(self):
        parts = static_split([], 3)
        assert all(p == [] for p in parts)


class TestAddGate:
    def test_zero_cost_join(self):
        g = TaskGraph()
        a = g.add("a", 1.0)
        b = g.add("b", 2.0)
        gate = add_gate(g, "gate", [a, b], loop="adt")
        task = g.tasks[gate]
        assert task.cost == 0.0
        assert task.kind == "join"
        assert task.deps == (a, b)
        assert task.loop == "adt"


class TestExecutorReentrancy:
    def test_nested_for_each_inside_task(self, hpx_rt):
        """A task body may itself run a joining parallel loop (the async
        backend's colored-loop orchestration relies on this)."""
        inner_hits = []

        def outer():
            for_each(par, range(10), inner_hits.append)
            return "done"

        assert async_(outer).get() == "done"
        assert sorted(inner_hits) == list(range(10))

    def test_two_levels_of_nesting(self, hpx_rt):
        total = []

        def leaf(i):
            total.append(i)

        def middle(j):
            for_each(par, range(3), lambda i, j=j: leaf(10 * j + i))

        def outer():
            for_each(par, range(3), middle)

        async_(outer).get()
        assert sorted(total) == sorted(10 * j + i for j in range(3) for i in range(3))

    def test_par_task_from_within_task(self, hpx_rt):
        def outer():
            fut = for_each(par_task, range(5), lambda i: None)
            fut.get()
            return True

        assert async_(outer).get()
