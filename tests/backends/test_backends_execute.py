"""Tests for the gather/compute/scatter execution core (backends.base)."""

import numpy as np
import pytest

from repro.backends.base import execute_loop, execute_loop_by_plan
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_MAX,
    OP_MIN,
    OP_READ,
    OP_RW,
    OP_WRITE,
    Kernel,
    OpDat,
    OpGlobal,
    OpMap,
    OpSet,
    op_arg_dat,
    op_arg_gbl,
)
from repro.op2.exceptions import Op2Error
from repro.op2.parloop import ParLoop
from repro.op2.plan import build_plan


@pytest.fixture()
def world():
    cells = OpSet("cells", 8)
    edges = OpSet("edges", 8)
    # Each edge hits (i, (i+1) % 8): a ring with duplicate targets.
    vals = np.stack([np.arange(8), (np.arange(8) + 1) % 8], axis=1)
    e2c = OpMap("e2c", edges, cells, 2, vals)
    return cells, edges, e2c


class TestDirectAccess:
    def test_write(self, world):
        cells, edges, e2c = world
        out = OpDat("out", cells, 2)

        def kv(dst):
            dst[:] = 7.0

        loop = ParLoop(
            Kernel("fill", lambda d: None, kv),
            "fill",
            cells,
            (op_arg_dat(out, -1, OP_ID, OP_WRITE),),
        )
        execute_loop(loop)
        assert np.all(out.data == 7.0)

    def test_rw_reads_previous_value(self, world):
        cells, edges, e2c = world
        d = OpDat("d", cells, 1, np.arange(8.0))

        def kv(x):
            x[:] += 1.0

        loop = ParLoop(
            Kernel("incr", lambda x: None, kv),
            "incr",
            cells,
            (op_arg_dat(d, -1, OP_ID, OP_RW),),
        )
        execute_loop(loop)
        np.testing.assert_array_equal(d.data[:, 0], np.arange(8.0) + 1.0)

    def test_direct_inc(self, world):
        cells, edges, e2c = world
        d = OpDat("d", cells, 1, np.ones(8))

        def kv(x):
            x[:] = 2.0  # contribution, not assignment to the dat

        loop = ParLoop(
            Kernel("inc", lambda x: None, kv),
            "inc",
            cells,
            (op_arg_dat(d, -1, OP_ID, OP_INC),),
        )
        execute_loop(loop)
        assert np.all(d.data == 3.0)

    def test_partial_elements(self, world):
        cells, edges, e2c = world
        out = OpDat("out", cells, 1)

        def kv(dst):
            dst[:] = 1.0

        loop = ParLoop(
            Kernel("fill", lambda d: None, kv),
            "fill",
            cells,
            (op_arg_dat(out, -1, OP_ID, OP_WRITE),),
        )
        execute_loop(loop, np.array([2, 5]))
        assert out.data[2, 0] == 1.0 and out.data[5, 0] == 1.0
        assert out.data[0, 0] == 0.0


class TestIndirectAccess:
    def test_gather_read(self, world):
        cells, edges, e2c = world
        src = OpDat("src", cells, 1, np.arange(8.0))
        out = OpDat("out", edges, 1)

        def kv(a, b, dst):
            dst[:] = a + b

        loop = ParLoop(
            Kernel("sum2", lambda a, b, d: None, kv),
            "sum2",
            edges,
            (
                op_arg_dat(src, 0, e2c, OP_READ),
                op_arg_dat(src, 1, e2c, OP_READ),
                op_arg_dat(out, -1, OP_ID, OP_WRITE),
            ),
        )
        execute_loop(loop)
        expected = np.arange(8.0) + (np.arange(8.0) + 1) % 8
        np.testing.assert_array_equal(out.data[:, 0], expected)

    def test_indirect_inc_handles_duplicates(self, world):
        cells, edges, e2c = world
        acc = OpDat("acc", cells, 1)

        def kv(a, b):
            a[:] = 1.0
            b[:] = 1.0

        loop = ParLoop(
            Kernel("touch", lambda a, b: None, kv),
            "touch",
            edges,
            (
                op_arg_dat(acc, 0, e2c, OP_INC),
                op_arg_dat(acc, 1, e2c, OP_INC),
            ),
        )
        execute_loop(loop)
        # Every cell is endpoint of exactly 2 edges (ring): 2 increments.
        assert np.all(acc.data == 2.0)

    def test_indirect_min(self, world):
        cells, edges, e2c = world
        m = OpDat("m", cells, 1, np.full(8, 100.0))

        def kv(dst):
            dst[:, 0] = np.arange(dst.shape[0], dtype=float)

        loop = ParLoop(
            Kernel("mins", lambda d: None, kv),
            "mins",
            edges,
            (op_arg_dat(m, 0, e2c, OP_MIN),),
        )
        execute_loop(loop)
        np.testing.assert_array_equal(m.data[:, 0], np.arange(8.0))


class TestGlobals:
    def test_global_read_broadcast(self, world):
        cells, edges, e2c = world
        g = OpGlobal("c", 2, np.array([10.0, 20.0]))
        out = OpDat("out", cells, 2)

        def kv(dst, const):
            dst[:] = const

        loop = ParLoop(
            Kernel("bc", lambda d, c: None, kv),
            "bc",
            cells,
            (op_arg_dat(out, -1, OP_ID, OP_WRITE), op_arg_gbl(g, OP_READ)),
        )
        execute_loop(loop)
        assert np.all(out.data[:, 0] == 10.0) and np.all(out.data[:, 1] == 20.0)

    def test_global_min_max(self, world):
        cells, edges, e2c = world
        src = OpDat("src", cells, 1, np.array([5.0, 2, 8, 1, 9, 3, 7, 4]))
        gmin = OpGlobal("gmin", 1, 100.0)
        gmax = OpGlobal("gmax", 1, -100.0)

        def kv(a, mn, mx):
            mn[:] = a
            mx[:] = a

        loop = ParLoop(
            Kernel("extrema", lambda a, mn, mx: None, kv),
            "extrema",
            cells,
            (
                op_arg_dat(src, -1, OP_ID, OP_READ),
                op_arg_gbl(gmin, OP_MIN),
                op_arg_gbl(gmax, OP_MAX),
            ),
        )
        execute_loop(loop)
        assert gmin.value() == 1.0
        assert gmax.value() == 9.0


class TestElementalMode:
    def test_elemental_matches_vectorized(self, world):
        cells, edges, e2c = world
        src = OpDat("src", cells, 1, np.arange(8.0))
        out_v = OpDat("ov", cells, 1)
        out_e = OpDat("oe", cells, 1)

        def ke(a, dst):
            dst[0] = a[0] * 2.0

        def kv(a, dst):
            dst[:] = a * 2.0

        kern = Kernel("dbl", ke, kv)
        loop_v = ParLoop(
            kern, "dbl", cells,
            (op_arg_dat(src, -1, OP_ID, OP_READ), op_arg_dat(out_v, -1, OP_ID, OP_WRITE)),
        )
        loop_e = ParLoop(
            kern, "dbl", cells,
            (op_arg_dat(src, -1, OP_ID, OP_READ), op_arg_dat(out_e, -1, OP_ID, OP_WRITE)),
        )
        execute_loop(loop_v, mode="vectorized")
        execute_loop(loop_e, mode="elemental")
        np.testing.assert_array_equal(out_v.data, out_e.data)

    def test_vectorized_missing_raises(self, world):
        cells, edges, e2c = world
        out = OpDat("out", cells, 1)
        loop = ParLoop(
            Kernel("k", lambda d: None),
            "k",
            cells,
            (op_arg_dat(out, -1, OP_ID, OP_WRITE),),
        )
        with pytest.raises(Op2Error, match="vectorized"):
            execute_loop(loop)

    def test_unknown_mode_rejected(self, world):
        cells, edges, e2c = world
        out = OpDat("out", cells, 1)
        loop = ParLoop(
            Kernel("k", lambda d: None, lambda d: None),
            "k",
            cells,
            (op_arg_dat(out, -1, OP_ID, OP_WRITE),),
        )
        with pytest.raises(Op2Error, match="mode"):
            execute_loop(loop, mode="gpu")


class TestPlanDrivenExecution:
    def test_by_plan_matches_whole_set(self, world):
        cells, edges, e2c = world
        acc1 = OpDat("a1", cells, 1)
        acc2 = OpDat("a2", cells, 1)

        def kv(a, b):
            a[:] = 1.0
            b[:] = 2.0

        def mkloop(acc):
            return ParLoop(
                Kernel("t", lambda a, b: None, kv),
                "t",
                edges,
                (op_arg_dat(acc, 0, e2c, OP_INC), op_arg_dat(acc, 1, e2c, OP_INC)),
            )

        execute_loop(mkloop(acc1))
        plan = build_plan(edges, list(mkloop(acc2).args), block_size=3)
        execute_loop_by_plan(mkloop(acc2), plan)
        np.testing.assert_allclose(acc1.data, acc2.data)

    def test_empty_elements_noop(self, world):
        cells, edges, e2c = world
        out = OpDat("out", cells, 1)
        loop = ParLoop(
            Kernel("k", lambda d: None, lambda d: None),
            "k",
            cells,
            (op_arg_dat(out, -1, OP_ID, OP_WRITE),),
        )
        execute_loop(loop, np.array([], dtype=np.int64))
        assert out.version == 0
