"""Dependency-scheduled threads mode: fewer joins, same bits.

The async/dataflow backends run measured loops through
:class:`repro.backends.scheduling.LoopScheduler`: chunks are released the
moment their producer blocks finish (``submit_after``), so the per-color
fork-join barrier of the ``for_each`` shape disappears from the pool's join
counters — while the computed solution stays bit-identical to the sequential
reference. These tests pin both halves of that claim, plus the satellite
fixes that ride along (single version bump per writing loop, honored
dynamic self-scheduling).
"""

import json
import sys

import numpy as np
import pytest

from repro.airfoil import AirfoilApp
from repro.apps.heat import HeatApp
from repro.op2 import op2_session

WORKERS = 4
NITER = 3
STATE_DATS = ["p_q", "p_qold", "p_res", "p_adt"]
TOL = 1e-12


def _run_airfoil(mesh, backend, *, backend_options=None, **session_kwargs):
    with op2_session(
        backend=backend,
        num_threads=WORKERS,
        block_size=16,
        mode="threads",
        num_workers=WORKERS,
        backend_options=backend_options,
        **session_kwargs,
    ) as rt:
        app = AirfoilApp(mesh)
        result = app.run(rt, NITER)
    state = {name: getattr(app, name).data.copy() for name in STATE_DATS}
    return state, result, rt.pool_stats


def _seq_airfoil(mesh):
    with op2_session(backend="seq", num_threads=1, block_size=16) as rt:
        app = AirfoilApp(mesh)
        result = app.run(rt, NITER)
    return {name: getattr(app, name).data.copy() for name in STATE_DATS}, result


def _assert_matches_seq(state, seq_state, label):
    for name in STATE_DATS:
        err = float(np.abs(state[name] - seq_state[name]).max())
        assert err <= TOL, f"{label}: {name} deviates from seq by {err}"


class TestJoinElimination:
    @pytest.fixture(scope="class")
    def runs(self, tiny_mesh):
        out = {}
        for backend in ["foreach", "hpx_async", "hpx_dataflow"]:
            out[backend] = _run_airfoil(tiny_mesh, backend)
        out["seq"] = _seq_airfoil(tiny_mesh)
        return out

    def test_scheduled_backends_match_seq(self, runs):
        seq_state, seq_result = runs["seq"]
        for backend in ["hpx_async", "hpx_dataflow"]:
            state, result, _ = runs[backend]
            _assert_matches_seq(state, seq_state, backend)
            assert result.rms_total == pytest.approx(seq_result.rms_total, abs=TOL)

    def test_dataflow_joins_strictly_fewer_than_foreach(self, runs):
        _, _, foreach = runs["foreach"]
        _, _, dataflow = runs["hpx_dataflow"]
        _, _, hpx_async = runs["hpx_async"]
        assert dataflow.joins < foreach.joins
        assert hpx_async.joins < foreach.joins
        # Dataflow needs no per-loop sync at all: only the app's explicit
        # finish/global reads block, so it joins less than async too.
        assert dataflow.joins <= hpx_async.joins

    def test_scheduled_backends_never_color_join(self, runs):
        for backend in ["hpx_async", "hpx_dataflow"]:
            _, _, stats = runs[backend]
            assert stats.color_joins == 0, backend
            assert stats.batches == 0, backend
            assert stats.tasks_submitted > 0, backend

    def test_foreach_pays_one_join_per_color(self, runs):
        _, _, stats = runs["foreach"]
        assert stats.color_joins > 0
        assert stats.batches >= stats.color_joins


class TestHeatConformance:
    """Satellite: the conformance net also covers the second application."""

    @pytest.mark.parametrize("backend", ["hpx_async", "hpx_dataflow"])
    def test_heat_scheduled_threads_matches_seq(self, backend, tiny_mesh):
        def run(name, mode_kwargs):
            with op2_session(backend=name, num_threads=WORKERS, **mode_kwargs) as rt:
                app = HeatApp(tiny_mesh)
                result = app.run(rt, max_steps=30, tol=0.0, check_every=10)
            return app.t.data.copy(), result

        seq_t, seq_res = run("seq", {})
        t, res = run(
            backend,
            {"block_size": 16, "mode": "threads", "num_workers": WORKERS},
        )
        assert float(np.abs(t - seq_t).max()) <= TOL
        assert res.total_energy == pytest.approx(seq_res.total_energy, abs=1e-9)
        assert res.steps == seq_res.steps


class TestOverlap:
    def test_trace_shows_wall_clock_overlap_between_loops(self, tiny_mesh, tmp_path):
        """At least one pair of task spans from *different* loops overlaps.

        Under fork-join execution every loop fully drains before the next
        starts, so cross-loop overlap is impossible; dependency scheduling
        releases independent chunks concurrently. A short thread switch
        interval gives the single-core CI host a fair chance to interleave.
        """
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-4)
        try:
            with op2_session(
                backend="hpx_dataflow",
                num_threads=WORKERS,
                block_size=16,
                mode="threads",
                num_workers=WORKERS,
                trace=True,
            ) as rt:
                app = AirfoilApp(tiny_mesh)
                app.run(rt, NITER)
        finally:
            sys.setswitchinterval(old_interval)
        path = tmp_path / "overlap.json"
        rt.export_trace(path)
        events = json.loads(path.read_text())
        spans = [
            (e["args"]["loop"], e["ts"], e["ts"] + e["dur"])
            for e in events
            if e.get("ph") == "X" and e.get("args", {}).get("kind") == "task"
        ]
        spans.sort(key=lambda s: s[1])
        overlapping = [
            (a[0], b[0])
            for i, a in enumerate(spans)
            for b in spans[i + 1 :]
            if b[1] < a[2] and a[0] != b[0]
        ]
        assert overlapping, "no pair of distinct loops ran concurrently"


class TestVersionBumps:
    """Satellite regression: one completed writing loop = one version bump.

    The heat flux loop names the same dat in *two* INC args (both columns of
    the edge->cell map); the version must still advance by exactly one.
    """

    @pytest.mark.parametrize(
        "backend,mode_kwargs",
        [
            ("seq", {}),
            ("openmp", {"mode": "threads", "num_workers": 2, "block_size": 16}),
            ("hpx_dataflow", {"mode": "threads", "num_workers": 2, "block_size": 16}),
        ],
    )
    def test_double_arg_dat_bumps_once(self, backend, mode_kwargs, tiny_mesh):
        with op2_session(backend=backend, num_threads=2, **mode_kwargs) as rt:
            app = HeatApp(tiny_mesh)
            rt.finish()
            before = app.flux.version
            f = app.loop_flux()
            rt.sync(f)
            rt.finish()
            assert app.flux.version == before + 1, backend


class TestDynamicSchedule:
    def test_dynamic_self_scheduling_bit_matches_static(self, tiny_mesh):
        """``schedule(dynamic)``: workers pull chunks from a shared index.

        Completion order changes; the decomposition and the fold order do
        not, so the two schedules must agree to the last bit.
        """
        static_state, static_result, _ = _run_airfoil(
            tiny_mesh, "foreach_static", backend_options={"static_chunk": 3}
        )
        dynamic_state, dynamic_result, dyn_stats = _run_airfoil(
            tiny_mesh,
            "foreach_static",
            backend_options={"static_chunk": 3, "dynamic_schedule": True},
        )
        for name in STATE_DATS:
            assert np.array_equal(static_state[name], dynamic_state[name]), name
        assert static_result.rms_total == dynamic_result.rms_total
        assert static_result.q_norm == dynamic_result.q_norm
        assert dyn_stats.tasks_submitted > 0
