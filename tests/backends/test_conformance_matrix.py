"""Differential conformance: every backend x mode x worker count vs seq.

The matrix the issue demands: the Airfoil mini-mesh runs N steps under every
(backend, execution mode, worker count) combination and every state dat must
match the sequential reference within 1e-12. This is the contract that makes
``mode="threads"`` trustworthy — real OS threads may reorder block execution,
but coloring + deferred global reductions must keep the numbers aligned with
the single-threaded semantics.
"""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp
from repro.op2 import op2_session

BACKENDS = ["openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"]
MODES = ["sim", "threads"]
WORKERS = [1, 4]
NITER = 3
#: Small enough that the 96-cell mini-mesh yields several blocks (and thus
#: several colors on the indirect loops) — otherwise the matrix would never
#: exercise cross-block concurrency.
BLOCK_SIZE = 16
TOL = 1e-12

#: State dats compared against the reference, by app attribute name.
STATE_DATS = ["p_q", "p_qold", "p_res", "p_adt"]


@pytest.fixture(scope="module")
def mini_mesh():
    from repro.airfoil import generate_mesh

    return generate_mesh(ni=16, nj=6)


@pytest.fixture(scope="module")
def seq_reference(mini_mesh):
    """State arrays + result of the plain sequential run (mode="sim")."""
    with op2_session(backend="seq", num_threads=1, block_size=BLOCK_SIZE) as rt:
        app = AirfoilApp(mini_mesh)
        result = app.run(rt, NITER)
    state = {name: getattr(app, name).data.copy() for name in STATE_DATS}
    return state, result


@pytest.mark.parametrize("num_workers", WORKERS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_conformance_matrix(backend, mode, num_workers, mini_mesh, seq_reference):
    ref_state, ref_result = seq_reference
    with op2_session(
        backend=backend,
        num_threads=num_workers,
        block_size=BLOCK_SIZE,
        mode=mode,
        num_workers=num_workers,
    ) as rt:
        app = AirfoilApp(mini_mesh)
        result = app.run(rt, NITER)

    for name in STATE_DATS:
        diff = float(np.abs(getattr(app, name).data - ref_state[name]).max())
        assert diff <= TOL, (
            f"{backend}/{mode}/{num_workers}w: {name} deviates from seq "
            f"by {diff:.3e} (tol {TOL:.0e})"
        )
    # The scalar reduction (rms) must conform too — it flows through the
    # deferred global-partial path in threads mode.
    assert result.rms_total == pytest.approx(ref_result.rms_total, abs=TOL)


@pytest.mark.parametrize("backend", BACKENDS)
def test_threads_mode_matches_sim_mode_exactly_per_backend(backend, mini_mesh):
    """Same backend, sim vs threads: state agrees within the matrix tol."""
    states = {}
    for mode in MODES:
        with op2_session(
            backend=backend,
            num_threads=4,
            block_size=BLOCK_SIZE,
            mode=mode,
            num_workers=4,
        ) as rt:
            app = AirfoilApp(mini_mesh)
            app.run(rt, NITER)
        states[mode] = {
            name: getattr(app, name).data.copy() for name in STATE_DATS
        }
    for name in STATE_DATS:
        diff = float(np.abs(states["threads"][name] - states["sim"][name]).max())
        assert diff <= TOL
