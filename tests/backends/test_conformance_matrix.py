"""Differential conformance: every backend x mode x worker count vs seq.

The matrix the issue demands: the Airfoil mini-mesh runs N steps under every
(backend, execution mode, worker count) combination and every state dat must
match the sequential reference within 1e-12. This is the contract that makes
``mode="threads"`` trustworthy — real OS threads may reorder block execution,
but coloring + deferred global reductions must keep the numbers aligned with
the single-threaded semantics.
"""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp
from repro.op2 import op2_session

BACKENDS = ["openmp", "foreach", "foreach_static", "hpx_async", "hpx_dataflow"]
MODES = ["sim", "threads"]
WORKERS = [1, 4]
NITER = 3
#: Small enough that the 96-cell mini-mesh yields several blocks (and thus
#: several colors on the indirect loops) — otherwise the matrix would never
#: exercise cross-block concurrency.
BLOCK_SIZE = 16
TOL = 1e-12

#: State dats compared against the reference, by app attribute name.
STATE_DATS = ["p_q", "p_qold", "p_res", "p_adt"]


@pytest.fixture(scope="module")
def mini_mesh():
    from repro.airfoil import generate_mesh

    return generate_mesh(ni=16, nj=6)


@pytest.fixture(scope="module")
def seq_reference(mini_mesh):
    """State arrays + result of the plain sequential run (mode="sim")."""
    with op2_session(backend="seq", num_threads=1, block_size=BLOCK_SIZE) as rt:
        app = AirfoilApp(mini_mesh)
        result = app.run(rt, NITER)
    state = {name: getattr(app, name).data.copy() for name in STATE_DATS}
    return state, result


@pytest.mark.parametrize("num_workers", WORKERS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", BACKENDS)
def test_conformance_matrix(backend, mode, num_workers, mini_mesh, seq_reference):
    ref_state, ref_result = seq_reference
    with op2_session(
        backend=backend,
        num_threads=num_workers,
        block_size=BLOCK_SIZE,
        mode=mode,
        num_workers=num_workers,
    ) as rt:
        app = AirfoilApp(mini_mesh)
        result = app.run(rt, NITER)

    for name in STATE_DATS:
        diff = float(np.abs(getattr(app, name).data - ref_state[name]).max())
        assert diff <= TOL, (
            f"{backend}/{mode}/{num_workers}w: {name} deviates from seq "
            f"by {diff:.3e} (tol {TOL:.0e})"
        )
    # The scalar reduction (rms) must conform too — it flows through the
    # deferred global-partial path in threads mode.
    assert result.rms_total == pytest.approx(ref_result.rms_total, abs=TOL)


@pytest.mark.parametrize("threads_per_rank", [1, 2])
@pytest.mark.parametrize("schedule", ["blocking", "overlapped"])
def test_procs_hybrid_conformance(
    schedule, threads_per_rank, mini_mesh, seq_reference
):
    """mode="procs" joins the matrix: ranks x threads x schedule vs seq.

    Real OS processes over shared memory, each running the canonical
    timestep program through its schedule's executor (serial, fork-join,
    or dependency-scheduled) — the assembled solution must still agree
    with the sequential reference.
    """
    from repro.procs import ProcsConfig, run_procs

    ref_state, ref_result = seq_reference
    res = run_procs(
        mini_mesh,
        ProcsConfig(
            ranks=2,
            niter=NITER,
            schedule=schedule,
            threads_per_rank=threads_per_rank,
        ),
    )
    diff = float(np.abs(res.q - ref_state["p_q"]).max())
    assert diff <= TOL, (
        f"procs/{schedule}/{threads_per_rank}t: q deviates from seq "
        f"by {diff:.3e} (tol {TOL:.0e})"
    )
    assert res.rms_total == pytest.approx(ref_result.rms_total, abs=TOL)


def test_procs_hybrid_reduction_determinism(mini_mesh):
    """Repeated hybrid overlapped runs are bit-identical.

    Static chunk decomposition + static fold order means the dependency-
    scheduled pool cannot leak completion order into the rms reduction or
    the solution, however the OS schedules the threads.
    """
    from repro.procs import ProcsConfig, run_procs

    runs = [
        run_procs(
            mini_mesh,
            ProcsConfig(
                ranks=2, niter=NITER, schedule="overlapped", threads_per_rank=2
            ),
        )
        for _ in range(2)
    ]
    assert np.array_equal(runs[0].q, runs[1].q)
    assert runs[0].rms_total == runs[1].rms_total


@pytest.mark.parametrize("backend", BACKENDS)
def test_threads_mode_matches_sim_mode_exactly_per_backend(backend, mini_mesh):
    """Same backend, sim vs threads: state agrees within the matrix tol."""
    states = {}
    for mode in MODES:
        with op2_session(
            backend=backend,
            num_threads=4,
            block_size=BLOCK_SIZE,
            mode=mode,
            num_workers=4,
        ) as rt:
            app = AirfoilApp(mini_mesh)
            app.run(rt, NITER)
        states[mode] = {
            name: getattr(app, name).data.copy() for name in STATE_DATS
        }
    for name in STATE_DATS:
        diff = float(np.abs(states["threads"][name] - states["sim"][name]).max())
        assert diff <= TOL
