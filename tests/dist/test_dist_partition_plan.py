"""Tests for mesh partitioning and per-rank localization."""

import numpy as np
import pytest

from repro.airfoil import generate_mesh
from repro.dist.partition import (
    band_partition,
    cell_centroids,
    partition_quality,
    rcb_partition,
)
from repro.dist.plan import build_dist_plan
from repro.util.validate import ValidationError


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(ni=24, nj=12)


class TestBandPartition:
    def test_every_cell_assigned(self, mesh):
        owner = band_partition(mesh.cells.size, 4)
        assert owner.shape == (mesh.cells.size,)
        assert set(np.unique(owner)) == {0, 1, 2, 3}

    def test_balanced(self, mesh):
        owner = band_partition(mesh.cells.size, 5)
        q = partition_quality(owner, mesh.pecell.values)
        assert q["imbalance"] < 1.05

    def test_single_rank(self, mesh):
        owner = band_partition(mesh.cells.size, 1)
        assert np.all(owner == 0)

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValidationError):
            band_partition(3, 5)


class TestRcbPartition:
    def test_every_cell_assigned(self, mesh):
        owner = rcb_partition(cell_centroids(mesh), 4)
        assert set(np.unique(owner)) == {0, 1, 2, 3}

    def test_balance_within_one(self, mesh):
        owner = rcb_partition(cell_centroids(mesh), 6)
        counts = np.bincount(owner)
        assert counts.max() - counts.min() <= 2

    def test_non_power_of_two_ranks(self, mesh):
        owner = rcb_partition(cell_centroids(mesh), 3)
        counts = np.bincount(owner, minlength=3)
        assert np.all(counts > 0)

    def test_geometric_compactness_beats_bands(self):
        # On a wide O-mesh, RCB's edge cut should not exceed banding's cut
        # direction-for-direction wildly; both must be << 1.
        mesh = generate_mesh(ni=48, nj=24)
        band = partition_quality(
            band_partition(mesh.cells.size, 8), mesh.pecell.values
        )
        rcb = partition_quality(
            rcb_partition(cell_centroids(mesh), 8), mesh.pecell.values
        )
        assert band["edge_cut"] < 0.2
        assert rcb["edge_cut"] < 0.2

    def test_bad_inputs(self, mesh):
        with pytest.raises(ValidationError):
            rcb_partition(np.zeros(5), 2)  # 1-D
        with pytest.raises(ValidationError):
            rcb_partition(cell_centroids(mesh), 0)


class TestDistPlan:
    @pytest.fixture(scope="class")
    def dplan(self, mesh):
        owner = rcb_partition(cell_centroids(mesh), 4)
        return build_dist_plan(mesh, owner)

    def test_owned_cells_partition_the_mesh(self, dplan, mesh):
        all_owned = np.concatenate([p.owned_cells for p in dplan.plans])
        assert sorted(all_owned.tolist()) == list(range(mesh.cells.size))

    def test_edges_partition_the_mesh(self, dplan, mesh):
        all_edges = np.concatenate([p.edges for p in dplan.plans])
        assert sorted(all_edges.tolist()) == list(range(mesh.edges.size))

    def test_bedges_partition_the_mesh(self, dplan, mesh):
        all_b = np.concatenate([p.bedges for p in dplan.plans])
        assert sorted(all_b.tolist()) == list(range(mesh.bedges.size))

    def test_halo_is_exactly_cut_neighbours(self, dplan, mesh):
        owner = dplan.owner
        for p in dplan.plans:
            touched = np.unique(mesh.pecell.values[p.edges].ravel())
            expected = set(touched[owner[touched] != p.rank].tolist())
            assert set(p.halo_cells.tolist()) == expected

    def test_local_maps_in_bounds(self, dplan):
        for p in dplan.plans:
            assert p.pecell.values.max() < p.cells_set.size
            assert p.pcell.values.max() < p.nodes_set.size
            if len(p.bedges):
                assert p.pbecell.values.max() < p.n_owned  # bedge cells owned

    def test_import_export_pairing(self, dplan):
        for s, plan in enumerate(dplan.plans):
            for r, imp in plan.imports.items():
                exp = dplan.plans[r].exports[s]
                assert len(imp) == len(exp)
                # Same global cells, same order.
                imported_globals = plan.halo_cells[imp - plan.n_owned]
                exported_globals = dplan.plans[r].owned_cells[exp]
                np.testing.assert_array_equal(imported_globals, exported_globals)

    def test_exports_reference_owned_cells_only(self, dplan):
        for p in dplan.plans:
            for exp in p.exports.values():
                assert np.all(exp >= 0)
                assert np.all(exp < p.n_owned)

    def test_wrong_owner_shape_rejected(self, mesh):
        with pytest.raises(ValidationError):
            build_dist_plan(mesh, np.zeros(3, dtype=np.int64))

    def test_describe(self, dplan):
        assert "4 ranks" in dplan.describe()
