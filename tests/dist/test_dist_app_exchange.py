"""Tests for halo exchanges and the SPMD distributed Airfoil."""

import numpy as np
import pytest

from repro.airfoil import ReferenceAirfoil, generate_mesh
from repro.airfoil.validation import max_rel_diff
from repro.dist.app import DistAirfoil
from repro.dist.exchange import HaloExchange
from repro.dist.partition import band_partition, cell_centroids, rcb_partition
from repro.dist.plan import build_dist_plan
from repro.util.validate import ValidationError


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(ni=24, nj=12)


@pytest.fixture(scope="module")
def dplan(mesh):
    return build_dist_plan(mesh, rcb_partition(cell_centroids(mesh), 4))


def rank_arrays(dplan, global_field):
    """Distribute a global (ncells, d) field into per-rank local arrays."""
    out = []
    for p in dplan.plans:
        local = np.zeros((p.n_owned + p.n_halo, global_field.shape[1]))
        local[: p.n_owned] = global_field[p.owned_cells]
        out.append(local)
    return out


class TestHaloUpdate:
    def test_halo_rows_match_owners(self, mesh, dplan):
        field = np.arange(mesh.cells.size, dtype=np.float64)[:, None] * 2.0
        arrays = rank_arrays(dplan, field)
        HaloExchange(dplan).update(arrays)
        for p, arr in zip(dplan.plans, arrays):
            np.testing.assert_array_equal(arr[p.n_owned :], field[p.halo_cells])

    def test_update_idempotent(self, mesh, dplan):
        field = np.random.default_rng(0).random((mesh.cells.size, 3))
        arrays = rank_arrays(dplan, field)
        ex = HaloExchange(dplan)
        ex.update(arrays)
        snapshot = [a.copy() for a in arrays]
        ex.update(arrays)
        for a, b in zip(arrays, snapshot):
            np.testing.assert_array_equal(a, b)

    def test_byte_accounting(self, mesh, dplan):
        field = np.zeros((mesh.cells.size, 4))
        arrays = rank_arrays(dplan, field)
        ex = HaloExchange(dplan)
        ex.update(arrays)
        expected = dplan.total_halo() * 4 * 8
        assert ex.bytes_updated == expected
        assert ex.update_count == 1

    def test_wrong_array_count_rejected(self, dplan):
        with pytest.raises(ValidationError):
            HaloExchange(dplan).update([np.zeros((1, 1))])

    def test_wrong_row_count_rejected(self, dplan):
        arrays = [np.zeros((1, 1)) for _ in dplan.plans]
        with pytest.raises(ValidationError):
            HaloExchange(dplan).update(arrays)


class TestHaloAccumulate:
    def test_contributions_reach_owner_and_halo_zeroed(self, mesh, dplan):
        arrays = rank_arrays(dplan, np.zeros((mesh.cells.size, 1)))
        # Put 1.0 in every halo row everywhere.
        for p, arr in zip(dplan.plans, arrays):
            arr[p.n_owned :] = 1.0
        HaloExchange(dplan).accumulate(arrays)
        # Every halo row zeroed; owners accumulated as many 1s as ranks
        # holding that cell in their halo.
        holders = np.zeros(mesh.cells.size)
        for p in dplan.plans:
            holders[p.halo_cells] += 1.0
        for p, arr in zip(dplan.plans, arrays):
            assert np.all(arr[p.n_owned :] == 0.0)
            np.testing.assert_array_equal(
                arr[: p.n_owned, 0], holders[p.owned_cells]
            )

    def test_update_then_accumulate_round_trip(self, mesh, dplan):
        rng = np.random.default_rng(1)
        field = rng.random((mesh.cells.size, 2))
        arrays = rank_arrays(dplan, field)
        ex = HaloExchange(dplan)
        ex.update(arrays)
        # accumulate adds each halo copy back: owner total = own + k copies.
        ex.accumulate(arrays)
        holders = np.zeros(mesh.cells.size)
        for p in dplan.plans:
            holders[p.halo_cells] += 1.0
        for p, arr in zip(dplan.plans, arrays):
            expected = field[p.owned_cells] * (1.0 + holders[p.owned_cells])[:, None]
            np.testing.assert_allclose(arr[: p.n_owned], expected)


class TestDistAirfoil:
    @pytest.fixture(scope="class")
    def reference(self, mesh):
        ref = ReferenceAirfoil(mesh)
        ref.run(3)
        return ref

    @pytest.mark.parametrize("ranks", [2, 3, 5])
    @pytest.mark.parametrize("partitioner", ["band", "rcb"])
    def test_matches_single_rank_solver(self, mesh, reference, ranks, partitioner):
        dist = DistAirfoil(mesh, ranks, partitioner=partitioner)
        out = dist.run(3)
        assert max_rel_diff(dist.gather_q(), reference.q) < 1e-12
        assert out["rms_total"] == pytest.approx(reference.rms, rel=1e-12)

    def test_gather_fields(self, mesh, reference):
        dist = DistAirfoil(mesh, 4)
        dist.run(3)
        assert max_rel_diff(dist.gather("adt"), reference.adt) < 1e-12
        assert max_rel_diff(dist.gather("qold"), reference.qold) < 1e-12

    def test_exchange_traffic_happens(self, mesh):
        dist = DistAirfoil(mesh, 4)
        dist.run(1)
        assert dist.exchange.bytes_updated > 0
        assert dist.exchange.bytes_accumulated > 0
        # Two updates (q, adt) and one accumulate per inner iteration.
        assert dist.exchange.update_count == 4
        assert dist.exchange.accumulate_count == 2

    def test_exchange_message_counters(self, mesh):
        dist = DistAirfoil(mesh, 4)
        # One message per directed owner->holder pair per exchange call.
        pairs = sum(len(p.imports) for p in dist.dplan.plans)
        dist.run(1)
        assert dist.exchange.messages_updated == 4 * pairs
        assert dist.exchange.messages_accumulated == 2 * pairs
        counters = dist.exchange.comm_counters()
        assert counters["messages_updated"] == dist.exchange.messages_updated
        assert counters["messages_accumulated"] == dist.exchange.messages_accumulated
        assert counters["bytes_updated"] == dist.exchange.bytes_updated
        assert counters["bytes_accumulated"] == dist.exchange.bytes_accumulated

    def test_comm_counters_render_in_timing_summary(self, mesh):
        from repro.obs.timing import TimingSummary

        dist = DistAirfoil(mesh, 2)
        dist.run(1)
        summary = TimingSummary(
            kernels={}, wall=0.0, comm=dist.exchange.comm_counters()
        )
        out = summary.render()
        assert "halo:" in out
        assert "update msg" in out and "accumulate msg" in out

    def test_unknown_partitioner_rejected(self, mesh):
        with pytest.raises(ValidationError):
            DistAirfoil(mesh, 2, partitioner="metis")

    def test_rank_count_one_works(self, mesh, reference):
        dist = DistAirfoil(mesh, 1)
        dist.run(3)
        assert max_rel_diff(dist.gather_q(), reference.q) < 1e-12

    def test_more_ranks_than_cells_rejected(self, mesh):
        # A sparse owner labelling implies more ranks than cells exist.
        owner = np.zeros(mesh.cells.size, dtype=np.int64)
        owner[0] = mesh.cells.size  # rank ids 0..ncells -> ncells+1 ranks
        with pytest.raises(ValidationError, match="every rank must own"):
            build_dist_plan(mesh, owner)
        # The partitioners guard the same invariant at their own layer.
        with pytest.raises(ValidationError):
            band_partition(mesh.cells.size, mesh.cells.size + 1)
