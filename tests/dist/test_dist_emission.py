"""Tests for distributed task-graph emission and the overlap claim."""

import pytest

from repro.airfoil import generate_mesh
from repro.dist.app import DistAirfoil
from repro.dist.comm import CommModel
from repro.dist.emission import DistScheduleConfig, emit_distributed
from repro.sim.engine import simulate


@pytest.fixture(scope="module")
def dist4():
    mesh = generate_mesh(ni=48, nj=24)
    return DistAirfoil(mesh, 4, partitioner="rcb")


@pytest.fixture(scope="module")
def config():
    return DistScheduleConfig(threads_per_node=4, niter=2)


class TestCommModel:
    def test_wire_cost_monotone_in_bytes(self):
        c = CommModel()
        assert c.wire_cost(10_000) > c.wire_cost(100) > c.latency

    def test_latency_floor(self):
        c = CommModel(latency=5.0)
        assert c.wire_cost(0) == 5.0

    def test_pack_cost(self):
        c = CommModel()
        assert c.pack_cost(1000) > c.pack_cost(0) > 0.0

    def test_invalid_bandwidth(self):
        with pytest.raises(Exception):
            CommModel(bandwidth=0.0)


class TestEmission:
    @pytest.mark.parametrize("schedule", ["blocking", "overlapped"])
    def test_graph_valid_and_simulates(self, dist4, config, schedule):
        graph = emit_distributed(dist4.dplan, dist4.mesh, config, schedule)
        graph.validate()
        machine = config.cluster_machine(dist4.dplan.ranks)
        res = simulate(graph, machine, machine.num_cores)
        assert res.tasks_executed == len(graph)
        assert res.makespan > 0

    def test_same_compute_work_both_schedules(self, dist4, config):
        b = emit_distributed(dist4.dplan, dist4.mesh, config, "blocking")
        o = emit_distributed(dist4.dplan, dist4.mesh, config, "overlapped")
        assert b.total_work("work") == pytest.approx(o.total_work("work"))

    def test_blocking_has_global_gates(self, dist4, config):
        graph = emit_distributed(dist4.dplan, dist4.mesh, config, "blocking")
        gates = [t for t in graph if t.kind == "barrier" and "gate" in t.name]
        assert gates

    def test_overlapped_has_no_global_gates(self, dist4, config):
        graph = emit_distributed(dist4.dplan, dist4.mesh, config, "overlapped")
        assert not [t for t in graph if "gate" in t.name]

    def test_unknown_schedule_rejected(self, dist4, config):
        with pytest.raises(ValueError):
            emit_distributed(dist4.dplan, dist4.mesh, config, "magic")

    def test_message_tasks_present(self, dist4, config):
        graph = emit_distributed(dist4.dplan, dist4.mesh, config, "overlapped")
        wires = [t for t in graph if t.name.endswith(".wire")]
        assert wires
        # Wire tasks sit on NIC pseudo-threads (beyond the compute threads).
        compute_threads = dist4.dplan.ranks * config.threads_per_node
        assert all(t.affinity >= compute_threads for t in wires)


class TestOverlapClaim:
    def test_overlapped_beats_blocking(self, dist4, config):
        machine = config.cluster_machine(dist4.dplan.ranks)
        tb = simulate(
            emit_distributed(dist4.dplan, dist4.mesh, config, "blocking"),
            machine,
            machine.num_cores,
        ).makespan
        to = simulate(
            emit_distributed(dist4.dplan, dist4.mesh, config, "overlapped"),
            machine,
            machine.num_cores,
        ).makespan
        assert to < tb

    def test_gain_grows_with_comm_cost(self, dist4):
        """Slower interconnect -> more to hide -> larger overlap gain."""
        gains = []
        for latency in (1.5, 30.0):
            cfg = DistScheduleConfig(
                threads_per_node=4, niter=2, comm=CommModel(latency=latency)
            )
            machine = cfg.cluster_machine(dist4.dplan.ranks)
            tb = simulate(
                emit_distributed(dist4.dplan, dist4.mesh, cfg, "blocking"),
                machine,
                machine.num_cores,
            ).makespan
            to = simulate(
                emit_distributed(dist4.dplan, dist4.mesh, cfg, "overlapped"),
                machine,
                machine.num_cores,
            ).makespan
            gains.append(tb / to - 1.0)
        assert gains[1] > gains[0]
