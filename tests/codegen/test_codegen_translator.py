"""Tests for translation, generated-module loading and numerics."""

import ast

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, ReferenceAirfoil, generate_mesh
from repro.airfoil.validation import max_rel_diff
from repro.codegen import TARGETS, generate_module, translate_source
from repro.codegen.apps import AIRFOIL_SOURCE, AirfoilContext
from repro.codegen.parser import CodegenError
from repro.op2 import op2_session

SIMPLE = """
def run(ctx):
    op_par_loop(ctx.kernel, "copyit", ctx.cells,
        op_arg_dat(ctx.src, -1, OP_ID, OP_READ),
        op_arg_dat(ctx.dst, -1, OP_ID, OP_WRITE))
"""


class TestTranslateSource:
    @pytest.mark.parametrize("target", TARGETS)
    def test_output_is_valid_python(self, target):
        text, loops = translate_source(AIRFOIL_SOURCE, target)
        ast.parse(text)
        # Five textual call sites (the 2x inner iteration is a runtime loop).
        assert len(loops) == 5

    def test_generated_function_per_unique_loop(self):
        text, _ = translate_source(AIRFOIL_SOURCE, "openmp")
        for name in ("save_soln", "adt_calc", "res_calc", "bres_calc", "update"):
            assert f"def op_par_loop_{name}(" in text
        # adt_calc appears twice in the source but is emitted once.
        assert text.count("def op_par_loop_adt_calc(") == 1

    def test_unknown_target_rejected(self):
        with pytest.raises(CodegenError, match="unknown target"):
            translate_source(SIMPLE, "cuda")

    def test_no_loops_rejected(self):
        with pytest.raises(CodegenError, match="no op_par_loop"):
            translate_source("x = 1", "seq")

    def test_conflicting_signatures_rejected(self):
        src = (
            'op_par_loop(k, "dup", s, op_arg_dat(d, -1, OP_ID, OP_READ))\n'
            'op_par_loop(k, "dup", s, op_arg_dat(d, -1, OP_ID, OP_READ),'
            " op_arg_dat(e, -1, OP_ID, OP_WRITE))\n"
        )
        with pytest.raises(CodegenError, match="dup"):
            translate_source(src, "seq")

    def test_openmp_emits_fork_join_structure(self):
        text, _ = translate_source(AIRFOIL_SOURCE, "openmp")
        assert "#pragma omp parallel for" in text or "parallel for" in text
        assert "implicit global barrier" in text

    def test_foreach_emits_for_each_par(self):
        text, _ = translate_source(AIRFOIL_SOURCE, "foreach")
        assert "for_each(par, range(nblocks), body)" in text
        assert "auto partitioner" in text

    def test_foreach_static_emits_chunk_size(self):
        text, _ = translate_source(AIRFOIL_SOURCE, "foreach_static", static_chunk=4)
        assert "StaticChunkSize(4)" in text

    def test_async_emits_async_and_par_task(self):
        text, _ = translate_source(AIRFOIL_SOURCE, "hpx_async")
        assert "async_(run" in text
        assert "par_task" in text

    def test_dataflow_emits_dataflow_calls(self):
        text, _ = translate_source(AIRFOIL_SOURCE, "hpx_dataflow")
        assert "dataflow(body, *deps" in text
        assert "def dataflow_finish():" in text


class TestGenerateModule:
    def test_module_carries_source(self):
        mod = generate_module(SIMPLE, "seq")
        assert "op_par_loop_copyit" in mod.__generated_source__
        assert hasattr(mod, "run")

    def test_simple_copy_runs(self, hpx_rt):
        from types import SimpleNamespace

        from repro.op2 import Kernel, OpDat, OpSet

        mod = generate_module(SIMPLE, "openmp")
        cells = OpSet("cells", 6)
        ctx = SimpleNamespace(
            kernel=Kernel(
                "copy", lambda s, d: None, lambda s, d: d.__setitem__(slice(None), s)
            ),
            cells=cells,
            src=OpDat("src", cells, 1, np.arange(6.0)),
            dst=OpDat("dst", cells, 1),
        )
        with op2_session(backend="seq", block_size=2):
            mod.run(ctx)
        np.testing.assert_array_equal(ctx.dst.data, ctx.src.data)


@pytest.fixture(scope="module")
def gen_reference():
    mesh = generate_mesh(ni=16, nj=6)
    ref = ReferenceAirfoil(mesh)
    ref.run(2)
    return mesh, ref


@pytest.mark.parametrize("target", TARGETS)
class TestGeneratedAirfoilNumerics:
    def test_matches_reference(self, target, gen_reference):
        mesh, ref = gen_reference
        mod = generate_module(AIRFOIL_SOURCE, target)
        with op2_session(backend="seq", num_threads=4, block_size=16) as rt:
            app = AirfoilApp(mesh)
            ctx = AirfoilContext(app, mesh, target)
            for _ in range(2):
                mod.airfoil_step(ctx)
            if target == "hpx_dataflow":
                mod.dataflow_finish()
            rt.hpx.executor.drain()
        assert max_rel_diff(app.p_q.data, ref.q) < 1e-10
        assert max_rel_diff(
            np.array([app.g_rms.value()]), np.array([ref.rms])
        ) < 1e-10
