"""Tests for the op_par_loop source parser."""

import pytest

from repro.codegen.parser import CodegenError, parse_loops, rewrite_calls

GOOD = """
def step(ctx):
    op_par_loop(ctx.kernels["save"], "save", ctx.cells,
        op_arg_dat(ctx.q, -1, OP_ID, OP_READ),
        op_arg_dat(ctx.qold, -1, OP_ID, OP_WRITE))
    op_par_loop(ctx.kernels["res"], "res", ctx.edges,
        op_arg_dat(ctx.q, 0, ctx.e2c, OP_READ),
        op_arg_dat(ctx.res, 1, ctx.e2c, OP_INC),
        op_arg_gbl(ctx.total, OP_INC))
"""


class TestParseLoops:
    def test_finds_all_loops_in_order(self):
        loops = parse_loops(GOOD)
        assert [l.name for l in loops] == ["save", "res"]

    def test_direct_vs_indirect_classification(self):
        save, res = parse_loops(GOOD)
        assert save.is_direct
        assert not res.is_direct
        assert res.has_indirect_reduction

    def test_arg_details(self):
        save, res = parse_loops(GOOD)
        assert save.args[0].dat_src == "ctx.q"
        assert save.args[0].access == "OP_READ"
        assert save.args[0].is_direct
        assert res.args[1].map_src == "ctx.e2c"
        assert res.args[1].idx == 1
        assert res.args[2].is_global

    def test_kernel_and_set_sources_preserved(self):
        save, _ = parse_loops(GOOD)
        assert save.kernel_src == "ctx.kernels['save']"
        assert save.set_src == "ctx.cells"

    def test_lineno_recorded(self):
        save, res = parse_loops(GOOD)
        assert res.lineno > save.lineno > 0

    def test_generated_name(self):
        save, _ = parse_loops(GOOD)
        assert save.generated_name == "op_par_loop_save"

    def test_arg_reconstruct_round_trips(self):
        save, res = parse_loops(GOOD)
        assert save.args[0].reconstruct() == "op_arg_dat(ctx.q, -1, OP_ID, OP_READ)"
        assert res.args[2].reconstruct() == "op_arg_gbl(ctx.total, OP_INC)"


class TestParserDiagnostics:
    def test_syntax_error_reported(self):
        with pytest.raises(CodegenError, match="does not parse"):
            parse_loops("def broken(:")

    def test_non_literal_name_rejected(self):
        src = "op_par_loop(k, name_var, s, op_arg_dat(d, -1, OP_ID, OP_READ))"
        with pytest.raises(CodegenError, match="string literal"):
            parse_loops(src)

    def test_too_few_args_rejected(self):
        with pytest.raises(CodegenError, match="needs"):
            parse_loops('op_par_loop(k, "x")')

    def test_bad_arg_kind_rejected(self):
        with pytest.raises(CodegenError, match="op_arg_dat/op_arg_gbl"):
            parse_loops('op_par_loop(k, "x", s, some_dat)')

    def test_bad_access_rejected(self):
        with pytest.raises(CodegenError, match="access mode"):
            parse_loops('op_par_loop(k, "x", s, op_arg_dat(d, -1, OP_ID, READING))')

    def test_non_literal_index_rejected(self):
        with pytest.raises(CodegenError, match="integer literal"):
            parse_loops('op_par_loop(k, "x", s, op_arg_dat(d, i, m, OP_READ))')

    def test_direct_with_nonneg_index_rejected(self):
        with pytest.raises(CodegenError, match="idx=-1"):
            parse_loops('op_par_loop(k, "x", s, op_arg_dat(d, 0, OP_ID, OP_READ))')

    def test_wrong_arity_op_arg_gbl(self):
        with pytest.raises(CodegenError, match="op_arg_gbl takes"):
            parse_loops('op_par_loop(k, "x", s, op_arg_gbl(g, OP_INC, 3))')

    def test_error_message_carries_line_number(self):
        src = "\n\n" + 'op_par_loop(k, "x", s, op_arg_dat(d, -1, OP_ID, BAD))'
        with pytest.raises(CodegenError, match="line 3"):
            parse_loops(src)


class TestRewriteCalls:
    def test_call_target_renamed(self):
        out = rewrite_calls(GOOD)
        assert "op_par_loop_save(ctx.kernels['save']" in out
        assert "op_par_loop_res(" in out

    def test_loop_name_argument_kept(self):
        out = rewrite_calls(GOOD)
        assert "'save'" in out

    def test_other_calls_untouched(self):
        src = "foo(1)\n" + 'op_par_loop(k, "x", s, op_arg_dat(d, -1, OP_ID, OP_READ))'
        out = rewrite_calls(src)
        assert "foo(1)" in out
        assert "op_par_loop_x(" in out

    def test_rewritten_source_parses(self):
        import ast

        ast.parse(rewrite_calls(GOOD))
