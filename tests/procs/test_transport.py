"""Tests for the pipe-based halo transport (single-process loopback).

Both endpoints of every pipe live in this test process, so the nonblocking
halves must be interleaved manually (``start`` on both ranks, then ``wait``
on both) — which is exactly the calling convention the overlapped schedule
exercises. The bulk-synchronous wrappers are equivalence-tested end to end
by the driver tests, where real peer processes sit on the other end.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.airfoil import generate_mesh
from repro.dist.comm import CommModel, fit_comm_model
from repro.dist.exchange import HaloExchange
from repro.dist.partition import band_partition
from repro.dist.plan import build_dist_plan
from repro.procs.transport import HaloTransport, build_channels
from repro.util.validate import ValidationError


@pytest.fixture(scope="module")
def dplan():
    mesh = generate_mesh(ni=24, nj=12)
    return build_dist_plan(mesh, band_partition(mesh.cells.size, 2))


@pytest.fixture()
def transports(dplan):
    channels = build_channels(dplan, mp.get_context())
    ts = [
        HaloTransport(rp.rank, rp.exports, rp.imports, channels[rp.rank])
        for rp in dplan.plans
    ]
    yield ts
    for ch in channels:
        ch.close()


def rank_arrays(dplan, global_field):
    out = []
    for p in dplan.plans:
        local = np.zeros((p.n_owned + p.n_halo, global_field.shape[1]))
        local[: p.n_owned] = global_field[p.owned_cells]
        out.append(local)
    return out


class TestUpdate:
    def test_halo_rows_match_owners(self, dplan, transports):
        ncells = sum(p.n_owned for p in dplan.plans)
        field = np.arange(ncells, dtype=np.float64)[:, None] * 2.0
        arrays = rank_arrays(dplan, field)
        for t, a in zip(transports, arrays):
            t.update_start([a])
        for t, a, p in zip(transports, arrays, dplan.plans):
            t.update_wait([a])
            np.testing.assert_array_equal(a[p.n_owned :], field[p.halo_cells])

    def test_multi_field_packing(self, dplan, transports):
        """q (4 cols) and adt (1 col) travel as ONE message per neighbor."""
        ncells = sum(p.n_owned for p in dplan.plans)
        rng = np.random.default_rng(0)
        q_glob = rng.random((ncells, 4))
        adt_glob = rng.random((ncells, 1))
        qs = rank_arrays(dplan, q_glob)
        adts = rank_arrays(dplan, adt_glob)
        for t, q, adt in zip(transports, qs, adts):
            t.update_start([q, adt])
        for t, q, adt, p in zip(transports, qs, adts, dplan.plans):
            t.update_wait([q, adt])
            np.testing.assert_array_equal(q[p.n_owned :], q_glob[p.halo_cells])
            np.testing.assert_array_equal(adt[p.n_owned :], adt_glob[p.halo_cells])
        # one message per directed pair, 5 columns worth of bytes
        for t, p in zip(transports, dplan.plans):
            assert t.messages_updated == len(p.exports)
            expected = sum(len(idx) for idx in p.exports.values()) * 5 * 8
            assert t.bytes_updated == expected

    def test_matches_simulated_exchange_counters(self, dplan, transports):
        """Byte accounting agrees with the in-process HaloExchange."""
        ncells = sum(p.n_owned for p in dplan.plans)
        field = np.ones((ncells, 4))
        sim = HaloExchange(dplan)
        sim_arrays = rank_arrays(dplan, field)
        sim.update(sim_arrays)
        arrays = rank_arrays(dplan, field)
        for t, a in zip(transports, arrays):
            t.update_start([a])
        for t, a in zip(transports, arrays):
            t.update_wait([a])
        assert sum(t.bytes_updated for t in transports) == sim.bytes_updated
        assert (
            sum(t.messages_updated for t in transports) == sim.messages_updated
        )


class TestAccumulate:
    def test_contributions_reach_owner_and_halo_zeroed(self, dplan, transports):
        ncells = sum(p.n_owned for p in dplan.plans)
        arrays = rank_arrays(dplan, np.zeros((ncells, 1)))
        for p, a in zip(dplan.plans, arrays):
            a[p.n_owned :] = 1.0
        for t, a in zip(transports, arrays):
            t.accumulate_start([a])
        holders = np.zeros(ncells)
        for p in dplan.plans:
            holders[p.halo_cells] += 1.0
        for t, a, p in zip(transports, arrays, dplan.plans):
            t.accumulate_wait([a])
            assert np.all(a[p.n_owned :] == 0.0)
            np.testing.assert_array_equal(a[: p.n_owned, 0], holders[p.owned_cells])


class TestProtocol:
    def test_double_start_rejected(self, dplan, transports):
        a = [np.zeros((p.n_owned + p.n_halo, 1)) for p in dplan.plans]
        transports[0].update_start([a[0]])
        with pytest.raises(ValidationError, match="already in flight"):
            transports[0].update_start([a[0]])
        transports[1].update_start([a[1]])
        for t, arr in zip(transports, a):
            t.update_wait([arr])

    def test_wait_without_start_rejected(self, transports):
        with pytest.raises(ValidationError, match="no update exchange"):
            transports[0].update_wait([np.zeros((1, 1))])
        with pytest.raises(ValidationError, match="no accumulate exchange"):
            transports[0].accumulate_wait([np.zeros((1, 1))])

    def test_wrong_rank_channels_rejected(self, dplan):
        channels = build_channels(dplan, mp.get_context())
        try:
            rp = dplan.plans[0]
            with pytest.raises(ValidationError, match="belong to rank"):
                HaloTransport(1, rp.exports, rp.imports, channels[0])
        finally:
            for ch in channels:
                ch.close()

    def test_message_records_have_latency(self, dplan, transports):
        a = [np.zeros((p.n_owned + p.n_halo, 2)) for p in dplan.plans]
        for t, arr in zip(transports, a):
            t.update_start([arr])
        for t, arr in zip(transports, a):
            t.update_wait([arr])
        log = transports[0].message_log()
        assert len(log) == len(dplan.plans[0].imports)
        for nbytes, latency in log:
            assert nbytes > 0
            assert latency >= 0.0


class TestCommModelFit:
    def test_fit_recovers_alpha_beta(self):
        # t_us = 25 + n / 500  ->  latency 25 us, bandwidth 500 MB/s
        sizes = [1000, 2000, 4000, 8000, 16000]
        secs = [(25.0 + n / 500.0) * 1e-6 for n in sizes]
        model = fit_comm_model(sizes, secs)
        assert model.latency == pytest.approx(25.0, rel=1e-6)
        assert model.bandwidth == pytest.approx(500.0, rel=1e-6)

    def test_fit_single_size_degrades_to_latency_only(self):
        model = fit_comm_model([4096, 4096], [10e-6, 12e-6])
        assert model.latency == pytest.approx(11.0, rel=1e-6)
        assert model.bandwidth == CommModel().bandwidth

    def test_fit_rejects_bad_input(self):
        with pytest.raises(ValidationError):
            fit_comm_model([], [])
        with pytest.raises(ValidationError):
            fit_comm_model([1, 2], [1e-6])
