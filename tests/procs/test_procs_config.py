"""Tests for the ``mode="procs"`` runtime-config integration."""

import numpy as np
import pytest

from repro.op2 import (
    OP_ID,
    OP_READ,
    OP_WRITE,
    Kernel,
    OpDat,
    OpSet,
    op_arg_dat,
    op2_session,
)
from repro.op2.config import MODES, RuntimeConfig
from repro.op2.exceptions import Op2Error
from repro.op2.parloop import ParLoop


class TestRuntimeConfig:
    def test_procs_mode_registered(self):
        assert "procs" in MODES

    def test_procs_flags(self):
        cfg = RuntimeConfig(mode="procs", num_ranks=4)
        assert cfg.procs
        assert not cfg.threaded
        assert cfg.resolve_ranks() == 4

    def test_resolve_ranks_default(self):
        assert RuntimeConfig(mode="procs").resolve_ranks(3) == 3

    def test_num_ranks_requires_procs_mode(self):
        with pytest.raises(Op2Error, match="num_ranks"):
            RuntimeConfig(mode="sim", num_ranks=2)
        with pytest.raises(Op2Error, match="num_ranks"):
            RuntimeConfig(mode="threads", num_ranks=2)

    def test_num_ranks_must_be_positive(self):
        with pytest.raises(Op2Error, match="num_ranks"):
            RuntimeConfig(mode="procs", num_ranks=0)


class TestSessionIntegration:
    def test_session_accepts_procs_mode(self):
        with op2_session(mode="procs", num_ranks=2) as rt:
            assert rt.config.procs
            assert rt.config.resolve_ranks() == 2

    def test_par_loop_rejected_in_procs_mode(self):
        cells = OpSet("cells", 4)
        q = OpDat("q", cells, 1, np.zeros((4, 1)))
        out = OpDat("out", cells, 1)

        def k(src, dst):
            dst[0] = src[0]

        loop = ParLoop(
            Kernel("copy", k),
            "copy",
            cells,
            (
                op_arg_dat(q, -1, OP_ID, OP_READ),
                op_arg_dat(out, -1, OP_ID, OP_WRITE),
            ),
        )
        with op2_session(mode="procs", num_ranks=2) as rt:
            with pytest.raises(Op2Error, match="run_procs"):
                rt.par_loop(loop)
