"""Tests for the shared-memory dat registry (segment lifecycle discipline)."""

import numpy as np
import pytest

from repro.airfoil import generate_mesh
from repro.dist.partition import band_partition
from repro.dist.plan import build_dist_plan
from repro.procs.shm import (
    DAT_FIELDS,
    AttachedRank,
    ShmRegistry,
    leaked_segments,
)
from repro.util.validate import ValidationError


@pytest.fixture(scope="module")
def dplan():
    mesh = generate_mesh(ni=24, nj=12)
    return build_dist_plan(mesh, band_partition(mesh.cells.size, 2))


class TestShmRegistry:
    def test_layout_matches_plan(self, dplan):
        with ShmRegistry(dplan) as reg:
            assert len(reg.layouts) == 2
            for rp, layout in zip(dplan.plans, reg.layouts):
                assert layout.rank == rp.rank
                assert set(layout.segments) == {f for f, _, _ in DAT_FIELDS}
                n_local = rp.n_owned + rp.n_halo
                assert layout.segments["q"].shape == (n_local, 4)
                assert layout.segments["qold"].shape == (rp.n_owned, 4)
                assert layout.segments["adt"].shape == (n_local, 1)

    def test_arrays_zeroed_and_shared_with_attachments(self, dplan):
        with ShmRegistry(dplan) as reg:
            parent = reg.arrays(0)
            assert all(np.all(a == 0.0) for a in parent.values())
            with AttachedRank(reg.layouts[0]) as att:
                att.arrays["q"][3, 2] = 7.5
                assert parent["q"][3, 2] == 7.5  # same kernel pages
                parent["res"][:] = 1.0
                assert np.all(att.arrays["res"] == 1.0)

    def test_close_unlinks_everything_and_is_idempotent(self, dplan):
        reg = ShmRegistry(dplan)
        names = reg.segment_names
        # While open, every segment is present in the OS...
        assert sorted(leaked_segments(names)) == sorted(names)
        reg.close()
        assert leaked_segments(names) == []
        reg.close()  # idempotent
        with pytest.raises(ValidationError):
            reg.arrays(0)

    def test_segments_exist_while_open(self, dplan):
        reg = ShmRegistry(dplan)
        try:
            # Every named segment is attachable while the registry is open.
            for layout in reg.layouts:
                with AttachedRank(layout):
                    pass
        finally:
            reg.close()
        # ... and gone afterwards.
        for layout in reg.layouts:
            with pytest.raises(FileNotFoundError):
                AttachedRank(layout)

    def test_name_collision_cleans_partial_creation(self, dplan):
        reg = ShmRegistry(dplan, token="fixedtok")
        try:
            names_before = reg.segment_names
            with pytest.raises(FileExistsError):
                ShmRegistry(dplan, token="fixedtok")
            # The failed construction must not have disturbed the original.
            for layout in reg.layouts:
                with AttachedRank(layout):
                    pass
            assert reg.segment_names == names_before
        finally:
            reg.close()
        assert leaked_segments(reg.segment_names) == []

    def test_exception_inside_context_still_cleans(self, dplan):
        names = None
        with pytest.raises(RuntimeError, match="boom"):
            with ShmRegistry(dplan) as reg:
                names = reg.segment_names
                raise RuntimeError("boom")
        assert leaked_segments(names) == []
