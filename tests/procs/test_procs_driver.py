"""End-to-end tests for the rank-per-process driver.

Real OS processes, real shared memory, real pipe messages — validated
bitwise-close against the single-rank reference solver, with the teardown
guarantees (no leaked segments, no surviving children) asserted on both the
success and the failure paths.
"""

import json
import multiprocessing as mp
from pathlib import Path

import numpy as np
import pytest

from repro.airfoil import ReferenceAirfoil, generate_mesh
from repro.procs import (
    ProcsConfig,
    ProcsError,
    leaked_segments,
    run_procs,
)
from repro.util.validate import ValidationError

NITER = 3


@pytest.fixture(scope="module")
def mesh():
    return generate_mesh(ni=24, nj=12)


@pytest.fixture(scope="module")
def reference(mesh):
    ref = ReferenceAirfoil(mesh)
    ref.run(NITER)
    return ref


def no_rank_children() -> bool:
    return not any(
        c.name.startswith("procs-rank") for c in mp.active_children()
    )


class TestEquivalence:
    @pytest.mark.parametrize("ranks", [2, 3])
    def test_blocking_matches_reference(self, mesh, reference, ranks):
        res = run_procs(mesh, ProcsConfig(ranks=ranks, niter=NITER))
        assert float(np.abs(res.q - reference.q).max()) <= 1e-12
        assert res.rms_total == pytest.approx(reference.rms, rel=1e-12)
        assert leaked_segments(res.shm_names) == []
        assert no_rank_children()

    @pytest.mark.parametrize("ranks", [2, 3])
    def test_overlapped_matches_reference(self, mesh, reference, ranks):
        res = run_procs(
            mesh, ProcsConfig(ranks=ranks, niter=NITER, schedule="overlapped")
        )
        assert float(np.abs(res.q - reference.q).max()) <= 1e-12
        assert res.rms_total == pytest.approx(reference.rms, rel=1e-12)
        assert leaked_segments(res.shm_names) == []

    def test_band_partitioner(self, mesh, reference):
        res = run_procs(
            mesh, ProcsConfig(ranks=2, niter=NITER, partitioner="band")
        )
        assert float(np.abs(res.q - reference.q).max()) <= 1e-12

    def test_spawn_start_method(self, mesh, reference):
        """Everything shipped to the ranks must survive pickling (spawn)."""
        res = run_procs(
            mesh,
            ProcsConfig(
                ranks=2, niter=NITER, schedule="overlapped", spawn_method="spawn"
            ),
        )
        assert float(np.abs(res.q - reference.q).max()) <= 1e-12
        assert leaked_segments(res.shm_names) == []

    def test_single_rank_degenerates_cleanly(self, mesh, reference):
        res = run_procs(mesh, ProcsConfig(ranks=1, niter=NITER))
        assert float(np.abs(res.q - reference.q).max()) <= 1e-12
        assert res.comm["messages_updated"] == 0
        assert res.fitted_comm is None


class TestAccounting:
    def test_comm_counters_and_wall(self, mesh):
        res = run_procs(mesh, ProcsConfig(ranks=2, niter=2))
        # 2 inner iterations x niter, one update + one accumulate each,
        # 2 directed pairs -> 2*2*2 messages of each kind.
        assert res.comm["messages_updated"] == 8
        assert res.comm["messages_accumulated"] == 8
        assert res.comm["bytes_updated"] > 0
        assert res.wall_seconds > 0.0
        assert res.wall_seconds == max(
            r.wall_seconds for r in res.reports.values()
        )
        assert res.fitted_comm is not None
        assert res.fitted_comm.latency > 0.0

    def test_timing_summary_merges_ranks(self, mesh):
        res = run_procs(mesh, ProcsConfig(ranks=2, niter=2, timing=True))
        summary = res.timing_summary()
        assert set(summary.kernels) == {
            "save_soln", "adt_calc", "res_calc", "bres_calc", "update",
        }
        # every rank ran every loop: 2 ranks x 2 iters for save_soln
        assert summary.kernels["save_soln"].count == 4
        out = summary.render()
        assert "halo:" in out and "update msg" in out

    def test_trace_written_and_merged(self, mesh, tmp_path):
        res = run_procs(
            mesh, ProcsConfig(ranks=2, niter=2, trace_dir=tmp_path)
        )
        assert res.trace_path is not None
        events = json.loads((tmp_path / "trace.json").read_text())
        lanes = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name"
        }
        assert {"rank 0 / thread 0", "rank 1 / thread 0"} <= lanes
        assert any(e.get("ph") == "X" for e in events)
        # per-rank intermediates exist alongside the merged trace
        assert (tmp_path / "rank0.json").exists()
        assert (tmp_path / "rank1.json").exists()

    @pytest.mark.parametrize("schedule", ["blocking", "overlapped"])
    def test_hybrid_trace_has_worker_lanes(self, mesh, tmp_path, schedule):
        """Hybrid ranks contribute one merged-trace lane per pool worker."""
        res = run_procs(
            mesh,
            ProcsConfig(
                ranks=2,
                niter=2,
                schedule=schedule,
                threads_per_rank=2,
                trace_dir=tmp_path / schedule,
            ),
        )
        events = json.loads(Path(res.trace_path).read_text())
        lanes = {
            e["args"]["name"]
            for e in events
            if e.get("name") == "thread_name"
        }
        for rank in (0, 1):
            assert f"rank {rank} / thread 0" in lanes
            # at least one pool-worker lane per rank carried spans
            assert any(
                lane.startswith(f"rank {rank} / thread ")
                and lane != f"rank {rank} / thread 0"
                for lane in lanes
            )
        # every duration event resolves to a declared lane
        tids = {e["args"]["name"] for e in events if e.get("name") == "thread_name"}
        assert len(tids) == len(lanes)

    def test_hybrid_timing_summary_per_thread_busy(self, mesh):
        res = run_procs(
            mesh,
            ProcsConfig(
                ranks=2,
                niter=2,
                schedule="overlapped",
                threads_per_rank=2,
                timing=True,
            ),
        )
        summary = res.timing_summary()
        assert summary.num_workers == 4
        # rank row ranges are disjoint: rank r occupies rows
        # [1 + r*3, 1 + r*3 + 2] for threads_per_rank=2.
        assert all(1 <= row <= 6 for row in summary.busy)
        assert set(summary.kernels) == {
            "save_soln", "adt_calc", "res_calc", "bres_calc", "update",
        }


class TestFailurePropagation:
    def test_injected_failure_propagates_and_cleans(self, mesh):
        with pytest.raises(ProcsError) as excinfo:
            run_procs(
                mesh,
                ProcsConfig(ranks=2, niter=NITER, fail_rank=1, fail_at_iter=1),
            )
        err = excinfo.value
        assert err.rank == 1
        assert "injected failure on rank 1" in str(err)
        assert "RuntimeError" in err.rank_traceback
        assert leaked_segments(err.shm_names) == []
        assert no_rank_children()

    def test_failure_at_first_iteration(self, mesh):
        with pytest.raises(ProcsError) as excinfo:
            run_procs(
                mesh,
                ProcsConfig(ranks=3, niter=NITER, fail_rank=0, fail_at_iter=0),
            )
        assert excinfo.value.rank == 0
        assert leaked_segments(excinfo.value.shm_names) == []
        assert no_rank_children()

    def test_keyboard_interrupt_unlinks_segments(self, mesh, monkeypatch):
        """Ctrl-C during collection must not leak segments or children."""
        from repro.procs import driver as driver_mod

        captured = {}
        real_registry = driver_mod.ShmRegistry

        def capturing(dplan):
            reg = real_registry(dplan)
            captured["names"] = reg.segment_names
            return reg

        monkeypatch.setattr(driver_mod, "ShmRegistry", capturing)

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(driver_mod, "_collect", interrupted)
        with pytest.raises(KeyboardInterrupt):
            run_procs(mesh, ProcsConfig(ranks=2, niter=NITER))
        assert leaked_segments(captured["names"]) == []
        assert no_rank_children()

    def test_driver_exception_unlinks_segments(self, mesh, monkeypatch):
        """A parent-side crash after the run must still tear everything down."""
        from repro.procs import driver as driver_mod

        captured = {}
        real_registry = driver_mod.ShmRegistry

        def capturing(dplan):
            reg = real_registry(dplan)
            captured["names"] = reg.segment_names
            return reg

        monkeypatch.setattr(driver_mod, "ShmRegistry", capturing)

        def broken(*args, **kwargs):
            raise RuntimeError("driver-side assembly failure")

        monkeypatch.setattr(driver_mod, "_assemble_q", broken)
        with pytest.raises(RuntimeError, match="assembly failure"):
            run_procs(mesh, ProcsConfig(ranks=2, niter=1))
        assert leaked_segments(captured["names"]) == []
        assert no_rank_children()


class TestConfigValidation:
    def test_bad_schedule(self, mesh):
        with pytest.raises(ValidationError, match="schedule"):
            run_procs(mesh, ProcsConfig(ranks=2, schedule="eager"))

    def test_bad_ranks(self, mesh):
        with pytest.raises(ValidationError, match="ranks"):
            run_procs(mesh, ProcsConfig(ranks=0))

    def test_too_many_ranks_for_mesh(self, mesh):
        with pytest.raises(ValidationError, match="cells"):
            run_procs(
                mesh,
                ProcsConfig(ranks=mesh.cells.size + 1, niter=1,
                            partitioner="band"),
            )

    def test_fail_injection_must_be_paired(self, mesh):
        with pytest.raises(ValidationError, match="together"):
            run_procs(mesh, ProcsConfig(ranks=2, fail_rank=0))
        with pytest.raises(ValidationError, match="together"):
            run_procs(mesh, ProcsConfig(ranks=2, fail_at_iter=0))

    def test_fail_rank_out_of_range(self, mesh):
        with pytest.raises(ValidationError, match="out of range"):
            run_procs(
                mesh, ProcsConfig(ranks=2, fail_rank=5, fail_at_iter=0)
            )

    def test_bad_spawn_method(self, mesh):
        with pytest.raises(ValidationError, match="start method"):
            run_procs(mesh, ProcsConfig(ranks=2, spawn_method="teleport"))
