"""Chrome-trace export of measured runs, and the no-perturbation contract.

The measured (threads-mode) exporter shares its event builders with the
simulated one, so both flavors must satisfy the same Trace Event Format
schema; and enabling observability must not change a single bit of the
computed solution.
"""

import json

import numpy as np
import pytest

from repro.airfoil import AirfoilApp
from repro.op2 import op2_session
from repro.op2.exceptions import Op2Error

NITER = 2
STATE_DATS = ["p_q", "p_qold", "p_res", "p_adt"]


def _run_airfoil(mesh, **session_kwargs):
    with op2_session(
        backend="hpx_dataflow",
        num_threads=2,
        block_size=32,
        mode="threads",
        num_workers=2,
        **session_kwargs,
    ) as rt:
        app = AirfoilApp(mesh)
        result = app.run(rt, NITER)
    state = {name: getattr(app, name).data.copy() for name in STATE_DATS}
    return rt, state, result


def _check_trace_schema(events):
    """Minimal Trace Event Format ("JSON array" flavor) conformance."""
    assert isinstance(events, list) and events
    meta = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in meta)
    assert any(e["name"] == "thread_name" for e in meta)
    durations = [e for e in events if e["ph"] == "X"]
    assert durations
    for e in durations:
        assert isinstance(e["name"], str) and e["name"]
        assert isinstance(e["cat"], str)
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
        assert isinstance(e["dur"], (int, float)) and e["dur"] >= 0
    return durations


class TestThreadsTrace:
    def test_traced_airfoil_exports_schema_conformant_json(self, tiny_mesh, tmp_path):
        rt, _, _ = _run_airfoil(tiny_mesh, trace=True)
        path = tmp_path / "threads.json"
        n = rt.export_trace(path)
        events = json.loads(path.read_text())
        assert len(events) == n
        durations = _check_trace_schema(events)
        kinds = {e["args"]["kind"] for e in durations}
        # hpx_dataflow is dependency-scheduled in threads mode: chunk
        # "release" spans replace per-color barriers (no "color" spans).
        assert {"loop", "task", "release"} <= kinds
        assert "color" not in kinds
        loops = {e["args"]["loop"] for e in durations}
        assert "res_calc" in loops and "update" in loops
        # Task lanes belong to worker rows, never the orchestrator's tid 0.
        assert all(
            e["tid"] > 0 for e in durations if e["args"]["kind"] == "task"
        )

    def test_timing_summary_covers_all_kernels(self, tiny_mesh):
        rt, _, _ = _run_airfoil(tiny_mesh, timing=True)
        summary = rt.timing_summary()
        assert {"save_soln", "adt_calc", "res_calc", "bres_calc", "update"} <= set(
            summary.kernels
        )
        res = summary.kernels["res_calc"]
        assert res.count == 2 * NITER  # two res_calc sweeps per iteration
        assert res.colors >= 2  # indirect loop: multiple color classes
        assert res.tasks > 0 and res.task_time > 0.0
        # Dependency scheduling never dispatches fork-join batches.
        assert summary.total_tasks > 0 and summary.batches == 0

    def test_timing_only_mode_has_no_event_stream(self, tiny_mesh, tmp_path):
        rt, _, _ = _run_airfoil(tiny_mesh, timing=True)
        assert rt.obs is not None and rt.obs.events == []
        with pytest.raises(Op2Error, match="trace"):
            rt.export_trace(tmp_path / "never.json")

    def test_disabled_observability_raises_on_access(self, tiny_mesh, tmp_path):
        rt, _, _ = _run_airfoil(tiny_mesh)
        assert rt.obs is None
        with pytest.raises(Op2Error):
            rt.timing_summary()
        with pytest.raises(Op2Error):
            rt.export_trace(tmp_path / "never.json")


class TestSimTrace:
    def test_sim_trace_satisfies_same_schema(self, tmp_path):
        from repro.backends.costs import LoopCostModel
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_backend, simulate_backend
        from repro.sim.chrometrace import export_chrome_trace

        cfg = ExperimentConfig(ni=16, nj=6, niter=1, block_size=16)
        run = run_backend("openmp", cfg, validate=False)
        res = simulate_backend(run, cfg, 2, LoopCostModel(), trace=True)
        path = tmp_path / "sim.json"
        export_chrome_trace(res.trace, path)
        durations = _check_trace_schema(json.loads(path.read_text()))
        assert {e["args"]["kind"] for e in durations} >= {"work"}


class TestNoPerturbation:
    @pytest.mark.parametrize("backend", ["openmp", "hpx_dataflow"])
    def test_tracing_does_not_change_results(self, backend, tiny_mesh):
        """Observability is read-only: traced and bare runs are bit-identical."""

        def run(**kwargs):
            with op2_session(
                backend=backend,
                num_threads=2,
                block_size=32,
                mode="threads",
                num_workers=2,
                **kwargs,
            ) as rt:
                app = AirfoilApp(tiny_mesh)
                result = app.run(rt, NITER)
            return (
                {name: getattr(app, name).data.copy() for name in STATE_DATS},
                result,
            )

        bare_state, bare = run()
        traced_state, traced = run(trace=True, timing=True)
        for name in STATE_DATS:
            assert np.array_equal(bare_state[name], traced_state[name]), (
                f"{backend}: {name} perturbed by tracing"
            )
        assert bare.rms_total == traced.rms_total
        assert bare.q_norm == traced.q_norm
