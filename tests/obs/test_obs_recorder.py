"""Unit tests for the wall-clock recorder and the per-kernel aggregation."""

import threading

import pytest

from repro.hpx.threadpool import ThreadPoolEngine
from repro.obs.recorder import ObsEvent, TraceRecorder
from repro.obs.timing import KernelTiming, TimingSummary


class TestRows:
    def test_creating_thread_is_row_zero(self):
        rec = TraceRecorder()
        assert rec.row() == 0
        assert 0 in rec.row_names()

    def test_worker_threads_get_stable_rows(self):
        rec = TraceRecorder()
        seen = []
        barrier = threading.Barrier(2)

        def probe():
            row = rec.row()
            barrier.wait()  # both alive at once: idents cannot be reused
            seen.append(row)
            assert rec.row() == row  # stable on repeat calls

        threads = [threading.Thread(target=probe) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == [1, 2]
        assert rec.row() == 0  # orchestrator row unchanged

    def test_row_zero_pinned_even_if_worker_reports_first(self):
        """Busy attribution splits on row 0: a worker must never claim it."""
        rec = TraceRecorder()
        rows = []
        t = threading.Thread(target=lambda: rows.append(rec.row()))
        t.start()
        t.join()
        assert rows == [1]


class TestRecording:
    def test_span_records_event_and_optional_busy(self):
        rec = TraceRecorder()
        rec.span("res_calc.c0.prefix", "prefix", "res_calc", 0.0, 0.5, 0, busy=True)
        rec.span("res_calc.c0", "color", "res_calc", 0.0, 1.0, 0)
        assert [e.kind for e in rec.events] == ["prefix", "color"]
        # Only busy=True spans count toward the row's busy attribution.
        assert rec.summary().busy[0] == pytest.approx(0.5)

    def test_task_span_accumulates_per_loop_totals(self):
        rec = TraceRecorder()
        rec.task_span("res_calc", 0, 0, 0.0, 0.25)
        rec.task_span("res_calc", 0, 1, 0.1, 0.2)
        rec.task_span("update", 0, 0, 0.0, 1.0)
        assert rec.take_task_totals("res_calc") == (2, pytest.approx(0.35))
        # Drained: a second take sees nothing.
        assert rec.take_task_totals("res_calc") == (0, 0.0)
        assert rec.take_task_totals("update") == (1, pytest.approx(1.0))
        assert rec.total_tasks == 3

    def test_events_can_be_disabled_for_timing_only_mode(self):
        rec = TraceRecorder(events=False)
        rec.span("x.c0", "color", "x", 0.0, 1.0, 0, busy=True)
        rec.task_span("x", 0, 0, 0.0, 0.5)
        assert rec.events == []
        # Aggregates still accumulate: 1.0 busy span + 0.5 task time.
        assert rec.summary().busy[0] == pytest.approx(1.5)

    def test_event_duration(self):
        e = ObsEvent("n", "task", "loop", 1, 0.25, 1.0, 0)
        assert e.duration == pytest.approx(0.75)


class TestAggregation:
    def test_kernel_timing_accumulates(self):
        kt = KernelTiming("res_calc")
        kt.add(0.2, ncolors=3, ntasks=12, task_time=0.5, prefix_time=0.01,
               fold_time=0.02)
        kt.add(0.4, ncolors=3, ntasks=12, task_time=0.7)
        assert kt.count == 2
        assert kt.total == pytest.approx(0.6)
        assert kt.mean == pytest.approx(0.3)
        assert (kt.min, kt.max) == (0.2, 0.4)
        assert kt.colors == 3
        assert kt.tasks == 24
        assert kt.task_time == pytest.approx(1.2)

    def test_record_loop_builds_summary(self):
        rec = TraceRecorder()
        rec.record_loop("adt_calc", 0.1, ncolors=1, ntasks=4, task_time=0.3)
        rec.record_loop("adt_calc", 0.2, ncolors=1, ntasks=4, task_time=0.4)
        rec.record_loop("update", 0.05, ncolors=1, ntasks=2)
        summary = rec.summary(num_workers=4)
        assert set(summary.kernels) == {"adt_calc", "update"}
        assert summary.kernels["adt_calc"].count == 2
        assert summary.num_workers == 4
        assert summary.total_tasks == 10

    def test_utilization_and_worker_busy_exclude_orchestrator(self):
        summary = TimingSummary(
            kernels={}, wall=1.0, busy={0: 5.0, 1: 0.5, 2: 0.3}, num_workers=2
        )
        assert summary.worker_busy == pytest.approx(0.8)
        assert summary.utilization() == pytest.approx(0.4)

    def test_render_contains_table_and_footer(self):
        rec = TraceRecorder()
        rec.record_loop("res_calc", 0.2, ncolors=3, ntasks=12, task_time=0.5)
        text = rec.summary(num_workers=2).render()
        assert "kernel" in text and "res_calc" in text
        for col in ("count", "total ms", "colors", "tasks", "task ms"):
            assert col in text
        assert "worker(s):" in text and "utilization" in text


class TestPoolIntegration:
    def test_run_batch_reports_task_spans(self):
        rec = TraceRecorder()
        with ThreadPoolEngine(2) as pool:
            pool.recorder = rec
            out = pool.run_batch(
                [lambda: 1, lambda: 2, lambda: 3], loop="res_calc", color=1
            )
        assert out == [1, 2, 3]
        assert rec.batches == 1
        tasks = [e for e in rec.events if e.kind == "task"]
        assert len(tasks) == 3
        assert {e.name for e in tasks} == {
            "res_calc.c1.t0", "res_calc.c1.t1", "res_calc.c1.t2"
        }
        assert all(e.loop == "res_calc" and e.color == 1 for e in tasks)
        assert all(e.row > 0 for e in tasks)  # never the orchestrator row
        assert rec.take_task_totals("res_calc")[0] == 3

    def test_failed_tasks_still_report_spans(self):
        rec = TraceRecorder()
        with ThreadPoolEngine(2) as pool:
            pool.recorder = rec
            def boom():
                raise ValueError("x")

            with pytest.raises(ValueError):
                pool.run_batch([lambda: 1, boom], loop="bad", color=0)
        assert len([e for e in rec.events if e.kind == "task"]) == 2

    def test_no_recorder_means_no_events(self):
        with ThreadPoolEngine(2) as pool:
            assert pool.recorder is None
            assert pool.run_batch([lambda: 1]) == [1]
