"""Tests for the Airfoil application driver and the numpy reference."""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, ReferenceAirfoil, generate_mesh
from repro.airfoil.app import INNER_ITERS
from repro.airfoil.validation import compare_results, compare_states, max_rel_diff
from repro.op2 import op2_session
from repro.util.validate import ValidationError


class TestReferenceSolver:
    def test_rms_accumulates_monotonically(self, small_mesh):
        ref = ReferenceAirfoil(small_mesh)
        prev = 0.0
        for _ in range(4):
            ref.step()
            assert ref.rms > prev
            prev = ref.rms

    def test_solution_stays_finite(self, small_mesh):
        ref = ReferenceAirfoil(small_mesh)
        res = ref.run(30)
        assert np.isfinite(res.q_norm)
        assert np.isfinite(res.rms_total)

    def test_transient_decays(self):
        # Per-step residual increments should shrink as the impulsive-start
        # transient settles: the scheme is stable on the generated mesh.
        mesh = generate_mesh(ni=32, nj=16)
        ref = ReferenceAirfoil(mesh)
        increments = []
        prev = 0.0
        for _ in range(40):
            ref.step()
            increments.append(ref.rms - prev)
            prev = ref.rms
        assert np.mean(increments[-5:]) < np.mean(increments[:5])

    def test_history_length(self, small_mesh):
        res = ReferenceAirfoil(small_mesh).run(5)
        assert len(res.rms_history) == 5
        assert res.iterations == 5

    def test_uniform_interior_residual_zero(self, small_mesh):
        # Before any update, with uniform freestream, interior cells (away
        # from both boundaries) must have exactly telescoping fluxes.
        ref = ReferenceAirfoil(small_mesh)
        ref._adt_calc()
        ref._res_calc()
        ni, nj = small_mesh.ni, small_mesh.nj
        res = ref.res.reshape(nj, ni, 4)
        interior = res[1 : nj - 1]
        assert np.max(np.abs(interior)) < 1e-12


class TestAirfoilApp:
    def test_final_rms_normalization(self, small_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(small_mesh)
            res = app.run(rt, 2)
        expected = np.sqrt(res.rms_total / small_mesh.cells.size)
        assert res.final_rms(small_mesh.cells.size) == pytest.approx(expected)

    def test_sync_backend_collects_history(self, small_mesh):
        with op2_session(backend="openmp", block_size=32) as rt:
            app = AirfoilApp(small_mesh)
            res = app.run(rt, 3)
        assert len(res.rms_history) == 3
        assert res.rms_history == sorted(res.rms_history)

    def test_async_backend_skips_history(self, small_mesh):
        with op2_session(backend="hpx_dataflow", num_threads=2, block_size=32) as rt:
            app = AirfoilApp(small_mesh)
            res = app.run(rt, 2)
        assert res.rms_history == []

    def test_loop_count_per_step(self, small_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(small_mesh)
            app.run(rt, 2)
            loops = rt.log.loops()
        per_step = 1 + INNER_ITERS * 4
        assert len(loops) == 2 * per_step
        assert loops[0].loop.name == "save_soln"
        assert loops[1].loop.name == "adt_calc"


class TestValidationHelpers:
    def test_max_rel_diff_zero_for_identical(self):
        a = np.ones((3, 2))
        assert max_rel_diff(a, a.copy()) == 0.0

    def test_max_rel_diff_scales_by_magnitude(self):
        a = np.array([100.0, 0.0])
        b = np.array([100.0, 1.0])
        assert max_rel_diff(a, b) == pytest.approx(0.01)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            max_rel_diff(np.ones(3), np.ones(4))

    def test_compare_states_raises_beyond_tol(self, small_mesh):
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(small_mesh)
            app.run(rt, 1)
        ref = ReferenceAirfoil(small_mesh)
        ref.run(1)
        app.p_q.data[0, 0] += 1.0
        with pytest.raises(ValidationError, match="deviates"):
            compare_states(app, ref, tol=1e-9)

    def test_compare_results_iteration_mismatch(self, small_mesh):
        ref = ReferenceAirfoil(small_mesh)
        a = ref.run(1)
        ref2 = ReferenceAirfoil(small_mesh)
        b = ref2.run(2)
        with pytest.raises(ValidationError, match="iteration"):
            compare_results(a, b)
