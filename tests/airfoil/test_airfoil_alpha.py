"""Tests for angle-of-attack support."""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, generate_mesh
from repro.airfoil.constants import FlowConstants
from repro.airfoil.metrics import compute_forces
from repro.op2 import op2_session


class TestFreestreamRotation:
    def test_zero_alpha_is_x_aligned(self):
        q = FlowConstants().freestream()
        assert q[2] == 0.0

    def test_alpha_rotates_velocity(self):
        c = FlowConstants(alpha_deg=10.0)
        q = c.freestream()
        u, v = q[1] / q[0], q[2] / q[0]
        assert v > 0
        assert np.arctan2(v, u) == pytest.approx(np.radians(10.0))

    def test_speed_preserved_under_rotation(self):
        q0 = FlowConstants().freestream()
        q10 = FlowConstants(alpha_deg=10.0).freestream()
        s0 = np.hypot(q0[1], q0[2])
        s10 = np.hypot(q10[1], q10[2])
        assert s0 == pytest.approx(s10)

    def test_energy_independent_of_alpha(self):
        assert FlowConstants().freestream()[3] == pytest.approx(
            FlowConstants(alpha_deg=7.0).freestream()[3]
        )

    def test_alpha_property_radians(self):
        assert FlowConstants(alpha_deg=45.0).alpha == pytest.approx(np.pi / 4)


class TestLiftAtIncidence:
    def test_incidence_generates_lift(self):
        """A symmetric airfoil at incidence develops positive lift; at zero
        incidence it does not — the classic aerodynamic sanity check."""
        mesh = generate_mesh(ni=48, nj=24)

        def lift(alpha):
            constants = FlowConstants(alpha_deg=alpha)
            with op2_session(backend="seq", block_size=64) as rt:
                app = AirfoilApp(mesh, constants)
                app.run(rt, 40)
                return compute_forces(app, rt).lift

        l0 = lift(0.0)
        l5 = lift(5.0)
        assert abs(l0) < 1e-6
        assert l5 > 10 * abs(l0)
        assert l5 > 0.0

    def test_solver_stable_at_incidence(self):
        mesh = generate_mesh(ni=32, nj=16)
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(mesh, FlowConstants(alpha_deg=5.0))
            result = app.run(rt, 30)
        assert np.isfinite(result.q_norm)
        assert np.isfinite(result.rms_total)
