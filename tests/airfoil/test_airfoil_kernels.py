"""Elemental vs vectorized agreement for every Airfoil kernel."""

import numpy as np
import pytest

from repro.airfoil.constants import DEFAULT_CONSTANTS, FlowConstants
from repro.airfoil.kernels import make_kernels
from repro.airfoil.meshgen import FARFIELD, WALL
from repro.util.rng import seeded_rng


@pytest.fixture(scope="module")
def kernels():
    return make_kernels(DEFAULT_CONSTANTS)


def random_state(rng, n):
    """A physically plausible random conservative state (positive rho, p)."""
    q = np.empty((n, 4))
    q[:, 0] = 0.5 + rng.random(n)  # rho in [0.5, 1.5]
    q[:, 1] = rng.normal(0.3, 0.2, n)
    q[:, 2] = rng.normal(0.0, 0.2, n)
    kinetic = 0.5 * (q[:, 1] ** 2 + q[:, 2] ** 2) / q[:, 0]
    q[:, 3] = kinetic + (0.5 + rng.random(n)) / 0.4  # positive pressure
    return q


class TestFlowConstants:
    def test_gm1(self):
        assert FlowConstants().gm1 == pytest.approx(0.4)

    def test_freestream_realizes_mach(self):
        c = FlowConstants(mach=0.4)
        q = c.freestream()
        u = q[1] / q[0]
        sound = np.sqrt(c.gam * 1.0 / 1.0)
        assert u / sound == pytest.approx(0.4)

    def test_freestream_no_crossflow(self):
        assert FlowConstants().freestream()[2] == 0.0


class TestSaveSoln:
    def test_elemental_matches_vectorized(self, kernels):
        rng = seeded_rng(1)
        k = kernels["save_soln"]
        q = random_state(rng, 10)
        qold_v = np.zeros_like(q)
        qold_e = np.zeros_like(q)
        k.vectorized(q, qold_v)
        for i in range(10):
            k.elemental(q[i], qold_e[i])
        np.testing.assert_array_equal(qold_v, qold_e)
        np.testing.assert_array_equal(qold_v, q)


class TestAdtCalc:
    def test_elemental_matches_vectorized(self, kernels):
        rng = seeded_rng(2)
        k = kernels["adt_calc"]
        n = 16
        xs = [rng.random((n, 2)) for _ in range(4)]
        q = random_state(rng, n)
        adt_v = np.zeros((n, 1))
        adt_e = np.zeros((n, 1))
        k.vectorized(*xs, q, adt_v)
        for i in range(n):
            k.elemental(*(x[i] for x in xs), q[i], adt_e[i])
        np.testing.assert_allclose(adt_v, adt_e, rtol=1e-14)

    def test_positive_timestep_measure(self, kernels):
        rng = seeded_rng(3)
        k = kernels["adt_calc"]
        n = 8
        xs = [rng.random((n, 2)) for _ in range(4)]
        q = random_state(rng, n)
        adt = np.zeros((n, 1))
        k.vectorized(*xs, q, adt)
        assert np.all(adt > 0)

    def test_scales_inverse_with_cfl(self):
        rng = seeded_rng(4)
        n = 4
        xs = [rng.random((n, 2)) for _ in range(4)]
        q = random_state(rng, n)
        a1 = np.zeros((n, 1))
        a2 = np.zeros((n, 1))
        make_kernels(FlowConstants(cfl=0.9))["adt_calc"].vectorized(*xs, q, a1)
        make_kernels(FlowConstants(cfl=0.45))["adt_calc"].vectorized(*xs, q, a2)
        np.testing.assert_allclose(a2, 2 * a1, rtol=1e-14)


class TestResCalc:
    def test_elemental_matches_vectorized(self, kernels):
        rng = seeded_rng(5)
        k = kernels["res_calc"]
        n = 20
        x1, x2 = rng.random((n, 2)), rng.random((n, 2))
        q1, q2 = random_state(rng, n), random_state(rng, n)
        adt1, adt2 = rng.random((n, 1)) + 0.1, rng.random((n, 1)) + 0.1
        rv1, rv2 = np.zeros((n, 4)), np.zeros((n, 4))
        re1, re2 = np.zeros((n, 4)), np.zeros((n, 4))
        k.vectorized(x1, x2, q1, q2, adt1, adt2, rv1, rv2)
        for i in range(n):
            k.elemental(x1[i], x2[i], q1[i], q2[i], adt1[i], adt2[i], re1[i], re2[i])
        np.testing.assert_allclose(rv1, re1, rtol=1e-13)
        np.testing.assert_allclose(rv2, re2, rtol=1e-13)

    def test_antisymmetric_contributions(self, kernels):
        # What flows out of cell 1 flows into cell 2: res1 == -res2.
        rng = seeded_rng(6)
        k = kernels["res_calc"]
        n = 10
        x1, x2 = rng.random((n, 2)), rng.random((n, 2))
        q1, q2 = random_state(rng, n), random_state(rng, n)
        adt1, adt2 = rng.random((n, 1)) + 0.1, rng.random((n, 1)) + 0.1
        r1, r2 = np.zeros((n, 4)), np.zeros((n, 4))
        k.vectorized(x1, x2, q1, q2, adt1, adt2, r1, r2)
        np.testing.assert_allclose(r1, -r2, rtol=1e-13)

    def test_uniform_state_pure_pressure_flux(self, kernels):
        # With q1 == q2 the dissipation vanishes; mass flux = vol * rho.
        k = kernels["res_calc"]
        q = DEFAULT_CONSTANTS.freestream()[None, :]
        x1 = np.array([[0.0, 0.0]])
        x2 = np.array([[0.0, 1.0]])
        adt = np.array([[1.0]])
        r1, r2 = np.zeros((1, 4)), np.zeros((1, 4))
        k.vectorized(x1, x2, q, q, adt, adt, r1, r2)
        # dy = -1: vol = u*dy*rho... mass component = vol * rho.
        u = q[0, 1] / q[0, 0]
        assert r1[0, 0] == pytest.approx(-u * q[0, 0])


class TestBresCalc:
    def _inputs(self, rng, n, bound_value):
        x1, x2 = rng.random((n, 2)), rng.random((n, 2))
        q1 = random_state(rng, n)
        adt1 = rng.random((n, 1)) + 0.1
        res = np.zeros((n, 4))
        bound = np.full((n, 1), bound_value, dtype=np.int64)
        qinf = DEFAULT_CONSTANTS.freestream()
        return x1, x2, q1, adt1, res, bound, qinf

    @pytest.mark.parametrize("tag", [WALL, FARFIELD])
    def test_elemental_matches_vectorized(self, kernels, tag):
        rng = seeded_rng(7)
        k = kernels["bres_calc"]
        n = 12
        x1, x2, q1, adt1, res_v, bound, qinf = self._inputs(rng, n, tag)
        res_e = np.zeros_like(res_v)
        k.vectorized(x1, x2, q1, adt1, res_v, bound, qinf)
        for i in range(n):
            k.elemental(x1[i], x2[i], q1[i], adt1[i], res_e[i], bound[i], qinf)
        np.testing.assert_allclose(res_v, res_e, rtol=1e-13)

    def test_wall_touches_only_momentum(self, kernels):
        rng = seeded_rng(8)
        k = kernels["bres_calc"]
        x1, x2, q1, adt1, res, bound, qinf = self._inputs(rng, 6, WALL)
        k.vectorized(x1, x2, q1, adt1, res, bound, qinf)
        assert np.all(res[:, 0] == 0.0)
        assert np.all(res[:, 3] == 0.0)
        assert np.any(res[:, 1] != 0.0)

    def test_farfield_freestream_matches_interior_flux(self, kernels):
        # A far-field edge with q1 == qinf must reproduce the one-sided
        # interior flux (zero net dissipation).
        k = kernels["bres_calc"]
        qinf = DEFAULT_CONSTANTS.freestream()
        x1 = np.array([[0.2, 0.1]])
        x2 = np.array([[0.7, 0.9]])
        q1 = qinf[None, :].copy()
        adt1 = np.array([[0.5]])
        res = np.zeros((1, 4))
        bound = np.array([[FARFIELD]], dtype=np.int64)
        k.vectorized(x1, x2, q1, adt1, res, bound, qinf)
        # Compare against res_calc's cell-1 contribution for q1 == q2 == qinf.
        rk = kernels["res_calc"]
        r1, r2 = np.zeros((1, 4)), np.zeros((1, 4))
        rk.vectorized(x1, x2, q1, q1, adt1, adt1, r1, r2)
        np.testing.assert_allclose(res, r1, rtol=1e-13)


class TestUpdate:
    def test_elemental_matches_vectorized(self, kernels):
        rng = seeded_rng(9)
        k = kernels["update"]
        n = 15
        qold = random_state(rng, n)
        res = rng.normal(0, 0.1, (n, 4))
        adt = rng.random((n, 1)) + 0.2
        qv, qe = np.zeros((n, 4)), np.zeros((n, 4))
        rv, re = res.copy(), res.copy()
        rmsv, rmse = np.zeros((n, 1)), np.zeros((n, 1))
        k.vectorized(qold, qv, rv, adt, rmsv)
        for i in range(n):
            k.elemental(qold[i], qe[i], re[i], adt[i], rmse[i])
        np.testing.assert_allclose(qv, qe, rtol=1e-14)
        np.testing.assert_array_equal(rv, re)
        np.testing.assert_allclose(rmsv, rmse, rtol=1e-13)

    def test_resets_residual(self, kernels):
        rng = seeded_rng(10)
        k = kernels["update"]
        res = rng.random((5, 4))
        qold = random_state(rng, 5)
        k.vectorized(qold, np.zeros((5, 4)), res, np.ones((5, 1)), np.zeros((5, 1)))
        assert np.all(res == 0.0)

    def test_zero_residual_keeps_solution(self, kernels):
        rng = seeded_rng(11)
        k = kernels["update"]
        qold = random_state(rng, 5)
        q = np.zeros_like(qold)
        rms = np.zeros((5, 1))
        k.vectorized(qold, q, np.zeros((5, 4)), np.ones((5, 1)), rms)
        np.testing.assert_array_equal(q, qold)
        assert np.all(rms == 0.0)


class TestKernelCosts:
    def test_all_kernels_have_costs_and_vectorized(self, kernels):
        for k in kernels.values():
            assert k.has_vectorized
            assert k.cost.unit_cost > 0

    def test_save_soln_most_memory_bound(self, kernels):
        assert kernels["save_soln"].cost.mem_fraction == max(
            k.cost.mem_fraction for k in kernels.values()
        )
