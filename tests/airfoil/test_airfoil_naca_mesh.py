"""Tests for NACA geometry and the O-mesh generator."""

import numpy as np
import pytest

from repro.airfoil.meshgen import (
    FARFIELD,
    WALL,
    generate_mesh,
    scaled_mesh_dims,
)
from repro.airfoil.naca import naca4_camber, naca4_surface, naca4_thickness
from repro.util.validate import ValidationError


class TestNacaThickness:
    def test_zero_at_leading_edge(self):
        assert naca4_thickness(np.array([0.0]))[0] == 0.0

    def test_closed_trailing_edge(self):
        assert naca4_thickness(np.array([1.0]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_max_thickness_near_30_percent(self):
        x = np.linspace(0, 1, 1001)
        yt = naca4_thickness(x, 0.12)
        peak = x[np.argmax(yt)]
        assert 0.25 < peak < 0.35
        assert np.max(yt) == pytest.approx(0.06, abs=0.005)  # half-thickness

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            naca4_thickness(np.array([1.5]))

    def test_invalid_thickness(self):
        with pytest.raises(ValidationError):
            naca4_thickness(np.array([0.5]), thickness=0.0)


class TestNacaCamber:
    def test_symmetric_zero_camber(self):
        assert np.all(naca4_camber(np.linspace(0, 1, 11)) == 0.0)

    def test_cambered_positive(self):
        yc = naca4_camber(np.linspace(0.01, 0.99, 50), m=0.02, p=0.4)
        assert np.all(yc > 0)

    def test_camber_peak_at_p(self):
        x = np.linspace(0, 1, 1001)
        yc = naca4_camber(x, m=0.02, p=0.4)
        assert x[np.argmax(yc)] == pytest.approx(0.4, abs=0.01)


class TestNacaSurface:
    def test_point_count_and_shape(self):
        s = naca4_surface(64)
        assert s.shape == (64, 2)

    def test_clockwise_loop_for_ccw_cells(self):
        # The surface loop runs TE -> lower -> LE -> upper (clockwise as a
        # polygon); combined with the outward radial direction this makes
        # the O-mesh cells counterclockwise, which the kernels require.
        s = naca4_surface(64)
        area2 = np.sum(
            s[:, 0] * np.roll(s[:, 1], -1) - np.roll(s[:, 0], -1) * s[:, 1]
        )
        assert area2 < 0

    def test_starts_at_trailing_edge(self):
        s = naca4_surface(32)
        assert s[0, 0] == pytest.approx(1.0)
        assert s[0, 1] == pytest.approx(0.0, abs=1e-12)

    def test_odd_count_rejected(self):
        with pytest.raises(ValidationError):
            naca4_surface(33)

    def test_too_few_rejected(self):
        with pytest.raises(ValidationError):
            naca4_surface(4)


class TestMeshTopology:
    @pytest.fixture(scope="class")
    def mesh(self):
        return generate_mesh(ni=16, nj=6)

    def test_set_sizes(self, mesh):
        ni, nj = 16, 6
        assert mesh.nodes.size == ni * (nj + 1)
        assert mesh.cells.size == ni * nj
        assert mesh.edges.size == ni * nj + ni * (nj - 1)
        assert mesh.bedges.size == 2 * ni

    def test_every_interior_edge_has_two_distinct_cells(self, mesh):
        pc = mesh.pecell.values
        assert np.all(pc[:, 0] != pc[:, 1])

    def test_every_edge_has_two_distinct_nodes(self, mesh):
        pe = mesh.pedge.values
        assert np.all(pe[:, 0] != pe[:, 1])

    def test_cell_corner_count(self, mesh):
        # Each interior node belongs to exactly 4 cells; wall/far nodes to 2.
        counts = np.bincount(mesh.pcell.values.ravel(), minlength=mesh.nodes.size)
        ni, nj = mesh.ni, mesh.nj
        interior = counts.reshape(nj + 1, ni)[1:nj]
        boundary = np.concatenate(
            [counts.reshape(nj + 1, ni)[0], counts.reshape(nj + 1, ni)[nj]]
        )
        assert np.all(interior == 4)
        assert np.all(boundary == 2)

    def test_edge_cell_adjacency_conservation(self, mesh):
        # Each cell is flanked by exactly 4 faces (edges + bedges).
        face_count = np.bincount(mesh.pecell.values.ravel(), minlength=mesh.cells.size)
        face_count += np.bincount(
            mesh.pbecell.values.ravel(), minlength=mesh.cells.size
        )
        assert np.all(face_count == 4)

    def test_boundary_tags(self, mesh):
        bound = mesh.bound.data[:, 0]
        assert np.sum(bound == WALL) == mesh.ni
        assert np.sum(bound == FARFIELD) == mesh.ni

    def test_all_cells_positively_oriented(self, mesh):
        x = mesh.x.data
        pc = mesh.pcell.values
        areas = np.zeros(mesh.cells.size)
        for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
            areas += (
                x[pc[:, a], 0] * x[pc[:, b], 1] - x[pc[:, b], 0] * x[pc[:, a], 1]
            )
        assert np.all(areas > 0)

    def test_signed_face_vectors_telescope(self, mesh):
        """Sum of outward face vectors around every cell is ~0 (closure)."""
        x = mesh.x.data
        net = np.zeros((mesh.cells.size, 2))
        d = x[mesh.pedge.values[:, 0]] - x[mesh.pedge.values[:, 1]]
        # res_calc adds with the edge vector for cell1 and subtracts for cell2.
        np.add.at(net, mesh.pecell.values[:, 0], d)
        np.add.at(net, mesh.pecell.values[:, 1], -d)
        db = x[mesh.pbedge.values[:, 0]] - x[mesh.pbedge.values[:, 1]]
        np.add.at(net, mesh.pbecell.values[:, 0], db)
        assert np.max(np.abs(net)) < 1e-12

    def test_far_field_radius(self, mesh):
        outer = mesh.x.data[mesh.nj * mesh.ni :]
        r = np.hypot(outer[:, 0] - 0.5, outer[:, 1])
        assert np.allclose(r, 10.0)

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValidationError):
            generate_mesh(ni=15, nj=6)  # odd ni
        with pytest.raises(ValidationError):
            generate_mesh(ni=16, nj=1)
        with pytest.raises(ValidationError):
            generate_mesh(ni=16, nj=6, far_radius=0.5)

    def test_summary_mentions_sizes(self, mesh):
        s = mesh.summary()
        assert str(mesh.cells.size) in s


class TestScaledMeshDims:
    def test_identity_at_factor_one(self):
        assert scaled_mesh_dims(16, 8, 1.0) == (16, 8)

    def test_cell_count_roughly_scales(self):
        ni, nj = scaled_mesh_dims(32, 16, 4.0)
        assert ni * nj == pytest.approx(4 * 32 * 16, rel=0.15)

    def test_ni_stays_even(self):
        for f in (1.5, 2.0, 3.7, 8.0):
            ni, _ = scaled_mesh_dims(18, 10, f)
            assert ni % 2 == 0

    def test_invalid_factor(self):
        with pytest.raises(ValidationError):
            scaled_mesh_dims(16, 8, 0.0)
