"""Tests for mesh quality metrics."""

import numpy as np

from repro.airfoil import generate_mesh
from repro.airfoil.quality import cell_quality_arrays, mesh_quality


class TestCellQualityArrays:
    def test_areas_positive_on_generated_mesh(self):
        arrays = cell_quality_arrays(generate_mesh(ni=16, nj=6))
        assert np.all(arrays["area"] > 0)

    def test_aspect_at_least_one(self):
        arrays = cell_quality_arrays(generate_mesh(ni=16, nj=6))
        assert np.all(arrays["aspect"] >= 1.0)

    def test_skew_in_unit_range(self):
        arrays = cell_quality_arrays(generate_mesh(ni=24, nj=10))
        assert np.all(arrays["skew"] >= 0.0)
        assert np.all(arrays["skew"] <= 1.0)

    def test_clustering_raises_aspect(self):
        mild = cell_quality_arrays(generate_mesh(ni=24, nj=10, clustering=1.0))
        harsh = cell_quality_arrays(generate_mesh(ni=24, nj=10, clustering=16.0))
        assert harsh["aspect"].max() > mild["aspect"].max()


class TestMeshQuality:
    def test_default_mesh_is_healthy(self):
        q = mesh_quality(generate_mesh(ni=32, nj=16))
        assert q.healthy()
        assert q.min_area > 0

    def test_report_mentions_cells(self):
        q = mesh_quality(generate_mesh(ni=16, nj=6))
        assert "96 cells" in q.report()

    def test_extreme_clustering_flagged(self):
        # Pathological clustering produces needle cells the health bound
        # rejects under a tight aspect limit.
        q = mesh_quality(generate_mesh(ni=16, nj=20, clustering=64.0))
        assert not q.healthy(max_aspect=5.0)

    def test_smoothness_at_least_one(self):
        q = mesh_quality(generate_mesh(ni=16, nj=6))
        assert q.max_smoothness >= 1.0

    def test_finer_mesh_same_quality_class(self):
        coarse = mesh_quality(generate_mesh(ni=16, nj=8))
        fine = mesh_quality(generate_mesh(ni=64, nj=32))
        # Refinement must not degrade skewness materially.
        assert fine.max_skew <= coarse.max_skew + 0.1
