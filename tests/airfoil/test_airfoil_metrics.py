"""Tests for lift/drag force integration."""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, generate_mesh
from repro.airfoil.metrics import ForceCoefficients, compute_forces, reference_forces
from repro.op2 import op2_session


@pytest.fixture(scope="module")
def solved():
    """A short solve so the wall pressure differs from freestream."""
    mesh = generate_mesh(ni=32, nj=16)
    return mesh


class TestForceCoefficients:
    def test_magnitude(self):
        fc = ForceCoefficients(drag=3.0, lift=4.0)
        assert fc.magnitude() == pytest.approx(5.0)


class TestComputeForces:
    @pytest.mark.parametrize("backend", ["seq", "openmp", "hpx_async", "hpx_dataflow"])
    def test_matches_reference_integral(self, solved, backend):
        with op2_session(backend=backend, num_threads=2, block_size=32) as rt:
            app = AirfoilApp(solved)
            app.run(rt, 3)
            fc = compute_forces(app, rt)
        ref = reference_forces(app)
        assert fc.drag == pytest.approx(ref.drag, rel=1e-12, abs=1e-14)
        assert fc.lift == pytest.approx(ref.lift, rel=1e-12, abs=1e-14)

    def test_initial_uniform_state_closed_integral(self, solved):
        # Uniform pressure over a closed surface integrates to ~zero force.
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(solved)
            fc = compute_forces(app, rt)
        assert abs(fc.drag) < 1e-10
        assert abs(fc.lift) < 1e-10

    def test_symmetric_airfoil_zero_lift(self, solved):
        # NACA0012 at zero incidence: lift stays ~zero while drag-direction
        # pressure imbalance develops during the transient.
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(solved)
            app.run(rt, 10)
            fc = compute_forces(app, rt)
        assert abs(fc.lift) < 1e-8 + 0.05 * abs(fc.drag) + 1e-6

    def test_forces_finite_and_stable(self, solved):
        with op2_session(backend="seq", block_size=32) as rt:
            app = AirfoilApp(solved)
            app.run(rt, 20)
            fc = compute_forces(app, rt)
        assert np.isfinite(fc.drag) and np.isfinite(fc.lift)
        assert fc.magnitude() < 10.0
