"""Tests for repro.util.rng and repro.util.timing."""

import time

from repro.util.rng import DEFAULT_SEED, derive_seed, seeded_rng
from repro.util.timing import WallTimer


class TestSeededRng:
    def test_default_is_deterministic(self):
        assert seeded_rng().random() == seeded_rng().random()

    def test_explicit_seed_honored(self):
        assert seeded_rng(7).random() == seeded_rng(7).random()
        assert seeded_rng(7).random() != seeded_rng(8).random()

    def test_default_seed_constant(self):
        assert seeded_rng().random() == seeded_rng(DEFAULT_SEED).random()


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_decorrelate(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_decorrelates(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_ambiguity(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")

    def test_result_fits_in_64_bits(self):
        assert 0 <= derive_seed(123, "x") < 2**64


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_lap_monotonic(self):
        with WallTimer() as t:
            first = t.lap()
            second = t.lap()
        assert second >= first >= 0.0

    def test_restart_resets_origin(self):
        with WallTimer() as t:
            time.sleep(0.01)
            t.restart()
            lap = t.lap()
        assert lap < 0.01
