"""Tests for repro.util.validate."""

import pytest

from repro.util.validate import (
    ReproError,
    ValidationError,
    check_in_range,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        check_type("x", 3, int)

    def test_accepts_tuple_of_types(self):
        check_type("x", 3.0, (int, float))

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="x must be int"):
            check_type("x", "3", int)

    def test_message_names_actual_type(self):
        with pytest.raises(ValidationError, match="str"):
            check_type("x", "3", int)

    def test_validation_error_is_repro_error(self):
        assert issubclass(ValidationError, ReproError)

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("n", 1)
        check_positive("n", 0.001)

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValidationError):
            check_positive("n", 0)

    def test_accepts_zero_when_not_strict(self):
        check_positive("n", 0, strict=False)

    def test_rejects_negative_always(self):
        with pytest.raises(ValidationError):
            check_positive("n", -1)
        with pytest.raises(ValidationError):
            check_positive("n", -1, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_positive("n", float("nan"))


class TestCheckInRange:
    def test_accepts_interior(self):
        check_in_range("f", 0.5, 0.0, 1.0)

    def test_bounds_inclusive_by_default(self):
        check_in_range("f", 0.0, 0.0, 1.0)
        check_in_range("f", 1.0, 0.0, 1.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range("f", 0.0, 0.0, 1.0, lo_inclusive=False)
        with pytest.raises(ValidationError):
            check_in_range("f", 1.0, 0.0, 1.0, hi_inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range("f", 1.5, 0.0, 1.0)
        with pytest.raises(ValidationError):
            check_in_range("f", -0.1, 0.0, 1.0)

    def test_message_shows_interval_notation(self):
        with pytest.raises(ValidationError, match=r"\(0, 1\]"):
            check_in_range("f", 2, 0, 1, lo_inclusive=False)
