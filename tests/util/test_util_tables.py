"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, ascii_plot, format_series


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["a", "bb"])
        t.add_row([1, 2])
        t.add_row([100, 2000])
        lines = t.render().splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_header_and_rule(self):
        t = Table(["x"])
        t.add_row([5])
        lines = t.render().splitlines()
        assert lines[0].strip() == "x"
        assert set(lines[1]) <= {"-", "+"}
        assert lines[2].strip() == "5"

    def test_float_formatting(self):
        t = Table(["v"], float_fmt="{:.2f}")
        t.add_row([3.14159])
        assert "3.14" in t.render()
        assert "3.14159" not in t.render()

    def test_row_width_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_empty_table_renders_header_only(self):
        t = Table(["a"])
        assert len(t.render().splitlines()) == 2

    def test_str_is_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()


class TestFormatSeries:
    def test_pairs_rendered(self):
        s = format_series("omp", [1, 2], [10.0, 5.0])
        assert s.startswith("omp:")
        assert "1:10" in s and "2:5" in s


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot({"a": ([1, 2, 3], [1.0, 2.0, 3.0])})
        assert "o=a" in out
        assert "o" in out.replace("o=a", "")

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot(
            {"a": ([1, 2], [1.0, 2.0]), "b": ([1, 2], [2.0, 1.0])}
        )
        assert "o=a" in out and "x=b" in out

    def test_empty_plot(self):
        assert ascii_plot({}) == "(empty plot)"

    def test_flat_series_no_crash(self):
        out = ascii_plot({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])})
        assert "flat" in out

    def test_title_included(self):
        out = ascii_plot({"a": ([1], [1.0])}, title="speedup")
        assert out.splitlines()[0] == "speedup"
