"""Tests for repro.sim.task."""

import pytest

from repro.sim.task import SimTask, TaskGraph, TaskGraphError


class TestSimTask:
    def test_negative_cost_rejected(self):
        with pytest.raises(TaskGraphError):
            SimTask(name="t", cost=-1.0)

    def test_mem_fraction_bounds(self):
        with pytest.raises(TaskGraphError):
            SimTask(name="t", cost=1.0, mem_fraction=1.5)
        with pytest.raises(TaskGraphError):
            SimTask(name="t", cost=1.0, mem_fraction=-0.1)

    def test_defaults(self):
        t = SimTask(name="t", cost=1.0)
        assert t.affinity is None
        assert t.kind == "work"
        assert t.deps == ()


class TestTaskGraphConstruction:
    def test_ids_sequential(self):
        g = TaskGraph()
        assert g.add("a", 1.0) == 0
        assert g.add("b", 1.0) == 1

    def test_forward_dependency_rejected(self):
        g = TaskGraph()
        with pytest.raises(TaskGraphError):
            g.add("a", 1.0, deps=[0])  # self/forward reference

    def test_unknown_dependency_rejected(self):
        g = TaskGraph()
        g.add("a", 1.0)
        with pytest.raises(TaskGraphError):
            g.add("b", 1.0, deps=[5])

    def test_len_and_iter(self):
        g = TaskGraph()
        g.add("a", 1.0)
        g.add("b", 2.0, deps=[0])
        assert len(g) == 2
        assert [t.name for t in g] == ["a", "b"]

    def test_validate_passes_on_well_formed(self):
        g = TaskGraph()
        g.add("a", 1.0)
        g.add("b", 1.0, deps=[0])
        g.validate()


class TestTaskGraphAnalysis:
    def _chain(self, costs):
        g = TaskGraph()
        prev = None
        for i, c in enumerate(costs):
            prev = g.add(f"t{i}", c, [prev] if prev is not None else [])
        return g

    def test_total_work(self):
        g = self._chain([1.0, 2.0, 3.0])
        assert g.total_work() == 6.0

    def test_total_work_by_kind(self):
        g = TaskGraph()
        g.add("w", 5.0, kind="work")
        g.add("b", 2.0, kind="barrier")
        assert g.total_work("work") == 5.0
        assert g.total_work("barrier") == 2.0

    def test_critical_path_of_chain_is_total(self):
        g = self._chain([1.0, 2.0, 3.0])
        assert g.critical_path() == 6.0

    def test_critical_path_of_independent_tasks_is_max(self):
        g = TaskGraph()
        g.add("a", 5.0)
        g.add("b", 3.0)
        assert g.critical_path() == 5.0

    def test_critical_path_diamond(self):
        g = TaskGraph()
        top = g.add("top", 1.0)
        left = g.add("left", 10.0, [top])
        right = g.add("right", 2.0, [top])
        g.add("bottom", 1.0, [left, right])
        assert g.critical_path() == 12.0

    def test_successors(self):
        g = TaskGraph()
        a = g.add("a", 1.0)
        b = g.add("b", 1.0, [a])
        c = g.add("c", 1.0, [a])
        assert g.successors()[a] == [b, c]

    def test_roots(self):
        g = TaskGraph()
        a = g.add("a", 1.0)
        g.add("b", 1.0, [a])
        c = g.add("c", 1.0)
        assert g.roots() == [a, c]

    def test_by_kind_counts(self):
        g = TaskGraph()
        g.add("a", 1.0, kind="work")
        g.add("b", 1.0, kind="work")
        g.add("c", 1.0, kind="barrier")
        assert g.by_kind() == {"work": 2, "barrier": 1}

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.critical_path() == 0.0
        assert g.total_work() == 0.0
        assert g.roots() == []
