"""Tests for schedule analysis and the grain-size study."""

import numpy as np
import pytest

from repro.experiments.grainsize import best_grain, grain_size_curve, is_u_shaped
from repro.sim.analysis import (
    bottleneck_report,
    critical_loop_shares,
    critical_path_tasks,
    idle_gaps,
)
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig, paper_machine
from repro.sim.task import TaskGraph

IDEAL = MachineConfig(num_cores=4, smt_ways=1, task_overhead=0.0, steal_overhead=0.0)


class TestCriticalPathTasks:
    def test_chain_is_whole_graph(self):
        g = TaskGraph()
        a = g.add("a", 1.0)
        b = g.add("b", 2.0, [a])
        c = g.add("c", 3.0, [b])
        assert critical_path_tasks(g) == [a, b, c]

    def test_picks_longer_branch(self):
        g = TaskGraph()
        top = g.add("top", 1.0)
        long_branch = g.add("long", 10.0, [top])
        g.add("short", 1.0, [top])
        bottom = g.add("bottom", 1.0, [long_branch, 2])
        assert critical_path_tasks(g) == [top, long_branch, bottom]

    def test_chain_cost_equals_critical_path(self):
        rng = np.random.default_rng(0)
        g = TaskGraph()
        for i in range(30):
            deps = [int(d) for d in rng.choice(i, size=min(i, 2), replace=False)] if i else []
            g.add(f"t{i}", float(rng.random() + 0.1), deps)
        chain = critical_path_tasks(g)
        chain_cost = sum(g.tasks[t].cost for t in chain)
        assert chain_cost == pytest.approx(g.critical_path())

    def test_empty_graph(self):
        assert critical_path_tasks(TaskGraph()) == []


class TestCriticalLoopShares:
    def test_shares_sum_to_one(self):
        g = TaskGraph()
        a = g.add("a", 2.0, loop="adt")
        b = g.add("b", 3.0, [a], loop="res")
        shares = critical_loop_shares(g)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["res"] == pytest.approx(0.6)

    def test_kind_used_when_no_loop_label(self):
        g = TaskGraph()
        a = g.add("a", 1.0, kind="barrier")
        shares = critical_loop_shares(g)
        assert "barrier" in shares


class TestIdleGaps:
    def test_detects_tail_idle(self):
        g = TaskGraph()
        g.add("long", 10.0)
        g.add("short", 1.0)
        res = simulate(g, IDEAL, 2, trace=True)
        gaps = idle_gaps(res.trace)
        # Thread 1 idles from 1.0 to 10.0; threads 2,3 idle fully.
        assert any(g_.thread == 1 and g_.duration == pytest.approx(9.0) for g_ in gaps)

    def test_no_gaps_when_saturated(self):
        g = TaskGraph()
        for i in range(4):
            g.add(f"t{i}", 5.0)
        res = simulate(g, IDEAL, 4, trace=True)
        assert idle_gaps(res.trace, min_duration=1e-9) == []

    def test_min_duration_filter(self):
        g = TaskGraph()
        g.add("long", 10.0)
        g.add("short", 9.999)
        res = simulate(g, IDEAL, 2, trace=True)
        assert idle_gaps(res.trace, min_duration=0.5) == []


class TestBottleneckReport:
    def test_mentions_key_numbers(self):
        g = TaskGraph()
        a = g.add("a", 5.0, loop="adt_calc")
        g.add("b", 5.0, [a], loop="res_calc")
        res = simulate(g, IDEAL, 2, trace=True)
        report = bottleneck_report(g, res)
        assert "makespan" in report
        assert "critical path" in report
        assert "adt_calc" in report


class TestGrainSizeCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return grain_size_curve(paper_machine(), threads=16, total_work=50_000.0)

    def test_u_shape(self, curve):
        assert is_u_shaped(curve)

    def test_tiny_tasks_inefficient(self, curve):
        # Sub-microsecond tasks drown in the 0.35us dispatch overhead.
        assert curve[0].efficiency < 0.5

    def test_huge_tasks_starve(self, curve):
        # One task for the whole workload uses a single thread.
        assert curve[-1].num_tasks < 16
        assert curve[-1].efficiency < 0.5

    def test_best_grain_in_sweet_spot(self, curve):
        best = best_grain(curve)
        assert 0.6 < best.efficiency <= 1.0
        assert 3.0 < best.task_size < 10_000.0

    def test_efficiency_bounded_by_one(self, curve):
        assert all(0.0 < p.efficiency <= 1.0 + 1e-9 for p in curve)

    def test_invalid_inputs(self):
        with pytest.raises(Exception):
            grain_size_curve(paper_machine(), 4, total_work=-1.0)
        with pytest.raises(Exception):
            grain_size_curve(paper_machine(), 4, task_sizes=[0.0])

    def test_is_u_shaped_guards(self):
        assert not is_u_shaped([])
