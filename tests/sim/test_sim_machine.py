"""Tests for repro.sim.machine, barriers and bandwidth."""

import math

import pytest

from repro.sim.bandwidth import contention_factor
from repro.sim.barriers import BARRIER_MODELS, barrier_cost, join_cost
from repro.sim.machine import MachineConfig, paper_machine, thread_speeds
from repro.util.validate import ValidationError


class TestMachineConfig:
    def test_paper_machine_is_16c_32t(self):
        m = paper_machine()
        assert m.num_cores == 16
        assert m.smt_ways == 2
        assert m.max_threads == 32

    def test_invalid_cores(self):
        with pytest.raises(ValidationError):
            MachineConfig(num_cores=0)

    def test_invalid_smt_efficiency(self):
        with pytest.raises(ValidationError):
            MachineConfig(smt_efficiency=0.0)
        with pytest.raises(ValidationError):
            MachineConfig(smt_efficiency=1.5)

    def test_negative_overheads_rejected(self):
        with pytest.raises(ValidationError):
            MachineConfig(task_overhead=-0.1)
        with pytest.raises(ValidationError):
            MachineConfig(barrier_base=-1.0)

    def test_with_returns_modified_copy(self):
        m = paper_machine()
        m2 = m.with_(num_cores=8)
        assert m2.num_cores == 8
        assert m.num_cores == 16

    def test_frozen(self):
        with pytest.raises(Exception):
            paper_machine().num_cores = 4


class TestThreadSpeeds:
    def test_full_speed_up_to_core_count(self):
        m = paper_machine()
        assert thread_speeds(m, 16) == [1.0] * 16

    def test_all_shared_at_max_threads(self):
        m = paper_machine()
        speeds = thread_speeds(m, 32)
        assert speeds == [m.smt_efficiency] * 32

    def test_partial_ht_occupancy(self):
        m = paper_machine()
        speeds = thread_speeds(m, 20)
        # Threads 16..19 share cores 0..3 with threads 0..3.
        shared = [0, 1, 2, 3, 16, 17, 18, 19]
        for i in range(20):
            expected = m.smt_efficiency if i in shared else 1.0
            assert speeds[i] == expected

    def test_exceeding_capacity_rejected(self):
        with pytest.raises(ValidationError):
            thread_speeds(paper_machine(), 33)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValidationError):
            thread_speeds(paper_machine(), 0)

    def test_total_throughput_knee(self):
        # Throughput grows past 16 threads, but sub-linearly: the HT knee.
        m = paper_machine()
        t16 = sum(thread_speeds(m, 16))
        t32 = sum(thread_speeds(m, 32))
        assert t32 > t16
        assert t32 < 2 * t16


class TestBarrierCost:
    def test_linear_grows_with_threads(self):
        m = paper_machine()
        assert barrier_cost(m, 32) > barrier_cost(m, 2)

    def test_linear_formula(self):
        m = paper_machine()
        assert barrier_cost(m, 8) == pytest.approx(
            m.barrier_base + m.barrier_per_thread * 8
        )

    def test_logtree_scales_with_depth(self):
        m = MachineConfig(barrier_model="logtree")
        c8 = barrier_cost(m, 8)
        c64_equivalent = m.barrier_base + m.barrier_per_thread * 2 * math.ceil(
            math.log2(8)
        )
        assert c8 == pytest.approx(c64_equivalent)

    def test_flat_is_constant(self):
        m = MachineConfig(barrier_model="flat")
        assert barrier_cost(m, 2) == barrier_cost(m, 32) == m.barrier_base

    def test_unknown_model_rejected(self):
        m = MachineConfig(barrier_model="quantum")
        with pytest.raises(ValidationError, match="quantum"):
            barrier_cost(m, 4)

    def test_all_registered_models_work(self):
        for name in BARRIER_MODELS:
            assert barrier_cost(MachineConfig(barrier_model=name), 4) > 0

    def test_join_cheaper_than_barrier(self):
        m = paper_machine()
        assert join_cost(m, 32) < barrier_cost(m, 32)


class TestContentionFactor:
    def test_no_dilation_below_saturation(self):
        m = paper_machine()
        assert contention_factor(m, 8, 1.0) == 1.0

    def test_dilation_above_saturation(self):
        m = paper_machine()
        assert contention_factor(m, 16, 1.0) > 1.0

    def test_compute_bound_unaffected(self):
        m = paper_machine()
        assert contention_factor(m, 16, 0.0) == 1.0

    def test_partial_mem_fraction_interpolates(self):
        m = paper_machine()
        full = contention_factor(m, 16, 1.0)
        half = contention_factor(m, 16, 0.5)
        assert half == pytest.approx(0.5 + 0.5 * full)

    def test_hyperthreads_do_not_add_bandwidth_pressure(self):
        m = paper_machine()
        assert contention_factor(m, 32, 0.8) == contention_factor(m, 16, 0.8)

    def test_invalid_inputs(self):
        m = paper_machine()
        with pytest.raises(ValidationError):
            contention_factor(m, 0, 0.5)
        with pytest.raises(ValidationError):
            contention_factor(m, 4, 1.5)
