"""Tests for repro.sim.trace and repro.sim.metrics."""

import pytest

from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.sim.metrics import (
    crossover_point,
    efficiency_series,
    overhead_breakdown,
    speedup_series,
)
from repro.sim.task import TaskGraph
from repro.sim.trace import Trace, TraceRecord
from repro.util.validate import ValidationError

IDEAL = MachineConfig(
    num_cores=4,
    smt_ways=1,
    task_overhead=0.0,
    steal_overhead=0.0,
)


def record(thread, start, end, kind="work", loop="L"):
    return TraceRecord(
        tid=0, name="t", kind=kind, loop=loop, thread=thread, start=start, end=end
    )


class TestTrace:
    def test_makespan(self):
        t = Trace(2)
        t.add(record(0, 0.0, 2.0))
        t.add(record(1, 1.0, 5.0))
        assert t.makespan == 5.0

    def test_busy_time_total_and_per_thread(self):
        t = Trace(2)
        t.add(record(0, 0.0, 2.0))
        t.add(record(1, 0.0, 3.0))
        assert t.busy_time() == 5.0
        assert t.busy_time(0) == 2.0

    def test_utilization(self):
        t = Trace(2)
        t.add(record(0, 0.0, 4.0))
        t.add(record(1, 0.0, 2.0))
        assert t.utilization() == pytest.approx(6.0 / 8.0)

    def test_empty_trace_full_utilization(self):
        assert Trace(4).utilization() == 1.0

    def test_time_by_kind_and_loop(self):
        t = Trace(1)
        t.add(record(0, 0.0, 1.0, kind="work", loop="adt"))
        t.add(record(0, 1.0, 1.5, kind="barrier", loop="adt"))
        assert t.time_by_kind() == {"work": 1.0, "barrier": 0.5}
        assert t.time_by_loop() == {"adt": 1.5}

    def test_gantt_renders_rows(self):
        t = Trace(2)
        t.add(record(0, 0.0, 1.0))
        out = t.gantt(width=20)
        assert out.startswith("T00|")
        assert "T01|" in out


class TestSpeedupEfficiency:
    def test_speedup_relative_to_first(self):
        assert speedup_series([1, 2, 4], [10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]

    def test_strong_efficiency(self):
        eff = efficiency_series([1, 2, 4], [10.0, 5.0, 2.5])
        assert eff == [1.0, 1.0, 1.0]

    def test_weak_efficiency(self):
        eff = efficiency_series([1, 2], [10.0, 12.5], weak=True)
        assert eff == [1.0, 0.8]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            speedup_series([1, 2], [1.0])

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValidationError):
            speedup_series([1], [0.0])


class TestOverheadBreakdown:
    def test_fractions_sum_to_one(self):
        g = TaskGraph()
        a = g.add("w", 4.0, kind="work")
        g.add("b", 1.0, [a], kind="barrier")
        res = simulate(g, IDEAL, 2, trace=True)
        frac = overhead_breakdown(res)
        assert sum(frac.values()) == pytest.approx(1.0)
        assert frac["idle"] > 0.0  # second thread idles the whole time

    def test_pure_work_single_thread(self):
        g = TaskGraph()
        g.add("w", 4.0, kind="work")
        res = simulate(g, IDEAL, 1, trace=True)
        frac = overhead_breakdown(res)
        assert frac["work"] == pytest.approx(1.0)


class TestCrossoverPoint:
    def test_exact_crossover_interpolated(self):
        x = crossover_point([1, 2, 3], [0.0, 2.0, 4.0], [2.0, 2.0, 2.0])
        assert x == pytest.approx(2.0)

    def test_no_crossover_returns_none(self):
        assert crossover_point([1, 2], [0.0, 1.0], [2.0, 3.0]) is None

    def test_ahead_from_start(self):
        assert crossover_point([1, 2], [3.0, 4.0], [1.0, 1.0]) == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            crossover_point([1], [1.0, 2.0], [1.0])
