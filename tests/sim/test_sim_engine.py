"""Tests for repro.sim.engine: the event-driven list scheduler."""

import pytest

from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph, TaskGraphError

#: A machine with zero overheads: makespans become exact hand-computable.
IDEAL = MachineConfig(
    num_cores=4,
    smt_ways=1,
    task_overhead=0.0,
    steal_overhead=0.0,
    fork_overhead=0.0,
    chunk_spawn_overhead=0.0,
    barrier_base=0.0,
    barrier_per_thread=0.0,
    join_base=0.0,
    join_per_thread=0.0,
)


def chain(costs, affinity=None):
    g = TaskGraph()
    prev = None
    for i, c in enumerate(costs):
        prev = g.add(f"t{i}", c, [prev] if prev is not None else [], affinity=affinity)
    return g


class TestBasicScheduling:
    def test_single_task(self):
        g = TaskGraph()
        g.add("only", 5.0)
        assert simulate(g, IDEAL, 1).makespan == pytest.approx(5.0)

    def test_chain_serializes(self):
        g = chain([1.0, 2.0, 3.0])
        assert simulate(g, IDEAL, 4).makespan == pytest.approx(6.0)

    def test_independent_tasks_parallelize(self):
        g = TaskGraph()
        for i in range(4):
            g.add(f"t{i}", 2.0)
        assert simulate(g, IDEAL, 4).makespan == pytest.approx(2.0)

    def test_more_tasks_than_threads(self):
        g = TaskGraph()
        for i in range(8):
            g.add(f"t{i}", 1.0)
        assert simulate(g, IDEAL, 4).makespan == pytest.approx(2.0)

    def test_empty_graph(self):
        assert simulate(TaskGraph(), IDEAL, 2).makespan == 0.0


class TestAffinity:
    def test_pinned_tasks_serialize_on_thread(self):
        g = TaskGraph()
        for i in range(4):
            g.add(f"t{i}", 1.0, affinity=0)
        assert simulate(g, IDEAL, 4).makespan == pytest.approx(4.0)

    def test_pinned_to_distinct_threads_parallel(self):
        g = TaskGraph()
        for t in range(4):
            g.add(f"t{t}", 3.0, affinity=t)
        assert simulate(g, IDEAL, 4).makespan == pytest.approx(3.0)

    def test_affinity_out_of_range_rejected(self):
        g = TaskGraph()
        g.add("t", 1.0, affinity=7)
        with pytest.raises(TaskGraphError, match="pinned"):
            simulate(g, IDEAL, 4)

    def test_mixed_pinned_and_free(self):
        g = TaskGraph()
        g.add("pinned", 4.0, affinity=0)
        for i in range(3):
            g.add(f"free{i}", 4.0)
        assert simulate(g, IDEAL, 4).makespan == pytest.approx(4.0)


class TestOverheadsAndSpeeds:
    def test_task_overhead_added(self):
        m = IDEAL.with_(task_overhead=0.5)
        g = chain([1.0, 1.0])
        assert simulate(g, m, 1).makespan == pytest.approx(3.0)

    def test_smt_threads_run_slower(self):
        m = MachineConfig(
            num_cores=1,
            smt_ways=2,
            smt_efficiency=0.5,
            task_overhead=0.0,
            steal_overhead=0.0,
        )
        g = TaskGraph()
        g.add("a", 1.0)
        g.add("b", 1.0)
        # Two threads share one core at 0.5 efficiency: each task takes 2.
        assert simulate(g, m, 2).makespan == pytest.approx(2.0)

    def test_steal_overhead_for_cross_thread_consumption(self):
        m = IDEAL.with_(steal_overhead=1.0)
        g = TaskGraph()
        a = g.add("producer", 1.0, affinity=0)
        g.add("consumer", 1.0, [a])  # free task, produced by thread 0
        res = simulate(g, m, 2)
        # Consumer runs on thread 0 (first idle in id order) -> no steal.
        assert res.steals == 0
        assert res.makespan == pytest.approx(2.0)


class TestDependencies:
    def test_diamond_respects_deps(self):
        g = TaskGraph()
        top = g.add("top", 1.0)
        left = g.add("left", 2.0, [top])
        right = g.add("right", 2.0, [top])
        g.add("bottom", 1.0, [left, right])
        assert simulate(g, IDEAL, 2).makespan == pytest.approx(4.0)

    def test_makespan_at_least_critical_path(self):
        g = TaskGraph()
        a = g.add("a", 3.0)
        g.add("b", 4.0, [a])
        for i in range(6):
            g.add(f"x{i}", 1.0)
        res = simulate(g, IDEAL, 4)
        assert res.makespan >= g.critical_path()

    def test_makespan_at_most_serial_work(self):
        g = TaskGraph()
        for i in range(10):
            g.add(f"t{i}", float(i + 1))
        res = simulate(g, IDEAL, 3)
        assert res.makespan <= g.total_work() + 1e-9


class TestResultFields:
    def test_counts_and_bounds(self):
        g = chain([1.0, 1.0, 1.0])
        res = simulate(g, IDEAL, 2)
        assert res.tasks_executed == 3
        assert res.total_work == pytest.approx(3.0)
        assert res.critical_path == pytest.approx(3.0)
        assert res.speedup_bound() == pytest.approx(1.0)

    def test_trace_collected_on_request(self):
        g = chain([1.0, 1.0])
        res = simulate(g, IDEAL, 1, trace=True)
        assert len(res.trace.records) == 2

    def test_determinism(self):
        g = TaskGraph()
        for i in range(20):
            g.add(f"t{i}", float((i * 7) % 5 + 1), deps=[i - 1] if i % 3 == 0 and i else [])
        a = simulate(g, IDEAL, 3).makespan
        b = simulate(g, IDEAL, 3).makespan
        assert a == b


class TestMonotonicity:
    def test_more_threads_never_slower_ideal_forkjoin(self):
        # With zero overheads and free tasks, adding threads cannot hurt.
        g = TaskGraph()
        for i in range(40):
            g.add(f"t{i}", float((i % 4) + 1))
        times = [simulate(g, IDEAL.with_(num_cores=p), p).makespan for p in (1, 2, 4)]
        assert times[0] >= times[1] >= times[2]
