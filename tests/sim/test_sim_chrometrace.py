"""Tests for Chrome trace-event export."""

import json

import pytest

from repro.sim.chrometrace import export_chrome_trace, trace_events
from repro.sim.engine import simulate
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph

IDEAL = MachineConfig(num_cores=2, smt_ways=1, task_overhead=0.0, steal_overhead=0.0)


@pytest.fixture()
def result():
    g = TaskGraph()
    a = g.add("adt.blk0", 2.0, loop="adt_calc")
    g.add("barrier", 1.0, [a], kind="barrier")
    return simulate(g, IDEAL, 2, trace=True)


class TestTraceEvents:
    def test_one_duration_event_per_record(self, result):
        events = trace_events(result.trace)
        durations = [e for e in events if e["ph"] == "X"]
        assert len(durations) == len(result.trace.records)

    def test_metadata_rows(self, result):
        events = trace_events(result.trace, process_name="myproc")
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "myproc"
        # One thread_name row per simulated thread.
        assert sum(1 for e in meta if e["name"] == "thread_name") == 2

    def test_timestamps_match_trace(self, result):
        events = {e["args"]["task"]: e for e in trace_events(result.trace) if e["ph"] == "X"}
        for r in result.trace.records:
            assert events[r.tid]["ts"] == r.start
            assert events[r.tid]["dur"] == pytest.approx(r.duration)

    def test_kind_colors_assigned(self, result):
        events = [e for e in trace_events(result.trace) if e["ph"] == "X"]
        barrier = next(e for e in events if e["args"]["kind"] == "barrier")
        assert barrier["cname"] == "terrible"

    def test_category_includes_loop(self, result):
        events = [e for e in trace_events(result.trace) if e["ph"] == "X"]
        work = next(e for e in events if e["args"]["kind"] == "work")
        assert "adt_calc" in work["cat"]


class TestExport:
    def test_writes_valid_json(self, result, tmp_path):
        path = tmp_path / "trace.json"
        n = export_chrome_trace(result.trace, path)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list)
        assert len(loaded) == n

    def test_airfoil_schedule_exports(self, tmp_path):
        from repro.backends.costs import LoopCostModel
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_backend, simulate_backend

        cfg = ExperimentConfig(ni=16, nj=6, niter=1, block_size=16)
        run = run_backend("openmp", cfg, validate=False)
        res = simulate_backend(run, cfg, 4, LoopCostModel(), trace=True)
        path = tmp_path / "openmp.json"
        n = export_chrome_trace(res.trace, path)
        assert n > 50
        events = json.loads(path.read_text())
        loops = {e["args"].get("loop") for e in events if e["ph"] == "X"}
        assert "res_calc" in loops
