"""Tests for ParLoop validation, op_par_loop dispatch and Op2Runtime."""

import numpy as np
import pytest

from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_WRITE,
    Kernel,
    OpDat,
    OpGlobal,
    OpMap,
    OpSet,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
    op2_session,
)
from repro.op2.exceptions import KernelSignatureError, Op2Error
from repro.op2.parloop import ParLoop
from repro.op2.runtime import LoopRecord, Op2Runtime, SyncRecord, get_op2_runtime


@pytest.fixture()
def world():
    cells = OpSet("cells", 10)
    edges = OpSet("edges", 9)
    vals = np.stack([np.arange(9), np.arange(9) + 1], axis=1)
    e2c = OpMap("e2c", edges, cells, 2, vals)
    q = OpDat("q", cells, 1, np.arange(10.0))
    out = OpDat("out", cells, 1)
    return cells, edges, e2c, q, out


def copy_kernel():
    def k(src, dst):
        dst[0] = src[0]

    def kv(src, dst):
        dst[:] = src

    return Kernel("copy", k, kv)


class TestParLoopValidation:
    def test_direct_classification(self, world):
        cells, edges, e2c, q, out = world
        loop = ParLoop(
            copy_kernel(),
            "copy",
            cells,
            (op_arg_dat(q, -1, OP_ID, OP_READ), op_arg_dat(out, -1, OP_ID, OP_WRITE)),
        )
        assert loop.is_direct and not loop.is_indirect

    def test_indirect_classification(self, world):
        cells, edges, e2c, q, out = world

        def k(a, b):
            b[0] += a[0]

        loop = ParLoop(
            Kernel("acc", k),
            "acc",
            edges,
            (op_arg_dat(q, 0, e2c, OP_READ), op_arg_dat(out, 1, e2c, OP_INC)),
        )
        assert loop.is_indirect
        assert loop.has_indirect_reduction

    def test_direct_arg_set_mismatch(self, world):
        cells, edges, e2c, q, out = world
        with pytest.raises(Op2Error, match="lives on"):
            ParLoop(
                copy_kernel(),
                "copy",
                edges,
                (op_arg_dat(q, -1, OP_ID, OP_READ), op_arg_dat(out, -1, OP_ID, OP_WRITE)),
            )

    def test_map_from_set_mismatch(self, world):
        cells, edges, e2c, q, out = world
        with pytest.raises(Op2Error, match="starts from"):
            ParLoop(
                copy_kernel(),
                "x",
                cells,
                (op_arg_dat(q, 0, e2c, OP_READ), op_arg_dat(out, -1, OP_ID, OP_WRITE)),
            )

    def test_kernel_arity_checked(self, world):
        cells, edges, e2c, q, out = world
        with pytest.raises(KernelSignatureError):
            ParLoop(copy_kernel(), "copy", cells, (op_arg_dat(q, -1, OP_ID, OP_READ),))

    def test_empty_name_rejected(self, world):
        cells, *_ = world
        with pytest.raises(Op2Error):
            ParLoop(Kernel("k", lambda: None), "", cells, ())

    def test_non_arg_rejected_by_op_par_loop(self, world):
        cells, edges, e2c, q, out = world
        with pytest.raises(Op2Error, match="not an Arg"):
            with op2_session():
                op_par_loop(copy_kernel(), "copy", cells, q)


class TestRuntimeExecution:
    def test_direct_loop_executes(self, world):
        cells, edges, e2c, q, out = world
        with op2_session(backend="seq"):
            op_par_loop(
                copy_kernel(),
                "copy",
                cells,
                op_arg_dat(q, -1, OP_ID, OP_READ),
                op_arg_dat(out, -1, OP_ID, OP_WRITE),
            )
        np.testing.assert_array_equal(out.data, q.data)

    def test_indirect_inc_executes(self, world):
        cells, edges, e2c, q, out = world

        def k(a, b):
            b[0] += a[0]

        def kv(a, b):
            b[:] += a

        with op2_session(backend="seq"):
            op_par_loop(
                Kernel("acc", k, kv),
                "acc",
                edges,
                op_arg_dat(q, 0, e2c, OP_READ),
                op_arg_dat(out, 1, e2c, OP_INC),
            )
        # out[c] accumulates q[c-1] for each edge (c-1 -> c).
        expected = np.zeros((10, 1))
        expected[1:, 0] = np.arange(9.0)
        np.testing.assert_array_equal(out.data, expected)

    def test_global_reduction(self, world):
        cells, edges, e2c, q, out = world
        total = OpGlobal("total", 1)

        def k(a, t):
            t[0] += a[0]

        def kv(a, t):
            t[:, 0] += a[:, 0]

        with op2_session(backend="seq"):
            op_par_loop(
                Kernel("sum", k, kv),
                "sum",
                cells,
                op_arg_dat(q, -1, OP_ID, OP_READ),
                op_arg_gbl(total, OP_INC),
            )
        assert total.value() == pytest.approx(45.0)

    def test_version_bumped_for_written_dats(self, world):
        cells, edges, e2c, q, out = world
        with op2_session(backend="seq"):
            op_par_loop(
                copy_kernel(),
                "copy",
                cells,
                op_arg_dat(q, -1, OP_ID, OP_READ),
                op_arg_dat(out, -1, OP_ID, OP_WRITE),
            )
        assert out.version == 1
        assert q.version == 0


class TestRuntimeBookkeeping:
    def test_loop_log_records_in_order(self, world):
        cells, edges, e2c, q, out = world
        with op2_session(backend="seq") as rt:
            for _ in range(3):
                op_par_loop(
                    copy_kernel(),
                    "copy",
                    cells,
                    op_arg_dat(q, -1, OP_ID, OP_READ),
                    op_arg_dat(out, -1, OP_ID, OP_WRITE),
                )
            loops = rt.log.loops()
        assert [r.loop_id for r in loops] == [0, 1, 2]
        assert all(isinstance(r, LoopRecord) for r in loops)

    def test_plan_cache_reused_across_timesteps(self, world):
        cells, edges, e2c, q, out = world
        with op2_session(backend="seq") as rt:
            for _ in range(5):
                op_par_loop(
                    copy_kernel(),
                    "copy",
                    cells,
                    op_arg_dat(q, -1, OP_ID, OP_READ),
                    op_arg_dat(out, -1, OP_ID, OP_WRITE),
                )
            assert rt.plans.misses == 1
            assert rt.plans.hits == 4

    def test_sync_records_loop_ids(self, world):
        cells, edges, e2c, q, out = world
        with op2_session(backend="hpx_async", num_threads=2) as rt:
            f = op_par_loop(
                copy_kernel(),
                "copy",
                cells,
                op_arg_dat(q, -1, OP_ID, OP_READ),
                op_arg_dat(out, -1, OP_ID, OP_WRITE),
            )
            rt.sync(f)
            syncs = [e for e in rt.log.entries if isinstance(e, SyncRecord)]
        assert syncs and syncs[0].loop_ids == (0,)

    def test_sync_ignores_none(self, world):
        cells, edges, e2c, q, out = world
        with op2_session(backend="seq") as rt:
            rt.sync(None)
            assert not [e for e in rt.log.entries if isinstance(e, SyncRecord)]

    def test_unknown_backend_rejected(self):
        with pytest.raises(Op2Error, match="unknown backend"):
            Op2Runtime(backend="cuda")

    def test_session_restores_previous(self, world):
        with op2_session(backend="seq") as outer:
            assert get_op2_runtime() is outer
            with op2_session(backend="openmp") as inner:
                assert get_op2_runtime() is inner
            assert get_op2_runtime() is outer

    def test_invalid_granularity(self):
        with pytest.raises(Op2Error):
            Op2Runtime(granularity="element")
