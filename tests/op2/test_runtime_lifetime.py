"""Session-lifetime regressions: loop-id tracking, error-path cleanup,
and the bounded loop log.

Each test here targets a bug that survived in the runtime for a while:

- loop ids were kept in an ``id(future)``-keyed side table, which confuses
  a *new* future allocated at a collected future's address with the old
  loop — and grows without bound;
- an exception in an ``op2_session`` body skipped ``finish()``, leaving
  queued executor tasks to run inside whatever session drives the executor
  next;
- the loop log kept one record per loop forever, a memory leak on exactly
  the long threaded runs it cannot even be replayed from.
"""

import gc

import numpy as np
import pytest

from repro.hpx.future import FutureError, make_ready_future
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_WRITE,
    Kernel,
    OpDat,
    OpGlobal,
    OpSet,
    op2_session,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
)
from repro.op2.config import DEFAULT_THREADS_LOG_LIMIT, RuntimeConfig
from repro.op2.exceptions import Op2Error
from repro.op2.runtime import LoopLog, LoopRecord, SyncRecord


def _square_loop(n=64):
    """A tiny direct loop: out[i] = src[i]^2. Returns the backend result."""
    cells = OpSet("cells", n)
    src = OpDat("src", cells, 1, np.arange(n, dtype=float))
    out = OpDat("out", cells, 1, np.zeros(n))

    def kv(a, o):
        o[:] = a * a

    return op_par_loop(
        Kernel("square", lambda a, o: None, kv),
        "square",
        cells,
        op_arg_dat(src, -1, OP_ID, OP_READ),
        op_arg_dat(out, -1, OP_ID, OP_WRITE),
    )


def _raising_loop(n=64):
    """A direct loop whose kernel always raises ValueError("kernel boom")."""
    cells = OpSet("cells", n)
    src = OpDat("src", cells, 1, np.zeros(n))
    total = OpGlobal("total", 1, 0.0)

    def kv(a, t):
        raise ValueError("kernel boom")

    return op_par_loop(
        Kernel("bad", lambda a, t: None, kv),
        "bad",
        cells,
        op_arg_dat(src, -1, OP_ID, OP_READ),
        op_arg_gbl(total, OP_INC),
    )


class TestFutureLoopIds:
    def test_loop_id_lives_on_the_future(self):
        with op2_session(backend="hpx_async", num_threads=2) as rt:
            f0 = _square_loop()
            f1 = _square_loop()
            assert (f0.loop_id, f1.loop_id) == (0, 1)
            rt.sync(f1, f0)
            syncs = [e for e in rt.log.entries if isinstance(e, SyncRecord)]
            assert syncs == [SyncRecord(loop_ids=(1, 0))]
        # The buggy id()-keyed side table must be gone entirely.
        assert not hasattr(rt, "_future_loop_ids")

    def test_foreign_future_never_logs_a_sync(self):
        with op2_session(backend="hpx_async", num_threads=2) as rt:
            f = _square_loop()
            rt.sync(f)
            n = len(rt.log.entries)
            rt.sync(make_ready_future(None, rt.hpx.executor))
            assert len(rt.log.entries) == n

    def test_id_reuse_does_not_resurrect_a_stale_loop(self):
        """A new future at a collected future's address is not that loop.

        CPython reuses freed addresses aggressively for same-shaped objects;
        on the old id()-keyed table the fresh future below inherits the dead
        loop's id and logs a phantom SyncRecord.
        """
        with op2_session(backend="hpx_async", num_threads=2) as rt:
            f = _square_loop()
            rt.sync(f)
            stale_id, n = id(f), len(rt.log.entries)
            del f
            gc.collect()
            fresh = None
            for _ in range(256):
                g = make_ready_future(None, rt.hpx.executor)
                if id(g) == stale_id:
                    fresh = g
                    break
                del g
            if fresh is None:
                pytest.skip("allocator never reused the address")
            assert fresh.loop_id is None
            rt.sync(fresh)
            assert len(rt.log.entries) == n


class TestSessionErrorPath:
    def test_body_exception_drains_queued_tasks(self):
        with pytest.raises(RuntimeError, match="body boom"):
            with op2_session(backend="hpx_async", num_threads=2) as rt:
                _square_loop()
                assert rt.hpx.executor.pending() > 0  # loop work is deferred
                raise RuntimeError("body boom")
        assert rt.hpx.executor.pending() == 0

    def test_cancelled_futures_fail_instead_of_deadlocking(self):
        with pytest.raises(RuntimeError):
            with op2_session(backend="hpx_async", num_threads=2) as rt:
                f = _square_loop()
                raise RuntimeError("abort")
        with pytest.raises(FutureError, match="cancelled"):
            f.get()

    def test_raising_kernel_under_hpx_async(self):
        with pytest.raises(ValueError, match="kernel boom"):
            with op2_session(backend="hpx_async", num_threads=2) as rt:
                f = _raising_loop()
                rt.sync(f)
        assert rt.hpx.executor.pending() == 0

    def test_raising_kernel_under_hpx_dataflow(self):
        """The dataflow error surfaces in finish(); cleanup must still run."""
        with pytest.raises(ValueError, match="kernel boom"):
            with op2_session(backend="hpx_dataflow", num_threads=2) as rt:
                _raising_loop()
        assert rt.hpx.executor.pending() == 0
        # Backend scheduling state was reset, not left mid-flight.
        assert rt.backend._futures == {}

    def test_session_after_aborted_session_is_clean(self):
        """Queued work from an aborted session must not replay later."""
        with pytest.raises(RuntimeError):
            with op2_session(backend="hpx_async", num_threads=2):
                _square_loop()
                raise RuntimeError("abort")
        with op2_session(backend="hpx_async", num_threads=2) as rt:
            f = _square_loop()
            rt.sync(f)
            assert [e.loop.name for e in rt.log.loops()] == ["square"]


class TestBoundedLoopLog:
    def test_unbounded_by_default(self):
        log = LoopLog()
        for i in range(100):
            log.append(SyncRecord(loop_ids=(i,)))
        assert len(log) == 100 and log.total == 100

    def test_limit_keeps_most_recent(self):
        log = LoopLog(limit=3)
        for i in range(5):
            log.append(SyncRecord(loop_ids=(i,)))
        assert len(log) == 3
        assert [e.loop_ids for e in log.entries] == [(2,), (3,), (4,)]
        assert log.total == 5

    def test_limit_zero_disables_retention(self):
        log = LoopLog(limit=0)
        for i in range(10):
            log.append(SyncRecord(loop_ids=(i,)))
        assert len(log) == 0 and log.total == 10

    def test_config_resolution(self):
        assert RuntimeConfig(mode="sim").resolve_log_limit() is None
        assert (
            RuntimeConfig(mode="threads").resolve_log_limit()
            == DEFAULT_THREADS_LOG_LIMIT
        )
        assert RuntimeConfig(mode="sim", log_limit=7).resolve_log_limit() == 7
        assert RuntimeConfig(mode="threads", log_limit=0).resolve_log_limit() == 0
        with pytest.raises(Op2Error):
            RuntimeConfig(log_limit=-1)

    def test_threaded_log_stays_flat_over_many_loops(self):
        """10k threaded loops must not accumulate 10k log records."""
        nloops = 10_000
        with op2_session(
            backend="openmp",
            num_threads=1,
            block_size=64,
            mode="threads",
            num_workers=1,
        ) as rt:
            cells = OpSet("cells", 8)
            src = OpDat("src", cells, 1, np.ones(8))
            out = OpDat("out", cells, 1, np.zeros(8))

            def kv(a, o):
                o[:] = a

            k = Kernel("copy", lambda a, o: None, kv)
            for _ in range(nloops):
                op_par_loop(
                    k,
                    "copy",
                    cells,
                    op_arg_dat(src, -1, OP_ID, OP_READ),
                    op_arg_dat(out, -1, OP_ID, OP_WRITE),
                )
            assert len(rt.log.entries) == DEFAULT_THREADS_LOG_LIMIT
            assert rt.log.total == nloops
            assert all(isinstance(e, LoopRecord) for e in rt.log.entries)
            # The retained window is the most recent loops, not the oldest.
            assert rt.log.entries[-1].loop_id == nloops - 1

    def test_sim_mode_keeps_the_full_log(self):
        with op2_session(backend="openmp", num_threads=2) as rt:
            for _ in range(5):
                _square_loop()
            assert len(rt.log.entries) == 5
