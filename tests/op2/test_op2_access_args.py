"""Tests for access modes and argument descriptors."""

import numpy as np
import pytest

from repro.op2 import (
    OP_INC,
    OP_MAX,
    OP_MIN,
    OP_READ,
    OP_RW,
    OP_WRITE,
    OP_ID,
    OpDat,
    OpGlobal,
    OpMap,
    OpSet,
    op_arg_dat,
    op_arg_gbl,
)
from repro.op2.access import Access
from repro.op2.exceptions import AccessError, Op2Error


class TestAccess:
    def test_reads_classification(self):
        assert OP_READ.reads and OP_RW.reads and OP_MIN.reads and OP_MAX.reads
        assert not OP_WRITE.reads
        assert not OP_INC.reads

    def test_writes_classification(self):
        assert OP_WRITE.writes and OP_RW.writes and OP_INC.writes
        assert not OP_READ.writes

    def test_reduction_classification(self):
        assert OP_INC.is_reduction and OP_MIN.is_reduction and OP_MAX.is_reduction
        assert not OP_READ.is_reduction and not OP_WRITE.is_reduction

    def test_all_modes_enumerated(self):
        assert len(Access) == 6


class TestOpArgDat:
    def setup_method(self):
        self.edges = OpSet("edges", 3)
        self.cells = OpSet("cells", 4)
        self.dat = OpDat("q", self.cells, 2)
        self.map = OpMap(
            "e2c", self.edges, self.cells, 2, np.array([[0, 1], [1, 2], [2, 3]])
        )

    def test_direct_arg(self):
        arg = op_arg_dat(self.dat, -1, OP_ID, OP_READ)
        assert arg.is_direct and not arg.is_indirect and not arg.is_global

    def test_indirect_arg(self):
        arg = op_arg_dat(self.dat, 1, self.map, OP_INC)
        assert arg.is_indirect and not arg.is_direct

    def test_direct_requires_idx_minus_one(self):
        with pytest.raises(Op2Error, match="idx=-1"):
            op_arg_dat(self.dat, 0, OP_ID, OP_READ)

    def test_indirect_index_bounds(self):
        with pytest.raises(Op2Error):
            op_arg_dat(self.dat, 2, self.map, OP_READ)
        with pytest.raises(Op2Error):
            op_arg_dat(self.dat, -1, self.map, OP_READ)

    def test_map_target_set_must_match_dat_set(self):
        nodes = OpSet("nodes", 9)
        wrong_map = OpMap(
            "e2n", self.edges, nodes, 2, np.array([[0, 1], [1, 2], [2, 3]])
        )
        with pytest.raises(Op2Error, match="lives on"):
            op_arg_dat(self.dat, 0, wrong_map, OP_READ)

    def test_non_dat_rejected(self):
        with pytest.raises(Op2Error):
            op_arg_dat(np.zeros(3), -1, OP_ID, OP_READ)

    def test_non_access_rejected(self):
        with pytest.raises(AccessError):
            op_arg_dat(self.dat, -1, OP_ID, "read")

    def test_describe_mentions_map(self):
        arg = op_arg_dat(self.dat, 1, self.map, OP_READ)
        assert "e2c[1]" in arg.describe()


class TestOpArgGbl:
    def test_read_and_reductions_allowed(self):
        g = OpGlobal("rms", 1)
        for mode in (OP_READ, OP_INC, OP_MIN, OP_MAX):
            arg = op_arg_gbl(g, mode)
            assert arg.is_global

    def test_plain_write_rejected(self):
        g = OpGlobal("rms", 1)
        with pytest.raises(AccessError, match="racy"):
            op_arg_gbl(g, OP_WRITE)
        with pytest.raises(AccessError):
            op_arg_gbl(g, OP_RW)

    def test_non_global_rejected(self):
        d = OpDat("q", OpSet("cells", 2), 1)
        with pytest.raises(Op2Error):
            op_arg_gbl(d, OP_READ)

    def test_global_arg_not_direct_or_indirect(self):
        arg = op_arg_gbl(OpGlobal("rms", 1), OP_INC)
        assert not arg.is_direct
        assert not arg.is_indirect
