"""Tests for the OP2 problem/mesh archive format."""

import io

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, ReferenceAirfoil, generate_mesh
from repro.airfoil.validation import compare_states
from repro.op2 import OpDat, OpMap, OpSet, op2_session
from repro.op2.exceptions import Op2Error
from repro.op2.io import load_mesh, load_problem, save_mesh, save_problem


@pytest.fixture()
def world():
    cells = OpSet("cells", 6)
    edges = OpSet("edges", 5)
    m = OpMap(
        "e2c", edges, cells, 2,
        np.stack([np.arange(5), np.arange(5) + 1], axis=1),
    )
    d = OpDat("q", cells, 3, np.arange(18.0).reshape(6, 3))
    return cells, edges, m, d


class TestProblemRoundTrip:
    def test_sets_maps_dats_survive(self, world, tmp_path):
        cells, edges, m, d = world
        path = tmp_path / "world.npz"
        save_problem(path, [cells, edges], [m], [d])
        sets, maps, dats = load_problem(path)
        assert sets["cells"].size == 6
        assert maps["e2c"].arity == 2
        np.testing.assert_array_equal(maps["e2c"].values, m.values)
        np.testing.assert_array_equal(dats["q"].data, d.data)

    def test_in_memory_buffer(self, world):
        cells, edges, m, d = world
        buf = io.BytesIO()
        save_problem(buf, [cells, edges], [m], [d])
        buf.seek(0)
        sets, maps, dats = load_problem(buf)
        assert dats["q"].set == sets["cells"]

    def test_integer_dtype_preserved(self, tmp_path):
        s = OpSet("b", 4)
        d = OpDat("tags", s, 1, np.array([1, 2, 1, 2]), dtype=np.int64)
        path = tmp_path / "tags.npz"
        save_problem(path, [s], [], [d])
        _, _, dats = load_problem(path)
        assert dats["tags"].data.dtype == np.int64

    def test_map_over_unsaved_set_rejected(self, world, tmp_path):
        cells, edges, m, d = world
        with pytest.raises(Op2Error, match="not being saved"):
            save_problem(tmp_path / "x.npz", [cells], [m], [])

    def test_dat_over_unsaved_set_rejected(self, world, tmp_path):
        cells, edges, m, d = world
        with pytest.raises(Op2Error, match="unsaved set"):
            save_problem(tmp_path / "x.npz", [edges], [], [d])

    def test_duplicate_set_names_rejected(self, tmp_path):
        with pytest.raises(Op2Error, match="duplicate"):
            save_problem(tmp_path / "x.npz", [OpSet("a", 1), OpSet("a", 2)], [], [])

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(Op2Error, match="not an OP2 problem"):
            load_problem(path)

    def test_loaded_maps_revalidated(self, tmp_path):
        # Corrupt archive: map points outside its target set.
        payload = {
            "__sets__": np.array(
                [("a", 2), ("b", 2)], dtype=[("name", "U64"), ("size", "i8")]
            ),
            "map:bad": np.array([[0, 5], [1, 0]]),
            "map:bad:meta": np.array(["a", "b"], dtype="U64"),
        }
        path = tmp_path / "bad.npz"
        np.savez(path, **payload)
        with pytest.raises(Exception):
            load_problem(path)


class TestMeshRoundTrip:
    def test_mesh_survives(self, tmp_path):
        mesh = generate_mesh(ni=16, nj=6)
        path = tmp_path / "mesh.npz"
        save_mesh(path, mesh)
        loaded = load_mesh(path)
        assert loaded.ni == 16 and loaded.nj == 6
        np.testing.assert_array_equal(loaded.x.data, mesh.x.data)
        np.testing.assert_array_equal(loaded.pecell.values, mesh.pecell.values)

    def test_loaded_mesh_runs_airfoil(self, tmp_path):
        mesh = generate_mesh(ni=16, nj=6)
        path = tmp_path / "mesh.npz"
        save_mesh(path, mesh)
        loaded = load_mesh(path)
        ref = ReferenceAirfoil(mesh)
        ref.run(2)
        with op2_session(backend="openmp", block_size=16) as rt:
            app = AirfoilApp(loaded)
            app.run(rt, 2)
        compare_states(app, ref, tol=1e-12)

    def test_non_mesh_archive_rejected(self, world, tmp_path):
        cells, edges, m, d = world
        path = tmp_path / "notmesh.npz"
        save_problem(path, [cells, edges], [m], [d])
        with pytest.raises(Op2Error, match="missing"):
            load_mesh(path)
