"""Tests for RCM renumbering."""

import numpy as np
import pytest

from repro.airfoil import AirfoilApp, ReferenceAirfoil, generate_mesh
from repro.op2 import op2_session
from repro.op2.exceptions import Op2Error
from repro.op2.renumber import bandwidth, dual_graph_csr, rcm_order, renumber_mesh


def path_graph(n):
    """CSR of a simple path 0-1-2-...-n-1."""
    edges = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    return dual_graph_csr(edges, n)


class TestDualGraph:
    def test_path_degrees(self):
        indptr, indices = path_graph(5)
        degrees = np.diff(indptr)
        np.testing.assert_array_equal(degrees, [1, 2, 2, 2, 1])

    def test_symmetry(self):
        mesh = generate_mesh(ni=16, nj=6)
        indptr, indices = dual_graph_csr(mesh.pecell.values, mesh.cells.size)
        # Every (v, u) arc has its (u, v) counterpart.
        pairs = set()
        for v in range(mesh.cells.size):
            for u in indices[indptr[v] : indptr[v + 1]]:
                pairs.add((v, int(u)))
        assert all((u, v) in pairs for (v, u) in pairs)

    def test_bad_shape_rejected(self):
        with pytest.raises(Op2Error):
            dual_graph_csr(np.zeros((3, 3), dtype=int), 4)


class TestRcmOrder:
    def test_is_permutation(self):
        indptr, indices = path_graph(10)
        perm = rcm_order(indptr, indices)
        assert sorted(perm.tolist()) == list(range(10))

    def test_path_is_optimally_banded(self):
        indptr, indices = path_graph(20)
        perm = rcm_order(indptr, indices)
        assert bandwidth(indptr, indices, perm) == 1

    def test_reduces_bandwidth_on_shuffled_path(self):
        n = 40
        rng = np.random.default_rng(3)
        relabel = rng.permutation(n)
        edges = np.stack(
            [relabel[np.arange(n - 1)], relabel[np.arange(1, n)]], axis=1
        )
        indptr, indices = dual_graph_csr(edges, n)
        before = bandwidth(indptr, indices)
        after = bandwidth(indptr, indices, rcm_order(indptr, indices))
        assert after <= before
        assert after == 1  # a path always renumbers to bandwidth 1

    def test_handles_disconnected_graphs(self):
        # Two disjoint paths.
        edges = np.array([[0, 1], [2, 3]])
        indptr, indices = dual_graph_csr(edges, 4)
        perm = rcm_order(indptr, indices)
        assert sorted(perm.tolist()) == [0, 1, 2, 3]

    def test_mesh_bandwidth_improves_or_holds(self):
        mesh = generate_mesh(ni=24, nj=10)
        indptr, indices = dual_graph_csr(mesh.pecell.values, mesh.cells.size)
        before = bandwidth(indptr, indices)
        after = bandwidth(indptr, indices, rcm_order(indptr, indices))
        assert after <= before


class TestRenumberMesh:
    def test_numerics_invariant(self):
        mesh = generate_mesh(ni=24, nj=10)
        ref = ReferenceAirfoil(mesh)
        ref.run(3)
        renumbered = renumber_mesh(mesh)
        with op2_session(backend="openmp", block_size=32) as rt:
            app = AirfoilApp(renumbered)
            result = app.run(rt, 3)
        # Same physics in a different numbering: compare invariants.
        assert result.rms_total == pytest.approx(ref.rms, rel=1e-10)
        assert result.q_norm == pytest.approx(
            float(np.sqrt(np.sum(ref.q**2))), rel=1e-10
        )

    def test_topology_preserved(self):
        mesh = generate_mesh(ni=16, nj=6)
        renumbered = renumber_mesh(mesh)
        assert renumbered.cells.size == mesh.cells.size
        assert renumbered.edges.size == mesh.edges.size
        # Each cell still has exactly 4 faces.
        face_count = np.bincount(
            renumbered.pecell.values.ravel(), minlength=renumbered.cells.size
        )
        face_count += np.bincount(
            renumbered.pbecell.values.ravel(), minlength=renumbered.cells.size
        )
        assert np.all(face_count == 4)

    def test_plan_colors_not_worse(self):
        from repro.op2 import OP_INC, OpDat, op_arg_dat
        from repro.op2.plan import build_plan

        mesh = generate_mesh(ni=48, nj=24)
        renumbered = renumber_mesh(mesh)

        def ncolors(m):
            res = OpDat("res", m.cells, 4)
            args = [
                op_arg_dat(res, 0, m.pecell, OP_INC),
                op_arg_dat(res, 1, m.pecell, OP_INC),
            ]
            return build_plan(m.edges, args, block_size=128).ncolors

        assert ncolors(renumbered) <= ncolors(mesh) + 1
