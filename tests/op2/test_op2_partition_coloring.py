"""Tests for partitioning and coloring."""

import numpy as np
import pytest

from repro.op2.coloring import (
    build_block_conflicts,
    color_classes,
    degree_coloring,
    greedy_coloring,
    validate_coloring,
)
from repro.op2.exceptions import PlanError
from repro.op2.partition import (
    balanced_blocks,
    block_of_element,
    contiguous_blocks,
    imbalance,
    validate_blocks,
)


class TestContiguousBlocks:
    def test_exact_division(self):
        blocks = contiguous_blocks(12, 4)
        assert [(b.start, b.stop) for b in blocks] == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_block(self):
        blocks = contiguous_blocks(10, 4)
        assert len(blocks[-1]) == 2

    def test_indices_sequential(self):
        blocks = contiguous_blocks(10, 3)
        assert [b.index for b in blocks] == list(range(len(blocks)))

    def test_empty_set(self):
        assert contiguous_blocks(0, 4) == []

    def test_invalid_block_size(self):
        with pytest.raises(PlanError):
            contiguous_blocks(10, 0)

    def test_elements(self):
        blocks = contiguous_blocks(10, 4)
        np.testing.assert_array_equal(blocks[1].elements(), np.arange(4, 8))


class TestBalancedBlocks:
    def test_exact_count(self):
        blocks = balanced_blocks(100, 7)
        assert len(blocks) == 7
        validate_blocks(blocks, 100)

    def test_near_even(self):
        blocks = balanced_blocks(100, 7)
        sizes = [len(b) for b in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_more_blocks_than_elements(self):
        blocks = balanced_blocks(3, 10)
        validate_blocks(blocks, 3)
        assert all(len(b) >= 1 for b in blocks)


class TestValidateBlocks:
    def test_detects_gap(self):
        blocks = contiguous_blocks(10, 5)
        with pytest.raises(PlanError):
            validate_blocks([blocks[1]], 10)

    def test_block_of_element(self):
        blocks = contiguous_blocks(100, 7)
        for e in (0, 6, 7, 50, 99):
            b = block_of_element(blocks, e)
            assert blocks[b].start <= e < blocks[b].stop

    def test_block_of_element_out_of_range(self):
        blocks = contiguous_blocks(10, 5)
        with pytest.raises(PlanError):
            block_of_element(blocks, 10)

    def test_imbalance_even(self):
        assert imbalance(contiguous_blocks(12, 4)) == 1.0

    def test_imbalance_uneven(self):
        assert imbalance(contiguous_blocks(10, 4)) > 1.0


class TestConflictGraph:
    def test_shared_target_conflicts(self):
        targets = [np.array([0, 1]), np.array([1, 2]), np.array([3])]
        adj = build_block_conflicts(targets)
        assert 1 in adj[0] and 0 in adj[1]
        assert not adj[2]

    def test_no_overlap_no_conflicts(self):
        targets = [np.array([0]), np.array([1]), np.array([2])]
        adj = build_block_conflicts(targets)
        assert all(not a for a in adj)

    def test_duplicate_targets_within_block_ok(self):
        targets = [np.array([0, 0, 1]), np.array([1, 1])]
        adj = build_block_conflicts(targets)
        assert adj[0] == {1}

    def test_empty_input(self):
        assert build_block_conflicts([]) == []


class TestGreedyColoring:
    def test_proper_coloring(self):
        targets = [np.array([0, 1]), np.array([1, 2]), np.array([2, 3]), np.array([3, 0])]
        adj = build_block_conflicts(targets)
        colors = greedy_coloring(adj)
        validate_coloring(adj, colors)

    def test_independent_blocks_one_color(self):
        adj = [set(), set(), set()]
        assert greedy_coloring(adj) == [0, 0, 0]

    def test_clique_needs_n_colors(self):
        adj = [{1, 2}, {0, 2}, {0, 1}]
        colors = greedy_coloring(adj)
        assert sorted(colors) == [0, 1, 2]

    def test_custom_order_must_be_permutation(self):
        with pytest.raises(PlanError):
            greedy_coloring([set(), set()], order=[0, 0])

    def test_degree_coloring_also_proper(self):
        targets = [np.arange(i, i + 3) for i in range(10)]
        adj = build_block_conflicts(targets)
        colors = degree_coloring(adj)
        validate_coloring(adj, colors)

    def test_validate_rejects_conflicting_colors(self):
        adj = [{1}, {0}]
        with pytest.raises(PlanError):
            validate_coloring(adj, [0, 0])

    def test_validate_rejects_uncolored(self):
        with pytest.raises(PlanError):
            validate_coloring([set()], [-1])

    def test_color_classes_partition(self):
        colors = [0, 1, 0, 2, 1]
        classes = color_classes(colors)
        assert classes == [[0, 2], [1, 4], [3]]
        assert sorted(sum(classes, [])) == list(range(5))
