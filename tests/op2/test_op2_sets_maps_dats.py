"""Tests for OpSet, OpMap, OpDat, OpGlobal."""

import numpy as np
import pytest

from repro.op2 import OpDat, OpGlobal, OpMap, OpSet
from repro.op2.exceptions import MapBoundsError, Op2Error
from repro.op2.set_ import op_decl_set
from repro.op2.map_ import op_decl_map
from repro.op2.dat import op_decl_dat


class TestOpSet:
    def test_size_and_len(self):
        s = OpSet("cells", 10)
        assert len(s) == 10
        assert s.size == 10

    def test_negative_size_rejected(self):
        with pytest.raises(Op2Error):
            OpSet("cells", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(Op2Error):
            OpSet("", 5)

    def test_equality_by_name_and_size(self):
        assert OpSet("a", 3) == OpSet("a", 3)
        assert OpSet("a", 3) != OpSet("a", 4)
        assert OpSet("a", 3) != OpSet("b", 3)

    def test_hashable(self):
        assert len({OpSet("a", 3), OpSet("a", 3)}) == 1

    def test_decl_spelling(self):
        s = op_decl_set(7, "nodes")
        assert s.name == "nodes" and s.size == 7


class TestOpMap:
    def setup_method(self):
        self.edges = OpSet("edges", 3)
        self.nodes = OpSet("nodes", 4)

    def test_valid_map(self):
        vals = np.array([[0, 1], [1, 2], [2, 3]])
        m = OpMap("e2n", self.edges, self.nodes, 2, vals)
        assert m.arity == 2
        assert m.values.dtype == np.int64

    def test_out_of_bounds_rejected(self):
        vals = np.array([[0, 1], [1, 4], [2, 3]])  # 4 >= nodes.size
        with pytest.raises(MapBoundsError):
            OpMap("e2n", self.edges, self.nodes, 2, vals)

    def test_negative_entry_rejected(self):
        vals = np.array([[0, 1], [-1, 2], [2, 3]])
        with pytest.raises(MapBoundsError):
            OpMap("e2n", self.edges, self.nodes, 2, vals)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(Op2Error):
            OpMap("e2n", self.edges, self.nodes, 2, np.zeros((3, 3), dtype=int))

    def test_values_read_only(self):
        vals = np.array([[0, 1], [1, 2], [2, 3]])
        m = OpMap("e2n", self.edges, self.nodes, 2, vals)
        with pytest.raises(ValueError):
            m.values[0, 0] = 5

    def test_targets_column(self):
        vals = np.array([[0, 1], [1, 2], [2, 3]])
        m = OpMap("e2n", self.edges, self.nodes, 2, vals)
        np.testing.assert_array_equal(
            m.targets(np.array([0, 2]), 1), np.array([1, 3])
        )

    def test_targets_bad_index(self):
        vals = np.array([[0, 1], [1, 2], [2, 3]])
        m = OpMap("e2n", self.edges, self.nodes, 2, vals)
        with pytest.raises(Op2Error):
            m.targets(np.array([0]), 2)

    def test_empty_from_set(self):
        empty = OpSet("none", 0)
        m = op_decl_map(empty, self.nodes, 2, np.zeros((0, 2), dtype=int), "m")
        assert m.values.shape == (0, 2)

    def test_zero_arity_rejected(self):
        with pytest.raises(Op2Error):
            OpMap("m", self.edges, self.nodes, 0, np.zeros((3, 0), dtype=int))


class TestOpDat:
    def setup_method(self):
        self.cells = OpSet("cells", 5)

    def test_default_zero_data(self):
        d = OpDat("q", self.cells, 4)
        assert d.data.shape == (5, 4)
        assert np.all(d.data == 0)

    def test_data_shape_enforced(self):
        with pytest.raises(Op2Error):
            OpDat("q", self.cells, 4, np.zeros((5, 3)))

    def test_1d_data_promoted_for_dim1(self):
        d = OpDat("adt", self.cells, 1, np.arange(5.0))
        assert d.data.shape == (5, 1)

    def test_version_bumps(self):
        d = OpDat("q", self.cells, 1)
        assert d.version == 0
        assert d.bump_version() == 1
        assert d.version == 1

    def test_copy_is_independent(self):
        d = OpDat("q", self.cells, 1)
        snap = d.copy_data()
        d.data[0, 0] = 42.0
        assert snap[0, 0] == 0.0

    def test_norm(self):
        d = OpDat("q", self.cells, 1, np.full(5, 2.0))
        assert d.norm() == pytest.approx(np.sqrt(20.0))

    def test_integer_dtype_supported(self):
        d = OpDat("bound", self.cells, 1, np.ones(5, dtype=np.int64), dtype=np.int64)
        assert d.data.dtype == np.int64

    def test_decl_spelling(self):
        d = op_decl_dat(self.cells, 2, None, "x")
        assert d.name == "x" and d.dim == 2

    def test_zero_dim_rejected(self):
        with pytest.raises(Op2Error):
            OpDat("q", self.cells, 0)


class TestOpGlobal:
    def test_scalar_value(self):
        g = OpGlobal("rms", 1)
        assert g.value() == 0.0

    def test_vector_value_is_copy(self):
        g = OpGlobal("qinf", 4, np.arange(4.0))
        v = g.value()
        v[0] = 99.0
        assert g.data[0] == 0.0

    def test_scalar_init(self):
        g = OpGlobal("alpha", 1, 3.0)
        assert g.value() == 3.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(Op2Error):
            OpGlobal("qinf", 4, np.arange(3.0))

    def test_reset(self):
        g = OpGlobal("rms", 1, 5.0)
        g.reset()
        assert g.value() == 0.0
