"""Tests for the dataflow dependence tracker (repro.op2.deps)."""

import pytest

from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_RW,
    OP_WRITE,
    OpDat,
    OpGlobal,
    OpSet,
    op_arg_dat,
    op_arg_gbl,
)
from repro.op2.deps import DatDependencyTracker


@pytest.fixture()
def dats():
    cells = OpSet("cells", 4)
    return {
        "q": OpDat("q", cells, 1),
        "qold": OpDat("qold", cells, 1),
        "res": OpDat("res", cells, 1),
    }


def read(d):
    return op_arg_dat(d, -1, OP_ID, OP_READ)


def write(d):
    return op_arg_dat(d, -1, OP_ID, OP_WRITE)


def rw(d):
    return op_arg_dat(d, -1, OP_ID, OP_RW)


def inc(d):
    return op_arg_dat(d, -1, OP_ID, OP_INC)


class TestRawWarWaw:
    def test_read_after_write(self, dats):
        t = DatDependencyTracker()
        assert t.dependencies([write(dats["q"])], token=1) == []
        assert t.dependencies([read(dats["q"])], token=2) == [1]

    def test_write_after_read(self, dats):
        t = DatDependencyTracker()
        t.dependencies([read(dats["q"])], token=1)
        assert t.dependencies([write(dats["q"])], token=2) == [1]

    def test_write_after_write(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["q"])], token=1)
        assert t.dependencies([write(dats["q"])], token=2) == [1]

    def test_read_after_read_independent(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["q"])], token=1)
        t.dependencies([read(dats["q"])], token=2)
        deps3 = t.dependencies([read(dats["q"])], token=3)
        assert deps3 == [1]  # both readers depend on the writer, not each other

    def test_untouched_dat_no_deps(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["q"])], token=1)
        assert t.dependencies([read(dats["res"])], token=2) == []


class TestIncrementSemantics:
    def test_inc_after_inc_commutes(self, dats):
        # res_calc and bres_calc both OP_INC res: they may overlap (paper).
        t = DatDependencyTracker()
        t.dependencies([inc(dats["res"])], token=1)
        assert t.dependencies([inc(dats["res"])], token=2) == []

    def test_read_after_incs_waits_for_all(self, dats):
        t = DatDependencyTracker()
        t.dependencies([inc(dats["res"])], token=1)
        t.dependencies([inc(dats["res"])], token=2)
        assert t.dependencies([read(dats["res"])], token=3) == [1, 2]

    def test_inc_after_read_waits(self, dats):
        t = DatDependencyTracker()
        t.dependencies([read(dats["res"])], token=1)
        assert t.dependencies([inc(dats["res"])], token=2) == [1]

    def test_inc_after_write_waits(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["res"])], token=1)
        assert t.dependencies([inc(dats["res"])], token=2) == [1]

    def test_write_after_incs_waits_for_all(self, dats):
        t = DatDependencyTracker()
        t.dependencies([inc(dats["res"])], token=1)
        t.dependencies([inc(dats["res"])], token=2)
        assert sorted(t.dependencies([write(dats["res"])], token=3)) == [1, 2]

    def test_write_resets_state(self, dats):
        t = DatDependencyTracker()
        t.dependencies([inc(dats["res"])], token=1)
        t.dependencies([write(dats["res"])], token=2)
        assert t.dependencies([read(dats["res"])], token=3) == [2]


class TestMultiArgLoops:
    def test_loop_touching_same_dat_twice_no_self_dep(self, dats):
        # res_calc increments res through two map columns.
        t = DatDependencyTracker()
        deps = t.dependencies([inc(dats["res"]), inc(dats["res"])], token=1)
        assert deps == []

    def test_rw_counts_as_write(self, dats):
        t = DatDependencyTracker()
        t.dependencies([rw(dats["res"])], token=1)
        assert t.dependencies([read(dats["res"])], token=2) == [1]

    def test_airfoil_like_chain(self, dats):
        # save(q->qold); update(qold,res->q): update depends on save via qold.
        t = DatDependencyTracker()
        t.dependencies([read(dats["q"]), write(dats["qold"])], token=1)  # save
        t.dependencies([inc(dats["res"])], token=2)  # res_calc
        deps = t.dependencies(
            [read(dats["qold"]), write(dats["q"]), rw(dats["res"])], token=3
        )  # update
        assert set(deps) == {1, 2}

    def test_duplicate_deps_removed(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["q"]), write(dats["res"])], token=1)
        deps = t.dependencies([read(dats["q"]), read(dats["res"])], token=2)
        assert deps == [1]


class TestGlobals:
    def test_global_inc_commutes(self):
        t = DatDependencyTracker()
        g = OpGlobal("rms", 1)
        t.dependencies([op_arg_gbl(g, OP_INC)], token=1)
        assert t.dependencies([op_arg_gbl(g, OP_INC)], token=2) == []

    def test_global_read_after_inc_waits(self):
        t = DatDependencyTracker()
        g = OpGlobal("rms", 1)
        t.dependencies([op_arg_gbl(g, OP_INC)], token=1)
        assert t.dependencies([op_arg_gbl(g, OP_READ)], token=2) == [1]


class TestOutstanding:
    def test_outstanding_collects_live_tokens(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["q"])], token=1)
        t.dependencies([inc(dats["res"])], token=2)
        assert set(t.outstanding()) == {1, 2}

    def test_reset_clears(self, dats):
        t = DatDependencyTracker()
        t.dependencies([write(dats["q"])], token=1)
        t.reset()
        assert t.outstanding() == []
