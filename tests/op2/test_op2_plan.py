"""Tests for execution-plan construction and caching."""

import numpy as np
import pytest

from repro.op2 import OP_ID, OP_INC, OP_READ, OP_WRITE, OpDat, OpMap, OpSet, op_arg_dat
from repro.op2.exceptions import PlanError
from repro.op2.plan import PlanCache, build_plan


@pytest.fixture()
def ring():
    """A ring of edges incrementing into cells: forces coloring."""
    n = 16
    edges = OpSet("edges", n)
    cells = OpSet("cells", n)
    vals = np.stack([np.arange(n), (np.arange(n) + 1) % n], axis=1)
    e2c = OpMap("e2c", edges, cells, 2, vals)
    res = OpDat("res", cells, 1)
    return edges, cells, e2c, res


class TestDirectPlan:
    def test_single_color(self):
        cells = OpSet("cells", 20)
        q = OpDat("q", cells, 1)
        plan = build_plan(cells, [op_arg_dat(q, -1, OP_ID, OP_WRITE)], block_size=6)
        assert plan.ncolors == 1
        assert not plan.colored
        assert plan.nblocks == 4

    def test_indirect_read_only_needs_no_coloring(self, ring):
        edges, cells, e2c, res = ring
        plan = build_plan(
            edges, [op_arg_dat(res, 0, e2c, OP_READ)], block_size=4
        )
        assert plan.ncolors == 1

    def test_empty_set(self):
        s = OpSet("empty", 0)
        plan = build_plan(s, [], block_size=4)
        assert plan.nblocks == 0
        assert plan.ncolors == 0


class TestColoredPlan:
    def test_adjacent_blocks_get_different_colors(self, ring):
        edges, cells, e2c, res = ring
        args = [
            op_arg_dat(res, 0, e2c, OP_INC),
            op_arg_dat(res, 1, e2c, OP_INC),
        ]
        plan = build_plan(edges, args, block_size=4)
        assert plan.colored
        assert plan.ncolors >= 2
        # Ring of 4 blocks: neighbours conflict via the shared wrap cells.
        assert plan.colors[0] != plan.colors[1]

    def test_no_color_class_has_conflicts(self, ring):
        edges, cells, e2c, res = ring
        args = [
            op_arg_dat(res, 0, e2c, OP_INC),
            op_arg_dat(res, 1, e2c, OP_INC),
        ]
        plan = build_plan(edges, args, block_size=4)
        for cls in plan.classes:
            touched: set[int] = set()
            for b in cls:
                blk = plan.blocks[b]
                targets = set(e2c.values[blk.start : blk.stop].ravel().tolist())
                assert not (touched & targets), "conflicting blocks share a color"
                touched |= targets

    def test_classes_partition_blocks(self, ring):
        edges, cells, e2c, res = ring
        plan = build_plan(
            edges,
            [op_arg_dat(res, 0, e2c, OP_INC), op_arg_dat(res, 1, e2c, OP_INC)],
            block_size=4,
        )
        all_blocks = sorted(b for cls in plan.classes for b in cls)
        assert all_blocks == list(range(plan.nblocks))

    def test_block_elements(self, ring):
        edges, cells, e2c, res = ring
        plan = build_plan(edges, [op_arg_dat(res, 0, e2c, OP_INC)], block_size=5)
        np.testing.assert_array_equal(plan.block_elements(1), np.arange(5, 10))

    def test_invalid_block_size(self, ring):
        edges, cells, e2c, res = ring
        with pytest.raises(PlanError):
            build_plan(edges, [], block_size=0)

    def test_describe(self, ring):
        edges, cells, e2c, res = ring
        plan = build_plan(edges, [op_arg_dat(res, 0, e2c, OP_INC)], block_size=4)
        assert "edges" in plan.describe()


class TestPlanCache:
    def test_cache_hit_for_same_shape(self, ring):
        edges, cells, e2c, res = ring
        cache = PlanCache()
        args = [op_arg_dat(res, 0, e2c, OP_INC)]
        p1 = cache.get(edges, args, 4)
        p2 = cache.get(edges, args, 4)
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1

    def test_different_block_size_misses(self, ring):
        edges, cells, e2c, res = ring
        cache = PlanCache()
        args = [op_arg_dat(res, 0, e2c, OP_INC)]
        cache.get(edges, args, 4)
        cache.get(edges, args, 8)
        assert cache.misses == 2

    def test_access_pattern_differentiates(self, ring):
        edges, cells, e2c, res = ring
        cache = PlanCache()
        cache.get(edges, [op_arg_dat(res, 0, e2c, OP_INC)], 4)
        cache.get(edges, [op_arg_dat(res, 0, e2c, OP_READ)], 4)
        # READ pattern needs no coloring: different plan key.
        assert len(cache) == 2

    def test_loops_sharing_shape_share_plan(self, ring):
        edges, cells, e2c, res = ring
        other = OpDat("res2", cells, 1)
        cache = PlanCache()
        p1 = cache.get(edges, [op_arg_dat(res, 0, e2c, OP_INC)], 4)
        p2 = cache.get(edges, [op_arg_dat(other, 0, e2c, OP_INC)], 4)
        assert p1 is p2  # same (set, map, idx) reduction pattern

    def test_same_names_different_map_contents_do_not_alias(self):
        """Regression: the key must pin map *contents*, not just map names.

        Two meshes in one session can legitimately carry identically-named
        sets and maps with different connectivity; serving one mesh's colored
        plan for the other is silently wrong (races in threaded mode).
        """
        n = 12

        def world(shift: int):
            edges = OpSet("edges", n)
            cells = OpSet("cells", n)
            vals = np.stack(
                [np.arange(n), (np.arange(n) + shift) % n], axis=1
            )
            e2c = OpMap("e2c", edges, cells, 2, vals)
            res = OpDat("res", cells, 1)
            return edges, e2c, res

        cache = PlanCache()
        plans = []
        for shift in (1, 5):
            edges, e2c, res = world(shift)
            plans.append(
                cache.get(edges, [op_arg_dat(res, 0, e2c, OP_INC)], 4)
            )
        assert cache.misses == 2 and cache.hits == 0
        assert plans[0] is not plans[1]

    def test_same_map_object_still_hits_after_uid_keying(self, ring):
        edges, cells, e2c, res = ring
        cache = PlanCache()
        p1 = cache.get(edges, [op_arg_dat(res, 0, e2c, OP_INC)], 4)
        p2 = cache.get(edges, [op_arg_dat(res, 0, e2c, OP_INC)], 4)
        assert p1 is p2
        assert cache.hits == 1

    def test_map_uids_are_unique_per_instance(self, ring):
        edges, cells, e2c, res = ring
        clone = OpMap("e2c", edges, cells, 2, e2c.values.copy())
        assert clone.uid != e2c.uid
