"""Tests for repro.op2.kernel."""

import pytest

from repro.op2.kernel import Kernel, KernelCost
from repro.op2.exceptions import KernelSignatureError
from repro.util.validate import ValidationError


class TestKernelCost:
    def test_defaults_valid(self):
        c = KernelCost()
        assert c.unit_cost > 0
        assert 0 <= c.mem_fraction <= 1

    def test_invalid_unit_cost(self):
        with pytest.raises(ValidationError):
            KernelCost(unit_cost=0.0)

    def test_invalid_mem_fraction(self):
        with pytest.raises(ValidationError):
            KernelCost(mem_fraction=1.2)


class TestKernel:
    def test_arity_inferred(self):
        k = Kernel("k", lambda a, b, c: None)
        k.check_arity(3)
        with pytest.raises(KernelSignatureError):
            k.check_arity(2)

    def test_varargs_kernel_accepts_any_arity(self):
        k = Kernel("k", lambda *args: None)
        k.check_arity(0)
        k.check_arity(7)

    def test_has_vectorized(self):
        assert not Kernel("k", lambda a: None).has_vectorized
        assert Kernel("k", lambda a: None, lambda a: None).has_vectorized

    def test_empty_name_rejected(self):
        with pytest.raises(KernelSignatureError):
            Kernel("", lambda a: None)

    def test_default_cost_attached(self):
        assert isinstance(Kernel("k", lambda a: None).cost, KernelCost)

    def test_custom_cost(self):
        c = KernelCost(0.5, 0.2)
        assert Kernel("k", lambda a: None, cost=c).cost is c

    def test_repr_mentions_vectorization(self):
        assert "+vec" in repr(Kernel("k", lambda a: None, lambda a: None))
        assert "+vec" not in repr(Kernel("k", lambda a: None))
