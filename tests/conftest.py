"""Shared fixtures: isolated runtimes, small meshes, hypothesis profile."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.airfoil import generate_mesh
from repro.hpx.runtime import HPXRuntime, set_runtime
from repro.op2.runtime import set_op2_runtime

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture()
def hpx_rt():
    """A fresh 4-worker HPX runtime installed as current for the test."""
    rt = HPXRuntime(4)
    prev = set_runtime(rt)
    prev_op2 = set_op2_runtime(None)
    yield rt
    set_runtime(prev)
    set_op2_runtime(prev_op2)


@pytest.fixture(autouse=True)
def _isolate_global_runtimes():
    """Never leak a session installed by a test into the next test."""
    yield
    set_runtime(None)
    set_op2_runtime(None)


@pytest.fixture(scope="session")
def tiny_mesh():
    """16x6 O-mesh: 96 cells, 176 edges — fast enough for any test."""
    return generate_mesh(ni=16, nj=6)


@pytest.fixture(scope="session")
def small_mesh():
    """24x10 O-mesh used by the numerical cross-backend tests."""
    return generate_mesh(ni=24, nj=10)
