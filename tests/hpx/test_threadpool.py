"""Unit tests for the real-OS-thread pool behind ``mode="threads"``."""

import threading
import time

import pytest

from repro.hpx.threadpool import PoolStats, ThreadPoolEngine, chain_errors
from repro.util.validate import ValidationError


class TestLifecycle:
    def test_lazy_start(self):
        pool = ThreadPoolEngine(2)
        assert not pool.active
        pool.run_batch([lambda: 1])
        assert pool.active
        pool.close()
        assert not pool.active

    def test_close_is_idempotent(self):
        pool = ThreadPoolEngine(2)
        pool.run_batch([lambda: 1])
        pool.close()
        pool.close()
        assert not pool.active

    def test_reusable_after_close(self):
        pool = ThreadPoolEngine(2)
        assert pool.run_batch([lambda: "a"]) == ["a"]
        pool.close()
        assert pool.run_batch([lambda: "b"]) == ["b"]
        pool.close()

    def test_context_manager_closes(self):
        with ThreadPoolEngine(2) as pool:
            pool.run_batch([lambda: 1])
            assert pool.active
        assert not pool.active

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValidationError):
            ThreadPoolEngine(0)
        with pytest.raises(ValidationError):
            ThreadPoolEngine(-3)


class TestRunBatch:
    def test_empty_batch(self):
        pool = ThreadPoolEngine(2)
        assert pool.run_batch([]) == []
        assert not pool.active  # nothing submitted: pool never started

    def test_results_in_submission_order_not_completion_order(self):
        """Later-submitted tasks finishing first must not reorder results."""
        with ThreadPoolEngine(4) as pool:
            delays = [0.05, 0.0, 0.03, 0.0]

            def task(i, d):
                time.sleep(d)
                return i

            out = pool.run_batch(
                [lambda i=i, d=d: task(i, d) for i, d in enumerate(delays)]
            )
            assert out == [0, 1, 2, 3]

    def test_tasks_run_on_worker_threads(self):
        with ThreadPoolEngine(2) as pool:
            names = pool.run_batch(
                [lambda: threading.current_thread().name for _ in range(4)]
            )
        assert all(n.startswith("op2-worker") for n in names)

    def test_first_error_in_submission_order_wins(self):
        with ThreadPoolEngine(2) as pool:
            def boom(msg):
                raise RuntimeError(msg)

            with pytest.raises(RuntimeError, match="first"):
                pool.run_batch(
                    [lambda: 1, lambda: boom("first"), lambda: boom("second")]
                )

    def test_secondary_errors_chained_not_discarded(self):
        """Every failed task survives on the first error's context chain."""
        with ThreadPoolEngine(2) as pool:
            def boom(cls, msg):
                raise cls(msg)

            with pytest.raises(RuntimeError, match="first") as info:
                pool.run_batch(
                    [
                        lambda: boom(RuntimeError, "first"),
                        lambda: 1,
                        lambda: boom(ValueError, "second"),
                        lambda: boom(KeyError, "third"),
                    ]
                )
        second = info.value.__context__
        assert isinstance(second, ValueError) and "second" in str(second)
        third = second.__context__
        assert isinstance(third, KeyError) and "third" in str(third)
        assert third.__context__ is None

    def test_all_tasks_complete_before_error_propagates(self):
        """No worker may still be mutating shared state after run_batch."""
        done = []
        with ThreadPoolEngine(2) as pool:
            def slow_ok():
                time.sleep(0.05)
                done.append(True)

            def fail():
                raise ValueError("boom")

            with pytest.raises(ValueError):
                pool.run_batch([fail, slow_ok, slow_ok])
        assert len(done) == 2


class TestChainErrors:
    def test_single_error_passes_through(self):
        err = RuntimeError("only")
        assert chain_errors([err]) is err
        assert err.__context__ is None

    def test_duplicate_objects_do_not_cycle(self):
        a, b = RuntimeError("a"), ValueError("b")
        out = chain_errors([a, b, a, b, a])
        assert out is a
        assert a.__context__ is b
        assert b.__context__ is None

    def test_preexisting_context_is_preserved(self):
        inner = KeyError("inner")
        outer = RuntimeError("outer")
        outer.__context__ = inner
        extra = ValueError("extra")
        out = chain_errors([outer, extra])
        assert out is outer
        # The new error attaches after the chain that already existed.
        assert outer.__context__ is inner
        assert inner.__context__ is extra


class TestStats:
    def test_counters(self):
        with ThreadPoolEngine(2) as pool:
            pool.run_batch([lambda: 1, lambda: 2, lambda: 3])
            pool.run_batch([lambda: 4])
            assert pool.stats.tasks_submitted == 4
            assert pool.stats.batches == 2
            assert pool.stats.max_batch_width == 3
            assert pool.stats.tasks_failed == 0

    def test_failed_task_counter(self):
        with ThreadPoolEngine(2) as pool:
            def boom():
                raise ValueError("x")

            with pytest.raises(ValueError):
                pool.run_batch([boom, lambda: 1, boom])
            assert pool.stats.tasks_failed == 2
            with pytest.raises(ValueError):
                pool.run_batch([boom])
            assert pool.stats.tasks_failed == 3

    def test_reset(self):
        stats = PoolStats(
            tasks_submitted=7, tasks_failed=3, batches=2, max_batch_width=5
        )
        stats.reset()
        assert stats == PoolStats()
