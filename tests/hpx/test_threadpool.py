"""Unit tests for the real-OS-thread pool behind ``mode="threads"``."""

import threading
import time

import pytest

from repro.hpx.threadpool import (
    PoolFuture,
    PoolStats,
    TaskCancelled,
    ThreadPoolEngine,
    chain_errors,
)
from repro.util.validate import ValidationError


class TestLifecycle:
    def test_lazy_start(self):
        pool = ThreadPoolEngine(2)
        assert not pool.active
        pool.run_batch([lambda: 1])
        assert pool.active
        pool.close()
        assert not pool.active

    def test_close_is_idempotent(self):
        pool = ThreadPoolEngine(2)
        pool.run_batch([lambda: 1])
        pool.close()
        pool.close()
        assert not pool.active

    def test_reusable_after_close(self):
        pool = ThreadPoolEngine(2)
        assert pool.run_batch([lambda: "a"]) == ["a"]
        pool.close()
        assert pool.run_batch([lambda: "b"]) == ["b"]
        pool.close()

    def test_context_manager_closes(self):
        with ThreadPoolEngine(2) as pool:
            pool.run_batch([lambda: 1])
            assert pool.active
        assert not pool.active

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValidationError):
            ThreadPoolEngine(0)
        with pytest.raises(ValidationError):
            ThreadPoolEngine(-3)


class TestRunBatch:
    def test_empty_batch(self):
        pool = ThreadPoolEngine(2)
        assert pool.run_batch([]) == []
        assert not pool.active  # nothing submitted: pool never started

    def test_results_in_submission_order_not_completion_order(self):
        """Later-submitted tasks finishing first must not reorder results."""
        with ThreadPoolEngine(4) as pool:
            delays = [0.05, 0.0, 0.03, 0.0]

            def task(i, d):
                time.sleep(d)
                return i

            out = pool.run_batch(
                [lambda i=i, d=d: task(i, d) for i, d in enumerate(delays)]
            )
            assert out == [0, 1, 2, 3]

    def test_tasks_run_on_worker_threads(self):
        with ThreadPoolEngine(2) as pool:
            names = pool.run_batch(
                [lambda: threading.current_thread().name for _ in range(4)]
            )
        assert all(n.startswith("op2-worker") for n in names)

    def test_first_error_in_submission_order_wins(self):
        with ThreadPoolEngine(2) as pool:
            def boom(msg):
                raise RuntimeError(msg)

            with pytest.raises(RuntimeError, match="first"):
                pool.run_batch(
                    [lambda: 1, lambda: boom("first"), lambda: boom("second")]
                )

    def test_secondary_errors_chained_not_discarded(self):
        """Every failed task survives on the first error's context chain."""
        with ThreadPoolEngine(2) as pool:
            def boom(cls, msg):
                raise cls(msg)

            with pytest.raises(RuntimeError, match="first") as info:
                pool.run_batch(
                    [
                        lambda: boom(RuntimeError, "first"),
                        lambda: 1,
                        lambda: boom(ValueError, "second"),
                        lambda: boom(KeyError, "third"),
                    ]
                )
        second = info.value.__context__
        assert isinstance(second, ValueError) and "second" in str(second)
        third = second.__context__
        assert isinstance(third, KeyError) and "third" in str(third)
        assert third.__context__ is None

    def test_all_tasks_complete_before_error_propagates(self):
        """No worker may still be mutating shared state after run_batch."""
        done = []
        with ThreadPoolEngine(2) as pool:
            def slow_ok():
                time.sleep(0.05)
                done.append(True)

            def fail():
                raise ValueError("boom")

            with pytest.raises(ValueError):
                pool.run_batch([fail, slow_ok, slow_ok])
        assert len(done) == 2


class TestSubmitAfter:
    def test_runs_without_any_join(self):
        """A dependency chain completes by itself; waiting is optional."""
        done = threading.Event()
        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(lambda: 1)
            b = pool.submit_after(lambda: 2, [a])
            pool.submit_after(done.set, [b])
            assert done.wait(5.0)
            assert pool.stats.joins == 0

    def test_task_never_starts_before_dependency_completes(self):
        """The release-order invariant, via the engine's sequence counters."""
        with ThreadPoolEngine(4) as pool:
            pool.keep_history = True
            a = pool.submit_after(lambda: "a")
            b = pool.submit_after(lambda: "b", [a])
            c = pool.submit_after(lambda: "c", [a, b])
            assert pool.wait_for(c) == "c"
        for task, deps in [(b, [a]), (c, [a, b])]:
            for dep in deps:
                assert task.started_seq > dep.done_seq

    def test_blocked_dependency_holds_back_the_dependent(self):
        hold = threading.Event()
        started = threading.Event()

        def blocked():
            hold.wait(5.0)
            return "slow"

        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(blocked)
            b = pool.submit_after(started.set, [a])
            assert not started.wait(0.05)
            assert not b.done()
            hold.set()
            pool.wait_for(b)
            assert started.is_set()

    def test_release_happens_on_completing_thread_for_inline_tasks(self):
        """Inline tasks run on whichever worker finished the last dep."""
        hold = threading.Event()
        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(lambda: hold.wait(5.0))
            fin = pool.submit_after(
                lambda: threading.current_thread().name, [a], inline=True
            )
            hold.set()  # only now may a finish: fin's edge is registered
            pool.wait_for(fin)
        assert fin.value().startswith("op2-worker")

    def test_results_readable_without_blocking(self):
        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(lambda: 21)
            b = pool.submit_after(lambda: a.value() * 2, [a])
            assert pool.wait_for(b) == 42
            assert a.value() == 21

    def test_failure_cascades_without_running_dependents(self):
        ran = []

        def boom():
            raise ValueError("root failure")

        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(boom)
            b = pool.submit_after(lambda: ran.append("b"), [a])
            c = pool.submit_after(lambda: ran.append("c"), [b])
            with pytest.raises(ValueError, match="root failure"):
                pool.wait_for(c)
            assert ran == []
            assert b.failed() and c.failed()
            # Only the task that actually ran counts as failed.
            assert pool.stats.tasks_failed == 1

    def test_gate_is_pure_synchronization(self):
        with ThreadPoolEngine(2) as pool:
            tasks = [pool.submit_after(lambda i=i: i) for i in range(4)]
            g = pool.gate(tasks, loop="sync")
            after = pool.submit_after(lambda: sum(t.value() for t in tasks), [g])
            assert pool.wait_for(after) == 6

    def test_deep_inline_chain_does_not_recurse(self):
        """Thousands of chained gates release iteratively, not recursively."""
        hold = threading.Event()
        with ThreadPoolEngine(1) as pool:
            root = pool.submit_after(lambda: hold.wait(5.0))
            tail = root
            for _ in range(2000):
                tail = pool.gate([tail])
            hold.set()
            pool.wait_for(tail)
            assert tail.done() and not tail.failed()

    def test_cancel_all_discards_waiting_tasks(self):
        hold = threading.Event()
        ran = []
        with ThreadPoolEngine(1) as pool:
            a = pool.submit_after(lambda: hold.wait(5.0))
            b = pool.submit_after(lambda: ran.append("b"), [a])
            # Release the in-flight task shortly after cancel_all starts
            # draining; cancel_all must wait it out but never release b.
            timer = threading.Timer(0.05, hold.set)
            timer.start()
            cancelled = pool.cancel_all()
            timer.join()
            assert cancelled == 1
            assert pool.stats.tasks_cancelled == 1
            assert a.done() and not a.failed()
            with pytest.raises(TaskCancelled):
                pool.wait_for(b)
            assert ran == []

    def test_close_cancels_dangling_tasks(self):
        hold = threading.Event()
        pool = ThreadPoolEngine(1)
        a = pool.submit_after(lambda: hold.wait(5.0))
        b = pool.submit_after(lambda: "never", [a])
        hold.set()
        pool.close()
        assert a.done()
        assert b.done()

    def test_keep_history_retains_dependency_edges(self):
        with ThreadPoolEngine(2) as pool:
            pool.keep_history = True
            a = pool.submit_after(lambda: 1)
            b = pool.submit_after(lambda: 2, [a])
            pool.wait_for(b)
            assert b.deps == (a,)
        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(lambda: 1)
            b = pool.submit_after(lambda: 2, [a])
            pool.wait_for(b)
            assert b.deps == ()  # edges dropped so history can't leak

    def test_wait_counters(self):
        with ThreadPoolEngine(2) as pool:
            a = pool.submit_after(lambda: 1)
            pool.wait_for(a)
            pool.wait_all([a], loop="x")
            assert pool.stats.joins == 2
            assert pool.stats.color_joins == 0
            pool.run_batch([lambda: 1], loop="x", color=0)
            assert pool.stats.joins == 3
            assert pool.stats.color_joins == 1

    def test_pool_future_resolves_through_engine(self):
        with ThreadPoolEngine(2) as pool:
            task = pool.submit_after(lambda: "value")
            fut = PoolFuture(task, pool, name="threads.loop")
            assert fut.get() == "value"
            assert fut.is_ready() and not fut.has_exception()
            assert pool.stats.joins == 1


class TestChainErrors:
    def test_single_error_passes_through(self):
        err = RuntimeError("only")
        assert chain_errors([err]) is err
        assert err.__context__ is None

    def test_duplicate_objects_do_not_cycle(self):
        a, b = RuntimeError("a"), ValueError("b")
        out = chain_errors([a, b, a, b, a])
        assert out is a
        assert a.__context__ is b
        assert b.__context__ is None

    def test_preexisting_context_is_preserved(self):
        inner = KeyError("inner")
        outer = RuntimeError("outer")
        outer.__context__ = inner
        extra = ValueError("extra")
        out = chain_errors([outer, extra])
        assert out is outer
        # The new error attaches after the chain that already existed.
        assert outer.__context__ is inner
        assert inner.__context__ is extra


class TestStats:
    def test_counters(self):
        with ThreadPoolEngine(2) as pool:
            pool.run_batch([lambda: 1, lambda: 2, lambda: 3])
            pool.run_batch([lambda: 4])
            assert pool.stats.tasks_submitted == 4
            assert pool.stats.batches == 2
            assert pool.stats.max_batch_width == 3
            assert pool.stats.tasks_failed == 0

    def test_failed_task_counter(self):
        with ThreadPoolEngine(2) as pool:
            def boom():
                raise ValueError("x")

            with pytest.raises(ValueError):
                pool.run_batch([boom, lambda: 1, boom])
            assert pool.stats.tasks_failed == 2
            with pytest.raises(ValueError):
                pool.run_batch([boom])
            assert pool.stats.tasks_failed == 3

    def test_reset(self):
        stats = PoolStats(
            tasks_submitted=7, tasks_failed=3, batches=2, max_batch_width=5
        )
        stats.reset()
        assert stats == PoolStats()
