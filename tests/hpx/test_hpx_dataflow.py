"""Tests for repro.hpx.dataflow."""

import pytest

from repro.hpx.dataflow import dataflow, unwrapped
from repro.hpx.future import Future, make_ready_future
from repro.hpx.runtime import async_


class TestDataflowBasics:
    def test_no_future_args_runs(self, hpx_rt):
        fut = dataflow(lambda a, b: a + b, 1, 2)
        assert fut.get() == 3

    def test_future_args_passed_through_without_unwrapped(self, hpx_rt):
        dep = make_ready_future(5, hpx_rt.executor)
        fut = dataflow(lambda f: type(f).__name__, dep)
        assert fut.get() == "Future"

    def test_unwrapped_passes_values(self, hpx_rt):
        dep = async_(lambda: 5)
        fut = dataflow(unwrapped(lambda v, c: v * c), dep, 3)
        assert fut.get() == 15

    def test_delays_until_dependency_ready(self, hpx_rt):
        log = []
        dep = async_(lambda: log.append("producer"))
        consumer = dataflow(unwrapped(lambda _: log.append("consumer")), dep)
        consumer.get()
        assert log == ["producer", "consumer"]

    def test_mixed_future_and_plain_args(self, hpx_rt):
        fut = dataflow(unwrapped(lambda a, b, c: (a, b, c)), 1, async_(lambda: 2), 3)
        assert fut.get() == (1, 2, 3)

    def test_result_future_unwrapped_one_level(self, hpx_rt):
        inner = async_(lambda: "deep")
        fut = dataflow(lambda: inner)
        assert fut.get() == "deep"


class TestDataflowChains:
    def test_chain_executes_in_dependency_order(self, hpx_rt):
        order = []

        def step(name):
            def run(*_):
                order.append(name)
                return name

            return run

        a = dataflow(step("a"))
        b = dataflow(step("b"), a)
        c = dataflow(step("c"), b)
        assert c.get() == "c"
        assert order == ["a", "b", "c"]

    def test_diamond_dependencies(self, hpx_rt):
        results = {}

        def node(name):
            def run(*deps):
                results[name] = [d for d in deps]
                return name

            return run

        top = dataflow(unwrapped(node("top")))
        left = dataflow(unwrapped(node("left")), top)
        right = dataflow(unwrapped(node("right")), top)
        bottom = dataflow(unwrapped(node("bottom")), left, right)
        assert bottom.get() == "bottom"
        assert results["bottom"] == ["left", "right"]

    def test_implicit_execution_tree(self, hpx_rt):
        # Fig 14: data[t] built from data[t-1] without any explicit get().
        value = make_ready_future(0, hpx_rt.executor)
        for _ in range(10):
            value = dataflow(unwrapped(lambda v: v + 1), value)
        assert value.get() == 10


class TestDataflowErrors:
    def test_function_exception_stored(self, hpx_rt):
        def bad():
            raise RuntimeError("exploded")

        with pytest.raises(RuntimeError, match="exploded"):
            dataflow(bad).get()

    def test_dependency_failure_propagates(self, hpx_rt):
        def bad():
            raise ValueError("upstream")

        called = []
        dep = async_(bad)
        fut = dataflow(unwrapped(lambda v: called.append(v)), dep)
        with pytest.raises(ValueError, match="upstream"):
            fut.get()
        assert called == []

    def test_returns_future_object(self, hpx_rt):
        assert isinstance(dataflow(lambda: None), Future)
