"""Tests for repro.hpx.executor."""

import pytest

from repro.hpx.executor import TaskExecutor
from repro.hpx.future import FutureError


class TestSubmission:
    def test_submit_returns_future_with_result(self):
        ex = TaskExecutor(2)
        assert ex.submit(lambda a, b: a + b, 2, 3).get() == 5

    def test_post_is_fire_and_forget(self):
        ex = TaskExecutor(2)
        log = []
        ex.post(lambda: log.append(1))
        ex.drain()
        assert log == [1]

    def test_pending_counts_queued_tasks(self):
        ex = TaskExecutor(2)
        for _ in range(5):
            ex.post(lambda: None)
        assert ex.pending() == 5
        ex.drain()
        assert ex.pending() == 0

    def test_invalid_worker_count(self):
        with pytest.raises(Exception):
            TaskExecutor(0)

    def test_explicit_worker_assignment(self):
        ex = TaskExecutor(4)
        ex.submit(lambda: None, worker=2)
        assert len(ex._queues[2]) == 1


class TestExecutionOrder:
    def test_tasks_spawned_round_robin(self):
        ex = TaskExecutor(3)
        for _ in range(6):
            ex.post(lambda: None)
        assert [len(q) for q in ex._queues] == [2, 2, 2]

    def test_drain_runs_nested_spawns(self):
        ex = TaskExecutor(2)
        log = []

        def outer():
            log.append("outer")
            ex.post(lambda: log.append("inner"))

        ex.post(outer)
        ex.drain()
        assert log == ["outer", "inner"]

    def test_deterministic_across_runs(self):
        def run():
            ex = TaskExecutor(3)
            log = []
            for i in range(10):
                ex.post(lambda i=i: log.append(i))
            ex.drain()
            return log

        assert run() == run()


class TestWorkStealing:
    def test_steals_counted(self):
        ex = TaskExecutor(4)
        # All work lands on worker 0; other workers must steal.
        for _ in range(8):
            ex.post(lambda: None, worker=0)
        ex.drain()
        assert ex.stats.steals > 0

    def test_no_steals_when_balanced_single_worker(self):
        ex = TaskExecutor(1)
        for _ in range(4):
            ex.post(lambda: None)
        ex.drain()
        assert ex.stats.steals == 0


class TestRunUntil:
    def test_deadlock_detection(self):
        ex = TaskExecutor(2)
        with pytest.raises(FutureError, match="deadlock|ran out"):
            ex.run_until(lambda: False)

    def test_predicate_true_immediately_runs_nothing(self):
        ex = TaskExecutor(2)
        ex.post(lambda: None)
        ex.run_until(lambda: True)
        assert ex.pending() == 1


class TestStats:
    def test_counters_track_activity(self):
        ex = TaskExecutor(2)
        for _ in range(5):
            ex.post(lambda: None)
        ex.drain()
        assert ex.stats.tasks_spawned == 5
        assert ex.stats.tasks_executed == 5
        assert sum(ex.stats.per_worker_executed) == 5

    def test_reset_stats(self):
        ex = TaskExecutor(2)
        ex.post(lambda: None)
        ex.drain()
        ex.reset_stats()
        assert ex.stats.tasks_executed == 0
        assert ex.stats.tasks_spawned == 0

    def test_max_queue_depth_observed(self):
        ex = TaskExecutor(1)
        for _ in range(7):
            ex.post(lambda: None)
        assert ex.stats.max_queue_depth == 7
