"""Tests for repro.hpx.future."""

import pytest

from repro.hpx.executor import TaskExecutor
from repro.hpx.future import Future, FutureError, make_ready_future, when_all


class TestFutureBasics:
    def test_starts_pending(self):
        f = Future()
        assert not f.is_ready()

    def test_set_value_makes_ready(self):
        f = Future()
        f.set_value(42)
        assert f.is_ready()
        assert f.get() == 42

    def test_double_set_raises(self):
        f = Future()
        f.set_value(1)
        with pytest.raises(FutureError):
            f.set_value(2)

    def test_set_after_exception_raises(self):
        f = Future()
        f.set_exception(ValueError("boom"))
        with pytest.raises(FutureError):
            f.set_value(1)

    def test_get_reraises_stored_exception(self):
        f = Future()
        f.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            f.get()

    def test_get_pending_without_executor_raises(self):
        f = Future()
        with pytest.raises(FutureError, match="executor"):
            f.get()

    def test_make_ready_future(self):
        f = make_ready_future("hello")
        assert f.is_ready()
        assert f.get() == "hello"

    def test_none_is_a_valid_value(self):
        f = make_ready_future(None)
        assert f.is_ready()
        assert f.get() is None


class TestFutureGetDrivesExecutor:
    def test_get_runs_pending_producer(self):
        ex = TaskExecutor(2)
        f = ex.submit(lambda: 7)
        assert not f.is_ready()
        assert f.get() == 7

    def test_other_tasks_progress_while_waiting(self):
        ex = TaskExecutor(2)
        log = []
        ex.post(lambda: log.append("a"))
        f = ex.submit(lambda: log.append("b"))
        f.get()
        # The unrelated post also ran: waiting does not stall the world.
        assert "a" in log and "b" in log

    def test_exception_propagates_through_get(self):
        ex = TaskExecutor(1)

        def bad():
            raise RuntimeError("kernel panic")

        f = ex.submit(bad)
        with pytest.raises(RuntimeError, match="kernel panic"):
            f.get()


class TestThen:
    def test_then_chains_value(self):
        ex = TaskExecutor(2)
        f = ex.submit(lambda: 10)
        g = f.then(lambda v: v + 1)
        assert g.get() == 11

    def test_then_on_ready_future(self):
        ex = TaskExecutor(1)
        f = ex.submit(lambda: 1)
        f.get()
        assert f.then(lambda v: v * 3).get() == 3

    def test_then_propagates_failure_without_calling_fn(self):
        ex = TaskExecutor(1)
        calls = []

        def bad():
            raise ValueError("nope")

        g = ex.submit(bad).then(lambda v: calls.append(v))
        with pytest.raises(ValueError):
            g.get()
        assert calls == []

    def test_then_requires_executor(self):
        f = Future()
        f.set_value(1)
        with pytest.raises(FutureError):
            f.then(lambda v: v)


class TestWhenAll:
    def test_preserves_input_order(self):
        ex = TaskExecutor(3)
        futures = [ex.submit(lambda i=i: i * i) for i in range(5)]
        assert when_all(futures).get() == [0, 1, 4, 9, 16]

    def test_empty_input_ready_immediately(self):
        combined = when_all([])
        assert combined.is_ready()
        assert combined.get() == []

    def test_failure_propagates(self):
        ex = TaskExecutor(2)

        def bad():
            raise KeyError("missing")

        combined = when_all([ex.submit(lambda: 1), ex.submit(bad)])
        with pytest.raises(KeyError):
            combined.get()

    def test_first_failure_by_input_order_wins(self):
        ex = TaskExecutor(1)

        def bad(msg):
            raise ValueError(msg)

        combined = when_all(
            [ex.submit(bad, "first"), ex.submit(bad, "second")]
        )
        with pytest.raises(ValueError, match="first"):
            combined.get()

    def test_already_ready_inputs(self):
        combined = when_all([make_ready_future(1), make_ready_future(2)])
        assert combined.get() == [1, 2]

    def test_executor_inferred_from_inputs(self):
        ex = TaskExecutor(2)
        combined = when_all([ex.submit(lambda: 1)])
        assert combined.get() == [1]
