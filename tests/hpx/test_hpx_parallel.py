"""Tests for repro.hpx.parallel algorithms."""

import pytest

from repro.hpx.chunking import AutoPartitioner, StaticChunkSize
from repro.hpx.future import Future
from repro.hpx.parallel import for_each, for_loop, reduce_, transform
from repro.hpx.policies import par, par_task, seq


class TestForEach:
    def test_seq_applies_in_order(self, hpx_rt):
        log = []
        result = for_each(seq, range(5), log.append)
        assert result is None
        assert log == [0, 1, 2, 3, 4]

    def test_par_applies_all(self, hpx_rt):
        hits = [0] * 20
        for_each(par, range(20), lambda i: hits.__setitem__(i, hits[i] + 1))
        assert hits == [1] * 20

    def test_par_joins_before_returning(self, hpx_rt):
        done = []
        for_each(par, range(10), done.append)
        assert sorted(done) == list(range(10))  # complete at return: barrier

    def test_par_task_returns_future(self, hpx_rt):
        done = []
        fut = for_each(par_task, range(10), done.append)
        assert isinstance(fut, Future)
        fut.get()
        assert sorted(done) == list(range(10))

    def test_par_task_defers_work(self, hpx_rt):
        done = []
        fut = for_each(par_task, range(10), done.append)
        assert len(done) < 10  # not all executed before get()
        fut.get()
        assert len(done) == 10

    def test_with_static_chunker(self, hpx_rt):
        done = []
        for_each(par.with_(StaticChunkSize(3)), range(10), done.append)
        assert sorted(done) == list(range(10))

    def test_with_auto_partitioner(self, hpx_rt):
        done = []
        for_each(par.with_(AutoPartitioner()), range(500), done.append)
        assert len(done) == 500

    def test_over_list(self, hpx_rt):
        out = []
        for_each(par, ["a", "b", "c"], out.append)
        assert sorted(out) == ["a", "b", "c"]

    def test_empty_range(self, hpx_rt):
        for_each(par, range(0), lambda i: pytest.fail("must not run"))

    def test_body_exception_propagates(self, hpx_rt):
        def body(i):
            if i == 3:
                raise ValueError("bad element")

        with pytest.raises(ValueError, match="bad element"):
            for_each(par, range(5), body)


class TestForLoop:
    def test_range_offsets(self, hpx_rt):
        seen = []
        for_loop(par, 10, 15, seen.append)
        assert sorted(seen) == [10, 11, 12, 13, 14]

    def test_empty_interval(self, hpx_rt):
        for_loop(par, 5, 5, lambda i: pytest.fail("must not run"))

    def test_seq_task_flavor_returns_ready_future(self, hpx_rt):
        fut = for_each(par_task.with_(StaticChunkSize(2)), range(4), lambda i: None)
        assert fut.get() is None


class TestTransform:
    def test_order_preserved(self, hpx_rt):
        assert transform(par, [1, 2, 3, 4], lambda v: v * 10) == [10, 20, 30, 40]

    def test_seq(self, hpx_rt):
        assert transform(seq, [1, 2], str) == ["1", "2"]

    def test_task_flavor(self, hpx_rt):
        fut = transform(par_task, [3, 1], lambda v: -v)
        assert fut.get() == [-3, -1]

    def test_empty(self, hpx_rt):
        assert transform(par, [], lambda v: v) == []


class TestReduce:
    def test_sum(self, hpx_rt):
        assert reduce_(par, list(range(100)), lambda a, b: a + b, 0) == 4950

    def test_seq_matches_par(self, hpx_rt):
        items = [3, 1, 4, 1, 5, 9, 2, 6]
        assert reduce_(seq, items, lambda a, b: a + b, 0) == reduce_(
            par, items, lambda a, b: a + b, 0
        )

    def test_non_commutative_associative_op(self, hpx_rt):
        # String concatenation: associative, not commutative. Chunk ordering
        # must preserve the sequential fold.
        items = list("abcdefghijk")
        assert reduce_(par, items, lambda a, b: a + b, "") == "abcdefghijk"

    def test_non_commutative_with_prefix_chunker(self, hpx_rt):
        items = list("abcdefghijklmnopqrstuvwxyz") * 8
        got = reduce_(par.with_(AutoPartitioner()), items, lambda a, b: a + b, "")
        assert got == "".join(items)

    def test_task_flavor(self, hpx_rt):
        fut = reduce_(par_task, [1, 2, 3], lambda a, b: a + b, 10)
        assert fut.get() == 16

    def test_empty_returns_init(self, hpx_rt):
        assert reduce_(par, [], lambda a, b: a + b, 99) == 99

    def test_seq_task(self, hpx_rt):
        assert reduce_(par_task, [], lambda a, b: a + b, 5).get() == 5
