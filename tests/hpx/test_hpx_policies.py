"""Tests for repro.hpx.policies."""

import pytest

from repro.hpx.chunking import GuessChunkSize, StaticChunkSize
from repro.hpx.policies import par, par_task, seq


class TestPolicyValues:
    def test_seq_not_parallel(self):
        assert not seq.parallel and not seq.task

    def test_par_is_parallel_sync(self):
        assert par.parallel and not par.task

    def test_par_task_is_parallel_async(self):
        assert par_task.parallel and par_task.task

    def test_par_call_task_flavor(self):
        p = par("task")
        assert p.parallel and p.task

    def test_par_task_equals_par_called(self):
        assert par("task").task == par_task.task
        assert par("task").parallel == par_task.parallel

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            par("sync")

    def test_seq_task_rejected(self):
        with pytest.raises(ValueError):
            seq("task")


class TestWith:
    def test_with_attaches_chunker(self):
        scs = StaticChunkSize(8)
        p = par.with_(scs)
        assert p.chunker is scs

    def test_with_returns_new_policy(self):
        p = par.with_(StaticChunkSize(8))
        assert par.chunker is None
        assert p is not par

    def test_with_rejects_non_chunker(self):
        with pytest.raises(TypeError):
            par.with_(42)

    def test_effective_chunker_defaults_to_guess(self):
        assert isinstance(par.effective_chunker(), GuessChunkSize)

    def test_policies_are_immutable(self):
        with pytest.raises(Exception):
            par.task = True


class TestDescribe:
    def test_plain_names(self):
        assert par.describe() == "par"
        assert seq.describe() == "seq"
        assert "task" in par_task.describe()

    def test_with_chunker_named(self):
        assert "static_chunk_size(8)" in par.with_(StaticChunkSize(8)).describe()
