"""Tests for repro.hpx.chunking."""

import pytest

from repro.hpx.chunking import (
    AutoPartitioner,
    Chunk,
    DynamicChunkSize,
    GuessChunkSize,
    StaticChunkSize,
    validate_cover,
)
from repro.util.validate import ValidationError


class TestStaticChunkSize:
    def test_exact_tiling(self):
        chunks = StaticChunkSize(4).chunks(12, 3)
        assert [(c.start, c.stop) for c in chunks] == [(0, 4), (4, 8), (8, 12)]

    def test_last_chunk_short(self):
        chunks = StaticChunkSize(5).chunks(12, 2)
        assert chunks[-1].stop - chunks[-1].start == 2

    def test_zero_iterations(self):
        assert StaticChunkSize(4).chunks(0, 2) == []

    def test_invalid_size(self):
        with pytest.raises(Exception):
            StaticChunkSize(0)

    def test_negative_n_rejected(self):
        with pytest.raises(ValidationError):
            StaticChunkSize(4).chunks(-1, 2)

    def test_not_dynamic(self):
        assert StaticChunkSize(4).dynamic is False

    def test_describe(self):
        assert StaticChunkSize(8).describe() == "static_chunk_size(8)"


class TestDynamicChunkSize:
    def test_same_decomposition_as_static(self):
        s = StaticChunkSize(3).chunks(10, 2)
        d = DynamicChunkSize(3).chunks(10, 2)
        assert [(c.start, c.stop) for c in s] == [(c.start, c.stop) for c in d]

    def test_dynamic_flag(self):
        assert DynamicChunkSize(3).dynamic is True


class TestGuessChunkSize:
    def test_one_chunk_per_worker(self):
        chunks = GuessChunkSize().chunks(100, 4)
        assert len(chunks) == 4

    def test_more_workers_than_items(self):
        chunks = GuessChunkSize().chunks(3, 8)
        validate_cover(chunks, 3)
        assert all(len(c) >= 1 for c in chunks)

    def test_covers_range(self):
        validate_cover(GuessChunkSize().chunks(17, 5), 17)


class TestAutoPartitioner:
    def test_first_chunk_is_serial_prefix(self):
        chunks = AutoPartitioner().chunks(1000, 4)
        assert chunks[0].serial_prefix
        assert all(not c.serial_prefix for c in chunks[1:])

    def test_prefix_is_one_percent(self):
        ap = AutoPartitioner()
        assert ap.prefix_length(1000) == 10
        assert ap.prefix_length(200) == 2

    def test_prefix_at_least_one(self):
        assert AutoPartitioner().prefix_length(5) == 1

    def test_tiny_loop_fully_serial(self):
        chunks = AutoPartitioner().chunks(1, 4)
        assert len(chunks) == 1
        assert chunks[0].serial_prefix

    def test_covers_range(self):
        validate_cover(AutoPartitioner().chunks(997, 3), 997)

    def test_target_chunks_per_worker(self):
        ap = AutoPartitioner(chunks_per_worker=4)
        chunks = [c for c in ap.chunks(10_000, 8) if not c.serial_prefix]
        # ~4 chunks per worker (up to rounding).
        assert 28 <= len(chunks) <= 36

    def test_cost_probe_never_called_without_measurement(self):
        # Regression: chunks() used to invoke the probe with a fabricated
        # cost of 1.0. The probe only makes sense for a *measured* cost, so
        # the unmeasured path must not call it at all.
        def probe(cost):
            raise AssertionError(f"probe called without measurement: {cost}")

        ap = AutoPartitioner(cost_probe=probe)
        validate_cover(ap.chunks(1000, 4), 1000)

    def test_cost_probe_sees_measured_cost(self):
        seen = []

        def probe(cost):
            seen.append(cost)
            return 50

        ap = AutoPartitioner(cost_probe=probe)
        chunks = ap.split(1000, 4, measure=lambda chunk: 0.02 * len(chunk))
        assert seen == [pytest.approx(0.02)]
        sizes = [len(c) for c in chunks if not c.serial_prefix]
        # All chunks use the probe's size (the final remainder may be short).
        assert all(s <= 50 for s in sizes)
        assert sizes.count(50) >= len(sizes) - 1
        validate_cover(chunks, 1000)

    def test_measured_cost_changes_chunk_size(self):
        # The measurement must actually steer the decomposition: a loop with
        # expensive iterations gets bigger chunks than the cost-free default
        # once a minimum per-chunk work time is requested.
        # Cheap iterations need *more* of them per chunk to amortize the
        # per-chunk overhead the floor models; expensive iterations hit the
        # floor quickly and keep the chunks-per-worker default.
        ap = AutoPartitioner(min_chunk_seconds=1.0)
        unmeasured = [len(c) for c in ap.chunks(1000, 4) if not c.serial_prefix]
        cheap = ap.split(1000, 4, measure=lambda chunk: 0.002 * len(chunk))
        slow = ap.split(1000, 4, measure=lambda chunk: 0.1 * len(chunk))
        cheap_sizes = [len(c) for c in cheap if not c.serial_prefix]
        slow_sizes = [len(c) for c in slow if not c.serial_prefix]
        # 0.002 s/iter and a 1 s floor => at least 500 iterations per chunk.
        assert max(cheap_sizes) >= 500
        assert max(cheap_sizes) > max(unmeasured)
        # 0.1 s/iter hits the floor within the default grain: unchanged.
        assert slow_sizes == unmeasured
        validate_cover(cheap, 1000)
        validate_cover(slow, 1000)

    def test_split_executes_prefix_through_measure(self):
        executed = []

        def measure(chunk):
            executed.append((chunk.start, chunk.stop, chunk.serial_prefix))
            return 0.001 * len(chunk)

        chunks = AutoPartitioner().split(1000, 4, measure=measure)
        assert executed == [(0, 10, True)]
        assert chunks[0].serial_prefix
        validate_cover(chunks, 1000)

    def test_split_without_measure_matches_chunks(self):
        ap = AutoPartitioner()
        assert ap.split(1000, 4) == ap.chunks(1000, 4)

    def test_min_chunk_seconds_validated(self):
        with pytest.raises(ValidationError):
            AutoPartitioner(min_chunk_seconds=-0.5)

    def test_invalid_fraction(self):
        with pytest.raises(ValidationError):
            AutoPartitioner(measure_fraction=0.0)
        with pytest.raises(ValidationError):
            AutoPartitioner(measure_fraction=1.0)

    def test_zero_iterations(self):
        assert AutoPartitioner().chunks(0, 4) == []


class TestValidateCover:
    def test_detects_gap(self):
        with pytest.raises(ValidationError):
            validate_cover([Chunk(0, 3), Chunk(4, 10)], 10)

    def test_detects_shortfall(self):
        with pytest.raises(ValidationError):
            validate_cover([Chunk(0, 5)], 10)

    def test_detects_overrun(self):
        with pytest.raises(ValidationError):
            validate_cover([Chunk(0, 12)], 10)

    def test_empty_ok_for_zero(self):
        validate_cover([], 0)
