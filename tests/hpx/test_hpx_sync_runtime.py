"""Tests for repro.hpx.sync and repro.hpx.runtime."""

import pytest

from repro.hpx.runtime import HPXRuntime, async_, get_runtime, runtime_scope, set_runtime
from repro.hpx.sync import Barrier, CountingSemaphore, Latch, SyncError


class TestLatch:
    def test_counts_down_to_ready(self, hpx_rt):
        latch = Latch(2)
        latch.count_down()
        assert not latch.is_ready()
        latch.count_down()
        assert latch.is_ready()

    def test_wait_drives_producers(self, hpx_rt):
        latch = Latch(3)
        for _ in range(3):
            hpx_rt.executor.post(latch.count_down)
        latch.wait()
        assert latch.is_ready()

    def test_over_release_raises(self, hpx_rt):
        latch = Latch(1)
        latch.count_down()
        with pytest.raises(SyncError):
            latch.count_down()

    def test_zero_latch_ready(self, hpx_rt):
        assert Latch(0).is_ready()

    def test_arrive_and_wait_single_party(self, hpx_rt):
        latch = Latch(1)
        latch.arrive_and_wait()
        assert latch.is_ready()


class TestBarrier:
    def test_generation_advances_when_all_arrive(self, hpx_rt):
        b = Barrier(3)
        assert b.arrive() == 0
        assert b.arrive() == 0
        assert b.arrive() == 0
        assert b._generation == 1

    def test_reusable_across_generations(self, hpx_rt):
        b = Barrier(2)
        b.arrive(), b.arrive()
        assert b.arrive() == 1

    def test_wait_for_generation(self, hpx_rt):
        b = Barrier(2)
        gen = b.arrive()
        hpx_rt.executor.post(b.arrive)
        b.wait(gen)
        assert b._generation == 1

    def test_single_party_barrier_never_blocks(self, hpx_rt):
        b = Barrier(1)
        b.arrive_and_wait()
        b.arrive_and_wait()
        assert b._generation == 2

    def test_arrive_and_wait_completes_generation(self, hpx_rt):
        b = Barrier(2)
        hpx_rt.executor.post(b.arrive)
        b.arrive_and_wait()
        assert b._generation == 1


class TestCountingSemaphore:
    def test_try_acquire(self, hpx_rt):
        sem = CountingSemaphore(2)
        assert sem.try_acquire()
        assert sem.try_acquire()
        assert not sem.try_acquire()

    def test_release_then_acquire(self, hpx_rt):
        sem = CountingSemaphore()
        hpx_rt.executor.post(sem.release)
        sem.acquire()
        assert sem.value == 0

    def test_bulk_operations(self, hpx_rt):
        sem = CountingSemaphore(5)
        assert sem.try_acquire(3)
        assert not sem.try_acquire(3)
        sem.release(1)
        assert sem.try_acquire(3)


class TestHPXRuntime:
    def test_async_free_function_uses_current(self, hpx_rt):
        assert async_(lambda: 42).get() == 42

    def test_get_runtime_creates_default(self):
        set_runtime(None)
        rt = get_runtime()
        assert isinstance(rt, HPXRuntime)
        assert get_runtime() is rt

    def test_runtime_scope_restores_previous(self, hpx_rt):
        with runtime_scope(2) as inner:
            assert get_runtime() is inner
        assert get_runtime() is hpx_rt

    def test_run_drains(self, hpx_rt):
        log = []

        def main():
            hpx_rt.executor.post(lambda: log.append("straggler"))
            return "done"

        assert hpx_rt.run(main) == "done"
        assert log == ["straggler"]

    def test_stats_accessible(self, hpx_rt):
        async_(lambda: None).get()
        assert hpx_rt.stats.tasks_executed >= 1

    def test_invalid_thread_count(self):
        with pytest.raises(Exception):
            HPXRuntime(0)
