"""Measured wall-clock helpers shared by the ``--mode threads`` bench runs.

The simulated benches replay recorded loop logs on the machine model; these
helpers run the *same applications* on real OS threads
(:func:`repro.experiments.runner.measure_backend`) and render the measured
numbers next to the simulated ones, so a reader can compare the model's
scaling story with what this host actually does.

CI caveat: thread speedups are physical — a 1- or 2-core runner cannot show
a 4-worker speedup, and numpy's GIL-released stretches only pay off when
cores are genuinely free. :func:`scaling_assertion_active` therefore gates
hard speedup assertions on the host's usable core count; the numbers are
always printed either way.
"""

from __future__ import annotations

import os

from repro.experiments.runner import (
    MeasuredRun,
    measure_backend,
    simulate_backend,
)
from repro.hpx.chunking import CHUNKS_PER_WORKER
from repro.util.tables import Table

#: (backend registry name, display label, backend options or None)
Spec = tuple[str, str, dict | None]


def available_cores() -> int:
    """Usable cores for this process (affinity-aware where supported)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def scaling_assertion_active(needed_workers: int) -> bool:
    """Only assert real speedups the host can physically deliver."""
    return available_cores() >= needed_workers


def tuned_static_chunk(config, mesh, max_workers: int) -> int:
    """Programmer-tuned ``static_chunk_size`` for measured runs (paper Fig 7).

    Sized so the cells set yields ~``CHUNKS_PER_WORKER`` tasks per worker —
    large enough that numpy batches dominate per-task Python overhead, small
    enough to load-balance.
    """
    nblocks = -(-mesh.cells.size // config.block_size)
    return max(1, nblocks // (max_workers * CHUNKS_PER_WORKER))


def measure_matrix(
    specs: list[Spec],
    config,
    mesh,
    workers: tuple[int, ...],
    repeats: int = 3,
    timing: bool = False,
    trace_dir=None,
    trace_tag: str = "",
) -> dict[tuple[str, int], MeasuredRun]:
    """Measured run for every (spec, worker count) combination.

    ``timing=True`` attaches per-kernel timing summaries to every run
    (rendered by :func:`wallclock_report`); ``trace_dir`` additionally writes
    one Chrome-trace JSON per (spec, workers) pair there, with file names
    prefixed by ``trace_tag``.
    """
    results: dict[tuple[str, int], MeasuredRun] = {}
    for backend, label, options in specs:
        for w in workers:
            trace_path = None
            if trace_dir is not None:
                slug = label.replace(" ", "_").replace("/", "-")
                trace_path = os.path.join(
                    str(trace_dir), f"{trace_tag}{slug}-{w}w.json"
                )
            results[(label, w)] = measure_backend(
                backend,
                config,
                mesh,
                num_workers=w,
                repeats=repeats,
                backend_options=options,
                timing=timing,
                trace_path=trace_path,
            )
    return results


def simulated_ms(
    specs: list[Spec], runs_for, config, workers: tuple[int, ...], cost_model
) -> dict[tuple[str, int], float]:
    """Simulated makespans (ms) for the same matrix, from cached logs."""
    out: dict[tuple[str, int], float] = {}
    for backend, label, _ in specs:
        run = runs_for(backend)
        for w in workers:
            sim = simulate_backend(run, config, w, cost_model)
            out[(label, w)] = sim.makespan / 1000.0
    return out


def wallclock_report(
    title: str,
    specs: list[Spec],
    results: dict[tuple[str, int], MeasuredRun],
    workers: tuple[int, ...],
    sim_ms: dict[tuple[str, int], float] | None = None,
) -> str:
    """Measured (and optionally simulated) table plus per-spec speedups."""
    header = ["workers"]
    for _, label, _ in specs:
        header.append(f"{label} wall ms")
        if sim_ms is not None:
            header.append(f"{label} sim ms")
    table = Table(header)
    for w in workers:
        row: list = [w]
        for _, label, _ in specs:
            row.append(results[(label, w)].wall_seconds * 1000.0)
            if sim_ms is not None:
                row.append(sim_ms.get((label, w), float("nan")))
        table.add_row(row)

    lines = [
        f"== {title} (measured wall clock; {available_cores()} usable core(s)) ==",
        table.render(),
    ]
    base = workers[0]
    for _, label, _ in specs:
        parts = [
            f"{w}w {speedup(results, label, w, base):.2f}x" for w in workers[1:]
        ]
        if parts:
            lines.append(f"  {label}: speedup vs {base}w: {', '.join(parts)}")
    # Per-kernel timing tables (op_timing_output) at the top worker count,
    # when the matrix was measured with timing enabled.
    top = workers[-1]
    for _, label, _ in specs:
        run = results[(label, top)]
        if run.timing is not None:
            lines.append(f"-- per-kernel timing: {label} @ {top} worker(s) --")
            lines.append(run.timing.render())
        if run.trace_events:
            lines.append(f"   ({run.trace_events} Chrome-trace events written)")
    return "\n".join(lines)


def speedup(
    results: dict[tuple[str, int], MeasuredRun], label: str, hi: int, lo: int = 1
) -> float:
    """Measured wall-clock speedup of ``hi`` workers over ``lo`` workers."""
    return results[(label, lo)].wall_seconds / results[(label, hi)].wall_seconds
