"""Shared benchmark fixtures.

Functional runs (numerics + loop logs) are cached per session — they are
thread-count independent — so each figure bench only pays for its own
task-graph emissions and machine simulations.
"""

from __future__ import annotations

import pytest

from repro.airfoil import generate_mesh
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import BackendRun, run_backend

#: Calibrated scale: the mesh where the machine model reproduces the paper's
#: 5% / 21% gains (see DESIGN.md §5 and EXPERIMENTS.md).
PAPER_CONFIG = ExperimentConfig(niter=2)

#: Reduced scale for the weak-scaling bench (mesh grows with threads).
WEAK_CONFIG = ExperimentConfig(ni=120, nj=48, niter=2)


@pytest.fixture(scope="session")
def paper_mesh():
    return generate_mesh(**PAPER_CONFIG.mesh_kwargs())


@pytest.fixture(scope="session")
def cost_model():
    return LoopCostModel(jitter=PAPER_CONFIG.cost_jitter)


@pytest.fixture(scope="session")
def backend_runs(paper_mesh):
    """Functional run + loop log per backend, validated once."""
    cache: dict[str, BackendRun] = {}

    def get(backend: str) -> BackendRun:
        if backend not in cache:
            cache[backend] = run_backend(
                backend, PAPER_CONFIG, paper_mesh, validate=False
            )
        return cache[backend]

    return get
