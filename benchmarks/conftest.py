"""Shared benchmark fixtures and the ``--mode sim|threads`` switch.

Functional runs (numerics + loop logs) are cached per session — they are
thread-count independent — so each figure bench only pays for its own
task-graph emissions and machine simulations.

Every ``bench_fig*`` file runs in one of two modes:

- ``--mode sim`` (default): the historical machine-model benchmarks;
- ``--mode threads``: the ``*_threads_wallclock`` tests run the same apps on
  a real ``ThreadPoolExecutor`` and report measured wall-clock numbers next
  to the simulated ones. ``--workers`` picks the worker sweep (default
  ``1,4``). Each file is also directly runnable:
  ``python benchmarks/bench_fig16_foreach.py --mode threads``;
- ``--mode procs``: the ``*_procs_wallclock`` tests run the distributed
  Airfoil for real — one OS process per rank over shared-memory dats and
  pipe halo exchanges (:mod:`repro.procs`) — comparing the blocking vs
  overlapped exchange schedules. ``--ranks`` picks the rank sweep
  (default ``2``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.airfoil import generate_mesh
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import BackendRun, run_backend

_BENCH_DIR = str(Path(__file__).resolve().parent)


def pytest_addoption(parser):
    group = parser.getgroup("repro benchmarks")
    group.addoption(
        "--mode",
        action="store",
        default="sim",
        choices=("sim", "threads", "procs"),
        help="bench execution: 'sim' (machine model, default), 'threads' "
        "(real thread pool, measured wall clock), or 'procs' (real rank "
        "processes over shared memory, measured wall clock)",
    )
    group.addoption(
        "--workers",
        action="store",
        default="1,4",
        help="comma-separated worker counts for --mode threads (default: 1,4)",
    )
    group.addoption(
        "--ranks",
        action="store",
        default="2",
        help="comma-separated rank counts for --mode procs (default: 2)",
    )
    group.addoption(
        "--threads-per-rank",
        action="store",
        default="1",
        help="pool threads inside each rank process for --mode procs "
        "(default: 1; the hybrid MPI+OpenMP analogue)",
    )
    group.addoption(
        "--trace-dir",
        action="store",
        default=None,
        help="directory for per-run Chrome-trace JSON (--mode threads only); "
        "created if missing, openable in ui.perfetto.dev",
    )


def pytest_collection_modifyitems(config, items):
    """In each mode, skip the other mode's benchmarks (benchmarks/ only)."""
    try:
        mode = config.getoption("--mode")
    except (ValueError, KeyError):  # option not registered in this run
        return
    for item in items:
        if not str(item.fspath).startswith(_BENCH_DIR):
            continue
        if "threads_wallclock" in item.name:
            wants = "threads"
        elif "procs_wallclock" in item.name:
            wants = "procs"
        else:
            wants = "sim"
        if wants != mode:
            item.add_marker(
                pytest.mark.skip(
                    reason=f"{wants}-mode benchmark; running --mode {mode}"
                )
            )


@pytest.fixture(scope="session")
def bench_mode(request) -> str:
    return request.config.getoption("--mode")


@pytest.fixture(scope="session")
def bench_trace_dir(request) -> Path | None:
    """Directory for Chrome-trace artifacts, or None when not requested."""
    raw = request.config.getoption("--trace-dir")
    if not raw:
        return None
    path = Path(raw)
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.fixture(scope="session")
def bench_workers(request) -> tuple[int, ...]:
    raw = request.config.getoption("--workers")
    workers = tuple(sorted({int(w) for w in str(raw).split(",") if w.strip()}))
    if not workers:
        raise pytest.UsageError("--workers must name at least one worker count")
    return workers


@pytest.fixture(scope="session")
def bench_ranks(request) -> tuple[int, ...]:
    raw = request.config.getoption("--ranks")
    ranks = tuple(sorted({int(r) for r in str(raw).split(",") if r.strip()}))
    if not ranks:
        raise pytest.UsageError("--ranks must name at least one rank count")
    return ranks


@pytest.fixture(scope="session")
def bench_threads_per_rank(request) -> int:
    tpr = int(request.config.getoption("--threads-per-rank"))
    if tpr < 1:
        raise pytest.UsageError("--threads-per-rank must be >= 1")
    return tpr

#: Calibrated scale: the mesh where the machine model reproduces the paper's
#: 5% / 21% gains (see DESIGN.md §5 and EXPERIMENTS.md).
PAPER_CONFIG = ExperimentConfig(niter=2)

#: Reduced scale for the weak-scaling bench (mesh grows with threads).
WEAK_CONFIG = ExperimentConfig(ni=120, nj=48, niter=2)


@pytest.fixture(scope="session")
def paper_mesh():
    return generate_mesh(**PAPER_CONFIG.mesh_kwargs())


@pytest.fixture(scope="session")
def cost_model():
    return LoopCostModel(jitter=PAPER_CONFIG.cost_jitter)


@pytest.fixture(scope="session")
def backend_runs(paper_mesh):
    """Functional run + loop log per backend, validated once."""
    cache: dict[str, BackendRun] = {}

    def get(backend: str) -> BackendRun:
        if backend not in cache:
            cache[backend] = run_backend(
                backend, PAPER_CONFIG, paper_mesh, validate=False
            )
        return cache[backend]

    return get
