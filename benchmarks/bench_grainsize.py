"""Grain-size study (paper ref [6], Grubel et al. CLUSTER 2015).

Fixed total work split into tasks of varying size, scheduled work-stealing
on the paper machine at 16 and 32 threads. Reproduces the U-shaped
efficiency curve that motivates HPX's chunk-size machinery: tiny tasks drown
in dispatch overhead, huge tasks starve threads.
"""

import pytest

from repro.experiments.grainsize import best_grain, grain_size_curve, is_u_shaped
from repro.sim.machine import paper_machine
from repro.util.tables import Table

_curves: dict[int, list] = {}


@pytest.mark.parametrize("threads", [16, 32])
def test_grain_size_curve(benchmark, threads):
    curve = benchmark.pedantic(
        lambda: grain_size_curve(paper_machine(), threads, total_work=200_000.0),
        rounds=2,
        iterations=1,
    )
    _curves[threads] = curve
    best = best_grain(curve)
    benchmark.extra_info["best_task_size_us"] = best.task_size
    benchmark.extra_info["best_efficiency"] = best.efficiency
    assert is_u_shaped(curve)


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if not _curves:
        return
    for threads, curve in _curves.items():
        table = Table(["task size (us)", "tasks", "efficiency"])
        for p in curve:
            table.add_row([p.task_size, p.num_tasks, p.efficiency])
        best = best_grain(curve)
        print(f"\n== grain-size study at {threads} threads "
              f"(best: {best.task_size:.1f} us, eff {best.efficiency:.2f}) ==")
        print(table.render())
