"""Fig 15: Airfoil execution time under the four strategies.

Regenerates the paper's execution-time comparison: #pragma omp parallel for
vs for_each vs async vs dataflow across the thread sweep. ``benchmark``
measures the simulation itself; the reproduced quantity — simulated
execution time on the modeled 16C/32T node — is attached as ``extra_info``
and printed as the paper-style table at module teardown.

Run ``python benchmarks/bench_fig15_exec_time.py --mode threads`` for the
measured (real thread pool) variant of this figure.
"""

if __package__ in (None, ""):  # executed as a script: fix up sys.path first
    import pathlib
    import sys

    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for _p in (str(_ROOT), str(_ROOT / "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import PAPER_CONFIG
from benchmarks.wallclock import measure_matrix, simulated_ms, wallclock_report
from repro.experiments.runner import simulate_backend
from repro.util.tables import Table

BACKENDS = [
    ("openmp", "omp parallel for"),
    ("foreach", "for_each"),
    ("hpx_async", "async"),
    ("hpx_dataflow", "dataflow"),
]
THREADS = [1, 8, 16, 32]

_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend,label", BACKENDS)
def test_fig15_exec_time(benchmark, backend_runs, cost_model, backend, label, threads):
    run = backend_runs(backend)

    def simulate():
        return simulate_backend(run, PAPER_CONFIG, threads, cost_model)

    result = benchmark.pedantic(simulate, rounds=2, iterations=1)
    _results[(label, threads)] = result.makespan / 1000.0
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0
    benchmark.extra_info["threads"] = threads
    assert result.makespan > 0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if not _results:
        return
    table = Table(["threads"] + [label for _, label in BACKENDS])
    for p in THREADS:
        row = [p] + [_results.get((label, p), float("nan")) for _, label in BACKENDS]
        table.add_row(row)
    print("\n== fig15: Airfoil execution time (simulated ms) ==")
    print(table.render())
    t1 = [_results[(label, 1)] for _, label in BACKENDS if (label, 1) in _results]
    if t1:
        print(f"1-thread spread: {max(t1) / min(t1) - 1.0:+.1%} "
              "(paper: same performance on 1 thread)")


def test_fig15_threads_wallclock(
    bench_workers, bench_trace_dir, paper_mesh, backend_runs, cost_model
):
    """Measured fig15: all four strategies on a real thread pool."""
    workers = bench_workers
    specs = [(backend, label, None) for backend, label in BACKENDS]
    results = measure_matrix(
        specs, PAPER_CONFIG, paper_mesh, workers, repeats=2,
        timing=True, trace_dir=bench_trace_dir, trace_tag="fig15-",
    )
    sim = simulated_ms(specs, backend_runs, PAPER_CONFIG, workers, cost_model)
    print()
    print(
        wallclock_report(
            "fig15 measured: Airfoil execution time, four strategies",
            specs, results, workers, sim,
        )
    )
    for _, label, _ in specs:
        for w in workers:
            assert results[(label, w)].wall_seconds > 0.0


if __name__ == "__main__":
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s", *sys.argv[1:]]))
