"""Ablation A3: block-coloring strategy.

Plans color the block-conflict graph of indirect-increment loops; fewer
colors means wider parallel stages. Compares first-fit greedy against
Welsh–Powell (descending degree) on the Airfoil edge loops, both for color
count and for the downstream simulated makespan of the OpenMP backend
(which runs one parallel region per color).
"""

import numpy as np
import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.airfoil import AirfoilApp
from repro.op2 import op2_session
from repro.op2.coloring import (
    build_block_conflicts,
    degree_coloring,
    greedy_coloring,
    validate_coloring,
)
from repro.op2.partition import contiguous_blocks
from repro.util.tables import Table

_results: dict[str, tuple[int, float]] = {}


@pytest.fixture(scope="module")
def conflict_graph(paper_mesh):
    blocks = contiguous_blocks(paper_mesh.edges.size, PAPER_CONFIG.block_size)
    targets = [
        np.unique(paper_mesh.pecell.values[b.start : b.stop].ravel()) for b in blocks
    ]
    return build_block_conflicts(targets)


@pytest.mark.parametrize(
    "name,algorithm",
    [("greedy first-fit", greedy_coloring), ("welsh-powell", degree_coloring)],
)
def test_coloring_strategy(benchmark, conflict_graph, name, algorithm):
    colors = benchmark.pedantic(
        lambda: algorithm(conflict_graph), rounds=3, iterations=1
    )
    validate_coloring(conflict_graph, colors)
    ncolors = max(colors) + 1
    # Parallelism proxy: average blocks per color (wider is better).
    width = len(colors) / ncolors
    _results[name] = (ncolors, width)
    benchmark.extra_info["ncolors"] = ncolors
    benchmark.extra_info["avg_blocks_per_color"] = width


def test_plan_construction_cost(benchmark, paper_mesh):
    """Plan build (blocking + conflicts + coloring) for the res_calc shape."""

    def build():
        with op2_session(backend="seq", block_size=PAPER_CONFIG.block_size) as rt:
            app = AirfoilApp(paper_mesh)
            app.loop_res_calc()
            return rt.plans.misses

    misses = benchmark.pedantic(build, rounds=3, iterations=1)
    assert misses == 1


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2:
        return
    table = Table(["strategy", "colors", "avg blocks/color"])
    for name, (ncolors, width) in _results.items():
        table.add_row([name, ncolors, width])
    print("\n== ablation A3: coloring strategy (res_calc conflict graph) ==")
    print(table.render())
