"""Benchmark harness: one module per reproduced figure plus ablations."""
