"""Ablation A5: mesh renumbering (RCM) vs dataflow dependence locality.

OP2 renumbers meshes for locality; for the dataflow backend, a good
numbering also *sparsifies* the block-level dependence relation (a consumer
block draws from fewer producer blocks). The generated O-mesh is already
well-numbered; this bench quantifies how much a bad numbering costs and that
RCM recovers it.
"""

import numpy as np
import pytest

from repro.backends.blockdeps import block_dependencies, dependency_edge_count
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_backend, simulate_backend
from repro.op2.renumber import renumber_mesh
from repro.util.tables import Table

CFG = ExperimentConfig(ni=120, nj=96, niter=2)
_results: dict[str, dict[str, float]] = {}


def _shuffled(mesh):
    """A deliberately bad numbering: random cell permutation."""
    from repro.airfoil.meshgen import AirfoilMesh
    from repro.op2 import OpMap, OpSet

    rng = np.random.default_rng(42)
    ncells = mesh.cells.size
    perm = rng.permutation(ncells)  # perm[old] = new
    cells = OpSet("cells", ncells)
    pcell_new = np.empty_like(mesh.pcell.values)
    pcell_new[perm] = mesh.pcell.values
    return AirfoilMesh(
        ni=mesh.ni,
        nj=mesh.nj,
        nodes=mesh.nodes,
        edges=mesh.edges,
        bedges=mesh.bedges,
        cells=cells,
        pedge=mesh.pedge,
        pecell=OpMap("pecell", mesh.edges, cells, 2, perm[mesh.pecell.values]),
        pbedge=mesh.pbedge,
        pbecell=OpMap("pbecell", mesh.bedges, cells, 1, perm[mesh.pbecell.values]),
        pcell=OpMap("pcell", cells, mesh.nodes, 4, pcell_new),
        x=mesh.x,
        bound=mesh.bound,
    )


@pytest.fixture(scope="module")
def variants(paper_mesh):
    shuffled = _shuffled(paper_mesh)
    return {
        "original": paper_mesh,
        "shuffled": shuffled,
        "rcm(shuffled)": renumber_mesh(shuffled),
    }


@pytest.mark.parametrize("variant", ["original", "shuffled", "rcm(shuffled)"])
def test_renumbering_effect(benchmark, variants, variant):
    mesh = variants[variant]
    run = run_backend("hpx_dataflow", CFG, mesh, validate=False)
    cm = LoopCostModel(jitter=CFG.cost_jitter)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, CFG, 32, cm), rounds=2, iterations=1
    )
    loops = run.log.loops()
    adt = next(r for r in loops if r.loop.name == "adt_calc")
    res = next(r for r in loops if r.loop.name == "res_calc")
    adt_dat = next(a.dat for a in res.loop.args if a.dat.name == "adt")
    deps = block_dependencies(adt, res, adt_dat)
    _results[variant] = {
        "makespan_ms": result.makespan / 1000.0,
        "ncolors": res.plan.ncolors,
        "dep_edges": dependency_edge_count(deps),
    }
    benchmark.extra_info.update(_results[variant])


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 3:
        return
    table = Table(["numbering", "res colors", "adt->res dep edges", "dataflow 32T ms"])
    for name, row in _results.items():
        table.add_row(
            [name, row["ncolors"], row["dep_edges"], row["makespan_ms"]]
        )
    print("\n== ablation A5: mesh numbering vs dependence locality ==")
    print(table.render())
    assert _results["shuffled"]["dep_edges"] > _results["original"]["dep_edges"]
    assert (
        _results["rcm(shuffled)"]["dep_edges"] < _results["shuffled"]["dep_edges"]
    )
