"""Fig 18: strong scaling of OpenMP vs dataflow (modified OP2 API).

Paper claim: ~21% scalability improvement at 32 threads. The modified
op_arg_dat returns futures and op_par_loop becomes a dataflow node, so the
runtime builds the exact dependence DAG — including across timestep
boundaries — and interleaves direct and indirect loops automatically.

Run ``python benchmarks/bench_fig18_dataflow.py --mode threads`` for the
measured (real thread pool) variant of this figure.
"""

if __package__ in (None, ""):  # executed as a script: fix up sys.path first
    import pathlib
    import sys

    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for _p in (str(_ROOT), str(_ROOT / "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import PAPER_CONFIG
from benchmarks.wallclock import measure_matrix, simulated_ms, wallclock_report
from repro.airfoil import generate_mesh
from repro.experiments.config import ExperimentConfig, PAPER_CLAIMS
from repro.experiments.runner import measure_backend, simulate_backend
from repro.sim.metrics import speedup_series
from repro.util.tables import Table

#: Small mesh for the join-accounting checks: counters, not wall clock.
JOIN_CONFIG = ExperimentConfig(ni=48, nj=24, niter=2)

THREADS = [1, 2, 4, 8, 16, 32]
_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend", ["openmp", "hpx_dataflow"])
def test_fig18_dataflow_scaling(benchmark, backend_runs, cost_model, backend, threads):
    run = backend_runs(backend)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, PAPER_CONFIG, threads, cost_model),
        rounds=2,
        iterations=1,
    )
    _results[(backend, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2 * len(THREADS):
        return
    omp = [_results[("openmp", p)] for p in THREADS]
    dfl = [_results[("hpx_dataflow", p)] for p in THREADS]
    table = Table(["threads", "omp speedup", "dataflow speedup"])
    for p, so, sd in zip(
        THREADS, speedup_series(THREADS, omp), speedup_series(THREADS, dfl)
    ):
        table.add_row([p, so, sd])
    print("\n== fig18: strong scaling, OpenMP vs dataflow (speedup vs 1T) ==")
    print(table.render())
    gain = omp[-1] / dfl[-1] - 1.0
    print(f"dataflow gain at 32 threads: {gain:+.1%} "
          f"(paper: ~{PAPER_CLAIMS['dataflow_gain_at_32']:.0%})")
    assert gain > PAPER_CLAIMS["async_gain_at_32"], (
        "dataflow must clearly exceed the async gain"
    )


def test_fig18_threads_wallclock(
    bench_workers, bench_trace_dir, paper_mesh, backend_runs, cost_model
):
    """Measured fig18: OpenMP vs dataflow on a real thread pool."""
    workers = bench_workers
    specs = [
        ("openmp", "omp parallel for", None),
        ("hpx_dataflow", "dataflow", None),
    ]
    results = measure_matrix(
        specs, PAPER_CONFIG, paper_mesh, workers, repeats=2,
        timing=True, trace_dir=bench_trace_dir, trace_tag="fig18-",
    )
    sim = simulated_ms(specs, backend_runs, PAPER_CONFIG, workers, cost_model)
    print()
    print(
        wallclock_report(
            "fig18 measured: OpenMP vs dataflow", specs, results, workers, sim
        )
    )
    for _, label, _ in specs:
        for w in workers:
            assert results[(label, w)].wall_seconds > 0.0


def test_fig18_threads_wallclock_join_elimination(bench_workers):
    """Dataflow's measured mode eliminates the per-color join entirely.

    The scheduler releases consumer chunks block-by-block, so direct-loop
    chains (save_soln -> adt_calc, update -> next step) run with *zero*
    per-color joins and zero fork-join batches; the only pool joins left are
    the application's own sync points. Fork-join for_each pays one join per
    color batch on the same mesh — the counter gap is the Fig 18 claim in
    its measurable form.
    """
    workers = max(4, *bench_workers)
    mesh = generate_mesh(**JOIN_CONFIG.mesh_kwargs())
    base = measure_backend(
        "foreach", JOIN_CONFIG, mesh, num_workers=workers, repeats=1
    )
    dfl = measure_backend(
        "hpx_dataflow", JOIN_CONFIG, mesh, num_workers=workers, repeats=1
    )
    print()
    print(
        f"== fig18 join accounting @ {workers} workers ==\n"
        f"  for_each: {base.pool.joins} joins ({base.pool.color_joins} per-color, "
        f"{base.pool.batches} batches)\n"
        f"  dataflow: {dfl.pool.joins} joins ({dfl.pool.color_joins} per-color, "
        f"{dfl.pool.batches} batches)"
    )
    assert base.pool.color_joins > 0
    assert dfl.pool.joins < base.pool.joins
    assert dfl.pool.color_joins == 0 and dfl.pool.batches == 0
    # Barrier elimination must not perturb the numerics.
    assert dfl.result.rms_total == pytest.approx(base.result.rms_total, abs=1e-12)


if __name__ == "__main__":
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s", *sys.argv[1:]]))
