"""Fig 17: strong scaling of OpenMP vs async + for_each(par(task)).

Paper claim: ~5% scalability improvement at 32 threads from returning
futures per loop and synchronizing only at the programmer-placed get()
points — idle threads pick up the next loop's blocks instead of waiting at
a barrier.
"""

import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.experiments.config import PAPER_CLAIMS
from repro.experiments.runner import simulate_backend
from repro.sim.metrics import speedup_series
from repro.util.tables import Table

THREADS = [1, 2, 4, 8, 16, 32]
_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend", ["openmp", "hpx_async"])
def test_fig17_async_scaling(benchmark, backend_runs, cost_model, backend, threads):
    run = backend_runs(backend)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, PAPER_CONFIG, threads, cost_model),
        rounds=2,
        iterations=1,
    )
    _results[(backend, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2 * len(THREADS):
        return
    omp = [_results[("openmp", p)] for p in THREADS]
    asy = [_results[("hpx_async", p)] for p in THREADS]
    table = Table(["threads", "omp speedup", "async speedup"])
    for p, so, sa in zip(
        THREADS, speedup_series(THREADS, omp), speedup_series(THREADS, asy)
    ):
        table.add_row([p, so, sa])
    print("\n== fig17: strong scaling, OpenMP vs async (speedup vs 1T) ==")
    print(table.render())
    gain = omp[-1] / asy[-1] - 1.0
    print(f"async gain at 32 threads: {gain:+.1%} "
          f"(paper: ~{PAPER_CLAIMS['async_gain_at_32']:.0%})")
    assert gain > 0.0, "async must beat OpenMP at 32 threads"
