"""Fig 17: strong scaling of OpenMP vs async + for_each(par(task)).

Paper claim: ~5% scalability improvement at 32 threads from returning
futures per loop and synchronizing only at the programmer-placed get()
points — idle threads pick up the next loop's blocks instead of waiting at
a barrier.

Run ``python benchmarks/bench_fig17_async.py --mode threads`` for the
measured (real thread pool) variant of this figure.
"""

if __package__ in (None, ""):  # executed as a script: fix up sys.path first
    import pathlib
    import sys

    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for _p in (str(_ROOT), str(_ROOT / "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import PAPER_CONFIG
from benchmarks.wallclock import measure_matrix, simulated_ms, wallclock_report
from repro.airfoil import generate_mesh
from repro.experiments.config import ExperimentConfig, PAPER_CLAIMS
from repro.experiments.runner import measure_backend, simulate_backend
from repro.sim.metrics import speedup_series
from repro.util.tables import Table

#: Small mesh for the join-accounting checks: counters, not wall clock.
JOIN_CONFIG = ExperimentConfig(ni=48, nj=24, niter=2)

THREADS = [1, 2, 4, 8, 16, 32]
_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend", ["openmp", "hpx_async"])
def test_fig17_async_scaling(benchmark, backend_runs, cost_model, backend, threads):
    run = backend_runs(backend)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, PAPER_CONFIG, threads, cost_model),
        rounds=2,
        iterations=1,
    )
    _results[(backend, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2 * len(THREADS):
        return
    omp = [_results[("openmp", p)] for p in THREADS]
    asy = [_results[("hpx_async", p)] for p in THREADS]
    table = Table(["threads", "omp speedup", "async speedup"])
    for p, so, sa in zip(
        THREADS, speedup_series(THREADS, omp), speedup_series(THREADS, asy)
    ):
        table.add_row([p, so, sa])
    print("\n== fig17: strong scaling, OpenMP vs async (speedup vs 1T) ==")
    print(table.render())
    gain = omp[-1] / asy[-1] - 1.0
    print(f"async gain at 32 threads: {gain:+.1%} "
          f"(paper: ~{PAPER_CLAIMS['async_gain_at_32']:.0%})")
    assert gain > 0.0, "async must beat OpenMP at 32 threads"


def test_fig17_threads_wallclock(
    bench_workers, bench_trace_dir, paper_mesh, backend_runs, cost_model
):
    """Measured fig17: OpenMP vs async on a real thread pool."""
    workers = bench_workers
    specs = [("openmp", "omp parallel for", None), ("hpx_async", "async", None)]
    results = measure_matrix(
        specs, PAPER_CONFIG, paper_mesh, workers, repeats=2,
        timing=True, trace_dir=bench_trace_dir, trace_tag="fig17-",
    )
    sim = simulated_ms(specs, backend_runs, PAPER_CONFIG, workers, cost_model)
    print()
    print(
        wallclock_report(
            "fig17 measured: OpenMP vs async", specs, results, workers, sim
        )
    )
    for _, label, _ in specs:
        for w in workers:
            assert results[(label, w)].wall_seconds > 0.0


def test_fig17_threads_wallclock_fewer_joins(bench_workers):
    """The async backend's measured mode joins less than fork-join for_each.

    Fork-join execution pays one pool join per color batch; the scheduled
    async backend only joins where the application placed a sync, so its
    total join count must be strictly lower at the same worker count.
    """
    workers = max(4, *bench_workers)
    mesh = generate_mesh(**JOIN_CONFIG.mesh_kwargs())
    base = measure_backend(
        "foreach", JOIN_CONFIG, mesh, num_workers=workers, repeats=1
    )
    asy = measure_backend(
        "hpx_async", JOIN_CONFIG, mesh, num_workers=workers, repeats=1
    )
    print()
    print(
        f"== fig17 join accounting @ {workers} workers ==\n"
        f"  for_each: {base.pool.joins} joins ({base.pool.color_joins} per-color)\n"
        f"  async:    {asy.pool.joins} joins ({asy.pool.color_joins} per-color)"
    )
    assert base.pool.color_joins > 0
    assert asy.pool.joins < base.pool.joins
    assert asy.pool.color_joins == 0 and asy.pool.batches == 0
    # Barrier elimination must not perturb the numerics.
    assert asy.result.rms_total == pytest.approx(base.result.rms_total, abs=1e-12)


if __name__ == "__main__":
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s", *sys.argv[1:]]))
