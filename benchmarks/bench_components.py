"""Micro-benchmarks of the substrate components.

Not a paper figure — these keep the building blocks honest: the simulation
engine's event throughput, plan construction, block-dependence refinement,
the cooperative executor, and the futures/dataflow layer.
"""

import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.backends.blockdeps import block_dependencies
from repro.backends.costs import LoopCostModel
from repro.experiments.runner import run_backend
from repro.hpx.dataflow import dataflow, unwrapped
from repro.hpx.executor import TaskExecutor
from repro.hpx.runtime import HPXRuntime, set_runtime
from repro.op2.plan import build_plan
from repro.sim.engine import SimulationEngine
from repro.sim.task import TaskGraph


@pytest.fixture(scope="module")
def dataflow_run(paper_mesh):
    return run_backend("hpx_dataflow", PAPER_CONFIG, paper_mesh, validate=False)


def test_engine_event_throughput(benchmark):
    """Schedule 20k independent tasks on 32 threads."""
    g = TaskGraph()
    for i in range(20_000):
        g.add(f"t{i}", 1.0)
    engine = SimulationEngine(PAPER_CONFIG.machine, 32)
    result = benchmark.pedantic(
        lambda: engine.run(g, collect_trace=False), rounds=3, iterations=1
    )
    benchmark.extra_info["tasks"] = result.tasks_executed
    assert result.tasks_executed == 20_000


def test_plan_construction(benchmark, paper_mesh):
    """Blocking + conflict coloring for the res_calc loop shape."""
    from repro.op2 import OP_INC, OpDat, op_arg_dat

    res = OpDat("res", paper_mesh.cells, 4)
    args = [
        op_arg_dat(res, 0, paper_mesh.pecell, OP_INC),
        op_arg_dat(res, 1, paper_mesh.pecell, OP_INC),
    ]
    plan = benchmark.pedantic(
        lambda: build_plan(paper_mesh.edges, args, PAPER_CONFIG.block_size),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["nblocks"] = plan.nblocks
    benchmark.extra_info["ncolors"] = plan.ncolors


def test_blockdep_refinement(benchmark, dataflow_run):
    """adt_calc -> res_calc block-level dependence computation."""
    loops = dataflow_run.log.loops()
    adt = next(r for r in loops if r.loop.name == "adt_calc")
    res = next(r for r in loops if r.loop.name == "res_calc")
    adt_dat = next(a.dat for a in res.loop.args if a.dat.name == "adt")
    deps = benchmark.pedantic(
        lambda: block_dependencies(adt, res, adt_dat), rounds=3, iterations=1
    )
    benchmark.extra_info["edges"] = int(sum(len(d) for d in deps))


def test_dataflow_emission(benchmark, dataflow_run):
    """Full task-graph emission for the dataflow backend at 32 threads."""
    cm = LoopCostModel(jitter=PAPER_CONFIG.cost_jitter)
    graph = benchmark.pedantic(
        lambda: dataflow_run.runtime.backend.emit(
            dataflow_run.log, PAPER_CONFIG.machine, 32, cm
        ),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["tasks"] = len(graph)


def test_executor_task_throughput(benchmark):
    """Spawn + drain 10k no-op tasks on the cooperative executor."""

    def run():
        ex = TaskExecutor(8)
        for _ in range(10_000):
            ex.post(lambda: None)
        ex.drain()
        return ex.stats.tasks_executed

    executed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert executed == 10_000


def test_dataflow_chain_overhead(benchmark):
    """1000-node dataflow dependency chain through the futures layer."""

    def run():
        rt = HPXRuntime(4)
        prev = set_runtime(rt)
        try:
            value = dataflow(lambda: 0)
            for _ in range(1000):
                value = dataflow(unwrapped(lambda v: v + 1), value)
            return value.get()
        finally:
            set_runtime(prev)

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 1000
