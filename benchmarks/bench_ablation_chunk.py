"""Ablation A2: static chunk-size sweep for the for_each backend.

The paper's Fig 7 lets the programmer pick a static chunk size. This bench
sweeps it: too fine pays spawn overhead per chunk, too coarse starves
threads once plan coloring has already shrunk the per-region block count —
the classic grain-size trade-off of Grubel et al. (paper ref [6]).
"""

import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.backends.foreach import ForEachBackend
from repro.experiments.runner import run_backend
from repro.sim.engine import SimulationEngine
from repro.util.tables import Table

CHUNKS = [1, 2, 4, 8, 16]
_results: dict[int, float] = {}


@pytest.fixture(scope="module")
def foreach_log(paper_mesh):
    run = run_backend("foreach_static", PAPER_CONFIG, paper_mesh, validate=False)
    return run.log


@pytest.mark.parametrize("chunk", CHUNKS)
def test_static_chunk_size(benchmark, foreach_log, cost_model, chunk):
    backend = ForEachBackend(static_chunking=True, static_chunk=chunk)

    def simulate():
        graph = backend.emit(foreach_log, PAPER_CONFIG.machine, 32, cost_model)
        return SimulationEngine(PAPER_CONFIG.machine, 32).run(graph, collect_trace=False)

    result = benchmark.pedantic(simulate, rounds=2, iterations=1)
    _results[chunk] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < len(CHUNKS):
        return
    table = Table(["chunk (blocks)", "simulated ms", "vs best"])
    best = min(_results.values())
    for c in CHUNKS:
        table.add_row([c, _results[c] / 1000.0, f"{_results[c] / best - 1.0:+.1%}"])
    print("\n== ablation A2: for_each static chunk size (32T) ==")
    print(table.render())
    # Coarse chunks must eventually lose: starvation dominates spawn savings.
    assert _results[CHUNKS[-1]] > best
