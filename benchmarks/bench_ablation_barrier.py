"""Ablation A1: barrier implementation vs OpenMP scaling.

DESIGN.md calls out the barrier cost model as a design choice; this bench
compares centralized-counter (linear), combining-tree (logtree) and an
idealized constant-latency (flat) barrier on the OpenMP backend's graph.
The gap between 'linear' and 'flat' bounds how much of the fork-join
penalty is barrier *latency* rather than straggler waiting.
"""

import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.backends.costs import LoopCostModel
from repro.experiments.runner import simulate_backend
from repro.sim.barriers import BARRIER_MODELS
from repro.util.tables import Table

_results: dict[str, float] = {}


@pytest.mark.parametrize("model", sorted(BARRIER_MODELS))
def test_barrier_model(benchmark, backend_runs, model):
    run = backend_runs("openmp")
    config = PAPER_CONFIG
    machine = config.machine.with_(barrier_model=model)
    ablated = type(config)(
        ni=config.ni,
        nj=config.nj,
        niter=config.niter,
        block_size=config.block_size,
        threads=config.threads,
        machine=machine,
        cost_jitter=config.cost_jitter,
    )
    cm = LoopCostModel(jitter=config.cost_jitter)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, ablated, 32, cm), rounds=2, iterations=1
    )
    _results[model] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < len(BARRIER_MODELS):
        return
    table = Table(["barrier model", "simulated ms", "vs flat"])
    flat = _results["flat"]
    for model in sorted(_results):
        table.add_row(
            [model, _results[model] / 1000.0, f"{_results[model] / flat - 1.0:+.1%}"]
        )
    print("\n== ablation A1: barrier cost model (OpenMP backend, 32T) ==")
    print(table.render())
    assert _results["flat"] <= _results["logtree"] <= _results["linear"]
