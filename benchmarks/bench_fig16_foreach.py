"""Fig 16: strong scaling of OpenMP vs for_each auto-chunk vs static-chunk.

Paper claims: the static chunk size beats the auto partitioner on large
loops (the ~1% serial measurement prefix costs real scalability), and
OpenMP still performs better than plain for_each.

Run ``python benchmarks/bench_fig16_foreach.py --mode threads`` for the
measured (real thread pool) variant of this figure.
"""

if __package__ in (None, ""):  # executed as a script: fix up sys.path first
    import pathlib
    import sys

    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for _p in (str(_ROOT), str(_ROOT / "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import PAPER_CONFIG
from benchmarks.wallclock import (
    available_cores,
    measure_matrix,
    scaling_assertion_active,
    simulated_ms,
    speedup,
    tuned_static_chunk,
    wallclock_report,
)
from repro.experiments.runner import simulate_backend
from repro.util.tables import Table

BACKENDS = [
    ("openmp", "omp parallel for"),
    ("foreach", "for_each auto"),
    ("foreach_static", "for_each static"),
]
THREADS = [1, 16, 32]

_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend,label", BACKENDS)
def test_fig16_foreach_chunking(
    benchmark, backend_runs, cost_model, backend, label, threads
):
    run = backend_runs(backend)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, PAPER_CONFIG, threads, cost_model),
        rounds=2,
        iterations=1,
    )
    _results[(label, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < len(BACKENDS) * len(THREADS):
        return
    table = Table(["threads"] + [label for _, label in BACKENDS] + ["speedups"])
    for p in THREADS:
        speeds = " / ".join(
            f"{_results[(label, 1)] / _results[(label, p)]:.2f}"
            for _, label in BACKENDS
        )
        table.add_row([p] + [_results[(label, p)] / 1000.0 for _, label in BACKENDS] + [speeds])
    print("\n== fig16: OpenMP vs for_each chunking (simulated ms) ==")
    print(table.render())
    omp, auto, static = (_results[(label, 32)] for _, label in BACKENDS)
    print(f"at 32T: static beats auto by {auto / static - 1.0:+.1%} "
          f"(paper: static > auto); omp vs static {static / omp - 1.0:+.1%} "
          "(paper: OpenMP still better)")
    assert static < auto, "static chunking must beat the auto partitioner"
    assert omp < auto, "OpenMP must beat plain for_each"


def test_fig16_threads_wallclock(
    bench_workers, bench_trace_dir, paper_mesh, backend_runs, cost_model
):
    """Measured fig16: the same three strategies on a real thread pool.

    Reports wall-clock milliseconds next to the simulated makespans; asserts
    the tuned static-chunk for_each backend scales (>1.5x at the top worker
    count) whenever the host has enough cores to make that physical.
    """
    workers = bench_workers
    chunk = tuned_static_chunk(PAPER_CONFIG, paper_mesh, max(workers))
    specs = [
        ("openmp", "omp parallel for", None),
        ("foreach", "for_each auto", None),
        ("foreach_static", "for_each static", {"static_chunk": chunk}),
    ]
    results = measure_matrix(
        specs, PAPER_CONFIG, paper_mesh, workers, repeats=3,
        timing=True, trace_dir=bench_trace_dir, trace_tag="fig16-",
    )
    sim = simulated_ms(specs, backend_runs, PAPER_CONFIG, workers, cost_model)

    print()
    print(
        wallclock_report(
            f"fig16 measured: OpenMP vs for_each chunking (static_chunk={chunk})",
            specs, results, workers, sim,
        )
    )
    top = max(workers)
    gain = speedup(results, "for_each static", top, workers[0])
    print(
        f"for_each static wall-clock speedup at {top} workers "
        f"over {workers[0]}: {gain:.2f}x"
    )
    for _, label, _ in specs:
        assert results[(label, top)].result.rms_total > 0.0
    if top > workers[0] and scaling_assertion_active(top):
        assert gain > 1.5, (
            f"static-chunk for_each must scale on {available_cores()} cores: "
            f"measured {gain:.2f}x at {top} workers"
        )
    elif top > workers[0]:
        print(
            f"only {available_cores()} usable core(s) on this host — "
            f"speedup assertion skipped (CI caveat, see EXPERIMENTS.md)"
        )


if __name__ == "__main__":
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s", *sys.argv[1:]]))
