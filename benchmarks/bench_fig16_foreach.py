"""Fig 16: strong scaling of OpenMP vs for_each auto-chunk vs static-chunk.

Paper claims: the static chunk size beats the auto partitioner on large
loops (the ~1% serial measurement prefix costs real scalability), and
OpenMP still performs better than plain for_each.
"""

import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.experiments.runner import simulate_backend
from repro.util.tables import Table

BACKENDS = [
    ("openmp", "omp parallel for"),
    ("foreach", "for_each auto"),
    ("foreach_static", "for_each static"),
]
THREADS = [1, 16, 32]

_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend,label", BACKENDS)
def test_fig16_foreach_chunking(
    benchmark, backend_runs, cost_model, backend, label, threads
):
    run = backend_runs(backend)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, PAPER_CONFIG, threads, cost_model),
        rounds=2,
        iterations=1,
    )
    _results[(label, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < len(BACKENDS) * len(THREADS):
        return
    table = Table(["threads"] + [label for _, label in BACKENDS] + ["speedups"])
    for p in THREADS:
        speeds = " / ".join(
            f"{_results[(label, 1)] / _results[(label, p)]:.2f}"
            for _, label in BACKENDS
        )
        table.add_row([p] + [_results[(label, p)] / 1000.0 for _, label in BACKENDS] + [speeds])
    print("\n== fig16: OpenMP vs for_each chunking (simulated ms) ==")
    print(table.render())
    omp, auto, static = (_results[(label, 32)] for _, label in BACKENDS)
    print(f"at 32T: static beats auto by {auto / static - 1.0:+.1%} "
          f"(paper: static > auto); omp vs static {static / omp - 1.0:+.1%} "
          "(paper: OpenMP still better)")
    assert static < auto, "static chunking must beat the auto partitioner"
    assert omp < auto, "OpenMP must beat plain for_each"
