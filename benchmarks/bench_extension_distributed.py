"""Extension E1: distributed Airfoil — bulk-synchronous vs overlapped.

Beyond the paper's single-node evaluation (its conclusion points at HPX's
distributed capabilities): the SPMD Airfoil partitioned over R nodes, with
halo exchanges costed by an alpha-beta interconnect model. Compares the
MPI+OpenMP-style bulk-synchronous schedule against the HPX-dataflow-style
overlapped schedule where boundary compute feeds the wire early and interior
compute hides it.

Run ``python benchmarks/bench_extension_distributed.py --mode procs`` for
the *measured* variant: the same mesh and schedules executed by real rank
processes over shared memory (:mod:`repro.procs`), with the halo messages
as actual bytes over pipes.
"""

if __package__ in (None, ""):  # executed as a script: fix up sys.path first
    import pathlib
    import sys

    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for _p in (str(_ROOT), str(_ROOT / "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import numpy as np
import pytest

from benchmarks.wallclock import available_cores, scaling_assertion_active
from repro.airfoil import ReferenceAirfoil, generate_mesh
from repro.dist.app import DistAirfoil
from repro.dist.emission import DistScheduleConfig, emit_distributed
from repro.sim.engine import simulate
from repro.util.tables import Table

RANKS = [2, 4, 8]
#: simulated makespans, keyed by the full run config.
_results: dict[tuple[str, int, str], float] = {}
#: functional SPMD apps, keyed by the full build config (mesh dims, ranks,
#: partitioner) — a rank-count-only key silently reuses a stale app when a
#: second mesh or partitioner enters the module.
_apps: dict[tuple[int, int, int, str], DistAirfoil] = {}


@pytest.fixture(scope="module", autouse=True)
def _reset_caches():
    """Module-scoped cache hygiene: never leak apps/results across reruns."""
    _apps.clear()
    _results.clear()
    yield
    _apps.clear()


@pytest.fixture(scope="module")
def dist_mesh():
    return generate_mesh(ni=120, nj=96)


def _app(mesh, ranks: int, partitioner: str = "rcb") -> DistAirfoil:
    key = (mesh.ni, mesh.nj, ranks, partitioner)
    if key not in _apps:
        _apps[key] = DistAirfoil(mesh, ranks, partitioner=partitioner)
    return _apps[key]


@pytest.mark.parametrize("ranks", RANKS)
@pytest.mark.parametrize("schedule", ["blocking", "overlapped"])
def test_distributed_schedule(benchmark, dist_mesh, schedule, ranks):
    app = _app(dist_mesh, ranks)
    config = DistScheduleConfig(threads_per_node=8, niter=2)
    machine = config.cluster_machine(ranks)

    def run():
        graph = emit_distributed(app.dplan, app.mesh, config, schedule)
        return simulate(graph, machine, machine.num_cores)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    _results[(schedule, ranks, "rcb")] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2 * len(RANKS):
        _results.clear()
        return
    table = Table(["nodes", "blocking ms", "overlapped ms", "overlap gain"])
    for r in RANKS:
        tb = _results[("blocking", r, "rcb")]
        to = _results[("overlapped", r, "rcb")]
        table.add_row([r, tb / 1000.0, to / 1000.0, f"{tb / to - 1.0:+.1%}"])
    print("\n== extension E1: distributed Airfoil, bulk-sync vs overlapped ==")
    print(table.render())
    gains = [
        _results[("blocking", r, "rcb")] / _results[("overlapped", r, "rcb")]
        for r in RANKS
    ]
    _results.clear()
    assert all(g > 1.0 for g in gains), "overlap must always win"
    assert gains[-1] > gains[0], "overlap gain must grow with node count"


def test_extension_distributed_procs_wallclock(
    dist_mesh, bench_ranks, bench_threads_per_rank, bench_trace_dir
):
    """Measured E1: real rank processes, blocking vs overlapped exchanges.

    Every run's assembled solution is validated against the single-rank
    solver; the throughput assertion (overlapped >= blocking) only fires on
    hosts with enough cores to actually run ranks concurrently.
    """
    from repro.procs import ProcsConfig, leaked_segments, run_procs

    niter = 2
    repeats = 2
    tpr = bench_threads_per_rank
    ref = ReferenceAirfoil(dist_mesh)
    ref.run(niter)
    work = dist_mesh.cells.size * niter
    wall_ms: dict[tuple[int, str], float] = {}
    comm_kib: dict[tuple[int, str], float] = {}
    for ranks in bench_ranks:
        for schedule in ("blocking", "overlapped"):
            best = float("inf")
            for rep in range(repeats):
                trace_dir = (
                    bench_trace_dir / f"procs-{ranks}r{tpr}t-{schedule}"
                    if bench_trace_dir is not None and rep == repeats - 1
                    else None
                )
                res = run_procs(
                    dist_mesh,
                    ProcsConfig(
                        ranks=ranks,
                        niter=niter,
                        schedule=schedule,
                        threads_per_rank=tpr,
                        trace_dir=trace_dir,
                    ),
                )
                err = float(np.abs(res.q - ref.q).max())
                assert err <= 1e-12, (
                    f"{schedule} R={ranks}: diverged from reference ({err:.3e})"
                )
                assert leaked_segments(res.shm_names) == []
                best = min(best, res.wall_seconds)
            wall_ms[(ranks, schedule)] = best * 1e3
            comm_kib[(ranks, schedule)] = (
                res.comm.get("bytes_updated", 0)
                + res.comm.get("bytes_accumulated", 0)
            ) / 1024

    table = Table(
        [
            "ranks",
            "blocking ms",
            "overlapped ms",
            "blocking cells*it/s",
            "overlapped cells*it/s",
            "halo KiB",
        ]
    )
    for ranks in bench_ranks:
        tb, to = wall_ms[(ranks, "blocking")], wall_ms[(ranks, "overlapped")]
        table.add_row(
            [
                ranks,
                tb,
                to,
                work / (tb / 1e3),
                work / (to / 1e3),
                comm_kib[(ranks, "blocking")],
            ]
        )
    print(
        f"\n== E1 measured: procs-mode Airfoil, blocking vs overlapped "
        f"({tpr} thread(s)/rank, {available_cores()} usable core(s)) =="
    )
    print(table.render())
    for ranks in bench_ranks:
        if scaling_assertion_active(ranks * tpr):
            tb, to = wall_ms[(ranks, "blocking")], wall_ms[(ranks, "overlapped")]
            assert to <= tb, (
                f"overlapped schedule slower than blocking at R={ranks}: "
                f"{to:.1f} ms vs {tb:.1f} ms"
            )


def test_extension_hybrid_budget_procs_wallclock(dist_mesh, bench_trace_dir):
    """Measured E1 hybrid: fixed core budget, varying the ranks/threads split.

    The classic MPI+OpenMP trade-off on one host: a 4-core budget spent as
    4 ranks x 1 thread (pure process parallelism), 2 x 2 (hybrid), or
    1 x 4 (pure shared memory). Every layout must validate against the
    single-rank solver; the table shows where the blocking-vs-overlapped
    gap lives — more ranks means more halo traffic for overlap to hide,
    fewer ranks shifts the weight onto the in-process executors.
    """
    from repro.procs import ProcsConfig, leaked_segments, run_procs

    niter = 2
    repeats = 2
    layouts = [(4, 1), (2, 2), (1, 4)]
    ref = ReferenceAirfoil(dist_mesh)
    ref.run(niter)
    wall_ms: dict[tuple[int, int, str], float] = {}
    for ranks, tpr in layouts:
        for schedule in ("blocking", "overlapped"):
            best = float("inf")
            for rep in range(repeats):
                trace_dir = (
                    bench_trace_dir / f"hybrid-{ranks}x{tpr}-{schedule}"
                    if bench_trace_dir is not None and rep == repeats - 1
                    else None
                )
                res = run_procs(
                    dist_mesh,
                    ProcsConfig(
                        ranks=ranks,
                        niter=niter,
                        schedule=schedule,
                        threads_per_rank=tpr,
                        trace_dir=trace_dir,
                    ),
                )
                err = float(np.abs(res.q - ref.q).max())
                assert err <= 1e-12, (
                    f"{schedule} {ranks}x{tpr}: diverged from reference "
                    f"({err:.3e})"
                )
                assert leaked_segments(res.shm_names) == []
                best = min(best, res.wall_seconds)
            wall_ms[(ranks, tpr, schedule)] = best * 1e3

    table = Table(
        ["layout", "blocking ms", "overlapped ms", "overlap gap"]
    )
    for ranks, tpr in layouts:
        tb = wall_ms[(ranks, tpr, "blocking")]
        to = wall_ms[(ranks, tpr, "overlapped")]
        table.add_row(
            [f"{ranks} ranks x {tpr} thr", tb, to, f"{tb / to - 1.0:+.1%}"]
        )
    print(
        f"\n== E1 measured hybrid: fixed 4-core budget, ranks x threads "
        f"({available_cores()} usable core(s)) =="
    )
    print(table.render())


if __name__ == "__main__":
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s", *sys.argv[1:]]))
