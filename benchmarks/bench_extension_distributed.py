"""Extension E1: distributed Airfoil — bulk-synchronous vs overlapped.

Beyond the paper's single-node evaluation (its conclusion points at HPX's
distributed capabilities): the SPMD Airfoil partitioned over R nodes, with
halo exchanges costed by an alpha-beta interconnect model. Compares the
MPI+OpenMP-style bulk-synchronous schedule against the HPX-dataflow-style
overlapped schedule where boundary compute feeds the wire early and interior
compute hides it.
"""

import pytest

from repro.airfoil import generate_mesh
from repro.dist.app import DistAirfoil
from repro.dist.emission import DistScheduleConfig, emit_distributed
from repro.sim.engine import simulate
from repro.util.tables import Table

RANKS = [2, 4, 8]
_results: dict[tuple[str, int], float] = {}
_apps: dict[int, DistAirfoil] = {}


@pytest.fixture(scope="module")
def dist_mesh():
    return generate_mesh(ni=120, nj=96)


def _app(mesh, ranks: int) -> DistAirfoil:
    if ranks not in _apps:
        _apps[ranks] = DistAirfoil(mesh, ranks, partitioner="rcb")
    return _apps[ranks]


@pytest.mark.parametrize("ranks", RANKS)
@pytest.mark.parametrize("schedule", ["blocking", "overlapped"])
def test_distributed_schedule(benchmark, dist_mesh, schedule, ranks):
    app = _app(dist_mesh, ranks)
    config = DistScheduleConfig(threads_per_node=8, niter=2)
    machine = config.cluster_machine(ranks)

    def run():
        graph = emit_distributed(app.dplan, app.mesh, config, schedule)
        return simulate(graph, machine, machine.num_cores)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    _results[(schedule, ranks)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2 * len(RANKS):
        return
    table = Table(["nodes", "blocking ms", "overlapped ms", "overlap gain"])
    for r in RANKS:
        tb = _results[("blocking", r)]
        to = _results[("overlapped", r)]
        table.add_row([r, tb / 1000.0, to / 1000.0, f"{tb / to - 1.0:+.1%}"])
    print("\n== extension E1: distributed Airfoil, bulk-sync vs overlapped ==")
    print(table.render())
    gains = [
        _results[("blocking", r)] / _results[("overlapped", r)] for r in RANKS
    ]
    assert all(g > 1.0 for g in gains), "overlap must always win"
    assert gains[-1] > gains[0], "overlap gain must grow with node count"
