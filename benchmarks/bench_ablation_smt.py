"""Ablation A4: hyperthreading efficiency and the 16-thread knee.

Every paper figure shows a knee at 16 threads (hyperthreading enabled
beyond the physical core count). This bench sweeps the SMT efficiency
factor: at 1.0 hyperthreads behave like real cores (no knee), and as the
factor drops the 32-thread run approaches the 16-thread run — bounding how
sensitive the reproduced gains are to that single hardware parameter.
"""

import pytest

from benchmarks.conftest import PAPER_CONFIG
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import simulate_backend
from repro.util.tables import Table

SMT_EFFICIENCIES = [0.5, 0.62, 0.8, 1.0]
_results: dict[tuple[float, int], float] = {}


def _config(eff: float) -> ExperimentConfig:
    return ExperimentConfig(
        ni=PAPER_CONFIG.ni,
        nj=PAPER_CONFIG.nj,
        niter=PAPER_CONFIG.niter,
        block_size=PAPER_CONFIG.block_size,
        machine=PAPER_CONFIG.machine.with_(smt_efficiency=eff),
        cost_jitter=PAPER_CONFIG.cost_jitter,
    )


@pytest.mark.parametrize("threads", [16, 32])
@pytest.mark.parametrize("eff", SMT_EFFICIENCIES)
def test_smt_efficiency(benchmark, backend_runs, eff, threads):
    run = backend_runs("hpx_dataflow")
    cfg = _config(eff)
    cm = LoopCostModel(jitter=cfg.cost_jitter)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, cfg, threads, cm), rounds=2, iterations=1
    )
    _results[(eff, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < 2 * len(SMT_EFFICIENCIES):
        return
    table = Table(["smt efficiency", "16T ms", "32T ms", "32T gain over 16T"])
    for eff in SMT_EFFICIENCIES:
        t16 = _results[(eff, 16)]
        t32 = _results[(eff, 32)]
        table.add_row([eff, t16 / 1000.0, t32 / 1000.0, f"{t16 / t32 - 1.0:+.1%}"])
    print("\n== ablation A4: SMT efficiency vs the 16-thread knee (dataflow) ==")
    print(table.render())
    # Higher SMT efficiency must monotonically improve the 32T run.
    t32s = [_results[(e, 32)] for e in SMT_EFFICIENCIES]
    assert all(a >= b for a, b in zip(t32s, t32s[1:]))
