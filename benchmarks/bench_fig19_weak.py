"""Fig 19: weak scaling efficiency (problem size grows with thread count).

Paper claim: dataflow has the best weak-scaling efficiency — 'the perfect
overlap of computation with communication enabled by HPX' — and larger
per-thread problems recover efficiency for every strategy.

Run ``python benchmarks/bench_fig19_weak.py --mode threads`` for the
measured (real thread pool) variant of this figure.
"""

if __package__ in (None, ""):  # executed as a script: fix up sys.path first
    import pathlib
    import sys

    _ROOT = pathlib.Path(__file__).resolve().parent.parent
    for _p in (str(_ROOT), str(_ROOT / "src")):
        if _p not in sys.path:
            sys.path.insert(0, _p)

import pytest

from benchmarks.conftest import WEAK_CONFIG
from benchmarks.wallclock import available_cores
from repro.airfoil import generate_mesh
from repro.airfoil.meshgen import scaled_mesh_dims
from repro.backends.costs import LoopCostModel
from repro.experiments.runner import measure_backend, run_backend, simulate_backend
from repro.sim.metrics import efficiency_series
from repro.util.tables import Table

BACKENDS = ["openmp", "foreach", "hpx_async", "hpx_dataflow"]
THREADS = [1, 8, 32]

_results: dict[tuple[str, int], float] = {}
_mesh_cache: dict[int, object] = {}
_run_cache: dict[tuple[str, int], object] = {}


def _weak_run(backend: str, threads: int):
    key = (backend, threads)
    if key not in _run_cache:
        if threads not in _mesh_cache:
            ni, nj = scaled_mesh_dims(WEAK_CONFIG.ni, WEAK_CONFIG.nj, threads)
            _mesh_cache[threads] = generate_mesh(ni=ni, nj=nj)
        _run_cache[key] = run_backend(
            backend, WEAK_CONFIG, _mesh_cache[threads], validate=False
        )
    return _run_cache[key]


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fig19_weak_scaling(benchmark, backend, threads):
    run = _weak_run(backend, threads)
    cm = LoopCostModel(jitter=WEAK_CONFIG.cost_jitter)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, WEAK_CONFIG, threads, cm),
        rounds=2,
        iterations=1,
    )
    _results[(backend, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < len(BACKENDS) * len(THREADS):
        return
    eff = {
        b: efficiency_series(
            THREADS, [_results[(b, p)] for p in THREADS], weak=True
        )
        for b in BACKENDS
    }
    table = Table(["threads"] + BACKENDS)
    for i, p in enumerate(THREADS):
        table.add_row([p] + [eff[b][i] for b in BACKENDS])
    print("\n== fig19: weak scaling efficiency (T1/TP, problem ∝ threads) ==")
    print(table.render())
    at_max = {b: eff[b][-1] for b in BACKENDS}
    best = max(at_max, key=at_max.get)
    print(f"best at 32 threads: {best} (paper: dataflow)")
    assert best == "hpx_dataflow"


def test_fig19_threads_wallclock(bench_workers, bench_trace_dir):
    """Measured fig19: weak scaling — the mesh grows with the worker count.

    Weak-scaling efficiency is T(1 worker)/T(w workers) with the per-worker
    problem held constant; on an unloaded multi-core host the ideal is 1.0.
    """
    workers = bench_workers
    top = max(workers)
    results: dict[tuple[str, int], float] = {}
    timing_reports: list[str] = []
    meshes = {}
    for w in workers:
        ni, nj = scaled_mesh_dims(WEAK_CONFIG.ni, WEAK_CONFIG.nj, w)
        meshes[w] = generate_mesh(ni=ni, nj=nj)
    for backend in BACKENDS:
        for w in workers:
            trace_path = (
                bench_trace_dir / f"fig19-{backend}-{w}w.json"
                if bench_trace_dir is not None and w == top
                else None
            )
            run = measure_backend(
                backend, WEAK_CONFIG, meshes[w], num_workers=w, repeats=2,
                timing=True, trace_path=trace_path,
            )
            results[(backend, w)] = run.wall_seconds * 1000.0
            assert run.wall_seconds > 0.0
            if w == top and run.timing is not None:
                timing_reports.append(
                    f"-- per-kernel timing: {backend} @ {top} worker(s) --\n"
                    + run.timing.render()
                )
    base = workers[0]
    table = Table(
        ["workers", "cells"]
        + [f"{b} wall ms" for b in BACKENDS]
        + [f"{b} eff" for b in BACKENDS]
    )
    for w in workers:
        table.add_row(
            [w, meshes[w].cells.size]
            + [results[(b, w)] for b in BACKENDS]
            + [results[(b, base)] / results[(b, w)] for b in BACKENDS]
        )
    print(
        f"\n== fig19 measured: weak scaling (measured wall clock; "
        f"{available_cores()} usable core(s)) =="
    )
    print(table.render())
    for report in timing_reports:
        print(report)


def test_fig19_procs_wallclock(bench_ranks, bench_threads_per_rank, bench_trace_dir):
    """Measured weak scaling over real rank *processes* (procs mode).

    The mesh grows with the total core budget ``ranks * threads_per_rank``
    (constant cells per core), mirroring the threads-mode weak-scaling
    variant but with actual address-space separation and pipe halo
    exchanges. Efficiency is T(min ranks)/T(R); multi-core hosts should
    hold it near 1.0, a 1-core host cannot.
    """
    from repro.procs import ProcsConfig, run_procs

    niter = 2
    tpr = bench_threads_per_rank
    base = min(bench_ranks)
    wall: dict[tuple[int, str], float] = {}
    meshes = {}
    for ranks in bench_ranks:
        ni, nj = scaled_mesh_dims(WEAK_CONFIG.ni, WEAK_CONFIG.nj, ranks * tpr)
        meshes[ranks] = generate_mesh(ni=ni, nj=nj)
        for schedule in ("blocking", "overlapped"):
            trace_dir = (
                bench_trace_dir / f"fig19-procs-{ranks}r{tpr}t-{schedule}"
                if bench_trace_dir is not None
                else None
            )
            res = run_procs(
                meshes[ranks],
                ProcsConfig(ranks=ranks, niter=niter, schedule=schedule,
                            threads_per_rank=tpr, trace_dir=trace_dir),
            )
            wall[(ranks, schedule)] = res.wall_seconds * 1e3
            assert res.wall_seconds > 0.0

    table = Table(
        ["ranks", "cells", "blocking ms", "overlapped ms",
         "blocking eff", "overlapped eff"]
    )
    for ranks in bench_ranks:
        table.add_row(
            [
                ranks,
                meshes[ranks].cells.size,
                wall[(ranks, "blocking")],
                wall[(ranks, "overlapped")],
                wall[(base, "blocking")] / wall[(ranks, "blocking")],
                wall[(base, "overlapped")] / wall[(ranks, "overlapped")],
            ]
        )
    print(
        f"\n== fig19 measured: weak scaling over rank processes "
        f"({tpr} thread(s)/rank, problem ∝ ranks*threads; "
        f"{available_cores()} usable core(s)) =="
    )
    print(table.render())


if __name__ == "__main__":
    import sys

    raise SystemExit(pytest.main([__file__, "-q", "-s", *sys.argv[1:]]))
