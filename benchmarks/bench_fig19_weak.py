"""Fig 19: weak scaling efficiency (problem size grows with thread count).

Paper claim: dataflow has the best weak-scaling efficiency — 'the perfect
overlap of computation with communication enabled by HPX' — and larger
per-thread problems recover efficiency for every strategy.
"""

import pytest

from benchmarks.conftest import WEAK_CONFIG
from repro.airfoil import generate_mesh
from repro.airfoil.meshgen import scaled_mesh_dims
from repro.backends.costs import LoopCostModel
from repro.experiments.runner import run_backend, simulate_backend
from repro.sim.metrics import efficiency_series
from repro.util.tables import Table

BACKENDS = ["openmp", "foreach", "hpx_async", "hpx_dataflow"]
THREADS = [1, 8, 32]

_results: dict[tuple[str, int], float] = {}
_mesh_cache: dict[int, object] = {}
_run_cache: dict[tuple[str, int], object] = {}


def _weak_run(backend: str, threads: int):
    key = (backend, threads)
    if key not in _run_cache:
        if threads not in _mesh_cache:
            ni, nj = scaled_mesh_dims(WEAK_CONFIG.ni, WEAK_CONFIG.nj, threads)
            _mesh_cache[threads] = generate_mesh(ni=ni, nj=nj)
        _run_cache[key] = run_backend(
            backend, WEAK_CONFIG, _mesh_cache[threads], validate=False
        )
    return _run_cache[key]


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fig19_weak_scaling(benchmark, backend, threads):
    run = _weak_run(backend, threads)
    cm = LoopCostModel(jitter=WEAK_CONFIG.cost_jitter)
    result = benchmark.pedantic(
        lambda: simulate_backend(run, WEAK_CONFIG, threads, cm),
        rounds=2,
        iterations=1,
    )
    _results[(backend, threads)] = result.makespan
    benchmark.extra_info["simulated_ms"] = result.makespan / 1000.0


@pytest.fixture(scope="module", autouse=True)
def _print_table():
    yield
    if len(_results) < len(BACKENDS) * len(THREADS):
        return
    eff = {
        b: efficiency_series(
            THREADS, [_results[(b, p)] for p in THREADS], weak=True
        )
        for b in BACKENDS
    }
    table = Table(["threads"] + BACKENDS)
    for i, p in enumerate(THREADS):
        table.add_row([p] + [eff[b][i] for b in BACKENDS])
    print("\n== fig19: weak scaling efficiency (T1/TP, problem ∝ threads) ==")
    print(table.render())
    at_max = {b: eff[b][-1] for b in BACKENDS}
    best = max(at_max, key=at_max.get)
    print(f"best at 32 threads: {best} (paper: dataflow)")
    assert best == "hpx_dataflow"
