#!/usr/bin/env python3
"""Reproduce the paper's headline comparison (Figs 15, 17, 18) in one run.

Runs the Airfoil app functionally under OpenMP / for_each / async / dataflow,
emits each backend's task graph, simulates the graphs on the modeled 16-core
/ 32-hyperthread Xeon node, and prints execution-time and speedup tables plus
an ASCII strong-scaling plot.

Run:  python examples/scaling_comparison.py [--quick]
"""

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    fig15_exec_time,
    fig17_async,
    fig18_dataflow,
    render_figure,
)
from repro.experiments.report import claim_check
from repro.util.timing import WallTimer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller mesh / fewer steps (less faithful magnitudes, ~5x faster)",
    )
    args = parser.parse_args()

    config = (
        ExperimentConfig(ni=120, nj=96, niter=2)
        if args.quick
        else ExperimentConfig(niter=3)
    )
    print(
        f"mesh {config.ni}x{config.nj}, {config.niter} timesteps, "
        f"threads {config.threads}\n"
    )

    with WallTimer() as t:
        f15 = fig15_exec_time(config)
        f17 = fig17_async(config)
        f18 = fig18_dataflow(config)

    for fig in (f15, f17, f18):
        print(render_figure(fig))
        print()

    report = claim_check(fig15=f15, fig17=f17, fig18=f18)
    print("paper-claim check:")
    print(report.render())
    print(f"\nall claims hold: {report.all_hold}   ({t.elapsed:.1f}s)")


if __name__ == "__main__":
    main()
