#!/usr/bin/env python3
"""Third application: shallow-water waves around the airfoil.

A Volna-style (OP2's tsunami code) finite-volume shallow-water solver on the
same unstructured substrate: a Gaussian free-surface bump collapses and its
waves wrap around the airfoil inside a closed basin. Mass is conserved to
machine precision — watch the drift column.

Run:  python examples/shallow_water_waves.py [--backend hpx_dataflow] [--steps 120]
"""

import argparse

import numpy as np

from repro.airfoil import generate_mesh
from repro.apps.shallow_water import ShallowWaterApp
from repro.backends.registry import available_backends
from repro.op2 import op2_session
from repro.util.timing import WallTimer


def surface_profile(app: ShallowWaterApp, width: int = 64) -> str:
    """ASCII water-surface elevation along a mid-radius cell ring."""
    ni, nj = app.mesh.ni, app.mesh.nj
    j = nj // 2  # mid-radius ring: waves arrive early
    ring = app.u.data[j * ni : (j + 1) * ni, 0]
    lo, hi = float(ring.min()), float(ring.max())
    span = (hi - lo) or 1.0
    cells = np.linspace(0, ni - 1, width).astype(int)
    levels = " .:-=+*#%@"
    return "".join(levels[int((ring[c] - lo) / span * (len(levels) - 1))] for c in cells)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="hpx_dataflow", choices=available_backends())
    parser.add_argument("--steps", type=int, default=240)
    parser.add_argument("--ni", type=int, default=64)
    parser.add_argument("--nj", type=int, default=32)
    args = parser.parse_args()

    # Gentle clustering keeps the near-wall cells from crushing the
    # global CFL timestep, so the waves visibly propagate in a short demo.
    mesh = generate_mesh(ni=args.ni, nj=args.nj, far_radius=6.0, clustering=1.5)
    print(f"mesh: {mesh.summary()}")
    print(f"backend: {args.backend}\n")

    with WallTimer() as timer:
        with op2_session(backend=args.backend, num_threads=4, block_size=64) as rt:
            app = ShallowWaterApp(mesh, bump_height=0.15)
            m0 = app.total_mass()
            print(f"{'step':>5} {'t':>8} {'dt':>9} {'h_max':>7} {'mass drift':>11}  far-field surface")
            for chunk in range(6):
                res = app.run(rt, args.steps // 6)
                drift = abs(app.total_mass() - m0) / m0
                print(
                    f"{(chunk + 1) * (args.steps // 6):5d} {app.time:8.4f} "
                    f"{res.dt_history[-1]:9.2e} {res.h_range[1]:7.4f} "
                    f"{drift:11.2e}  {surface_profile(app)}"
                )

    print(f"\n{args.steps} steps in {timer.elapsed:.2f}s; "
          f"mass conserved to {abs(app.total_mass() - m0) / m0:.1e} (closed basin)")


if __name__ == "__main__":
    main()
