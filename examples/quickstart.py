#!/usr/bin/env python3
"""Quickstart: the OP2 API in ~60 lines.

Builds a tiny unstructured "mesh" by hand (a ring of edges over cells),
declares data on it, and runs two parallel loops — one direct, one indirect
with an increment — under two different backends, showing that the numbers
(and the API) are identical while the parallelization strategy changes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_WRITE,
    Kernel,
    OpDat,
    OpGlobal,
    OpMap,
    OpSet,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
    op2_session,
)

# --- 1. Sets: a ring of N cells connected by N edges -----------------------
N = 64
cells = OpSet("cells", N)
edges = OpSet("edges", N)

# --- 2. A map: each edge connects cell i to cell (i+1) % N -----------------
ring = np.stack([np.arange(N), (np.arange(N) + 1) % N], axis=1)
e2c = OpMap("e2c", edges, cells, 2, ring)

# --- 3. Data on sets --------------------------------------------------------
values = OpDat("values", cells, 1, np.sin(np.linspace(0, 2 * np.pi, N)))
smoothed = OpDat("smoothed", cells, 1)
total = OpGlobal("total", 1)

# --- 4. Kernels: elemental semantics + a vectorized fast path --------------


def init_kernel():
    def k(v, out):  # per element
        out[0] = v[0]

    def kv(v, out):  # per batch, in place
        out[:] = v

    return Kernel("copy", k, kv)


def smooth_kernel():
    """Each edge pushes half the neighbour difference into both cells."""

    def k(a, b, inc_a, inc_b):
        d = 0.5 * (b[0] - a[0])
        inc_a[0] += d
        inc_b[0] -= d

    def kv(a, b, inc_a, inc_b):
        d = 0.5 * (b - a)
        inc_a += d
        inc_b -= d

    return Kernel("smooth", k, kv)


def sum_kernel():
    def k(v, acc):
        acc[0] += v[0]

    def kv(v, acc):
        acc[:] = v

    return Kernel("sum", k, kv)


# --- 5. Run the same program under different backends ----------------------
for backend in ("openmp", "hpx_dataflow"):
    with op2_session(backend=backend, num_threads=4, block_size=8) as rt:
        # Direct loop: smoothed <- values.
        op_par_loop(
            init_kernel(), "copy", cells,
            op_arg_dat(values, -1, OP_ID, OP_READ),
            op_arg_dat(smoothed, -1, OP_ID, OP_WRITE),
        )
        # Indirect loop: increment both endpoint cells of every edge. The
        # plan colors blocks so no two concurrent blocks touch a cell.
        op_par_loop(
            smooth_kernel(), "smooth", edges,
            op_arg_dat(smoothed, 0, e2c, OP_READ),
            op_arg_dat(smoothed, 1, e2c, OP_READ),
            op_arg_dat(smoothed, 0, e2c, OP_INC),
            op_arg_dat(smoothed, 1, e2c, OP_INC),
        )
        # Global reduction.
        total.reset()
        op_par_loop(
            sum_kernel(), "sum", cells,
            op_arg_dat(smoothed, -1, OP_ID, OP_READ),
            op_arg_gbl(total, OP_INC),
        )
    print(
        f"{backend:>13s}:  sum(smoothed) = {total.value():+.12f}   "
        f"norm = {smoothed.norm():.12f}"
    )

print("\nBoth backends produce identical numbers; only scheduling differs.")
