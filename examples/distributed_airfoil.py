#!/usr/bin/env python3
"""Distributed Airfoil: partition, halo exchange, and the overlap win.

The paper stops at one node; its conclusion points at HPX's distributed
runtime. This example runs the genuinely SPMD Airfoil: the mesh is
partitioned over R ranks (recursive coordinate bisection), each rank runs
the unmodified kernels on its submesh, and halo exchanges carry q/adt to
neighbours and residual contributions back — validated against the
single-rank solver. It then simulates the two distributed schedules
(bulk-synchronous MPI style vs dataflow-overlapped) on a modeled cluster,
and finally runs the *measured* counterpart: the same partitioning executed
by real rank processes (``repro.procs``) over shared-memory dats with actual
pipe halo messages, under both schedules.

Run:  python examples/distributed_airfoil.py [--ranks 4] [--iters 5]
"""

import argparse

import numpy as np

from repro.airfoil import ReferenceAirfoil, generate_mesh
from repro.dist.app import DistAirfoil
from repro.dist.emission import DistScheduleConfig, emit_distributed
from repro.dist.partition import partition_quality
from repro.sim.engine import simulate
from repro.util.tables import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--iters", type=int, default=5)
    parser.add_argument("--ni", type=int, default=96)
    parser.add_argument("--nj", type=int, default=48)
    args = parser.parse_args()

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    print(f"mesh: {mesh.summary()}")

    dist = DistAirfoil(mesh, args.ranks, partitioner="rcb")
    quality = partition_quality(dist.dplan.owner, mesh.pecell.values)
    print(f"partition: {dist.dplan.describe()}")
    print(f"  imbalance {quality['imbalance']:.3f}, edge cut {quality['edge_cut']:.1%}\n")

    out = dist.run(args.iters)
    ref = ReferenceAirfoil(mesh)
    ref.run(args.iters)
    err = float(np.abs(dist.gather_q() - ref.q).max())
    print(f"ran {args.iters} iterations on {args.ranks} ranks")
    print(f"  rms {out['rms_total']:.6f} (single-rank {ref.rms:.6f}), "
          f"max |q - q_ref| = {err:.2e}")
    print(f"  halo traffic: {dist.exchange.bytes_updated / 1024:.1f} KiB updates, "
          f"{dist.exchange.bytes_accumulated / 1024:.1f} KiB accumulations\n")

    print("simulated cluster schedules (8 threads/node):")
    table = Table(["nodes", "bulk-sync ms", "overlapped ms", "gain"])
    for ranks in (2, 4, 8):
        d = DistAirfoil(mesh, ranks, partitioner="rcb")
        config = DistScheduleConfig(threads_per_node=8, niter=2)
        machine = config.cluster_machine(ranks)
        tb = simulate(
            emit_distributed(d.dplan, d.mesh, config, "blocking"),
            machine, machine.num_cores,
        ).makespan
        to = simulate(
            emit_distributed(d.dplan, d.mesh, config, "overlapped"),
            machine, machine.num_cores,
        ).makespan
        table.add_row([ranks, tb / 1000.0, to / 1000.0, f"{tb / to - 1.0:+.1%}"])
    print(table.render())
    print("\nthe overlapped (dataflow-style) schedule hides the wire under "
          "interior compute; its edge grows with node count.")

    from repro.procs import ProcsConfig, run_procs

    print(f"\nmeasured procs mode ({args.ranks} rank processes, shared-memory "
          "dats, pipe halo exchanges):")
    mtable = Table(["schedule", "wall ms", "max |q - q_ref|", "halo msgs"])
    fitted = None
    for schedule in ("blocking", "overlapped"):
        res = run_procs(
            mesh,
            ProcsConfig(ranks=args.ranks, niter=args.iters, schedule=schedule),
        )
        err = float(np.abs(res.q - ref.q).max())
        msgs = (res.comm["messages_updated"] + res.comm["messages_accumulated"])
        mtable.add_row([schedule, res.wall_seconds * 1e3, f"{err:.2e}", msgs])
        fitted = res.fitted_comm
    print(mtable.render())
    if fitted is not None:
        print(f"  fitted comm model from observed messages: "
              f"latency {fitted.latency:.3f} us, "
              f"bandwidth {fitted.bandwidth:.1f} MB/s")


if __name__ == "__main__":
    main()
