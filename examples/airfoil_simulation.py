#!/usr/bin/env python3
"""Run the Airfoil CFD application end to end and report convergence.

This is the paper's benchmark workload: a 2-D inviscid Euler solve around a
NACA airfoil on a generated unstructured O-mesh, driven through the OP2 API
under a selectable backend.

Run:  python examples/airfoil_simulation.py [--backend hpx_dataflow]
                                            [--ni 120] [--nj 96]
                                            [--iters 50] [--threads 4]
"""

import argparse
import math

from repro.airfoil import AirfoilApp, ReferenceAirfoil, generate_mesh
from repro.airfoil.validation import compare_states
from repro.backends.registry import available_backends
from repro.op2 import op2_session
from repro.util.timing import WallTimer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="hpx_dataflow", choices=available_backends())
    parser.add_argument("--ni", type=int, default=120, help="cells around the airfoil")
    parser.add_argument("--nj", type=int, default=96, help="cell layers to the far field")
    parser.add_argument("--iters", type=int, default=50)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--validate", action="store_true", help="check against numpy reference")
    args = parser.parse_args()

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    print(f"mesh: {mesh.summary()}")
    print(f"backend: {args.backend}, {args.threads} logical workers\n")

    with WallTimer() as timer:
        with op2_session(
            backend=args.backend, num_threads=args.threads, block_size=128
        ) as rt:
            app = AirfoilApp(mesh)
            result = app.run(rt, args.iters)

    print(f"completed {result.iterations} iterations in {timer.elapsed:.2f}s wall")
    print(f"final accumulated RMS: {result.final_rms(mesh.cells.size):.6f}")
    print(f"solution norm:         {result.q_norm:.6f}")

    if result.rms_history:
        print("\nconvergence (per-step RMS increment, every 10 iters):")
        prev = 0.0
        for i, total in enumerate(result.rms_history, start=1):
            inc = total - prev
            prev = total
            if i % 10 == 0 or i == 1:
                bar = "#" * max(1, int(40 * math.sqrt(inc) / math.sqrt(result.rms_history[0])))
                print(f"  iter {i:4d}  rms_inc {inc:10.5f}  {bar}")

    if args.validate:
        ref = ReferenceAirfoil(mesh)
        ref.run(args.iters)
        diffs = compare_states(app, ref, tol=1e-8)
        print(f"\nvalidated against numpy reference; max deviation {max(diffs.values()):.2e}")


if __name__ == "__main__":
    main()
