#!/usr/bin/env python3
"""Drive the OP2 source-to-source translator — the paper's actual deliverable.

Takes the Airfoil application source (written with plain ``op_par_loop``
calls, paper Fig 4), translates it for every backend target, writes the
generated modules to ``./generated/``, then loads the dataflow one and runs
it to show the generated code is real, working code.

Run:  python examples/codegen_translate.py
"""

from pathlib import Path

from repro.airfoil import AirfoilApp, generate_mesh
from repro.codegen import TARGETS, generate_module, translate_source
from repro.codegen.apps import AIRFOIL_SOURCE, AirfoilContext
from repro.op2 import op2_session

OUT = Path(__file__).resolve().parent / "generated"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    print("input: the Airfoil timestep, written as plain op_par_loop calls")
    print(f"translating for {len(TARGETS)} targets...\n")

    for target in TARGETS:
        text, loops = translate_source(AIRFOIL_SOURCE, target)
        path = OUT / f"airfoil_{target}.py"
        path.write_text(text)
        direct = sum(1 for l in loops if l.is_direct)
        print(
            f"  {target:15s} -> {path.name:28s}"
            f"({len(loops)} loops: {direct} direct, {len(loops) - direct} indirect, "
            f"{len(text.splitlines())} lines)"
        )

    print("\nrunning the generated hpx_dataflow module on a small mesh...")
    mesh = generate_mesh(ni=32, nj=16)
    mod = generate_module(AIRFOIL_SOURCE, "hpx_dataflow")
    with op2_session(backend="seq", num_threads=4, block_size=64) as rt:
        app = AirfoilApp(mesh)
        ctx = AirfoilContext(app, mesh, "hpx_dataflow")
        for _ in range(5):
            mod.airfoil_step(ctx)
        mod.dataflow_finish()
        rt.hpx.executor.drain()
    print(f"  5 steps done; accumulated rms = {app.g_rms.value():.6f}")
    print(f"  generated sources are in {OUT}/ — read them next to the paper's Figs 5-13")


if __name__ == "__main__":
    main()
