#!/usr/bin/env python3
"""A second unstructured application: explicit heat conduction.

Demonstrates that the OP2 framework is not Airfoil-shaped: a different loop
structure (flux + advance with two global reductions, periodic convergence
checks), the same API, every backend. Also shows the async backend's
programmer-placed synchronization versus dataflow's automatic ordering.

Run:  python examples/heat_diffusion.py [--backend hpx_dataflow] [--steps 200]
"""

import argparse

import numpy as np

from repro.airfoil import generate_mesh
from repro.apps.heat import HeatApp, reference_heat_run
from repro.backends.registry import available_backends
from repro.op2 import op2_session
from repro.util.timing import WallTimer


def temperature_profile(app: HeatApp, width: int = 60) -> str:
    """ASCII radial temperature profile (wall -> far field)."""
    ni, nj = app.mesh.ni, app.mesh.nj
    rows = app.t.data[:, 0].reshape(nj, ni).mean(axis=1)
    peak = rows.max() or 1.0
    lines = []
    for j in range(0, nj, max(1, nj // 12)):
        bar = "#" * int(width * rows[j] / peak)
        lines.append(f"  layer {j:3d}  T={rows[j]:.4f}  {bar}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="hpx_dataflow", choices=available_backends())
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--ni", type=int, default=48)
    parser.add_argument("--nj", type=int, default=24)
    args = parser.parse_args()

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    print(f"mesh: {mesh.summary()}")
    print(f"backend: {args.backend}\n")

    with WallTimer() as t:
        with op2_session(backend=args.backend, num_threads=4, block_size=64) as rt:
            app = HeatApp(mesh, kappa=1.0, dt=5e-4)
            result = app.run(rt, max_steps=args.steps, tol=1e-7, check_every=20)

    print(f"ran {result.steps} steps in {t.elapsed:.2f}s "
          f"(converged: {result.converged}, max |dT| = {result.max_change:.2e})")
    print(f"total energy: {result.total_energy:.12f} (conserved)\n")
    print("temperature profile (hot wall band diffusing outward):")
    print(temperature_profile(app))

    ref_t, ref_energy = reference_heat_run(
        mesh, kappa=1.0, dt=5e-4, steps=result.steps
    )
    err = float(np.abs(app.t.data[:, 0] - ref_t).max())
    print(f"\nmax deviation vs plain-numpy reference: {err:.2e}")


if __name__ == "__main__":
    main()
