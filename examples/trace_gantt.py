#!/usr/bin/env python3
"""Visualize *why* dataflow wins: Gantt charts of the simulated schedules.

Emits the OpenMP and dataflow task graphs for a short Airfoil run and prints
per-thread Gantt charts from the machine simulation. The OpenMP chart shows
the fork-join texture — bands of work separated by barrier gaps where
threads wait for stragglers. The dataflow chart is densely packed: blocks of
the next loop (and the next timestep) fill every gap, which is the paper's
"asynchronous task execution removes unnecessary global barriers".

Run:  python examples/trace_gantt.py
"""

from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_backend, simulate_backend
from repro.sim.metrics import overhead_breakdown

THREADS = 8


def main() -> None:
    config = ExperimentConfig(ni=32, nj=16, niter=1, block_size=16)
    cost_model = LoopCostModel(jitter=config.cost_jitter)

    for backend in ("openmp", "hpx_dataflow"):
        run = run_backend(backend, config)
        result = simulate_backend(run, config, THREADS, cost_model, trace=True)
        breakdown = overhead_breakdown(result)
        print(f"=== {backend} on {THREADS} threads "
              f"(makespan {result.makespan:.0f} us simulated) ===")
        print(result.trace.gantt(width=100))
        pretty = ", ".join(f"{k} {v:.1%}" for k, v in sorted(breakdown.items()))
        print(f"thread-time breakdown: {pretty}")
        print(f"utilization: {result.trace.utilization():.1%}\n")

    print("legend: '#' work, 'B' barrier, 'J' join, 's' spawn, 'p' auto-chunk prefix")


if __name__ == "__main__":
    main()
