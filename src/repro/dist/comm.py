"""Inter-node communication cost model.

Standard alpha-beta (Hockney) model: a message of ``n`` bytes between two
nodes costs ``latency + n / bandwidth`` microseconds. Defaults approximate a
commodity cluster interconnect of the paper's era (QDR InfiniBand-ish:
~1.5 us latency, ~3 GB/s effective per link).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validate import check_positive


@dataclass(frozen=True)
class CommModel:
    """Alpha-beta message cost, times in microseconds."""

    #: per-message latency (us).
    latency: float = 1.5
    #: effective bandwidth (bytes per us; 3000 B/us = 3 GB/s).
    bandwidth: float = 3000.0
    #: per-message CPU cost of packing/unpacking on the endpoints (us),
    #: plus a per-byte gather/scatter cost.
    pack_base: float = 0.3
    pack_per_byte: float = 0.0005

    def __post_init__(self) -> None:
        check_positive("latency", self.latency, strict=False)
        check_positive("bandwidth", self.bandwidth)
        check_positive("pack_base", self.pack_base, strict=False)
        check_positive("pack_per_byte", self.pack_per_byte, strict=False)

    def wire_cost(self, nbytes: int) -> float:
        """Time on the wire for one message."""
        return self.latency + nbytes / self.bandwidth

    def pack_cost(self, nbytes: int) -> float:
        """Endpoint CPU time to pack (or unpack) one message."""
        return self.pack_base + nbytes * self.pack_per_byte
