"""Inter-node communication cost model.

Standard alpha-beta (Hockney) model: a message of ``n`` bytes between two
nodes costs ``latency + n / bandwidth`` microseconds. Defaults approximate a
commodity cluster interconnect of the paper's era (QDR InfiniBand-ish:
~1.5 us latency, ~3 GB/s effective per link).

:func:`fit_comm_model` closes the loop with the measured procs mode: the
per-message (bytes, seconds) records of the real pipe transport are
least-squares fitted back onto the alpha-beta form, so simulated schedules
can be re-costed with this host's actual wire behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.validate import ValidationError, check_positive


@dataclass(frozen=True)
class CommModel:
    """Alpha-beta message cost, times in microseconds."""

    #: per-message latency (us).
    latency: float = 1.5
    #: effective bandwidth (bytes per us; 3000 B/us = 3 GB/s).
    bandwidth: float = 3000.0
    #: per-message CPU cost of packing/unpacking on the endpoints (us),
    #: plus a per-byte gather/scatter cost.
    pack_base: float = 0.3
    pack_per_byte: float = 0.0005

    def __post_init__(self) -> None:
        check_positive("latency", self.latency, strict=False)
        check_positive("bandwidth", self.bandwidth)
        check_positive("pack_base", self.pack_base, strict=False)
        check_positive("pack_per_byte", self.pack_per_byte, strict=False)

    def wire_cost(self, nbytes: int) -> float:
        """Time on the wire for one message."""
        return self.latency + nbytes / self.bandwidth

    def pack_cost(self, nbytes: int) -> float:
        """Endpoint CPU time to pack (or unpack) one message."""
        return self.pack_base + nbytes * self.pack_per_byte


def fit_comm_model(
    nbytes: Sequence[int], seconds: Sequence[float]
) -> CommModel:
    """Least-squares alpha-beta fit of measured per-message latencies.

    ``nbytes[i]``/``seconds[i]`` describe one observed message (size, time
    from send to completed receive). The fit is ``t_us = alpha + n / beta``;
    pack costs keep their defaults (the measured time already includes the
    endpoints, so a calibrated model is an upper envelope for the wire).

    Degenerate inputs degrade gracefully: with fewer than two distinct
    message sizes the slope is unidentifiable, so the mean observed time
    becomes the latency and the default bandwidth is kept.
    """
    if len(nbytes) != len(seconds) or not nbytes:
        raise ValidationError(
            "need one (nbytes, seconds) pair per observed message"
        )
    import numpy as np

    n = np.asarray(nbytes, dtype=np.float64)
    t_us = np.asarray(seconds, dtype=np.float64) * 1e6
    defaults = CommModel()
    if len(np.unique(n)) < 2:
        return CommModel(
            latency=max(float(t_us.mean()), 1e-3),
            bandwidth=defaults.bandwidth,
        )
    slope, intercept = np.polyfit(n, t_us, 1)
    # A flat/negative slope means the sizes never left the latency floor;
    # keep the default bandwidth rather than reporting an infinite wire.
    bandwidth = 1.0 / slope if slope > 1e-12 else defaults.bandwidth
    return CommModel(
        latency=max(float(intercept), 1e-3),
        bandwidth=float(bandwidth),
    )
