"""Distributed (multi-locality) execution: the paper's next chapter.

OP2's production configuration is MPI across nodes + OpenMP within a node
(paper §I), and HPX is "a distributed runtime system for parallel
applications of any scale"; the paper's evaluation stops at one node and
names distribution as the road ahead. This subpackage builds that road for
the reproduction:

- :mod:`~repro.dist.partition` — geometric partitioners (coordinate bands
  and recursive coordinate bisection) over mesh cells;
- :mod:`~repro.dist.plan` — per-rank localization: owned + halo elements,
  renumbered maps, import/export lists (the owner-compute model OP2 uses);
- :mod:`~repro.dist.exchange` — halo exchanges: owner->halo updates for
  read dats and halo->owner accumulation for indirect increments;
- :mod:`~repro.dist.app` — a genuinely SPMD Airfoil: every rank runs the
  five loops on its local submesh with exchanges in between, validated to
  match the single-rank solver exactly;
- :mod:`~repro.dist.comm` / :mod:`~repro.dist.emission` — a latency/
  bandwidth communication model and task-graph emission for two distributed
  schedules: *blocking* (fork-join compute, bulk-synchronous exchange — the
  MPI+OpenMP baseline) and *overlapped* (boundary-first compute with
  exchanges running under interior work — the HPX dataflow style).
"""

from repro.dist.partition import band_partition, rcb_partition, partition_quality
from repro.dist.plan import DistPlan, RankPlan, build_dist_plan
from repro.dist.exchange import HaloExchange
from repro.dist.app import DistAirfoil
from repro.dist.comm import CommModel
from repro.dist.emission import emit_distributed, DistScheduleConfig

__all__ = [
    "band_partition",
    "rcb_partition",
    "partition_quality",
    "DistPlan",
    "RankPlan",
    "build_dist_plan",
    "HaloExchange",
    "DistAirfoil",
    "CommModel",
    "emit_distributed",
    "DistScheduleConfig",
]
