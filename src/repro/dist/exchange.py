"""Halo exchanges between rank-local cell dats.

Two primitives, exactly OP2's MPI halo semantics:

- :meth:`HaloExchange.update` — owner -> halo copy: after a loop writes an
  owned cell dat that indirect loops will read through the halo (q, adt);
- :meth:`HaloExchange.accumulate` — halo -> owner addition: after indirect
  increments landed in halo rows (res from res_calc on boundary edges), the
  partial sums travel back to the owner and the halo rows are zeroed.

The "communication" is array copying between the per-rank numpy arrays —
the data motion is real (and byte-counted for the cost model); only the wire
is simulated.
"""

from __future__ import annotations

import numpy as np

from repro.dist.plan import DistPlan
from repro.util.validate import ValidationError


class HaloExchange:
    """Executes halo traffic for one distribution plan."""

    def __init__(self, plan: DistPlan) -> None:
        self.plan = plan
        #: bytes moved by each primitive since construction (for the model).
        self.bytes_updated = 0
        self.bytes_accumulated = 0
        self.update_count = 0
        self.accumulate_count = 0
        #: point-to-point messages each primitive implied (one per
        #: neighbor pair per call) — calibration compares these modeled
        #: counts against what a real transport actually sent.
        self.messages_updated = 0
        self.messages_accumulated = 0

    def _check(self, arrays: list[np.ndarray]) -> None:
        if len(arrays) != self.plan.ranks:
            raise ValidationError(
                f"need one array per rank ({self.plan.ranks}), got {len(arrays)}"
            )
        for r, (arr, rp) in enumerate(zip(arrays, self.plan.plans)):
            expected = rp.n_owned + rp.n_halo
            if arr.shape[0] != expected:
                raise ValidationError(
                    f"rank {r} array has {arr.shape[0]} rows, plan expects "
                    f"{expected} (owned {rp.n_owned} + halo {rp.n_halo})"
                )

    def update(self, arrays: list[np.ndarray]) -> None:
        """Refresh every halo row from its owner (owner -> halo copy)."""
        self._check(arrays)
        for s, rp in enumerate(self.plan.plans):
            for r, import_idx in rp.imports.items():
                export_idx = self.plan.plans[r].exports[s]
                arrays[s][import_idx] = arrays[r][export_idx]
                self.bytes_updated += arrays[s][import_idx].nbytes
                self.messages_updated += 1
        self.update_count += 1

    def accumulate(self, arrays: list[np.ndarray]) -> None:
        """Add halo contributions into the owners and zero the halo rows."""
        self._check(arrays)
        for s, rp in enumerate(self.plan.plans):
            for r, import_idx in rp.imports.items():
                export_idx = self.plan.plans[r].exports[s]
                arrays[r][export_idx] += arrays[s][import_idx]
                self.bytes_accumulated += arrays[s][import_idx].nbytes
                self.messages_accumulated += 1
                arrays[s][import_idx] = 0.0
        self.accumulate_count += 1

    def comm_counters(self) -> dict[str, int]:
        """Message/byte counters in the shape ``op_timing_output`` reports.

        The same keys are produced by the procs-mode transport
        (:class:`repro.procs.transport.HaloTransport`), so modeled and
        measured halo traffic line up column for column.
        """
        return {
            "messages_updated": self.messages_updated,
            "messages_accumulated": self.messages_accumulated,
            "bytes_updated": self.bytes_updated,
            "bytes_accumulated": self.bytes_accumulated,
        }

    def message_sizes(self, dim: int, itemsize: int = 8) -> dict[tuple[int, int], int]:
        """Bytes per (sender, receiver) message for a dat of ``dim`` values."""
        out: dict[tuple[int, int], int] = {}
        for s, rp in enumerate(self.plan.plans):
            for r, import_idx in rp.imports.items():
                out[(r, s)] = len(import_idx) * dim * itemsize
        return out
