"""A genuinely SPMD distributed Airfoil solver.

Every rank holds only its submesh (owned cells + halo, its edges, renumbered
maps) and runs the unmodified Airfoil kernels through the standard OP2
gather/scatter machinery; halo exchanges move data between ranks at exactly
the points OP2's MPI backend would:

- ``update(q)``, ``update(adt)`` after ``adt_calc`` (res_calc reads both
  sides of every partition-crossing edge);
- ``accumulate(res)`` after ``res_calc``/``bres_calc`` (increments that
  landed in halo rows travel to their owners).

Owned and halo rows share one storage array per rank; two OpDat views (one
on the owned set for direct loops, one on the full local cell set for
indirect loops) give the kernels the right iteration spaces without copying.
The assembled global state matches the single-rank solver to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.airfoil.constants import DEFAULT_CONSTANTS, FlowConstants
from repro.airfoil.kernels import make_kernels
from repro.airfoil.meshgen import AirfoilMesh
from repro.backends.base import execute_loop
from repro.dist.exchange import HaloExchange
from repro.engine import airfoil_timestep
from repro.engine.program import ExchangeStep
from repro.dist.partition import band_partition, cell_centroids, rcb_partition
from repro.dist.plan import DistPlan, RankPlan, build_dist_plan
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_RW,
    OP_WRITE,
    OpDat,
    OpGlobal,
    op_arg_dat,
    op_arg_gbl,
)
from repro.op2.parloop import ParLoop
from repro.util.validate import ValidationError


@dataclass
class RankState:
    """One rank's arrays, dat views and loop objects."""

    plan: RankPlan
    q: np.ndarray
    qold: np.ndarray
    res: np.ndarray
    adt: np.ndarray
    rms: OpGlobal
    loops: dict[str, ParLoop]


def make_owner(mesh: AirfoilMesh, ranks: int, partitioner: str) -> np.ndarray:
    """Cell->rank assignment for the named partitioner ('rcb' or 'band')."""
    if partitioner == "rcb":
        return rcb_partition(cell_centroids(mesh), ranks)
    if partitioner == "band":
        return band_partition(mesh.cells.size, ranks)
    raise ValidationError(
        f"unknown partitioner {partitioner!r}; use 'rcb' or 'band'"
    )


def build_rank_state(
    rp: RankPlan,
    kernels: dict,
    g_qinf: OpGlobal,
    freestream: np.ndarray,
    arrays: dict[str, np.ndarray] | None = None,
) -> RankState:
    """Build one rank's dat views and loop objects.

    ``arrays`` optionally supplies preallocated storage for the four cell
    fields (``q``/``res``/``adt`` over owned+halo rows, ``qold`` over owned
    rows) — the procs mode passes views over shared-memory segments here so
    the parent can assemble results without copying through a queue. The
    arrays are (re)initialized in place; omitted, fresh numpy storage is
    allocated.
    """
    n_local = rp.n_owned + rp.n_halo
    if arrays is None:
        arrays = {
            "q": np.empty((n_local, 4)),
            "qold": np.zeros((rp.n_owned, 4)),
            "res": np.zeros((n_local, 4)),
            "adt": np.zeros((n_local, 1)),
        }
    q, qold, res, adt = arrays["q"], arrays["qold"], arrays["res"], arrays["adt"]
    if q.shape != (n_local, 4) or qold.shape != (rp.n_owned, 4):
        raise ValidationError(
            f"rank {rp.rank} array shapes do not match its plan layout"
        )
    q[:] = freestream
    qold[:] = 0.0
    res[:] = 0.0
    adt[:] = 0.0
    x = OpDat("x", rp.nodes_set, 2, rp.x_local)
    bound = OpDat("bound", rp.bedges_set, 1, rp.bound_local, dtype=np.int64)
    rms = OpGlobal(f"rms.r{rp.rank}", 1)

    # Owned-set views (direct cell loops) share storage with the
    # full-local-set dats (indirect edge loops): q[:n_owned] is a
    # contiguous view, so writes through either dat are the same memory.
    q_owned = OpDat("q", rp.owned_set, 4, q[: rp.n_owned])
    q_cells = OpDat("q", rp.cells_set, 4, q)
    qold_owned = OpDat("qold", rp.owned_set, 4, qold)
    res_owned = OpDat("res", rp.owned_set, 4, res[: rp.n_owned])
    res_cells = OpDat("res", rp.cells_set, 4, res)
    adt_owned = OpDat("adt", rp.owned_set, 1, adt[: rp.n_owned])
    adt_cells = OpDat("adt", rp.cells_set, 1, adt)

    loops = {
        "save_soln": ParLoop(
            kernels["save_soln"],
            "save_soln",
            rp.owned_set,
            (
                op_arg_dat(q_owned, -1, OP_ID, OP_READ),
                op_arg_dat(qold_owned, -1, OP_ID, OP_WRITE),
            ),
        ),
        "adt_calc": ParLoop(
            kernels["adt_calc"],
            "adt_calc",
            rp.owned_set,
            (
                op_arg_dat(x, 0, rp.pcell, OP_READ),
                op_arg_dat(x, 1, rp.pcell, OP_READ),
                op_arg_dat(x, 2, rp.pcell, OP_READ),
                op_arg_dat(x, 3, rp.pcell, OP_READ),
                op_arg_dat(q_owned, -1, OP_ID, OP_READ),
                op_arg_dat(adt_owned, -1, OP_ID, OP_WRITE),
            ),
        ),
        "res_calc": ParLoop(
            kernels["res_calc"],
            "res_calc",
            rp.edges_set,
            (
                op_arg_dat(x, 0, rp.pedge, OP_READ),
                op_arg_dat(x, 1, rp.pedge, OP_READ),
                op_arg_dat(q_cells, 0, rp.pecell, OP_READ),
                op_arg_dat(q_cells, 1, rp.pecell, OP_READ),
                op_arg_dat(adt_cells, 0, rp.pecell, OP_READ),
                op_arg_dat(adt_cells, 1, rp.pecell, OP_READ),
                op_arg_dat(res_cells, 0, rp.pecell, OP_INC),
                op_arg_dat(res_cells, 1, rp.pecell, OP_INC),
            ),
        ),
        "bres_calc": ParLoop(
            kernels["bres_calc"],
            "bres_calc",
            rp.bedges_set,
            (
                op_arg_dat(x, 0, rp.pbedge, OP_READ),
                op_arg_dat(x, 1, rp.pbedge, OP_READ),
                op_arg_dat(q_cells, 0, rp.pbecell, OP_READ),
                op_arg_dat(adt_cells, 0, rp.pbecell, OP_READ),
                op_arg_dat(res_cells, 0, rp.pbecell, OP_INC),
                op_arg_dat(bound, -1, OP_ID, OP_READ),
                op_arg_gbl(g_qinf, OP_READ),
            ),
        ),
        "update": ParLoop(
            kernels["update"],
            "update",
            rp.owned_set,
            (
                op_arg_dat(qold_owned, -1, OP_ID, OP_READ),
                op_arg_dat(q_owned, -1, OP_ID, OP_WRITE),
                op_arg_dat(res_owned, -1, OP_ID, OP_RW),
                op_arg_dat(adt_owned, -1, OP_ID, OP_READ),
                op_arg_gbl(rms, OP_INC),
            ),
        ),
    }
    return RankState(plan=rp, q=q, qold=qold, res=res, adt=adt, rms=rms, loops=loops)


class DistAirfoil:
    """The Airfoil solver over ``ranks`` partitions."""

    #: the canonical timestep in its bulk-synchronous shape; stepping walks
    #: it rather than hand-coding the loop/exchange order. Class-level: the
    #: program is frozen data, identical for every instance.
    program = airfoil_timestep(dist=True)

    def __init__(
        self,
        mesh: AirfoilMesh,
        ranks: int,
        partitioner: str = "rcb",
        constants: FlowConstants = DEFAULT_CONSTANTS,
    ) -> None:
        self.mesh = mesh
        self.constants = constants
        owner = make_owner(mesh, ranks, partitioner)
        self.dplan: DistPlan = build_dist_plan(mesh, owner)
        self.exchange = HaloExchange(self.dplan)
        self.kernels = make_kernels(constants)
        freestream = constants.freestream()
        self.g_qinf = OpGlobal("qinf", 4, freestream)
        self.states: list[RankState] = [
            build_rank_state(rp, self.kernels, self.g_qinf, freestream)
            for rp in self.dplan.plans
        ]
        self.iterations = 0

    # -- SPMD stepping ----------------------------------------------------------

    def _all(self, loop_name: str) -> None:
        for state in self.states:
            execute_loop(state.loops[loop_name])

    def step(self) -> None:
        """One timestep: walk the blocking program across all ranks.

        Loop steps run on every rank; a blocking exchange step moves one
        field at a time through :class:`HaloExchange` (``update`` ships
        halo copies owner->holder, ``accumulate`` returns halo increments
        holder->owner).
        """
        for pstep in self.program:
            if isinstance(pstep, ExchangeStep):
                op = getattr(self.exchange, pstep.op)
                for name in pstep.fields:
                    op([getattr(s, name) for s in self.states])
            else:
                self._all(pstep.name)
        self.iterations += 1

    def run(self, niter: int) -> dict[str, float]:
        for _ in range(niter):
            self.step()
        return {
            "iterations": float(self.iterations),
            "rms_total": self.rms_total(),
            "q_norm": float(np.sqrt(np.sum(self.gather_q() ** 2))),
        }

    # -- assembly / inspection ---------------------------------------------------

    def rms_total(self) -> float:
        return float(sum(s.rms.value() for s in self.states))

    def gather_q(self) -> np.ndarray:
        """Assemble the global solution from the owned rows of every rank."""
        out = np.empty((self.mesh.cells.size, 4))
        for state in self.states:
            out[state.plan.owned_cells] = state.q[: state.plan.n_owned]
        return out

    def gather(self, field: str) -> np.ndarray:
        """Assemble any cell field ('q', 'res', 'adt', 'qold')."""
        dim = {"q": 4, "res": 4, "adt": 1, "qold": 4}[field]
        out = np.empty((self.mesh.cells.size, dim))
        for state in self.states:
            arr = getattr(state, field)
            out[state.plan.owned_cells] = arr[: state.plan.n_owned]
        return out
