"""Task-graph emission for distributed Airfoil schedules.

Two schedules over the same work and the same messages:

- **blocking** (the MPI+OpenMP baseline): each loop is a node-local
  fork-join (split across the node's threads + node barrier); halo
  exchanges happen in bulk-synchronous phases (every rank packs, the wire
  carries, every rank unpacks, then a global gate — MPI_Waitall + barrier
  semantics) before the next loop starts anywhere.
- **overlapped** (the HPX dataflow style): each rank's loops split into a
  *boundary* part (cells/edges adjacent to partition cuts) and an *interior*
  part. Boundary `adt_calc` runs first so packs/sends start early; interior
  compute proceeds under the wire; only the exterior edges of `res_calc`
  wait for imports. Exactly the communication/computation overlap the paper
  credits HPX's futures for (§V: "seamless overlap of communication with
  computation").

The simulated machine is a cluster: ``ranks`` nodes x ``threads_per_node``
cores, plus one NIC pseudo-thread per node that serializes its outgoing
messages. Work costs come from the same kernel cost model as the single-node
figures; message sizes come from the *actual* import/export lists of the
distribution plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.airfoil.kernels import make_kernels
from repro.airfoil.constants import DEFAULT_CONSTANTS
from repro.dist.comm import CommModel
from repro.dist.plan import DistPlan
from repro.sim.barriers import barrier_cost
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph


@dataclass(frozen=True)
class DistScheduleConfig:
    """Knobs of the distributed emission."""

    threads_per_node: int = 8
    niter: int = 2
    comm: CommModel = CommModel()
    #: barrier/overhead constants reuse the single-node machine model.
    node_machine: MachineConfig = MachineConfig(num_cores=64, smt_ways=1)

    def cluster_machine(self, ranks: int) -> MachineConfig:
        """Flat simulated pool: ranks*threads compute cores + one NIC each."""
        return MachineConfig(
            num_cores=ranks * self.threads_per_node + ranks,
            smt_ways=1,
            task_overhead=self.node_machine.task_overhead,
            steal_overhead=self.node_machine.steal_overhead,
            fork_overhead=self.node_machine.fork_overhead,
            chunk_spawn_overhead=self.node_machine.chunk_spawn_overhead,
            barrier_base=self.node_machine.barrier_base,
            barrier_per_thread=self.node_machine.barrier_per_thread,
            join_base=self.node_machine.join_base,
            join_per_thread=self.node_machine.join_per_thread,
            bandwidth_saturation=self.node_machine.bandwidth_saturation,
        )


@dataclass
class _RankWork:
    """Per-rank work decomposition (element counts -> costs)."""

    boundary_cells: int
    interior_cells: int
    exterior_edges: int
    interior_edges: int
    bedges: int
    #: bytes sent to each neighbor per q/adt update and per res accumulate.
    out_bytes: dict[int, int]


def _decompose(dplan: DistPlan, mesh) -> list[_RankWork]:
    """Boundary/interior split and message sizes per rank."""
    owner = dplan.owner
    pecell = mesh.pecell.values
    cut = owner[pecell[:, 0]] != owner[pecell[:, 1]]
    works: list[_RankWork] = []
    for rp in dplan.plans:
        my_cut = cut[rp.edges]
        exterior = int(np.sum(my_cut))
        interior = len(rp.edges) - exterior
        # Boundary cells: owned endpoints of cut edges (superset of exports).
        cut_edges = rp.edges[my_cut]
        endpoints = np.unique(pecell[cut_edges].ravel())
        boundary = int(np.sum(owner[endpoints] == rp.rank))
        out_bytes = {
            s: len(idx) * 8 for s, idx in rp.exports.items()
        }  # per dim-1 float64 row; scaled by dim at use sites
        works.append(
            _RankWork(
                boundary_cells=boundary,
                interior_cells=rp.n_owned - boundary,
                exterior_edges=exterior,
                interior_edges=interior,
                bedges=len(rp.bedges),
                out_bytes=out_bytes,
            )
        )
    return works


class _Emitter:
    """Shared machinery for both schedules."""

    def __init__(self, dplan: DistPlan, mesh, config: DistScheduleConfig) -> None:
        self.dplan = dplan
        self.config = config
        self.graph = TaskGraph()
        self.works = _decompose(dplan, mesh)
        self.kernels = make_kernels(DEFAULT_CONSTANTS)
        self.P = config.threads_per_node
        self.R = dplan.ranks

    def thread(self, node: int, t: int) -> int:
        return node * self.P + t

    def nic(self, node: int) -> int:
        return self.R * self.P + node

    def unit(self, kernel: str) -> float:
        return self.kernels[kernel].cost.unit_cost

    def part(
        self, name: str, node: int, total_cost: float, deps: list[int], loop: str
    ) -> list[int]:
        """Emit one loop part as equal per-thread chunks on ``node``."""
        per = total_cost / self.P
        return [
            self.graph.add(
                f"{name}.n{node}.t{t}",
                per,
                deps,
                affinity=self.thread(node, t),
                kind="work",
                loop=loop,
            )
            for t in range(self.P)
        ]

    def node_barrier(self, name: str, node: int, deps: list[int]) -> int:
        return self.graph.add(
            name,
            barrier_cost(self.config.node_machine, self.P),
            deps,
            affinity=self.thread(node, 0),
            kind="barrier",
        )

    def message(
        self, name: str, src: int, dst: int, nbytes: int, deps: list[int]
    ) -> int:
        """pack (src cpu) -> wire (src NIC) -> unpack (dst cpu)."""
        comm = self.config.comm
        pack = self.graph.add(
            f"{name}.pack",
            comm.pack_cost(nbytes),
            deps,
            affinity=self.thread(src, 0),
            kind="spawn",
            loop="exchange",
        )
        wire = self.graph.add(
            f"{name}.wire",
            comm.wire_cost(nbytes),
            [pack],
            affinity=self.nic(src),
            kind="join",
            loop="exchange",
        )
        return self.graph.add(
            f"{name}.unpack",
            comm.pack_cost(nbytes),
            [wire],
            affinity=self.thread(dst, 0),
            kind="spawn",
            loop="exchange",
        )

    def global_gate(self, name: str, deps: list[int]) -> int:
        """MPI_Waitall + barrier across all ranks (tree over the network)."""
        cost = self.config.comm.latency * max(1.0, math.ceil(math.log2(max(self.R, 2))))
        return self.graph.add(name, cost, deps, affinity=None, kind="barrier")


def emit_distributed(
    dplan: DistPlan,
    mesh,
    config: DistScheduleConfig,
    schedule: str = "blocking",
) -> TaskGraph:
    """Emit the distributed Airfoil run under the given schedule."""
    if schedule == "blocking":
        return _emit_blocking(_Emitter(dplan, mesh, config))
    if schedule == "overlapped":
        return _emit_overlapped(_Emitter(dplan, mesh, config))
    raise ValueError(f"unknown schedule {schedule!r}; use 'blocking' or 'overlapped'")


def _emit_blocking(e: _Emitter) -> TaskGraph:
    cfg = e.config
    gate: int | None = None
    for it in range(cfg.niter):
        # save_soln: node-local fork-join everywhere.
        tails = []
        for r, w in enumerate(e.works):
            cost = (w.boundary_cells + w.interior_cells) * e.unit("save_soln")
            tasks = e.part(f"save[{it}]", r, cost, [gate] if gate is not None else [], "save_soln")
            tails.append(e.node_barrier(f"save.bar[{it}].n{r}", r, tasks))
        gate = e.global_gate(f"save.gate[{it}]", tails)

        for k in range(2):
            tag = f"{it}.{k}"
            # adt_calc.
            tails = []
            for r, w in enumerate(e.works):
                cost = (w.boundary_cells + w.interior_cells) * e.unit("adt_calc")
                tasks = e.part(f"adt[{tag}]", r, cost, [gate], "adt_calc")
                tails.append(e.node_barrier(f"adt.bar[{tag}].n{r}", r, tasks))
            gate = e.global_gate(f"adt.gate[{tag}]", tails)

            # Bulk-synchronous halo update of q (dim 4) and adt (dim 1).
            unpacks = []
            for r, w in enumerate(e.works):
                for s, rows in w.out_bytes.items():
                    unpacks.append(
                        e.message(f"upd[{tag}].{r}->{s}", r, s, rows * 5, [gate])
                    )
            gate = e.global_gate(f"upd.gate[{tag}]", unpacks or [gate])

            # res_calc + bres_calc.
            tails = []
            for r, w in enumerate(e.works):
                cost = (w.exterior_edges + w.interior_edges) * e.unit("res_calc")
                tasks = e.part(f"res[{tag}]", r, cost, [gate], "res_calc")
                bcost = w.bedges * e.unit("bres_calc")
                tasks += e.part(f"bres[{tag}]", r, bcost, [gate], "bres_calc")
                tails.append(e.node_barrier(f"res.bar[{tag}].n{r}", r, tasks))
            gate = e.global_gate(f"res.gate[{tag}]", tails)

            # Bulk-synchronous accumulate of res (dim 4), reversed direction.
            unpacks = []
            for r, w in enumerate(e.works):
                for s, rows in w.out_bytes.items():
                    unpacks.append(
                        e.message(f"acc[{tag}].{s}->{r}", s, r, rows * 4, [gate])
                    )
            gate = e.global_gate(f"acc.gate[{tag}]", unpacks or [gate])

            # update.
            tails = []
            for r, w in enumerate(e.works):
                cost = (w.boundary_cells + w.interior_cells) * e.unit("update")
                tasks = e.part(f"update[{tag}]", r, cost, [gate], "update")
                tails.append(e.node_barrier(f"update.bar[{tag}].n{r}", r, tasks))
            gate = e.global_gate(f"update.gate[{tag}]", tails)
    return e.graph


def _emit_overlapped(e: _Emitter) -> TaskGraph:
    cfg = e.config
    # Per-rank rolling dependency: the last update (per rank), no global gates.
    last_update: list[list[int]] = [[] for _ in range(e.R)]
    last_save: list[list[int]] = [[] for _ in range(e.R)]
    for it in range(cfg.niter):
        for r, w in enumerate(e.works):
            cost = (w.boundary_cells + w.interior_cells) * e.unit("save_soln")
            last_save[r] = e.part(f"save[{it}]", r, cost, last_update[r], "save_soln")

        for k in range(2):
            tag = f"{it}.{k}"
            adt_b: list[list[int]] = [[] for _ in range(e.R)]
            adt_i: list[list[int]] = [[] for _ in range(e.R)]
            q_unpacks: dict[int, list[int]] = {s: [] for s in range(e.R)}

            for r, w in enumerate(e.works):
                deps = last_update[r]
                # q can ship as soon as the previous update finished.
                for s, rows in w.out_bytes.items():
                    q_unpacks[s].append(
                        e.message(f"updq[{tag}].{r}->{s}", r, s, rows * 4, deps)
                    )
                # Boundary adt first: its results feed the adt messages.
                adt_b[r] = e.part(
                    f"adt_b[{tag}]", r, w.boundary_cells * e.unit("adt_calc"),
                    deps, "adt_calc",
                )
                adt_i[r] = e.part(
                    f"adt_i[{tag}]", r, w.interior_cells * e.unit("adt_calc"),
                    deps, "adt_calc",
                )

            adt_unpacks: dict[int, list[int]] = {s: [] for s in range(e.R)}
            for r, w in enumerate(e.works):
                for s, rows in w.out_bytes.items():
                    adt_unpacks[s].append(
                        e.message(f"upda[{tag}].{r}->{s}", r, s, rows, adt_b[r])
                    )

            res_parts: list[list[int]] = [[] for _ in range(e.R)]
            res_x: list[list[int]] = [[] for _ in range(e.R)]
            for r, w in enumerate(e.works):
                # Interior edges need only local adt.
                res_i = e.part(
                    f"res_i[{tag}]", r, w.interior_edges * e.unit("res_calc"),
                    adt_b[r] + adt_i[r], "res_calc",
                )
                # Exterior edges additionally wait for the imports.
                res_x[r] = e.part(
                    f"res_x[{tag}]", r, w.exterior_edges * e.unit("res_calc"),
                    adt_b[r] + adt_i[r] + q_unpacks[r] + adt_unpacks[r], "res_calc",
                )
                bres = e.part(
                    f"bres[{tag}]", r, w.bedges * e.unit("bres_calc"),
                    adt_b[r] + adt_i[r], "bres_calc",
                )
                res_parts[r] = res_i + res_x[r] + bres

            acc_unpacks: dict[int, list[int]] = {s: [] for s in range(e.R)}
            for r, w in enumerate(e.works):
                # r owns the cells listed in exports[r][s]; rank s holds them
                # as halo and its exterior edges incremented them, so the
                # accumulate message flows s -> r once s's exterior part ran.
                for s, rows in w.out_bytes.items():
                    acc_unpacks[r].append(
                        e.message(f"accr[{tag}].{s}->{r}", s, r, rows * 4, res_x[s])
                    )

            for r, w in enumerate(e.works):
                deps = res_parts[r] + acc_unpacks[r] + last_save[r]
                cost = (w.boundary_cells + w.interior_cells) * e.unit("update")
                last_update[r] = e.part(f"update[{tag}]", r, cost, deps, "update")
    return e.graph
