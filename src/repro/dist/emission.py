"""Task-graph emission for distributed Airfoil schedules.

Both schedules are *walks of the canonical timestep program*
(:func:`repro.engine.airfoil.airfoil_timestep`) — the emitter holds no
loop order or split of its own, only the translation of program steps into
simulated per-rank work parts and wire messages:

- **blocking** (the MPI+OpenMP baseline) walks the bulk-synchronous
  program: each loop step is a node-local fork-join (split across the
  node's threads + node barrier) followed by a global gate; a blocking
  exchange step becomes every rank's pack -> wire -> unpack plus a global
  gate — MPI_Waitall + barrier semantics — before the next step starts
  anywhere.
- **overlapped** (the HPX dataflow style) walks the overlapped program
  unrolled over all timesteps: each rank's parts depend only on the parts
  of the program's derived predecessor steps (increments commuting, as the
  future-based runtime orders them), exchange starts become messages whose
  unpacks gate only the steps that read halo data. Boundary ``adt_calc``
  feeds the wire early, interior compute proceeds under it, and only the
  exterior edges wait — the communication/computation overlap the paper
  credits HPX's futures for (§V: "seamless overlap of communication with
  computation").

The simulated machine is a cluster: ``ranks`` nodes x ``threads_per_node``
cores, plus one NIC pseudo-thread per node that serializes its outgoing
messages. Work costs come from the same kernel cost model as the single-node
figures; message sizes come from the *actual* import/export lists of the
distribution plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.airfoil.kernels import make_kernels
from repro.airfoil.constants import DEFAULT_CONSTANTS
from repro.dist.comm import CommModel
from repro.dist.plan import DistPlan
from repro.engine import airfoil_timestep
from repro.engine.program import ExchangeStep, LoopStep
from repro.sim.barriers import barrier_cost
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph

#: float64 components per exchanged row, per dat field.
FIELD_DIMS = {"q": 4, "adt": 1, "res": 4}


@dataclass(frozen=True)
class DistScheduleConfig:
    """Knobs of the distributed emission."""

    threads_per_node: int = 8
    niter: int = 2
    comm: CommModel = CommModel()
    #: barrier/overhead constants reuse the single-node machine model.
    node_machine: MachineConfig = MachineConfig(num_cores=64, smt_ways=1)

    def cluster_machine(self, ranks: int) -> MachineConfig:
        """Flat simulated pool: ranks*threads compute cores + one NIC each."""
        return MachineConfig(
            num_cores=ranks * self.threads_per_node + ranks,
            smt_ways=1,
            task_overhead=self.node_machine.task_overhead,
            steal_overhead=self.node_machine.steal_overhead,
            fork_overhead=self.node_machine.fork_overhead,
            chunk_spawn_overhead=self.node_machine.chunk_spawn_overhead,
            barrier_base=self.node_machine.barrier_base,
            barrier_per_thread=self.node_machine.barrier_per_thread,
            join_base=self.node_machine.join_base,
            join_per_thread=self.node_machine.join_per_thread,
            bandwidth_saturation=self.node_machine.bandwidth_saturation,
        )


@dataclass
class _RankWork:
    """Per-rank work decomposition (element counts -> costs)."""

    boundary_cells: int
    interior_cells: int
    exterior_edges: int
    interior_edges: int
    bedges: int
    #: bytes sent to each neighbor per q/adt update and per res accumulate.
    out_bytes: dict[int, int]


def _decompose(dplan: DistPlan, mesh) -> list[_RankWork]:
    """Boundary/interior split and message sizes per rank."""
    owner = dplan.owner
    pecell = mesh.pecell.values
    cut = owner[pecell[:, 0]] != owner[pecell[:, 1]]
    # Boundary cells: owned endpoints of *any* cut edge. This equals the
    # measured runtime's split (exported rows plus the owned endpoints of
    # the rank's own exterior edges): every cut edge is owned by one of its
    # two sides, so collecting endpoints globally covers both sources.
    all_cut_endpoints = np.unique(pecell[cut].ravel())
    works: list[_RankWork] = []
    for rp in dplan.plans:
        my_cut = cut[rp.edges]
        exterior = int(np.sum(my_cut))
        interior = len(rp.edges) - exterior
        boundary = int(np.sum(owner[all_cut_endpoints] == rp.rank))
        out_bytes = {
            s: len(idx) * 8 for s, idx in rp.exports.items()
        }  # per dim-1 float64 row; scaled by dim at use sites
        works.append(
            _RankWork(
                boundary_cells=boundary,
                interior_cells=rp.n_owned - boundary,
                exterior_edges=exterior,
                interior_edges=interior,
                bedges=len(rp.bedges),
                out_bytes=out_bytes,
            )
        )
    return works


class _Emitter:
    """Shared machinery for both schedules."""

    def __init__(self, dplan: DistPlan, mesh, config: DistScheduleConfig) -> None:
        self.dplan = dplan
        self.config = config
        self.graph = TaskGraph()
        self.works = _decompose(dplan, mesh)
        self.kernels = make_kernels(DEFAULT_CONSTANTS)
        self.P = config.threads_per_node
        self.R = dplan.ranks

    def thread(self, node: int, t: int) -> int:
        return node * self.P + t

    def nic(self, node: int) -> int:
        return self.R * self.P + node

    def unit(self, kernel: str) -> float:
        return self.kernels[kernel].cost.unit_cost

    def part(
        self, name: str, node: int, total_cost: float, deps: list[int], loop: str
    ) -> list[int]:
        """Emit one loop part as equal per-thread chunks on ``node``."""
        per = total_cost / self.P
        return [
            self.graph.add(
                f"{name}.n{node}.t{t}",
                per,
                deps,
                affinity=self.thread(node, t),
                kind="work",
                loop=loop,
            )
            for t in range(self.P)
        ]

    def node_barrier(self, name: str, node: int, deps: list[int]) -> int:
        return self.graph.add(
            name,
            barrier_cost(self.config.node_machine, self.P),
            deps,
            affinity=self.thread(node, 0),
            kind="barrier",
        )

    def message(
        self, name: str, src: int, dst: int, nbytes: int, deps: list[int]
    ) -> int:
        """pack (src cpu) -> wire (src NIC) -> unpack (dst cpu)."""
        comm = self.config.comm
        pack = self.graph.add(
            f"{name}.pack",
            comm.pack_cost(nbytes),
            deps,
            affinity=self.thread(src, 0),
            kind="spawn",
            loop="exchange",
        )
        wire = self.graph.add(
            f"{name}.wire",
            comm.wire_cost(nbytes),
            [pack],
            affinity=self.nic(src),
            kind="join",
            loop="exchange",
        )
        return self.graph.add(
            f"{name}.unpack",
            comm.pack_cost(nbytes),
            [wire],
            affinity=self.thread(dst, 0),
            kind="spawn",
            loop="exchange",
        )

    def global_gate(self, name: str, deps: list[int]) -> int:
        """MPI_Waitall + barrier across all ranks (tree over the network)."""
        cost = self.config.comm.latency * max(1.0, math.ceil(math.log2(max(self.R, 2))))
        return self.graph.add(name, cost, deps, affinity=None, kind="barrier")


def emit_distributed(
    dplan: DistPlan,
    mesh,
    config: DistScheduleConfig,
    schedule: str = "blocking",
) -> TaskGraph:
    """Emit the distributed Airfoil run under the given schedule."""
    if schedule == "blocking":
        return _emit_blocking(_Emitter(dplan, mesh, config))
    if schedule == "overlapped":
        return _emit_overlapped(_Emitter(dplan, mesh, config))
    raise ValueError(f"unknown schedule {schedule!r}; use 'blocking' or 'overlapped'")


_SHORT = {
    "save_soln": "save",
    "adt_calc": "adt",
    "res_calc": "res",
    "bres_calc": "bres",
    "update": "update",
}

_SUBSET_TAG = {
    None: "",
    "boundary_cells": "_b",
    "interior_cells": "_i",
    "interior_edges": "_i",
    "exterior_edges": "_x",
}


def _count(step: LoopStep, w: _RankWork) -> int:
    """Elements one rank iterates for a program loop step."""
    if step.name == "bres_calc":
        return w.bedges
    if step.name == "res_calc":
        if step.subset == "interior_edges":
            return w.interior_edges
        if step.subset == "exterior_edges":
            return w.exterior_edges
        return w.interior_edges + w.exterior_edges
    if step.subset == "boundary_cells":
        return w.boundary_cells
    if step.subset == "interior_cells":
        return w.interior_cells
    return w.boundary_cells + w.interior_cells


def _msg_dim(step: ExchangeStep) -> int:
    """float64 components per exchanged row (fields pack into one message)."""
    return sum(FIELD_DIMS[f] for f in step.fields)


def _part_name(step: LoopStep, tag: str) -> str:
    return f"{_SHORT[step.name]}{_SUBSET_TAG[step.subset]}[{tag}]"


def _emit_blocking(e: _Emitter) -> TaskGraph:
    """Walk the bulk-synchronous program with a rolling global gate."""
    program = airfoil_timestep(dist=True)
    gate: int | None = None
    for it in range(e.config.niter):
        for i, step in enumerate(program.steps):
            tag = f"{it}.{i}"
            deps = [gate] if gate is not None else []
            if isinstance(step, ExchangeStep):
                dim = _msg_dim(step)
                unpacks = []
                for r, w in enumerate(e.works):
                    for s, rows in w.out_bytes.items():
                        # update ships owner -> holder; accumulate returns
                        # halo increments holder -> owner.
                        src, dst = (r, s) if step.op == "update" else (s, r)
                        unpacks.append(
                            e.message(
                                f"{step.op[:3]}[{tag}].{src}->{dst}",
                                src,
                                dst,
                                rows * dim,
                                deps,
                            )
                        )
                gate = e.global_gate(f"{step.op[:3]}.gate[{tag}]", unpacks or deps)
                continue
            name = _SHORT[step.name]
            tails = []
            for r, w in enumerate(e.works):
                cost = _count(step, w) * e.unit(step.name)
                tasks = e.part(f"{name}[{tag}]", r, cost, deps, step.name)
                tails.append(e.node_barrier(f"{name}.bar[{tag}].n{r}", r, tasks))
            gate = e.global_gate(f"{name}.gate[{tag}]", tails)
    return e.graph


def _emit_overlapped(e: _Emitter) -> TaskGraph:
    """Walk the overlapped program unrolled over every timestep.

    Each rank's parts depend on the parts of the step's derived predecessors
    *on that rank only* (plus message unpacks at the waits) — no global
    gates anywhere, and cross-timestep edges chain the iterations without a
    barrier between them.
    """
    program = airfoil_timestep(dist=True, overlap=True)
    niter = e.config.niter
    steps = program.steps * niter
    edges = program.unrolled_edges(niter, commute_incs=True)
    #: per step index, per rank: the task ids that mean "this step is done".
    finals: list[list[list[int]]] = []
    #: in-flight unpack ids per exchange op, per receiving rank.
    pending: dict[str, list[list[int]]] = {
        "update": [[] for _ in range(e.R)],
        "accumulate": [[] for _ in range(e.R)],
    }

    def deps_for(i: int, r: int) -> list[int]:
        return [t for p in edges[i] for t in finals[p][r]]

    for i, step in enumerate(steps):
        it, j = divmod(i, len(program.steps))
        tag = f"{it}.{j}"
        if isinstance(step, ExchangeStep):
            per_rank: list[list[int]] = [[] for _ in range(e.R)]
            if step.phase == "start":
                dim = _msg_dim(step)
                for r, w in enumerate(e.works):
                    for s, rows in w.out_bytes.items():
                        src, dst = (r, s) if step.op == "update" else (s, r)
                        pending[step.op][dst].append(
                            e.message(
                                f"{step.op[:3]}[{tag}].{src}->{dst}",
                                src,
                                dst,
                                rows * dim,
                                deps_for(i, src),
                            )
                        )
            else:
                # The wait completes when this rank's unpacks have landed;
                # no task of its own.
                for r in range(e.R):
                    per_rank[r] = pending[step.op][r] + deps_for(i, r)
                pending[step.op] = [[] for _ in range(e.R)]
            finals.append(per_rank)
            continue
        finals.append(
            [
                e.part(
                    _part_name(step, tag),
                    r,
                    _count(step, w) * e.unit(step.name),
                    deps_for(i, r),
                    step.name,
                )
                for r, w in enumerate(e.works)
            ]
        )
    return e.graph
