"""Geometric mesh partitioners.

Cells are assigned to ranks by position (their centroid). Two strategies:

- :func:`band_partition` — equal-count bands along one coordinate of an
  ordering key; on the O-mesh, cell ids are already j-major, so banding ids
  yields radial rings (contiguous memory, long thin boundaries);
- :func:`rcb_partition` — recursive coordinate bisection over centroids:
  splits the longest axis at the median, recursively; compact subdomains
  with short boundaries, the standard geometric partitioner.

:func:`partition_quality` reports balance and edge cut, the two quantities a
partition trades off.
"""

from __future__ import annotations

import numpy as np

from repro.airfoil.meshgen import AirfoilMesh
from repro.util.validate import ValidationError


def cell_centroids(mesh: AirfoilMesh) -> np.ndarray:
    """Cell centroids: mean of the four corner nodes."""
    return mesh.x.data[mesh.pcell.values].mean(axis=1)


def band_partition(ncells: int, ranks: int) -> np.ndarray:
    """Contiguous equal-count bands of cell ids; returns rank per cell."""
    if ranks < 1:
        raise ValidationError(f"ranks must be >= 1, got {ranks}")
    if ncells < ranks:
        raise ValidationError(f"{ranks} ranks need at least {ranks} cells")
    bounds = np.linspace(0, ncells, ranks + 1).astype(np.int64)
    owner = np.empty(ncells, dtype=np.int64)
    for r in range(ranks):
        owner[bounds[r] : bounds[r + 1]] = r
    return owner


def rcb_partition(centers: np.ndarray, ranks: int) -> np.ndarray:
    """Recursive coordinate bisection; returns rank per point.

    Ranks need not be a power of two: each split divides the rank range
    (and the point set) proportionally.
    """
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[1] < 2:
        raise ValidationError("centers must be an (n, 2+) array")
    if ranks < 1:
        raise ValidationError(f"ranks must be >= 1, got {ranks}")
    n = centers.shape[0]
    if n < ranks:
        raise ValidationError(f"{ranks} ranks need at least {ranks} points")
    owner = np.zeros(n, dtype=np.int64)

    def split(indices: np.ndarray, lo_rank: int, hi_rank: int) -> None:
        nranks = hi_rank - lo_rank
        if nranks == 1:
            owner[indices] = lo_rank
            return
        left_ranks = nranks // 2
        frac = left_ranks / nranks
        pts = centers[indices]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = np.argsort(pts[:, axis], kind="stable")
        cut = int(round(len(indices) * frac))
        cut = min(max(cut, 1), len(indices) - 1)
        split(indices[order[:cut]], lo_rank, lo_rank + left_ranks)
        split(indices[order[cut:]], lo_rank + left_ranks, hi_rank)

    split(np.arange(n, dtype=np.int64), 0, ranks)
    return owner


def partition_quality(
    owner: np.ndarray, pecell: np.ndarray
) -> dict[str, float]:
    """Balance and edge cut of a cell partition.

    Returns:
        imbalance: max rank size over mean rank size (1.0 = perfect);
        edge_cut: fraction of interior edges whose two cells differ in rank.
    """
    owner = np.asarray(owner)
    counts = np.bincount(owner)
    imbalance = float(counts.max() / counts.mean()) if counts.size else 1.0
    cut = owner[pecell[:, 0]] != owner[pecell[:, 1]]
    edge_cut = float(np.mean(cut)) if len(cut) else 0.0
    return {"imbalance": imbalance, "edge_cut": edge_cut}
