"""Per-rank localization: the owner-compute distribution plan.

Follows OP2's MPI design: cells are partitioned among ranks (owner-compute);
an edge is computed by the owner of its first cell; boundary edges by the
owner of their cell. Cells a rank touches but does not own form its *halo*.
Each rank gets fully renumbered local sets and maps (owned cells first, halo
appended), so the unmodified kernels and gather/scatter machinery run on the
local submesh as-is.

Import/export lists pair up across ranks: rank r's export to s lists the
owned-local indices whose values s stores in its halo, in exactly the order
of s's import list from r.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.airfoil.meshgen import AirfoilMesh
from repro.op2 import OpMap, OpSet
from repro.util.validate import ValidationError


@dataclass
class RankPlan:
    """Everything one rank needs to run locally."""

    rank: int
    #: global ids of owned cells, ascending.
    owned_cells: np.ndarray
    #: global ids of halo cells (owned elsewhere), ascending.
    halo_cells: np.ndarray
    #: global ids of the edges / bedges this rank computes.
    edges: np.ndarray
    bedges: np.ndarray
    #: global ids of the nodes referenced locally.
    nodes: np.ndarray

    #: local sets (cells set covers owned + halo; loops iterate owned only).
    cells_set: OpSet = field(repr=False, default=None)
    owned_set: OpSet = field(repr=False, default=None)
    edges_set: OpSet = field(repr=False, default=None)
    bedges_set: OpSet = field(repr=False, default=None)
    nodes_set: OpSet = field(repr=False, default=None)

    #: renumbered maps (into local cell / node numbering).
    pecell: OpMap = field(repr=False, default=None)
    pedge: OpMap = field(repr=False, default=None)
    pbecell: OpMap = field(repr=False, default=None)
    pbedge: OpMap = field(repr=False, default=None)
    pcell: OpMap = field(repr=False, default=None)

    #: local node coordinates, aligned with ``nodes``.
    x_local: np.ndarray = field(repr=False, default=None)
    #: local bedge boundary tags.
    bound_local: np.ndarray = field(repr=False, default=None)

    #: neighbor rank -> local (owned-region) indices to send, paired with the
    #: neighbor's import order.
    exports: dict[int, np.ndarray] = field(default_factory=dict)
    #: neighbor rank -> local (halo-region) indices to fill on receive.
    imports: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def n_owned(self) -> int:
        return len(self.owned_cells)

    @property
    def n_halo(self) -> int:
        return len(self.halo_cells)

    def neighbors(self) -> list[int]:
        return sorted(set(self.exports) | set(self.imports))


@dataclass
class DistPlan:
    """The complete distribution: one :class:`RankPlan` per rank."""

    ranks: int
    owner: np.ndarray  # rank per global cell
    plans: list[RankPlan]

    def total_halo(self) -> int:
        return sum(p.n_halo for p in self.plans)

    def describe(self) -> str:
        halos = [p.n_halo for p in self.plans]
        return (
            f"{self.ranks} ranks, halo cells per rank "
            f"min/mean/max = {min(halos)}/{np.mean(halos):.0f}/{max(halos)}"
        )


def _local_index_map(global_ids: np.ndarray, size: int) -> np.ndarray:
    """Dense global->local lookup (-1 where absent)."""
    lookup = np.full(size, -1, dtype=np.int64)
    lookup[global_ids] = np.arange(len(global_ids), dtype=np.int64)
    return lookup


def build_dist_plan(mesh: AirfoilMesh, owner: np.ndarray) -> DistPlan:
    """Localize ``mesh`` according to the cell->rank assignment ``owner``."""
    owner = np.asarray(owner, dtype=np.int64)
    if owner.shape != (mesh.cells.size,):
        raise ValidationError(
            f"owner must assign every cell: shape {owner.shape} != "
            f"({mesh.cells.size},)"
        )
    ranks = int(owner.max()) + 1
    if owner.min() < 0:
        raise ValidationError("owner ranks must be >= 0")
    if ranks > mesh.cells.size:
        raise ValidationError(
            f"cannot distribute {mesh.cells.size} cells over {ranks} ranks: "
            "every rank must own at least one cell"
        )

    pecell = mesh.pecell.values
    pbecell = mesh.pbecell.values
    edge_owner = owner[pecell[:, 0]]
    bedge_owner = owner[pbecell[:, 0]]

    plans: list[RankPlan] = []
    for r in range(ranks):
        owned = np.flatnonzero(owner == r).astype(np.int64)
        if owned.size == 0:
            raise ValidationError(f"rank {r} owns no cells; partition degenerate")
        my_edges = np.flatnonzero(edge_owner == r).astype(np.int64)
        my_bedges = np.flatnonzero(bedge_owner == r).astype(np.int64)

        touched = np.unique(pecell[my_edges].ravel())
        halo = touched[owner[touched] != r]
        local_cells = np.concatenate([owned, halo])

        node_refs = [
            mesh.pedge.values[my_edges].ravel(),
            mesh.pbedge.values[my_bedges].ravel(),
            mesh.pcell.values[owned].ravel(),
        ]
        nodes = np.unique(np.concatenate(node_refs))

        cell_lookup = _local_index_map(local_cells, mesh.cells.size)
        node_lookup = _local_index_map(nodes, mesh.nodes.size)

        cells_set = OpSet(f"cells.r{r}", len(local_cells))
        owned_set = OpSet(f"owned_cells.r{r}", len(owned))
        edges_set = OpSet(f"edges.r{r}", len(my_edges))
        bedges_set = OpSet(f"bedges.r{r}", len(my_bedges))
        nodes_set = OpSet(f"nodes.r{r}", len(nodes))

        plans.append(
            RankPlan(
                rank=r,
                owned_cells=owned,
                halo_cells=halo,
                edges=my_edges,
                bedges=my_bedges,
                nodes=nodes,
                cells_set=cells_set,
                owned_set=owned_set,
                edges_set=edges_set,
                bedges_set=bedges_set,
                nodes_set=nodes_set,
                pecell=OpMap(
                    f"pecell.r{r}",
                    edges_set,
                    cells_set,
                    2,
                    cell_lookup[pecell[my_edges]],
                ),
                pedge=OpMap(
                    f"pedge.r{r}",
                    edges_set,
                    nodes_set,
                    2,
                    node_lookup[mesh.pedge.values[my_edges]],
                ),
                pbecell=OpMap(
                    f"pbecell.r{r}",
                    bedges_set,
                    cells_set,
                    1,
                    cell_lookup[pbecell[my_bedges]],
                ),
                pbedge=OpMap(
                    f"pbedge.r{r}",
                    bedges_set,
                    nodes_set,
                    2,
                    node_lookup[mesh.pbedge.values[my_bedges]],
                ),
                pcell=OpMap(
                    f"pcell.r{r}",
                    owned_set,
                    nodes_set,
                    4,
                    node_lookup[mesh.pcell.values[owned]],
                ),
                x_local=mesh.x.data[nodes].copy(),
                bound_local=mesh.bound.data[my_bedges].copy(),
            )
        )

    # Import/export pairing: rank s imports its halo cells from their owners,
    # in s's halo order; the owner's export list mirrors that exact order.
    for s, plan in enumerate(plans):
        halo_owner = owner[plan.halo_cells]
        for r in np.unique(halo_owner):
            r = int(r)
            wanted = plan.halo_cells[halo_owner == r]  # global ids, s's order
            # s-side: positions in the halo region (offset by n_owned).
            halo_pos = np.flatnonzero(np.isin(plan.halo_cells, wanted))
            plan.imports[r] = plan.n_owned + halo_pos
            # r-side: local owned indices of those globals, same order.
            r_lookup = _local_index_map(plans[r].owned_cells, mesh.cells.size)
            plans[r].exports[s] = r_lookup[wanted]
            if np.any(plans[r].exports[s] < 0):  # pragma: no cover - invariant
                raise ValidationError("export refers to non-owned cell")

    return DistPlan(ranks=ranks, owner=owner, plans=plans)
