"""The HPX runtime façade: executor ownership and ``async_``.

A :class:`HPXRuntime` owns a :class:`~repro.hpx.executor.TaskExecutor`
configured for a number of (logical) OS threads. A module-level current
runtime makes the ``hpx.async_(...)`` / ``hpx.for_each(...)`` free functions
ergonomic, mirroring how HPX applications use a process-global runtime.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from typing import Any, Iterator

from repro.hpx.executor import TaskExecutor
from repro.hpx.future import Future
from repro.util.validate import check_positive


class HPXRuntime:
    """Owns the task executor and exposes runtime-wide configuration."""

    def __init__(self, num_threads: int = 4) -> None:
        check_positive("num_threads", num_threads)
        self.num_threads = int(num_threads)
        self.executor = TaskExecutor(self.num_threads)

    def async_(self, fn: Callable[..., Any], *args: Any, name: str = "") -> Future:
        """``hpx::async``: schedule ``fn(*args)``, return its future (Fig 8)."""
        return self.executor.submit(fn, *args, name=name)

    def run(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn`` to completion on the runtime and drain stragglers."""
        result = self.async_(fn, *args).get()
        self.executor.drain()
        return result

    @property
    def stats(self):
        return self.executor.stats

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HPXRuntime threads={self.num_threads}>"


_current: HPXRuntime | None = None


def get_runtime() -> HPXRuntime:
    """Return the current runtime, creating a default 4-thread one lazily."""
    global _current
    if _current is None:
        _current = HPXRuntime()
    return _current


def set_runtime(runtime: HPXRuntime | None) -> HPXRuntime | None:
    """Install ``runtime`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = runtime
    return previous


@contextmanager
def runtime_scope(num_threads: int) -> Iterator[HPXRuntime]:
    """Context manager installing a fresh runtime for a code block."""
    rt = HPXRuntime(num_threads)
    previous = set_runtime(rt)
    try:
        yield rt
    finally:
        set_runtime(previous)


def async_(fn: Callable[..., Any], *args: Any, name: str = "") -> Future:
    """Free-function ``hpx::async`` against the current runtime."""
    return get_runtime().async_(fn, *args, name=name)
