"""The cooperative work-stealing task executor.

Models HPX's thread-pool scheduler: ``num_workers`` logical workers each own a
double-ended task queue; a worker pops from the back of its own queue (LIFO,
cache-friendly in the real runtime) and steals from the front of a victim's
queue when its own is empty (FIFO, steals the oldest/largest work first).

All workers are multiplexed on the calling OS thread in round-robin order —
one task step per worker per round — which gives a deterministic interleaving
that mimics parallel progress. Counters (:class:`ExecutorStats`) expose
spawn/steal/execution behaviour for tests and for the simulator's calibration.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.hpx.future import Future, FutureError
from repro.util.validate import check_positive


@dataclass
class ExecutorStats:
    """Counters describing scheduler activity since construction/reset."""

    tasks_spawned: int = 0
    tasks_executed: int = 0
    steals: int = 0
    failed_steals: int = 0
    rounds: int = 0
    max_queue_depth: int = 0
    per_worker_executed: list[int] = field(default_factory=list)

    def reset(self, num_workers: int) -> None:
        self.tasks_spawned = 0
        self.tasks_executed = 0
        self.steals = 0
        self.failed_steals = 0
        self.rounds = 0
        self.max_queue_depth = 0
        self.per_worker_executed = [0] * num_workers


@dataclass
class _Task:
    fn: Callable[[], Any]
    future: Future | None
    name: str


class TaskExecutor:
    """Deterministic cooperative executor with per-worker queues and stealing."""

    def __init__(self, num_workers: int = 4) -> None:
        check_positive("num_workers", num_workers)
        self.num_workers = int(num_workers)
        self._queues: list[deque[_Task]] = [deque() for _ in range(self.num_workers)]
        self._next_worker = 0
        self._running = False
        self.stats = ExecutorStats()
        self.stats.reset(self.num_workers)

    # -- submission ---------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any, name: str = "", worker: int | None = None) -> Future:
        """Schedule ``fn(*args)`` and return the future of its result."""
        future = Future(self, name=name or getattr(fn, "__name__", "task"))

        def run() -> Any:
            return fn(*args)

        self._enqueue(_Task(run, future, future.name), worker)
        return future

    def post(self, fn: Callable[[], None], name: str = "", worker: int | None = None) -> None:
        """Schedule fire-and-forget work (continuations); no future."""
        self._enqueue(_Task(fn, None, name or "post"), worker)

    def _enqueue(self, task: _Task, worker: int | None) -> None:
        if worker is None:
            worker = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.num_workers
        else:
            worker %= self.num_workers
        self._queues[worker].append(task)
        self.stats.tasks_spawned += 1
        depth = len(self._queues[worker])
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth

    # -- execution ----------------------------------------------------------

    def _take(self, worker: int) -> _Task | None:
        """Own-queue LIFO pop; otherwise steal FIFO from the nearest victim."""
        own = self._queues[worker]
        if own:
            return own.pop()
        for offset in range(1, self.num_workers):
            victim = (worker + offset) % self.num_workers
            q = self._queues[victim]
            if q:
                self.stats.steals += 1
                return q.popleft()
        self.stats.failed_steals += 1
        return None

    def _step(self, worker: int) -> bool:
        """Run one task on ``worker``. Returns False if no work anywhere."""
        task = self._take(worker)
        if task is None:
            return False
        self.stats.tasks_executed += 1
        self.stats.per_worker_executed[worker] += 1
        if task.future is None:
            task.fn()
            return True
        try:
            result = task.fn()
        except BaseException as exc:  # noqa: BLE001 - stored in the future
            task.future.set_exception(exc)
        else:
            task.future.set_value(result)
        return True

    def pending(self) -> int:
        """Number of queued (not yet executed) tasks."""
        return sum(len(q) for q in self._queues)

    def run_until(self, predicate: Callable[[], bool]) -> None:
        """Drive workers round-robin until ``predicate()`` becomes true.

        Raises :class:`FutureError` if the queues drain while the predicate is
        still false — the awaited value could then never be produced.
        """
        guard = 0
        while not predicate():
            progressed = False
            for worker in range(self.num_workers):
                if predicate():
                    return
                progressed |= self._step(worker)
            self.stats.rounds += 1
            if not progressed:
                raise FutureError(
                    "executor ran out of work while waiting; deadlock or "
                    "missing producer"
                )
            guard += 1
            if guard > 100_000_000:  # pragma: no cover - safety net
                raise FutureError("executor livelock guard tripped")

    def drain(self) -> None:
        """Run until every queue is empty (including newly spawned work)."""
        while self.pending():
            self.run_until(lambda: self.pending() == 0)

    def cancel_pending(self) -> int:
        """Discard every queued task without running it; returns the count.

        Error-path cleanup: when a session body raises, its queued loop tasks
        must not linger and silently execute inside whatever session next
        drives this executor. Orphaned futures are failed with
        :class:`FutureError` so any surviving ``get()`` raises instead of
        deadlocking; continuations fired by those failures are discarded too.
        """
        cancelled = 0
        while self.pending():
            for q in self._queues:
                while q:
                    task = q.popleft()
                    cancelled += 1
                    if task.future is not None and not task.future.is_ready():
                        task.future.set_exception(
                            FutureError(f"task {task.name!r} cancelled by session abort")
                        )
        return cancelled

    def reset_stats(self) -> None:
        self.stats.reset(self.num_workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TaskExecutor workers={self.num_workers} pending={self.pending()}>"
