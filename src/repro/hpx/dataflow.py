"""``dataflow``: delayed invocation until all future arguments are ready.

A dataflow object encapsulates a function ``F(in_1, ..., in_n)``; as soon as
the last future input has been received, ``F`` is scheduled for execution
(paper Fig 11). Non-future arguments pass straight through; ``unwrapped``
replaces each future argument with its value before calling the wrapped
function (paper Fig 12).

Chaining dataflow calls builds the implicit execution tree the paper credits
for the 21% scaling win: only genuine data dependencies order execution.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.hpx.future import Future, when_all
from repro.hpx.runtime import get_runtime


class _Unwrapped:
    """Marker wrapper produced by :func:`unwrapped`."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    @property
    def __name__(self) -> str:
        return getattr(self.fn, "__name__", "unwrapped")

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)


def unwrapped(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark ``fn`` so :func:`dataflow` passes future *values*, not futures."""
    return _Unwrapped(fn)


def dataflow(fn: Callable[..., Any], *args: Any, name: str = "") -> Future:
    """Schedule ``fn(*args)`` once every :class:`Future` in ``args`` is ready.

    Returns the future of ``fn``'s result. If ``fn`` itself returns a future,
    the result future is satisfied with that future's value once *it* becomes
    ready (one level of automatic unwrapping, as HPX does).
    """
    runtime = get_runtime()
    executor = runtime.executor
    label = name or f"dataflow.{getattr(fn, '__name__', 'fn')}"

    future_args = [a for a in args if isinstance(a, Future)]
    out = Future(executor, name=label)

    def invoke(_: Any) -> None:
        # Re-raise the first failed dependency into the result.
        for fa in future_args:
            if fa.has_exception():
                out.set_exception(fa._error)  # type: ignore[arg-type]
                return

        if isinstance(fn, _Unwrapped):
            call_args = [a.get() if isinstance(a, Future) else a for a in args]
        else:
            call_args = list(args)

        def run() -> None:
            try:
                result = fn(*call_args)
            except BaseException as exc:  # noqa: BLE001 - stored in the future
                out.set_exception(exc)
                return
            if isinstance(result, Future):
                def forward(f: Future) -> None:
                    if f.has_exception():
                        out.set_exception(f._error)  # type: ignore[arg-type]
                    else:
                        out.set_value(f._value)
                result._on_ready(forward)
            else:
                out.set_value(result)

        executor.post(run, name=label)

    gate = when_all(future_args, executor)
    gate._on_ready(invoke)
    return out
