"""Cooperative synchronization primitives: latch, barrier, counting semaphore.

These are the LCOs (local control objects) HPX builds its higher-level
algorithms on. They cooperate with the executor: a ``wait`` drives pending
tasks rather than blocking the OS thread, so producers can still run.
"""

from __future__ import annotations

from repro.hpx.runtime import get_runtime
from repro.util.validate import ReproError, check_positive


class SyncError(ReproError):
    """Misuse of a synchronization primitive."""


class Latch:
    """Single-use countdown latch: ``wait`` returns once count hits zero."""

    def __init__(self, count: int) -> None:
        check_positive("latch count", count, strict=False)
        self._count = int(count)

    @property
    def count(self) -> int:
        return self._count

    def count_down(self, n: int = 1) -> None:
        check_positive("count_down", n)
        if n > self._count:
            raise SyncError(f"latch over-released: {n} > {self._count}")
        self._count -= n

    def is_ready(self) -> bool:
        return self._count == 0

    def wait(self) -> None:
        get_runtime().executor.run_until(self.is_ready)

    def arrive_and_wait(self) -> None:
        self.count_down()
        self.wait()


class Barrier:
    """Reusable rendezvous for a fixed number of cooperating tasks.

    Cooperative flavor: arrivals are explicit (:meth:`arrive`); a waiter
    drives the executor until the current generation completes.
    """

    def __init__(self, parties: int) -> None:
        check_positive("barrier parties", parties)
        self.parties = int(parties)
        self._arrived = 0
        self._generation = 0

    def arrive(self) -> int:
        """Register one arrival; returns the generation being completed."""
        self._arrived += 1
        gen = self._generation
        if self._arrived == self.parties:
            self._arrived = 0
            self._generation += 1
        elif self._arrived > self.parties:
            raise SyncError("more arrivals than barrier parties")
        return gen

    def wait(self, generation: int) -> None:
        """Drive the executor until ``generation`` has fully completed."""
        get_runtime().executor.run_until(lambda: self._generation > generation)

    def arrive_and_wait(self) -> None:
        gen = self.arrive()
        if self._generation <= gen:
            self.wait(gen)


class CountingSemaphore:
    """Counting semaphore with cooperative acquire."""

    def __init__(self, initial: int = 0) -> None:
        check_positive("semaphore initial", initial, strict=False)
        self._value = int(initial)

    @property
    def value(self) -> int:
        return self._value

    def release(self, n: int = 1) -> None:
        check_positive("release", n)
        self._value += n

    def try_acquire(self, n: int = 1) -> bool:
        check_positive("acquire", n)
        if self._value >= n:
            self._value -= n
            return True
        return False

    def acquire(self, n: int = 1) -> None:
        check_positive("acquire", n)
        get_runtime().executor.run_until(lambda: self._value >= n)
        self._value -= n
