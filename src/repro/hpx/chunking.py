"""Chunkers: how an iteration space is split into tasks.

Mirrors HPX's chunk-size machinery (paper §III-A1):

- :class:`AutoPartitioner` — HPX's default ``auto_partitioner``: sequentially
  executes ~1% of the loop to estimate per-iteration cost, then picks a chunk
  size targeting a fixed number of chunks per worker. The serial prefix is the
  scalability liability the paper calls out for large loops (Fig 16).
- :class:`StaticChunkSize` — ``hpx::execution::static_chunk_size(n)``; fixed
  grain, no measurement prefix (paper Fig 7).
- :class:`DynamicChunkSize` — fixed grain but handed out on demand
  (self-scheduling); identical decomposition, different scheduling hint.
- :class:`GuessChunkSize` — divide evenly, one chunk per worker per round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

from repro.util.validate import ValidationError, check_positive

#: Chunks-per-worker target used by the auto partitioner after measuring.
CHUNKS_PER_WORKER = 4

#: Fraction of the iteration space the auto partitioner executes serially.
MEASURE_FRACTION = 0.01


@dataclass(frozen=True)
class Chunk:
    """A contiguous ``[start, stop)`` slice of the iteration space."""

    start: int
    stop: int
    #: True when the chunk was executed inline as a measurement prefix.
    serial_prefix: bool = False

    def __len__(self) -> int:
        return self.stop - self.start


class Chunker(ABC):
    """Strategy object that splits ``n`` iterations for ``num_workers``."""

    #: Whether chunks should be handed out on demand (self-scheduling) rather
    #: than pre-assigned. Only a scheduling hint; decomposition is identical.
    dynamic: bool = False

    @abstractmethod
    def chunks(self, n: int, num_workers: int) -> list[Chunk]:
        """Split ``range(n)`` into chunks. Must exactly cover the range."""

    def split(
        self,
        n: int,
        num_workers: int,
        measure: Callable[[Chunk], float] | None = None,
    ) -> list[Chunk]:
        """Chunk ``range(n)``, running measurement prefixes through ``measure``.

        ``measure(chunk)`` must *execute* the chunk inline and return its
        wall-clock cost in seconds; measuring chunkers (the auto partitioner)
        use the per-iteration cost to size the remaining chunks, everything
        else ignores it. Any returned ``serial_prefix`` chunk has therefore
        already been executed by ``measure`` — callers must not run it again.
        """
        return self.chunks(n, num_workers)

    def describe(self) -> str:
        return type(self).__name__


def _split_fixed(start: int, n: int, size: int) -> list[Chunk]:
    """Split ``[start, n)`` into chunks of ``size`` (last may be short)."""
    return [Chunk(i, min(i + size, n)) for i in range(start, n, size)]


class StaticChunkSize(Chunker):
    """Fixed chunk size chosen by the programmer before loop execution."""

    def __init__(self, size: int) -> None:
        check_positive("chunk size", size)
        self.size = int(size)

    def chunks(self, n: int, num_workers: int) -> list[Chunk]:
        if n < 0:
            raise ValidationError(f"iteration count must be >= 0, got {n}")
        return _split_fixed(0, n, self.size)

    def describe(self) -> str:
        return f"static_chunk_size({self.size})"


class DynamicChunkSize(StaticChunkSize):
    """Fixed grain handed out on demand (OpenMP ``schedule(dynamic)`` flavor)."""

    dynamic = True

    def describe(self) -> str:
        return f"dynamic_chunk_size({self.size})"


class GuessChunkSize(Chunker):
    """Even split: ceil(n / workers) per chunk, one chunk per worker."""

    def chunks(self, n: int, num_workers: int) -> list[Chunk]:
        if n < 0:
            raise ValidationError(f"iteration count must be >= 0, got {n}")
        if n == 0:
            return []
        check_positive("num_workers", num_workers)
        size = -(-n // num_workers)  # ceil division
        return _split_fixed(0, n, size)


class AutoPartitioner(Chunker):
    """HPX's auto partitioner: measure ~1% serially, then chunk the rest.

    The first ``max(1, round(n * measure_fraction))`` iterations are marked
    as a *serial prefix* chunk. Via :meth:`split`, the caller executes (and
    times) that chunk inline, and the measured per-iteration cost sizes the
    remaining chunks: ``min_chunk_seconds`` imposes an HPX-style minimum
    amount of work per chunk, and ``cost_probe`` — a hook receiving the
    *measured* cost — may override the size outright (the simulator uses it
    to model cost-aware grain selection without wall-clock nondeterminism).

    The unmeasured :meth:`chunks` path has no per-iteration cost, so neither
    knob applies there: it always produces the deterministic
    chunks-per-worker decomposition. (It used to feed the probe a fabricated
    cost of ``1.0``, which silently divorced the partitioner from its own
    measurement; the probe now only ever sees real data.)
    """

    def __init__(
        self,
        measure_fraction: float = MEASURE_FRACTION,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        cost_probe: Callable[[float], int] | None = None,
        min_chunk_seconds: float = 0.0,
    ) -> None:
        if not 0.0 < measure_fraction < 1.0:
            raise ValidationError(
                f"measure_fraction must be in (0, 1), got {measure_fraction}"
            )
        check_positive("chunks_per_worker", chunks_per_worker)
        if min_chunk_seconds < 0.0:
            raise ValidationError(
                f"min_chunk_seconds must be >= 0, got {min_chunk_seconds}"
            )
        self.measure_fraction = measure_fraction
        self.chunks_per_worker = int(chunks_per_worker)
        self.cost_probe = cost_probe
        #: chunks are grown until one holds at least this much measured work.
        #: 0.0 (the default) keeps the decomposition independent of the
        #: measurement, which bit-deterministic runs rely on.
        self.min_chunk_seconds = float(min_chunk_seconds)

    def prefix_length(self, n: int) -> int:
        """Number of iterations executed serially for measurement."""
        if n <= 1:
            return n
        return max(1, round(n * self.measure_fraction))

    def _body_chunks(
        self, prefix: int, n: int, num_workers: int, cost: float | None
    ) -> list[Chunk]:
        """Size the post-prefix chunks; ``cost`` is seconds per iteration."""
        rest = n - prefix
        target_chunks = self.chunks_per_worker * num_workers
        size = max(1, -(-rest // target_chunks))
        if cost is not None and cost > 0.0 and self.min_chunk_seconds > 0.0:
            floor = -(-self.min_chunk_seconds // cost)
            size = max(size, int(floor))
        if self.cost_probe is not None and cost is not None:
            override = int(self.cost_probe(cost))
            if override > 0:
                size = override
        return _split_fixed(prefix, n, size)

    def chunks(self, n: int, num_workers: int) -> list[Chunk]:
        if n < 0:
            raise ValidationError(f"iteration count must be >= 0, got {n}")
        if n == 0:
            return []
        check_positive("num_workers", num_workers)
        prefix = self.prefix_length(n)
        out = [Chunk(0, prefix, serial_prefix=True)]
        if n - prefix:
            out.extend(self._body_chunks(prefix, n, num_workers, None))
        return out

    def split(
        self,
        n: int,
        num_workers: int,
        measure: Callable[[Chunk], float] | None = None,
    ) -> list[Chunk]:
        if measure is None:
            return self.chunks(n, num_workers)
        if n < 0:
            raise ValidationError(f"iteration count must be >= 0, got {n}")
        if n == 0:
            return []
        check_positive("num_workers", num_workers)
        prefix_len = self.prefix_length(n)
        prefix = Chunk(0, prefix_len, serial_prefix=True)
        elapsed = float(measure(prefix))
        cost = elapsed / max(1, prefix_len)
        out = [prefix]
        if n - prefix_len:
            out.extend(self._body_chunks(prefix_len, n, num_workers, cost))
        return out

    def describe(self) -> str:
        return f"auto_partitioner({self.measure_fraction:g})"


def validate_cover(chunks: list[Chunk], n: int) -> None:
    """Raise unless ``chunks`` exactly tile ``range(n)`` in order."""
    pos = 0
    for c in chunks:
        if c.start != pos or c.stop < c.start:
            raise ValidationError(f"chunks do not tile range({n}): {chunks!r}")
        pos = c.stop
    if pos != n:
        raise ValidationError(f"chunks cover [0, {pos}), expected [0, {n})")
