"""Futures: asynchronous results with continuations.

A :class:`Future` is a computational result that is initially unknown but
becomes available at a later time (paper §II-B). ``future.get()`` suspends the
*caller* only; other tasks keep making progress because ``get`` drives the
executor's scheduling loop until the value arrives — exactly the behaviour of
Fig 3 in the paper, transplanted onto a cooperative executor.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TYPE_CHECKING

from repro.util.validate import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hpx.executor import TaskExecutor


class FutureError(ReproError):
    """Misuse of a future (double set, get without executor, ...)."""


class _State(enum.Enum):
    PENDING = "pending"
    READY = "ready"
    FAILED = "failed"


class Future:
    """A single-assignment asynchronous value.

    Futures are created by the executor (``async_``, ``par(task)`` algorithms,
    ``dataflow``) or explicitly via :func:`make_ready_future`. Continuations
    attached with :meth:`then` run on the executor once the value is set.
    """

    __slots__ = (
        "_state", "_value", "_error", "_callbacks", "_executor", "name", "loop_id",
    )

    def __init__(self, executor: "TaskExecutor | None" = None, name: str = "") -> None:
        self._state = _State.PENDING
        self._value: Any = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[[Future], None]] = []
        self._executor = executor
        self.name = name
        #: op_par_loop id when this future is a loop result (set by the OP2
        #: runtime). Stored on the future itself — an id()-keyed side table
        #: breaks when CPython reuses a collected future's address.
        self.loop_id: int | None = None

    # -- inspection ---------------------------------------------------------

    def is_ready(self) -> bool:
        """True once a value or an exception has been stored."""
        return self._state is not _State.PENDING

    def has_exception(self) -> bool:
        return self._state is _State.FAILED

    # -- production ---------------------------------------------------------

    def set_value(self, value: Any) -> None:
        """Store the result and fire continuations. Single assignment."""
        if self._state is not _State.PENDING:
            raise FutureError(f"future {self.name or id(self)} already satisfied")
        self._state = _State.READY
        self._value = value
        self._fire()

    def set_exception(self, error: BaseException) -> None:
        """Store an exception; ``get`` will re-raise it."""
        if self._state is not _State.PENDING:
            raise FutureError(f"future {self.name or id(self)} already satisfied")
        self._state = _State.FAILED
        self._error = error
        self._fire()

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    # -- consumption --------------------------------------------------------

    def get(self) -> Any:
        """Block (cooperatively) until the value is available and return it.

        Only the calling task is suspended: pending tasks continue to run on
        the executor while we wait, which is the barrier-elimination property
        the paper relies on.
        """
        if self._state is _State.PENDING:
            if self._executor is None:
                raise FutureError(
                    "future has no executor to drive; it can never become ready"
                )
            self._executor.run_until(self.is_ready)
        if self._state is _State.FAILED:
            assert self._error is not None
            raise self._error
        return self._value

    def _on_ready(self, cb: Callable[["Future"], None]) -> None:
        """Internal: call ``cb(self)`` now if ready, else once satisfied."""
        if self.is_ready():
            cb(self)
        else:
            self._callbacks.append(cb)

    def then(self, fn: Callable[[Any], Any], name: str = "") -> "Future":
        """Attach a continuation; returns the future of ``fn(value)``.

        If this future fails, the continuation future fails with the same
        exception without invoking ``fn``.
        """
        if self._executor is None:
            raise FutureError("continuations require an executor-bound future")
        executor = self._executor
        out = Future(executor, name=name or f"{self.name}.then")

        def ready(f: Future) -> None:
            if f.has_exception():
                out.set_exception(f._error)  # type: ignore[arg-type]
                return

            def run() -> None:
                try:
                    out.set_value(fn(f._value))
                except BaseException as exc:  # noqa: BLE001 - forwarded to future
                    out.set_exception(exc)

            executor.post(run, name=out.name)

        self._on_ready(ready)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or hex(id(self))
        return f"<Future {label} {self._state.value}>"


def make_ready_future(value: Any = None, executor: "TaskExecutor | None" = None) -> Future:
    """A future that is already satisfied with ``value``."""
    f = Future(executor, name="ready")
    f.set_value(value)
    return f


def when_all(futures: Iterable[Future], executor: "TaskExecutor | None" = None) -> Future:
    """A future of the list of all input values, ready when every input is.

    The result preserves input order. If any input fails, the combined future
    fails with the *first* (by input order) exception.
    """
    futs: Sequence[Future] = list(futures)
    if executor is None:
        for f in futs:
            if f._executor is not None:
                executor = f._executor
                break
    out = Future(executor, name="when_all")
    if not futs:
        out.set_value([])
        return out
    remaining = len(futs)

    def one_ready(_: Future) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            for f in futs:
                if f.has_exception():
                    out.set_exception(f._error)  # type: ignore[arg-type]
                    return
            out.set_value([f._value for f in futs])

    for f in futs:
        f._on_ready(one_ready)
    return out
