"""An HPX-like asynchronous many-task runtime, in Python.

This subpackage mirrors the slice of HPX used by the paper:

- :class:`~repro.hpx.future.Future` / :func:`~repro.hpx.future.when_all` —
  the asynchronous result primitive (paper §II-B, Fig 3).
- :func:`~repro.hpx.runtime.async_` — asynchronous function invocation
  returning a future (paper Fig 8).
- :func:`~repro.hpx.dataflow.dataflow` — delayed invocation until all future
  arguments are ready (paper §III-B, Figs 11–12).
- :mod:`~repro.hpx.parallel` — ``for_each``-style parallel algorithms with
  execution policies ``seq`` / ``par`` / ``par(task)`` (paper §III-A).
- :mod:`~repro.hpx.chunking` — HPX's auto-partitioner and static chunk sizes
  (paper Figs 6–7).

Execution is cooperative: the executor multiplexes logical worker queues on
the calling OS thread (CPython's GIL makes real thread scaling meaningless for
pure-Python tasks). The *scheduling structure* — who waits on what, when
barriers happen, how work is stolen — is identical to the real runtime and is
what the paper's claims are about; timing behaviour is replayed on the
discrete-event machine model in :mod:`repro.sim`.
"""

from repro.hpx.future import Future, FutureError, make_ready_future, when_all
from repro.hpx.executor import TaskExecutor, ExecutorStats
from repro.hpx.policies import ExecutionPolicy, seq, par, par_task
from repro.hpx.chunking import (
    AutoPartitioner,
    StaticChunkSize,
    DynamicChunkSize,
    GuessChunkSize,
)
from repro.hpx.parallel import for_each, for_loop, transform, reduce_
from repro.hpx.dataflow import dataflow, unwrapped
from repro.hpx.runtime import HPXRuntime, async_, get_runtime, set_runtime
from repro.hpx.sync import Latch, Barrier, CountingSemaphore

__all__ = [
    "Future",
    "FutureError",
    "make_ready_future",
    "when_all",
    "TaskExecutor",
    "ExecutorStats",
    "ExecutionPolicy",
    "seq",
    "par",
    "par_task",
    "AutoPartitioner",
    "StaticChunkSize",
    "DynamicChunkSize",
    "GuessChunkSize",
    "for_each",
    "for_loop",
    "transform",
    "reduce_",
    "dataflow",
    "unwrapped",
    "HPXRuntime",
    "async_",
    "get_runtime",
    "set_runtime",
    "Latch",
    "Barrier",
    "CountingSemaphore",
]
