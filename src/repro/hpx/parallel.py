"""Parallel algorithms: ``for_each``, ``for_loop``, ``transform``, ``reduce_``.

These mirror ``hpx::parallel`` algorithms over integer ranges (the form OP2's
generated loops use — Fig 6 of the paper iterates over ``irange(0, nblocks)``).

Policy semantics:

- ``seq``: run inline on the caller, return ``None``.
- ``par``: decompose via the policy's chunker, run chunks as executor tasks,
  join before returning (fork-join; the end-of-loop barrier the paper blames
  for lost scalability). An :class:`~repro.hpx.chunking.AutoPartitioner`
  prefix chunk is executed inline *before* the parallel chunks are spawned,
  matching HPX's measurement pass.
- ``par(task)``: same decomposition, but return a
  :class:`~repro.hpx.future.Future` that becomes ready when every chunk has
  run — the caller proceeds immediately (paper §III-A2).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, TypeVar

from repro.hpx.chunking import Chunk, validate_cover
from repro.hpx.future import Future, make_ready_future, when_all
from repro.hpx.policies import ExecutionPolicy
from repro.hpx.runtime import get_runtime

T = TypeVar("T")


def _run_chunk(body: Callable[[int], None], chunk: Chunk) -> None:
    for i in range(chunk.start, chunk.stop):
        body(i)


def for_loop(
    policy: ExecutionPolicy,
    start: int,
    stop: int,
    body: Callable[[int], None],
) -> Future | None:
    """Apply ``body(i)`` for ``i`` in ``[start, stop)`` under ``policy``."""
    n = max(0, stop - start)

    def shifted(i: int) -> None:
        body(start + i)

    return _for_each_range(policy, n, shifted)


def for_each(
    policy: ExecutionPolicy,
    iterable: range | list | tuple,
    body: Callable[[Any], None],
) -> Future | None:
    """``hpx::parallel::for_each`` over a sized sequence."""
    items = iterable if isinstance(iterable, (list, tuple, range)) else list(iterable)

    def apply(i: int) -> None:
        body(items[i])

    return _for_each_range(policy, len(items), apply)


def _for_each_range(
    policy: ExecutionPolicy, n: int, body: Callable[[int], None]
) -> Future | None:
    runtime = get_runtime()
    executor = runtime.executor

    if not policy.parallel:
        for i in range(n):
            body(i)
        return make_ready_future(None, executor) if policy.task else None

    chunker = policy.effective_chunker()
    chunks = chunker.chunks(n, runtime.num_threads)
    validate_cover(chunks, n)

    # Execute any measurement prefix inline, as HPX's auto partitioner does.
    parallel_chunks: list[Chunk] = []
    for chunk in chunks:
        if chunk.serial_prefix:
            _run_chunk(body, chunk)
        else:
            parallel_chunks.append(chunk)

    futures = [
        executor.submit(_run_chunk, body, chunk, name=f"chunk[{chunk.start}:{chunk.stop}]")
        for chunk in parallel_chunks
    ]
    joined = when_all(futures, executor).then(lambda _: None, name="for_each.join")

    if policy.task:
        return joined
    joined.get()  # fork-join barrier: wait for every chunk
    return None


def transform(
    policy: ExecutionPolicy,
    items: list[T],
    fn: Callable[[T], Any],
) -> list[Any] | Future:
    """Parallel map into a fresh list (order preserved)."""
    out: list[Any] = [None] * len(items)

    def body(i: int) -> None:
        out[i] = fn(items[i])

    result = _for_each_range(policy, len(items), body)
    if policy.task:
        assert isinstance(result, Future)
        return result.then(lambda _: out, name="transform.collect")
    return out


def reduce_(
    policy: ExecutionPolicy,
    items: list[T],
    op: Callable[[Any, Any], Any],
    init: Any,
) -> Any | Future:
    """Parallel reduction. ``op`` must be associative.

    Chunk-local partials are combined in chunk order, so for associative but
    non-commutative ``op`` the result still matches the sequential fold.
    """
    runtime = get_runtime()
    executor = runtime.executor

    if not policy.parallel:
        acc = init
        for item in items:
            acc = op(acc, item)
        return make_ready_future(acc, executor) if policy.task else acc

    chunker = policy.effective_chunker()
    chunks = chunker.chunks(len(items), runtime.num_threads)
    validate_cover(chunks, len(items))

    def fold(chunk: Chunk) -> Any:
        it = iter(range(chunk.start, chunk.stop))
        first = next(it)
        acc = items[first]
        for i in it:
            acc = op(acc, items[i])
        return acc

    partial_futures = []
    inline_partials: list[tuple[int, Any]] = []
    for order, chunk in enumerate(chunks):
        if len(chunk) == 0:
            continue
        if chunk.serial_prefix:
            inline_partials.append((order, fold(chunk)))
        else:
            partial_futures.append((order, executor.submit(fold, chunk, name="reduce.chunk")))

    def combine(values: list[Any]) -> Any:
        ordered = sorted(
            inline_partials + list(zip([o for o, _ in partial_futures], values))
        )
        acc = init
        for _, partial in ordered:
            acc = op(acc, partial)
        return acc

    combined = when_all([f for _, f in partial_futures], executor).then(
        combine, name="reduce.combine"
    )
    if policy.task:
        return combined
    return combined.get()
