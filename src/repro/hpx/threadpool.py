"""Real OS-thread pool used by the ``threads`` execution mode.

This is the measured counterpart of the cooperative
:class:`~repro.hpx.executor.TaskExecutor`: same submit/join vocabulary, but
tasks run on a ``concurrent.futures.ThreadPoolExecutor`` so wall-clock
behaviour reflects the actual hardware. Numpy's batch kernels release the GIL
for their inner loops, which is what makes chunked parallel loops scale on
multicore hosts.

Two scheduling primitives are offered:

- :meth:`ThreadPoolEngine.run_batch` — the fork-join primitive: submit a
  batch, join it in submission order. One batch per color class is the
  OpenMP/``for_each`` execution shape.
- :meth:`ThreadPoolEngine.submit_after` — the dependency primitive behind
  the async/dataflow backends' measured mode: a task is *released* to the
  pool the moment its predecessor tasks complete, with no global join
  anywhere. Whichever thread finishes the last predecessor performs the
  release, so consumer chunks start while unrelated producer chunks are
  still running — the paper's barrier elimination, on real threads.

Determinism contract: joins (:meth:`ThreadPoolEngine.wait_all`) always
return results in *submission* order, never completion order — callers
combine floating-point partials (global MIN/MAX/INC reductions) in a fixed
order, so repeated runs with the same worker count are bit-identical.
Dependency-released tasks preserve the same property as long as every pair
of conflicting tasks is ordered by a dependency edge (the scheduler's job).

Observability: attaching a :class:`~repro.obs.recorder.TraceRecorder` to
:attr:`ThreadPoolEngine.recorder` makes every pool task report a worker-side
timed span, every dependency release a ``release`` marker, and every join a
``wait`` span; with no recorder attached the execution path is unchanged.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.hpx.future import Future
from repro.util.validate import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import TraceRecorder


# PoolTask lifecycle. WAITING tasks have unfinished dependencies; RELEASED
# tasks are queued on (or running inline off) the executor; terminal states
# are DONE / FAILED / CANCELLED.
_WAITING = 0
_RELEASED = 1
_RUNNING = 2
_DONE = 3
_FAILED = 4
_CANCELLED = 5

_TERMINAL = (_DONE, _FAILED, _CANCELLED)


class TaskCancelled(RuntimeError):
    """Raised when waiting on a task discarded by :meth:`ThreadPoolEngine.cancel_all`."""


@dataclass
class PoolStats:
    """Counters describing pool activity since construction/reset.

    ``joins`` counts pool-level waits (``run_batch`` / ``wait_all`` /
    ``wait_for``): every point where the orchestrating thread blocked on
    worker completion. ``color_joins`` is the subset that implements a
    per-color fork-join barrier — the overhead the dependency-scheduled
    backends exist to eliminate, so tests assert on the difference.
    """

    tasks_submitted: int = 0
    tasks_failed: int = 0
    batches: int = 0
    max_batch_width: int = 0
    joins: int = 0
    color_joins: int = 0
    tasks_cancelled: int = 0

    def reset(self) -> None:
        self.tasks_submitted = 0
        self.tasks_failed = 0
        self.batches = 0
        self.max_batch_width = 0
        self.joins = 0
        self.color_joins = 0
        self.tasks_cancelled = 0


def chain_errors(errors: Sequence[BaseException]) -> BaseException:
    """Link every secondary error onto the first one's ``__context__`` chain.

    A multi-worker batch can fail on several tasks at once; re-raising only
    the first would silently discard the rest. Appending the others to the
    implicit-context chain keeps the caller-visible exception type unchanged
    while tracebacks (and ``raise ... from`` tooling) show every failure.
    Already-linked or duplicate exception objects are skipped so the chain
    can never cycle.
    """
    first = errors[0]
    seen = {id(first)}
    node = first
    while node.__context__ is not None:
        seen.add(id(node.__context__))
        node = node.__context__
    for exc in errors[1:]:
        if id(exc) in seen:
            continue
        node.__context__ = exc
        seen.add(id(exc))
        node = exc
        while node.__context__ is not None:
            if id(node.__context__) in seen:
                node.__context__ = None
                break
            seen.add(id(node.__context__))
            node = node.__context__
    return first


class PoolTask:
    """One unit of work scheduled via :meth:`ThreadPoolEngine.submit_after`.

    ``released_seq`` / ``started_seq`` / ``done_seq`` are engine-global
    sequence numbers stamped under the scheduling lock at each transition;
    ``started_seq > dep.done_seq`` for every dependency is the release-order
    invariant the property tests assert.
    """

    __slots__ = (
        "fn", "deps", "inline", "loop", "color", "index", "created",
        "_state", "_unfinished", "_children", "_result", "_error", "_event",
        "released_seq", "started_seq", "done_seq",
    )

    def __init__(
        self,
        fn: Callable[[], Any] | None,
        deps: tuple["PoolTask", ...],
        inline: bool,
        loop: str,
        color: int,
        index: int,
    ) -> None:
        self.fn = fn
        self.deps = deps
        #: inline tasks (gates, loop finalizers) run on whichever thread
        #: completed their last dependency instead of a pool round-trip.
        self.inline = inline
        self.loop = loop
        self.color = color
        self.index = index
        self.created = 0.0
        self._state = _WAITING
        self._unfinished = 0
        self._children: list[PoolTask] = []
        self._result: Any = None
        self._error: BaseException | None = None
        self._event = threading.Event()
        self.released_seq = -1
        self.started_seq = -1
        self.done_seq = -1

    def done(self) -> bool:
        """True once the task reached a terminal state."""
        return self._state in _TERMINAL

    def failed(self) -> bool:
        return self._error is not None

    def value(self) -> Any:
        """The result of a task known to be done (no blocking, no re-raise)."""
        assert self.done(), "value() on an unfinished task"
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = ["waiting", "released", "running", "done", "failed", "cancelled"]
        label = self.loop or "task"
        return f"<PoolTask {label}.c{self.color}.t{self.index} {states[self._state]}>"


class PoolFuture(Future):
    """A loop future satisfied by a :class:`PoolTask` instead of the executor.

    Returned by the dependency-scheduled backends' ``run_loop_threads``: the
    future resolves when the loop's finalizer task completes, so the
    application's ``rt.sync(...)`` placement — not a per-loop barrier — is
    what actually orders the program. ``get`` blocks the calling OS thread
    (counted as a pool-level join) rather than driving the cooperative
    executor.
    """

    __slots__ = ("_task", "_engine")

    def __init__(self, task: PoolTask, engine: "ThreadPoolEngine", name: str = "") -> None:
        super().__init__(None, name=name)
        self._task = task
        self._engine = engine

    def is_ready(self) -> bool:
        return self._task.done()

    def has_exception(self) -> bool:
        return self._task.failed()

    def get(self) -> Any:
        return self._engine.wait_for(self._task, label=self.name)


class ThreadPoolEngine:
    """A fixed-width pool of real worker threads with ordered joins.

    The underlying executor is created lazily (a runtime configured for
    ``threads`` mode but never running a loop costs nothing) and can be
    re-created after :meth:`close` — runtimes survive a ``finish``/``close``
    cycle, as the cooperative executor does.
    """

    def __init__(self, num_workers: int = 1) -> None:
        check_positive("num_workers", num_workers)
        self.num_workers = int(num_workers)
        self._pool: ThreadPoolExecutor | None = None
        self.stats = PoolStats()
        #: optional wall-clock recorder; ``None`` keeps the hot path bare.
        self.recorder: "TraceRecorder | None" = None
        #: keep completed tasks' ``deps`` tuples instead of clearing them.
        #: Diagnostic only (the property tests walk the recorded graph);
        #: long-running production loops must leave this off or every task
        #: ever scheduled stays reachable through its predecessors.
        self.keep_history = False
        self._lock = threading.Lock()
        self._pending: set[PoolTask] = set()
        self._seq = 0

    # -- lifecycle -----------------------------------------------------------

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="op2-worker"
            )
        return self._pool

    @property
    def active(self) -> bool:
        """True while OS threads are (or may be) alive."""
        return self._pool is not None

    def close(self) -> None:
        """Join and release the worker threads (idempotent).

        Unfinished scheduled tasks are cancelled first: a dependency that
        completes after shutdown could otherwise try to submit its released
        children to a dead executor.
        """
        if self._pool is not None:
            with self._lock:
                dangling = bool(self._pending)
            if dangling:
                self.cancel_all()
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadPoolEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- dependency scheduling ----------------------------------------------

    def submit_after(
        self,
        thunk: Callable[[], Any] | None,
        deps: Sequence[PoolTask] = (),
        *,
        loop: str = "",
        color: int = -1,
        index: int = -1,
        inline: bool = False,
    ) -> PoolTask:
        """Schedule ``thunk`` to run once every task in ``deps`` completed.

        There is no join anywhere in this path: when the last dependency
        finishes, the completing thread releases the task to the pool (or
        runs it in place when ``inline=True`` — used for gates and loop
        finalizers, which are too small for a pool round-trip). A ``None``
        thunk is a pure gate. If any dependency failed, the task fails with
        that error without running, and the failure cascades to its own
        dependents in turn.

        Returns the :class:`PoolTask`; wait on it with :meth:`wait_for` /
        :meth:`wait_all` or chain further ``submit_after`` calls.
        """
        task = PoolTask(thunk, tuple(deps), inline, loop, color, index)
        rec = self.recorder
        if rec is not None:
            task.created = rec.now()
        with self._lock:
            self._pending.add(task)
            unfinished = 0
            for dep in task.deps:
                if dep._state in _TERMINAL:
                    continue
                dep._children.append(task)
                unfinished += 1
            task._unfinished = unfinished
        if unfinished == 0:
            self._dispatch([task])
        return task

    def gate(
        self,
        deps: Sequence[PoolTask],
        *,
        loop: str = "",
        color: int = -1,
    ) -> PoolTask:
        """A pure synchronization point: done when every task in ``deps`` is."""
        return self.submit_after(None, deps, loop=loop, color=color, inline=True)

    def _dispatch(self, ready: list[PoolTask]) -> None:
        """Release ready tasks; run inline ones here, iteratively.

        Completions of inline tasks can make further tasks ready; those are
        processed on an explicit worklist rather than by recursion, so a long
        chain of gates (e.g. thousands of timesteps scheduled between two
        ``finish`` calls) cannot overflow the stack.
        """
        stack = ready
        while stack:
            task = stack.pop()
            with self._lock:
                if task._state != _WAITING:
                    continue
                task._state = _RELEASED
                self._seq += 1
                task.released_seq = self._seq
            error = self._dep_failure(task)
            if error is not None:
                stack.extend(self._settle(task, None, error, ran=False))
                continue
            self._mark_release(task)
            if task.fn is None:
                stack.extend(self._settle(task, None, None, ran=False))
            elif task.inline:
                result, exc = self._execute(task)
                stack.extend(self._settle(task, result, exc, ran=True))
            else:
                self.stats.tasks_submitted += 1
                self._ensure().submit(self._run, task)

    @staticmethod
    def _dep_failure(task: PoolTask) -> BaseException | None:
        """First (in dependency order) error among the task's predecessors."""
        for dep in task.deps:
            if dep._error is not None:
                return dep._error
        return None

    def _mark_release(self, task: PoolTask) -> None:
        rec = self.recorder
        if rec is not None and rec.collect_events and task.loop:
            rec.span(
                f"{task.loop}.c{task.color}.t{task.index}.release",
                "release", task.loop, task.created, rec.now(), color=task.color,
            )

    def _execute(self, task: PoolTask) -> tuple[Any, BaseException | None]:
        with self._lock:
            task._state = _RUNNING
            self._seq += 1
            task.started_seq = self._seq
        rec = self.recorder
        timed = rec is not None and not task.inline
        start = rec.now() if timed else 0.0
        try:
            result, error = task.fn(), None  # type: ignore[misc]
        except BaseException as exc:  # noqa: BLE001 - stored, re-raised at joins
            result, error = None, exc
        if timed:
            rec.task_span(task.loop, task.color, task.index, start, rec.now())
        return result, error

    def _settle(
        self,
        task: PoolTask,
        result: Any,
        error: BaseException | None,
        ran: bool,
    ) -> list[PoolTask]:
        """Record a completion; return the children it made ready."""
        ready: list[PoolTask] = []
        with self._lock:
            task._result = result
            task._error = error
            task._state = _DONE if error is None else _FAILED
            self._seq += 1
            task.done_seq = self._seq
            self._pending.discard(task)
            children, task._children = task._children, []
            if not self.keep_history:
                task.deps = ()
            for child in children:
                child._unfinished -= 1
                if child._unfinished == 0:
                    ready.append(child)
        if error is not None and ran:
            self.stats.tasks_failed += 1
        task._event.set()
        return ready

    def _run(self, task: PoolTask) -> None:
        """Worker-thread entry: execute, then release whatever became ready."""
        result, error = self._execute(task)
        self._dispatch(self._settle(task, result, error, ran=True))

    def cancel_all(self) -> int:
        """Discard every unreleased task and wait out the in-flight ones.

        Cancelled tasks fail with :class:`TaskCancelled`; already-released
        tasks are allowed to finish (no worker may still be mutating shared
        dats after this returns). Returns the number cancelled.
        """
        with self._lock:
            waiting = [t for t in self._pending if t._state == _WAITING]
        cancelled = 0
        for task in waiting:
            with self._lock:
                if task._state != _WAITING:
                    continue
                task._state = _CANCELLED
                task._error = TaskCancelled(
                    f"pool task {task.loop or '<anonymous>'} cancelled"
                )
                self._seq += 1
                task.done_seq = self._seq
                self._pending.discard(task)
                children, task._children = task._children, []
                for child in children:
                    # A child left waiting is in (or will race into) our
                    # snapshot and gets cancelled itself; never released.
                    child._unfinished -= 1
            task._event.set()
            cancelled += 1
        self.stats.tasks_cancelled += cancelled
        while True:
            with self._lock:
                inflight = [
                    t for t in self._pending if t._state in (_RELEASED, _RUNNING)
                ]
            if not inflight:
                break
            for task in inflight:
                task._event.wait()
        return cancelled

    # -- joins ---------------------------------------------------------------

    def wait_for(self, task: PoolTask, *, label: str = "") -> Any:
        """Block the calling OS thread until ``task`` completes; re-raise errors.

        Counts as one pool-level join (the measured equivalent of a
        ``future.get()``), recorded as a ``wait`` span when tracing.
        """
        self.stats.joins += 1
        rec = self.recorder
        t0 = rec.now() if rec is not None else 0.0
        task._event.wait()
        if rec is not None:
            rec.span(
                f"{label or task.loop or 'task'}.wait", "wait", task.loop,
                t0, rec.now(),
            )
        if task._error is not None:
            raise task._error
        return task._result

    def wait_all(
        self,
        tasks: Sequence[PoolTask],
        *,
        loop: str = "",
        color_join: bool = False,
    ) -> list[Any]:
        """Join every task; results in submission order; errors chained.

        All tasks are waited for even when one fails — no worker may still
        be mutating shared state after control returns — and the first error
        (in list order) is re-raised with any further failures attached to
        its ``__context__`` chain (see :func:`chain_errors`).

        ``color_join=True`` marks this join as a per-color fork-join barrier
        in :class:`PoolStats` — the counter the dependency-scheduled
        backends are asserted to keep at zero.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self.stats.joins += 1
        if color_join:
            self.stats.color_joins += 1
        rec = self.recorder
        t0 = rec.now() if rec is not None else 0.0
        results: list[Any] = []
        errors: list[BaseException] = []
        for task in tasks:
            task._event.wait()
            if task._error is not None:
                errors.append(task._error)
                results.append(None)
            else:
                results.append(task._result)
        if rec is not None:
            rec.span(f"{loop or 'pool'}.wait", "wait", loop, t0, rec.now())
        if errors:
            raise chain_errors(errors)
        return results

    # -- fork-join batches ---------------------------------------------------

    def run_batch(
        self,
        thunks: Sequence[Callable[[], Any]],
        *,
        loop: str = "",
        color: int = -1,
    ) -> list[Any]:
        """Run every thunk on the pool; join; results in submission order.

        This is the fork-join primitive of the threads mode: one batch per
        color class (or per loop for direct loops), built on
        :meth:`submit_after` with no dependencies plus an ordered
        :meth:`wait_all`. A batch labelled with a color (``color >= 0``)
        counts as a per-color join in :class:`PoolStats`.

        ``loop``/``color`` label the batch's task spans when a recorder is
        attached; they carry no cost otherwise.
        """
        if not thunks:
            return []
        rec = self.recorder
        if rec is not None:
            rec.batches += 1
        self.stats.batches += 1
        if len(thunks) > self.stats.max_batch_width:
            self.stats.max_batch_width = len(thunks)
        tasks = [
            self.submit_after(thunk, loop=loop, color=color, index=i)
            for i, thunk in enumerate(thunks)
        ]
        return self.wait_all(tasks, loop=loop, color_join=color >= 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.active else "idle"
        return f"<ThreadPoolEngine workers={self.num_workers} {state}>"
