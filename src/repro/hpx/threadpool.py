"""Real OS-thread pool used by the ``threads`` execution mode.

This is the measured counterpart of the cooperative
:class:`~repro.hpx.executor.TaskExecutor`: same submit/join vocabulary, but
tasks run on a ``concurrent.futures.ThreadPoolExecutor`` so wall-clock
behaviour reflects the actual hardware. Numpy's batch kernels release the GIL
for their inner loops, which is what makes chunked parallel loops scale on
multicore hosts.

Determinism contract: :meth:`ThreadPoolEngine.run_batch` always returns
results in *submission* order, never completion order — callers combine
floating-point partials (global MIN/MAX/INC reductions) in a fixed order, so
repeated runs with the same worker count are bit-identical.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.util.validate import check_positive


@dataclass
class PoolStats:
    """Counters describing pool activity since construction/reset."""

    tasks_submitted: int = 0
    batches: int = 0
    max_batch_width: int = 0

    def reset(self) -> None:
        self.tasks_submitted = 0
        self.batches = 0
        self.max_batch_width = 0


class ThreadPoolEngine:
    """A fixed-width pool of real worker threads with ordered batch joins.

    The underlying executor is created lazily (a runtime configured for
    ``threads`` mode but never running a loop costs nothing) and can be
    re-created after :meth:`close` — runtimes survive a ``finish``/``close``
    cycle, as the cooperative executor does.
    """

    def __init__(self, num_workers: int = 1) -> None:
        check_positive("num_workers", num_workers)
        self.num_workers = int(num_workers)
        self._pool: ThreadPoolExecutor | None = None
        self.stats = PoolStats()

    # -- lifecycle -----------------------------------------------------------

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="op2-worker"
            )
        return self._pool

    @property
    def active(self) -> bool:
        """True while OS threads are (or may be) alive."""
        return self._pool is not None

    def close(self) -> None:
        """Join and release the worker threads (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadPoolEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def run_batch(self, thunks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run every thunk on the pool; join; results in submission order.

        This is the fork-join primitive of the threads mode: one batch per
        color class (or per loop for direct loops). All thunks are waited for
        even when one raises — no worker may still be mutating shared dats
        after control returns — and the first exception (in submission order)
        is re-raised on the caller.
        """
        if not thunks:
            return []
        pool = self._ensure()
        futures = [pool.submit(thunk) for thunk in thunks]
        self.stats.tasks_submitted += len(futures)
        self.stats.batches += 1
        if len(futures) > self.stats.max_batch_width:
            self.stats.max_batch_width = len(futures)

        results: list[Any] = []
        first_error: BaseException | None = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.active else "idle"
        return f"<ThreadPoolEngine workers={self.num_workers} {state}>"
