"""Real OS-thread pool used by the ``threads`` execution mode.

This is the measured counterpart of the cooperative
:class:`~repro.hpx.executor.TaskExecutor`: same submit/join vocabulary, but
tasks run on a ``concurrent.futures.ThreadPoolExecutor`` so wall-clock
behaviour reflects the actual hardware. Numpy's batch kernels release the GIL
for their inner loops, which is what makes chunked parallel loops scale on
multicore hosts.

Determinism contract: :meth:`ThreadPoolEngine.run_batch` always returns
results in *submission* order, never completion order — callers combine
floating-point partials (global MIN/MAX/INC reductions) in a fixed order, so
repeated runs with the same worker count are bit-identical.

Observability: attaching a :class:`~repro.obs.recorder.TraceRecorder` to
:attr:`ThreadPoolEngine.recorder` makes every batch task report a worker-side
timed span; with no recorder attached the execution path is unchanged.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.util.validate import check_positive

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import TraceRecorder


@dataclass
class PoolStats:
    """Counters describing pool activity since construction/reset."""

    tasks_submitted: int = 0
    tasks_failed: int = 0
    batches: int = 0
    max_batch_width: int = 0

    def reset(self) -> None:
        self.tasks_submitted = 0
        self.tasks_failed = 0
        self.batches = 0
        self.max_batch_width = 0


def chain_errors(errors: Sequence[BaseException]) -> BaseException:
    """Link every secondary error onto the first one's ``__context__`` chain.

    A multi-worker batch can fail on several tasks at once; re-raising only
    the first would silently discard the rest. Appending the others to the
    implicit-context chain keeps the caller-visible exception type unchanged
    while tracebacks (and ``raise ... from`` tooling) show every failure.
    Already-linked or duplicate exception objects are skipped so the chain
    can never cycle.
    """
    first = errors[0]
    seen = {id(first)}
    node = first
    while node.__context__ is not None:
        seen.add(id(node.__context__))
        node = node.__context__
    for exc in errors[1:]:
        if id(exc) in seen:
            continue
        node.__context__ = exc
        seen.add(id(exc))
        node = exc
        while node.__context__ is not None:
            if id(node.__context__) in seen:
                node.__context__ = None
                break
            seen.add(id(node.__context__))
            node = node.__context__
    return first


class ThreadPoolEngine:
    """A fixed-width pool of real worker threads with ordered batch joins.

    The underlying executor is created lazily (a runtime configured for
    ``threads`` mode but never running a loop costs nothing) and can be
    re-created after :meth:`close` — runtimes survive a ``finish``/``close``
    cycle, as the cooperative executor does.
    """

    def __init__(self, num_workers: int = 1) -> None:
        check_positive("num_workers", num_workers)
        self.num_workers = int(num_workers)
        self._pool: ThreadPoolExecutor | None = None
        self.stats = PoolStats()
        #: optional wall-clock recorder; ``None`` keeps the hot path bare.
        self.recorder: "TraceRecorder | None" = None

    # -- lifecycle -----------------------------------------------------------

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.num_workers, thread_name_prefix="op2-worker"
            )
        return self._pool

    @property
    def active(self) -> bool:
        """True while OS threads are (or may be) alive."""
        return self._pool is not None

    def close(self) -> None:
        """Join and release the worker threads (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ThreadPoolEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    @staticmethod
    def _timed(
        thunk: Callable[[], Any],
        rec: "TraceRecorder",
        loop: str,
        color: int,
        index: int,
    ) -> Callable[[], Any]:
        """Wrap a thunk so the worker reports its own timed span."""

        def run() -> Any:
            start = rec.now()
            try:
                return thunk()
            finally:
                rec.task_span(loop, color, index, start, rec.now())

        return run

    def run_batch(
        self,
        thunks: Sequence[Callable[[], Any]],
        *,
        loop: str = "",
        color: int = -1,
    ) -> list[Any]:
        """Run every thunk on the pool; join; results in submission order.

        This is the fork-join primitive of the threads mode: one batch per
        color class (or per loop for direct loops). All thunks are waited for
        even when one raises — no worker may still be mutating shared dats
        after control returns — and the first exception (in submission order)
        is re-raised on the caller with any further worker failures attached
        to its ``__context__`` chain (see :func:`chain_errors`).

        ``loop``/``color`` label the batch's task spans when a recorder is
        attached; they carry no cost otherwise.
        """
        if not thunks:
            return []
        pool = self._ensure()
        rec = self.recorder
        if rec is not None:
            rec.batches += 1
            thunks = [
                self._timed(thunk, rec, loop, color, i)
                for i, thunk in enumerate(thunks)
            ]
        futures = [pool.submit(thunk) for thunk in thunks]
        self.stats.tasks_submitted += len(futures)
        self.stats.batches += 1
        if len(futures) > self.stats.max_batch_width:
            self.stats.max_batch_width = len(futures)

        results: list[Any] = []
        errors: list[BaseException] = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
                results.append(None)
        if errors:
            self.stats.tasks_failed += len(errors)
            raise chain_errors(errors)
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.active else "idle"
        return f"<ThreadPoolEngine workers={self.num_workers} {state}>"
