"""Execution policies: ``seq``, ``par`` and ``par(task)``.

Mirrors ``hpx::execution``: a policy bundles *where/how* a parallel algorithm
runs (sequential vs parallel) with *whether it is synchronous* (``par``
returns after a join; ``par(task)`` immediately returns a future), plus an
optional chunker attached with ``.with_(...)`` — the paper writes this as
``for_each(par.with(scs), ...)`` (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.hpx.chunking import Chunker, GuessChunkSize


@dataclass(frozen=True)
class ExecutionPolicy:
    """An immutable execution-policy value.

    Attributes:
        parallel: run chunks as executor tasks rather than inline.
        task: asynchronous flavor — the algorithm returns a future instead of
            joining (the ``par(task)`` of paper §III-A2).
        chunker: how the iteration space is decomposed (None = executor-even
            :class:`~repro.hpx.chunking.GuessChunkSize`).
    """

    parallel: bool
    task: bool = False
    chunker: Chunker | None = None
    label: str = ""

    def __call__(self, flavor: str = "task") -> "ExecutionPolicy":
        """``par("task")`` / ``par(task)`` spelling for the async flavor."""
        if flavor not in ("task",):
            raise ValueError(f"unknown policy flavor {flavor!r}")
        if not self.parallel:
            raise ValueError("seq(task) is not a meaningful policy here")
        return replace(self, task=True, label=f"{self.label}(task)")

    def with_(self, chunker: Chunker) -> "ExecutionPolicy":
        """Attach an explicit chunker (``par.with(static_chunk_size(n))``)."""
        if not isinstance(chunker, Chunker):
            raise TypeError(f"expected a Chunker, got {type(chunker).__name__}")
        return replace(self, chunker=chunker)

    def effective_chunker(self) -> Chunker:
        return self.chunker if self.chunker is not None else GuessChunkSize()

    def describe(self) -> str:
        base = self.label or ("par" if self.parallel else "seq")
        if self.chunker is not None:
            return f"{base}.with({self.chunker.describe()})"
        return base


#: Sequential execution: the algorithm runs inline on the caller.
seq = ExecutionPolicy(parallel=False, label="seq")

#: Parallel synchronous execution: chunks run as tasks, caller joins.
par = ExecutionPolicy(parallel=True, label="par")

#: Parallel asynchronous execution: algorithm returns a future of completion.
par_task = ExecutionPolicy(parallel=True, task=True, label="par(task)")
