"""THE Airfoil timestep, defined once, as a loop program.

Every runtime mode in the repo consumes this single definition:

- :class:`repro.airfoil.app.AirfoilApp` walks the *local* program through
  ``op_par_loop`` (sync, async-with-derived-syncs, dataflow);
- :class:`repro.dist.app.DistAirfoil` and the task-graph emitter
  (:mod:`repro.dist.emission`) walk the *distributed* programs;
- the procs-mode rank workers execute them for real via
  :mod:`repro.engine.executors` with halo bytes on the wire.

Three shapes of the same arithmetic:

``airfoil_timestep()``
    single address space — five whole-set loops, no exchanges;
``airfoil_timestep(dist=True)``
    SPMD bulk-synchronous (the MPI+OpenMP baseline): whole loops with
    blocking ``update(q, adt)`` / ``accumulate(res)`` exchanges between them;
``airfoil_timestep(dist=True, overlap=True)``
    the HPX-dataflow shape: boundary ``adt_calc`` feeds the wire first,
    interior ``res_calc``/``bres_calc`` run under the in-flight messages,
    only exterior edges wait, and the residual accumulation ships while the
    private (non-exported) cells update.

Footprints use region granularity — ``own`` split into ``bnd`` (rows whose
residual involves the halo phase: exported rows plus the owned endpoints of
partition-crossing edges) and ``int`` (private interior rows), plus
``halo`` — which is what lets the derived dependency edges express the
overlap: interior compute never touches a ``halo`` or ``chan`` token, so
nothing orders it after a wait. Residual contributions are ``incs``
footprints, so loop-level consumers that treat increments as commutative
(the async driver's derived syncs) can launch ``res_calc`` and
``bres_calc`` concurrently; the executors use the strict conflict rule.
"""

from __future__ import annotations

from repro.engine.program import ExchangeStep, LoopProgram, LoopStep

#: Airfoil's fixed Runge-Kutta-style inner iteration count (two half steps).
INNER_ITERS = 2

#: Subset names used by the overlapped program; executors are handed a dict
#: of local element ids under exactly these keys (see ``split_boundary``).
CELL_SUBSETS = ("boundary_cells", "interior_cells")
EDGE_SUBSETS = ("interior_edges", "exterior_edges")


def _local_steps(inner_iters: int) -> tuple:
    """Single-address-space program: plain dat-name tokens, no exchanges."""
    save = LoopStep("save_soln", reads=("q",), writes=("qold",))
    adt = LoopStep("adt_calc", reads=("x", "q"), writes=("adt",))
    res = LoopStep("res_calc", reads=("x", "q", "adt"), incs=("res",))
    bres = LoopStep(
        "bres_calc",
        reads=("x", "q", "adt", "bound", "qinf"),
        incs=("res",),
    )
    update = LoopStep(
        "update",
        reads=("qold", "adt", "res"),
        writes=("q", "res"),
        incs=("rms",),
    )
    return (save,) + (adt, res, bres, update) * inner_iters


def _blocking_steps(inner_iters: int) -> tuple:
    """SPMD bulk-synchronous program: own/halo region tokens."""
    save = LoopStep("save_soln", reads=("q:own",), writes=("qold:own",))
    adt = LoopStep("adt_calc", reads=("x", "q:own"), writes=("adt:own",))
    halo_update = ExchangeStep(
        "update",
        "blocking",
        ("q", "adt"),
        reads=("q:own", "adt:own", "chan:update"),
        writes=("q:halo", "adt:halo", "chan:update"),
    )
    res = LoopStep(
        "res_calc",
        reads=("x", "q:own", "q:halo", "adt:own", "adt:halo"),
        incs=("res:own", "res:halo"),
    )
    bres = LoopStep(
        "bres_calc",
        reads=("x", "bound", "qinf", "q:own", "adt:own"),
        incs=("res:own",),
    )
    halo_accumulate = ExchangeStep(
        "accumulate",
        "blocking",
        ("res",),
        reads=("res:halo", "chan:accumulate"),
        writes=("res:halo", "chan:accumulate"),
        incs=("res:own",),
    )
    update = LoopStep(
        "update",
        reads=("qold:own", "adt:own", "res:own"),
        writes=("q:own", "res:own"),
        incs=("rms",),
    )
    inner = (adt, halo_update, res, bres, halo_accumulate, update)
    return (save,) + inner * inner_iters


def _overlapped_steps(inner_iters: int) -> tuple:
    """SPMD overlapped program: bnd/int/halo region tokens.

    Only exported (``bnd``) rows feed the wire and only ``halo``/``chan``
    tokens order anything after a wait, so the derived DAG leaves every
    interior step free to run under the in-flight messages.
    """
    save = LoopStep(
        "save_soln", reads=("q:bnd", "q:int"), writes=("qold:own",)
    )
    adt_bnd = LoopStep(
        "adt_calc", "boundary_cells", reads=("x", "q:bnd"), writes=("adt:bnd",)
    )
    update_start = ExchangeStep(
        "update",
        "start",
        ("q", "adt"),
        reads=("q:bnd", "adt:bnd", "chan:update"),
        writes=("chan:update",),
    )
    adt_int = LoopStep(
        "adt_calc", "interior_cells", reads=("x", "q:int"), writes=("adt:int",)
    )
    res_int = LoopStep(
        "res_calc",
        "interior_edges",
        reads=("x", "q:bnd", "q:int", "adt:bnd", "adt:int"),
        incs=("res:bnd", "res:int"),
    )
    bres = LoopStep(
        "bres_calc",
        reads=("x", "bound", "qinf", "q:bnd", "q:int", "adt:bnd", "adt:int"),
        incs=("res:bnd", "res:int"),
    )
    update_wait = ExchangeStep(
        "update",
        "wait",
        ("q", "adt"),
        reads=("chan:update",),
        writes=("q:halo", "adt:halo", "chan:update"),
    )
    res_ext = LoopStep(
        "res_calc",
        "exterior_edges",
        reads=("x", "q:bnd", "q:halo", "adt:bnd", "adt:halo"),
        incs=("res:bnd", "res:halo"),
    )
    accumulate_start = ExchangeStep(
        "accumulate",
        "start",
        ("res",),
        reads=("res:halo", "chan:accumulate"),
        writes=("res:halo", "chan:accumulate"),
    )
    update_int = LoopStep(
        "update",
        "interior_cells",
        reads=("qold:own", "adt:int", "res:int"),
        writes=("q:int", "res:int"),
        incs=("rms",),
    )
    accumulate_wait = ExchangeStep(
        "accumulate",
        "wait",
        ("res",),
        reads=("chan:accumulate",),
        writes=("chan:accumulate",),
        incs=("res:bnd",),
    )
    update_bnd = LoopStep(
        "update",
        "boundary_cells",
        reads=("qold:own", "adt:bnd", "res:bnd"),
        writes=("q:bnd", "res:bnd"),
        incs=("rms",),
    )
    inner = (
        adt_bnd,
        update_start,
        adt_int,
        res_int,
        bres,
        update_wait,
        res_ext,
        accumulate_start,
        update_int,
        accumulate_wait,
        update_bnd,
    )
    return (save,) + inner * inner_iters


def airfoil_timestep(
    *, dist: bool = False, overlap: bool = False, inner_iters: int = INNER_ITERS
) -> LoopProgram:
    """Build the canonical Airfoil timestep program for one schedule."""
    if overlap and not dist:
        raise ValueError("overlap=True requires dist=True (halo exchanges)")
    if not dist:
        return LoopProgram("airfoil.local", _local_steps(inner_iters))
    if not overlap:
        return LoopProgram("airfoil.blocking", _blocking_steps(inner_iters))
    return LoopProgram(
        "airfoil.overlapped",
        _overlapped_steps(inner_iters),
        partitions={"cells": CELL_SUBSETS, "edges": EDGE_SUBSETS},
    )
