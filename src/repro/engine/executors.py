"""Pluggable executors: run one loop program against bound resources.

A :class:`ProgramBindings` is everything a program needs at runtime — the
rank's :class:`~repro.op2.parloop.ParLoop` objects keyed by loop name, the
subset id arrays keyed by subset name, the raw field arrays and transport
for exchange steps, and an optional recorder. Three executors consume the
same (program, bindings) pair:

:class:`SerialExecutor`
    program order on the calling thread — the rank-per-process baseline
    (``threads_per_rank=1``), byte-identical to the old hand-written
    drivers;
:class:`ForkJoinExecutor`
    each loop step forks into per-color chunk batches on a
    :class:`~repro.hpx.threadpool.ThreadPoolEngine` and joins before the
    next step — the MPI+OpenMP shape (a barrier per loop, blocking
    exchanges on the orchestrator);
:class:`DependencyExecutor`
    the whole program is scheduled up front as dependency-released pool
    tasks using the program's derived edges; exchange waits occupy one
    worker while every step with no path from a ``halo``/``chan`` token
    keeps computing underneath — the HPX-dataflow shape, measured.

Determinism contract (all executors): global MIN/MAX/INC partials are
folded in static chunk order, never completion order; conflicting steps are
ordered by derived edges; chunk decomposition depends only on (plan,
subset). Repeated runs with the same configuration are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backends.base import apply_global_partials, execute_loop
from repro.backends.threaded import bump_written_versions
from repro.engine.program import ExchangeStep, LoopProgram, LoopStep, Step
from repro.hpx.threadpool import PoolTask, ThreadPoolEngine
from repro.obs.recorder import TraceRecorder
from repro.op2.parloop import ParLoop
from repro.op2.plan import DEFAULT_BLOCK_SIZE, Plan, build_plan, subset_color_pieces
from repro.util.validate import ValidationError


@dataclass
class ProgramBindings:
    """Runtime resources a program executes against (one rank's view)."""

    loops: dict[str, ParLoop]
    subsets: dict[str, np.ndarray] = field(default_factory=dict)
    #: field name -> storage array, for exchange steps.
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    #: object providing ``update_start`` / ``accumulate_blocking`` / ... each
    #: taking a list of field arrays; ``None`` is valid for exchange-free
    #: programs.
    transport: Any = None
    recorder: TraceRecorder | None = None
    #: iteration-space sizes keyed like ``LoopProgram.partitions``, enabling
    #: exact-partition validation of the subset split.
    space_sizes: dict[str, int] = field(default_factory=dict)

    def elements(self, step: LoopStep) -> np.ndarray | None:
        if step.subset is None:
            return None
        try:
            return self.subsets[step.subset]
        except KeyError:
            raise ValidationError(
                f"program step {step.label!r} needs subset "
                f"{step.subset!r}; bindings have {sorted(self.subsets)}"
            ) from None

    def exchange(self, step: ExchangeStep) -> None:
        if self.transport is None:
            raise ValidationError(
                f"program has exchange step {step.label!r} but the bindings "
                "carry no transport"
            )
        fn = getattr(self.transport, step.method)
        fn([self.arrays[name] for name in step.fields])

    def validate_for(self, program: LoopProgram) -> None:
        """Check loop coverage and that each declared partition is exact."""
        missing = [n for n in program.loop_names() if n not in self.loops]
        if missing:
            raise ValidationError(f"bindings missing loops: {missing}")
        for space, names in program.partitions.items():
            parts = []
            for name in names:
                if name not in self.subsets:
                    raise ValidationError(
                        f"bindings missing subset {name!r} of space {space!r}"
                    )
                parts.append(np.asarray(self.subsets[name]))
            merged = np.concatenate(parts) if parts else np.empty(0, np.int64)
            if np.unique(merged).size != merged.size:
                raise ValidationError(
                    f"subsets of space {space!r} overlap: {names}"
                )
            size = self.space_sizes.get(space)
            if size is not None and not np.array_equal(
                np.sort(merged), np.arange(size, dtype=merged.dtype)
            ):
                raise ValidationError(
                    f"subsets {names} do not partition space {space!r} "
                    f"of size {size}"
                )


def _exchange_span(step: ExchangeStep) -> tuple[str, str]:
    """(label, span kind) for an exchange step, matching historic traces."""
    if step.phase == "blocking":
        return f"halo.{step.op}", "wait"
    kind = "release" if step.phase == "start" else "wait"
    return step.label, kind


class SerialExecutor:
    """Program order on the calling thread; the ``threads_per_rank=1`` path."""

    name = "serial"

    def run(self, program: LoopProgram, b: ProgramBindings) -> None:
        rec = b.recorder
        for step in program.steps:
            if isinstance(step, ExchangeStep):
                if rec is None:
                    b.exchange(step)
                    continue
                label, kind = _exchange_span(step)
                t0 = rec.now()
                b.exchange(step)
                rec.span(label, kind, "exchange", t0, rec.now())
                continue
            loop = b.loops[step.name]
            elements = b.elements(step)
            if elements is not None and len(elements) == 0:
                continue
            if rec is None:
                execute_loop(loop, elements)
                continue
            t0 = rec.now()
            execute_loop(loop, elements)
            end = rec.now()
            label = step.name if step.subset is None else f"{step.name}.part"
            rec.span(label, "loop", step.name, t0, end, busy=True)
            rec.record_loop(step.name, end - t0, 1, 1)


class _ChunkedLoops:
    """Shared chunk decomposition cache for the threaded executors.

    Per (loop, subset): the plan's color classes restricted to the subset and
    regrouped into at most ``width`` chunks per color. Depends only on static
    inputs, so the decomposition — and therefore the reduction fold order —
    is identical across runs.
    """

    def __init__(self, width: int, block_size: int) -> None:
        self.width = max(1, int(width))
        self.block_size = int(block_size)
        self._plans: dict[str, Plan] = {}
        self._chunks: dict[tuple[str, str | None], list[tuple[int, list[np.ndarray]]]] = {}

    def plan(self, loop: ParLoop) -> Plan:
        p = self._plans.get(loop.name)
        if p is None:
            p = self._plans[loop.name] = build_plan(
                loop.set_, list(loop.args), self.block_size
            )
        return p

    def chunks(
        self, step: LoopStep, loop: ParLoop, b: ProgramBindings
    ) -> list[tuple[int, list[np.ndarray]]]:
        """[(color, [chunk element ids, ...]), ...] for one loop step."""
        key = (step.name, step.subset)
        cached = self._chunks.get(key)
        if cached is not None:
            return cached
        plan = self.plan(loop)
        elements = b.elements(step)
        out: list[tuple[int, list[np.ndarray]]] = []
        if not plan.colored:
            if elements is None:
                elements = np.arange(loop.set_.size, dtype=np.int64)
            if len(elements):
                pieces = np.array_split(elements, min(self.width, len(elements)))
                out.append((0, [p for p in pieces if len(p)]))
        else:
            for ci, pieces in enumerate(subset_color_pieces(plan, elements)):
                if pieces:
                    out.append((ci, _regroup(pieces, self.width)))
        self._chunks[key] = out
        return out


def _regroup(pieces: list[np.ndarray], width: int) -> list[np.ndarray]:
    """Merge same-color pieces into at most ``width`` balanced chunks.

    Pieces stay in block order and chunks are contiguous runs of pieces, so
    every chunk is a sorted id array and the decomposition is static.
    """
    total = sum(len(p) for p in pieces)
    if len(pieces) <= width:
        return [p for p in pieces if len(p)]
    target = max(1, -(-total // width))
    chunks: list[np.ndarray] = []
    bucket: list[np.ndarray] = []
    filled = 0
    for p in pieces:
        if not len(p):
            continue
        bucket.append(p)
        filled += len(p)
        if filled >= target and len(chunks) < width - 1:
            chunks.append(np.concatenate(bucket))
            bucket, filled = [], 0
    if bucket:
        chunks.append(np.concatenate(bucket))
    return chunks


def _run_chunk(loop: ParLoop, elements: np.ndarray) -> list:
    """Pool-task body: execute one chunk, return its deferred partials."""
    partials: list = []
    execute_loop(
        loop, elements, global_sink=partials, bump_versions=False
    )
    return partials


class ForkJoinExecutor:
    """Per-loop fork-join on a thread pool; blocking exchanges in between.

    This is the measured MPI+OpenMP baseline shape: colors run as barrier-
    separated batches, the orchestrating thread performs the exchanges, and
    nothing overlaps a wait.
    """

    name = "forkjoin"

    def __init__(
        self, pool: ThreadPoolEngine, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        self.pool = pool
        self._chunked = _ChunkedLoops(pool.num_workers, block_size)

    def run(self, program: LoopProgram, b: ProgramBindings) -> None:
        rec = b.recorder
        for step in program.steps:
            if isinstance(step, ExchangeStep):
                if rec is None:
                    b.exchange(step)
                    continue
                label, kind = _exchange_span(step)
                t0 = rec.now()
                b.exchange(step)
                rec.span(label, kind, "exchange", t0, rec.now())
                continue
            self._run_loop(step, b)

    def _run_loop(self, step: LoopStep, b: ProgramBindings) -> None:
        rec = b.recorder
        loop = b.loops[step.name]
        colors = self._chunked.chunks(step, loop, b)
        if not colors:
            return
        t0 = rec.now() if rec is not None else 0.0
        partials: list = []
        ncolors = 0
        ntasks = 0
        for ci, chunks in colors:
            ncolors += 1
            ntasks += len(chunks)
            results = self.pool.run_batch(
                [lambda c=c: _run_chunk(loop, c) for c in chunks],
                loop=step.name,
                color=ci,
            )
            for task_partials in results:
                partials.extend(task_partials)
        apply_global_partials(partials)
        bump_written_versions(loop)
        if rec is not None:
            end = rec.now()
            rec.span(step.label, "loop", step.name, t0, end)
            _count, task_s = rec.take_task_totals(step.name)
            rec.record_loop(step.name, end - t0, ncolors, ntasks, task_s)


class DependencyExecutor:
    """Whole-program dependency scheduling on a thread pool.

    Every step becomes a small task graph (chunk tasks per color, an inline
    gate per color, an inline finalizer folding the reduction partials) whose
    roots depend on the *finalizers of the step's derived predecessors* —
    nothing else. Exchange steps run as single pool tasks, so a wait occupies
    one worker while released compute fills the rest: communication hides
    behind computation exactly where the program's footprints allow it.
    """

    name = "dependency"

    def __init__(
        self, pool: ThreadPoolEngine, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> None:
        self.pool = pool
        self._chunked = _ChunkedLoops(pool.num_workers, block_size)
        self._edges: dict[int, tuple[tuple[int, ...], ...]] = {}

    def run(self, program: LoopProgram, b: ProgramBindings) -> None:
        edges = self._edges.get(id(program))
        if edges is None:
            edges = self._edges[id(program)] = program.edges()
        finals: list[PoolTask] = []
        for i, step in enumerate(program.steps):
            deps = [finals[j] for j in edges[i]]
            if isinstance(step, ExchangeStep):
                finals.append(
                    self.pool.submit_after(
                        lambda s=step: b.exchange(s), deps, loop=s_label(step)
                    )
                )
            else:
                finals.append(self._schedule_loop(step, b, deps))
        # One join per timestep: the program's tail steps (and, transitively,
        # everything else) must be done before the next program instance is
        # scheduled against the same storage.
        self.pool.wait_all(finals, loop=program.name)

    def _schedule_loop(
        self, step: LoopStep, b: ProgramBindings, deps: list[PoolTask]
    ) -> PoolTask:
        pool = self.pool
        rec = b.recorder
        loop = b.loops[step.name]
        colors = self._chunked.chunks(step, loop, b)
        if not colors:
            return pool.gate(deps, loop=step.label)
        t0 = rec.now() if rec is not None else 0.0
        prev: list[PoolTask] = deps
        all_tasks: list[PoolTask] = []
        ncolors = 0
        ntasks = 0
        for ci, chunks in colors:
            ncolors += 1
            tasks = [
                pool.submit_after(
                    lambda c=c: _run_chunk(loop, c),
                    prev,
                    loop=step.name,
                    color=ci,
                    index=k,
                )
                for k, c in enumerate(chunks)
            ]
            all_tasks.extend(tasks)
            ntasks += len(tasks)
            # Colors are the correctness barrier for indirect reductions;
            # an inline gate releases the next color with no pool join.
            prev = [pool.gate(tasks, loop=step.name, color=ci)]

        def finalize() -> None:
            partials: list = []
            for task in all_tasks:
                partials.extend(task.value())
            apply_global_partials(partials)
            bump_written_versions(loop)
            if rec is not None:
                end = rec.now()
                _count, task_s = rec.take_task_totals(step.name)
                rec.record_loop(
                    step.name, end - t0, ncolors, ntasks, task_s
                )

        return pool.submit_after(
            finalize, prev, loop=f"{step.label}.fin", inline=True
        )


def s_label(step: Step) -> str:
    return step.label


def make_executor(
    schedule: str,
    pool: ThreadPoolEngine | None,
    block_size: int = DEFAULT_BLOCK_SIZE,
):
    """Executor selection policy for the per-rank engine.

    No pool (``threads_per_rank=1``) is the serial baseline; with a pool the
    ``blocking`` schedule gets the fork-join (MPI+OpenMP) shape and the
    ``overlapped`` schedule the dependency-scheduled (HPX-dataflow) shape.
    """
    if pool is None:
        return SerialExecutor()
    if schedule == "blocking":
        return ForkJoinExecutor(pool, block_size)
    return DependencyExecutor(pool, block_size)
