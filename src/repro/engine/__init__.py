"""Backend-agnostic execution engine: loop programs + pluggable executors.

The timestep of an application is described once as a
:class:`~repro.engine.program.LoopProgram` — loops, iteration subsets, halo
points and footprints as data — and executed by whichever
:mod:`~repro.engine.executors` executor matches the runtime mode.
"""

from repro.engine.airfoil import INNER_ITERS, airfoil_timestep
from repro.engine.executors import (
    DependencyExecutor,
    ForkJoinExecutor,
    ProgramBindings,
    SerialExecutor,
    make_executor,
)
from repro.engine.program import (
    ExchangeStep,
    LoopProgram,
    LoopStep,
    steps_conflict,
)

__all__ = [
    "INNER_ITERS",
    "airfoil_timestep",
    "DependencyExecutor",
    "ForkJoinExecutor",
    "ProgramBindings",
    "SerialExecutor",
    "make_executor",
    "ExchangeStep",
    "LoopProgram",
    "LoopStep",
    "steps_conflict",
]
