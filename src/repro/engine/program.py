"""The loop-program IR: a timestep as data.

A :class:`LoopProgram` is the backend-agnostic description of one solver
timestep: a sequence of *steps* — parallel loops over (subsets of) their
iteration sets, and halo-exchange points — each carrying an explicit
read/write *footprint* over named storage regions. Dependency edges are not
written by hand anywhere: they are derived from footprint conflicts
(read-after-write, write-after-read, write-after-write), exactly the
dependence analysis the paper's modified OP2 API performs at runtime.

One program definition serves every execution stack in the repo:

- the application drivers fire the steps through ``op_par_loop`` (and, for
  the async backend, place their Fig-10 ``new_data.get()`` syncs from the
  derived edges);
- the distributed task-graph emitter turns steps into simulated per-rank
  work parts and wire messages;
- the per-rank :mod:`repro.engine.executors` run the steps for real —
  serially, as fork-join thread batches, or dependency-released.

Footprint tokens are plain strings naming a storage region (``"q:own"``,
``"adt:halo"``, ``"res:bnd"``); two steps conflict when one writes a token
the other touches. ``incs`` tokens are commutative increments: they behave
like writes against reads and writes, but two increments of the same token
may commute — the async application driver exploits this to launch
``res_calc`` and ``bres_calc`` without a sync between them (paper Fig 10),
while the real-thread executors keep the strict ordering (concurrent
``np.add.at`` into shared rows is still a data race). Exchange steps
additionally carry a per-channel token (``"chan:update"``) so successive
exchanges of one kind serialize even when their data regions are disjoint —
the in-flight-buffer rule of nonblocking MPI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.util.validate import ValidationError

#: Exchange operations and phases understood by transports/executors.
EXCHANGE_OPS = ("update", "accumulate")
EXCHANGE_PHASES = ("start", "wait", "blocking")


@dataclass(frozen=True)
class LoopStep:
    """One parallel loop over ``subset`` of its set (``None`` = whole set)."""

    name: str
    subset: str | None = None
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    #: commutative increments (OP_INC footprints); see module docstring.
    incs: tuple[str, ...] = ()

    @property
    def kind(self) -> str:
        return "loop"

    @property
    def label(self) -> str:
        return self.name if self.subset is None else f"{self.name}[{self.subset}]"


@dataclass(frozen=True)
class ExchangeStep:
    """One halo-exchange phase over the named dat fields.

    ``op``/``phase`` select the transport primitive (``update_start``,
    ``accumulate_blocking``, ...); ``fields`` are the dat names whose rows
    travel, packed into one message per neighbor.
    """

    op: str
    phase: str
    fields: tuple[str, ...]
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    #: commutative increments (the accumulate wait adds into exported rows).
    incs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in EXCHANGE_OPS:
            raise ValidationError(
                f"unknown exchange op {self.op!r}; use one of {EXCHANGE_OPS}"
            )
        if self.phase not in EXCHANGE_PHASES:
            raise ValidationError(
                f"unknown exchange phase {self.phase!r}; "
                f"use one of {EXCHANGE_PHASES}"
            )

    @property
    def kind(self) -> str:
        return "exchange"

    @property
    def method(self) -> str:
        """Transport method name (``update_blocking``, ``accumulate_wait``...)."""
        return f"{self.op}_{self.phase}"

    @property
    def label(self) -> str:
        return f"halo.{self.op}.{self.phase}"


Step = Union[LoopStep, ExchangeStep]


def steps_conflict(a: Step, b: Step, *, commute_incs: bool = False) -> bool:
    """True when program order between ``a`` and ``b`` must be preserved.

    With ``commute_incs`` two increments of one token do not conflict (the
    reductions commute at loop granularity); increments still conflict with
    plain reads and writes either way. The strict default folds ``incs``
    into the write set — required whenever steps may literally race on
    shared rows (the real-thread executors).
    """
    ar, br = set(a.reads), set(b.reads)
    if commute_incs:
        aw, bw = set(a.writes), set(b.writes)
        ai, bi = set(a.incs), set(b.incs)
        return bool(
            aw & (br | bw | bi)
            or (ar | ai) & bw
            or ai & br
            or ar & bi
        )
    aw = set(a.writes) | set(a.incs)
    bw = set(b.writes) | set(b.incs)
    return bool(aw & br or ar & bw or aw & bw)


@dataclass(frozen=True)
class LoopProgram:
    """An ordered sequence of steps plus subset metadata.

    ``partitions`` documents which named subsets exactly partition which
    iteration space (e.g. ``{"cells": ("boundary_cells", "interior_cells")}``)
    so executors can validate the split they are handed covers every element
    exactly once.
    """

    name: str
    steps: tuple[Step, ...]
    partitions: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[Step]:
        return iter(self.steps)

    def loop_names(self) -> tuple[str, ...]:
        """Distinct loop names, in first-appearance order."""
        seen: dict[str, None] = {}
        for step in self.steps:
            if isinstance(step, LoopStep):
                seen.setdefault(step.name, None)
        return tuple(seen)

    def subset_names(self) -> tuple[str, ...]:
        """Distinct subset names referenced by any loop step."""
        seen: dict[str, None] = {}
        for step in self.steps:
            if isinstance(step, LoopStep) and step.subset is not None:
                seen.setdefault(step.subset, None)
        return tuple(seen)

    def edges(self, *, commute_incs: bool = False) -> tuple[tuple[int, ...], ...]:
        """Direct-predecessor indices per step, derived from footprints.

        Conflict edges are transitively reduced: an edge ``j -> i`` is
        dropped when a path ``j -> k -> i`` already orders the pair, so
        executors schedule against the sparsest equivalent DAG.
        ``commute_incs`` relaxes increment-increment conflicts (see
        :func:`steps_conflict`) — only safe for consumers that serialize
        increments some other way (simulated emission, future-based
        backends), never for the real-thread executors.
        """
        n = len(self.steps)
        preds: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            for j in range(i):
                if steps_conflict(
                    self.steps[j], self.steps[i], commute_incs=commute_incs
                ):
                    preds[i].append(j)
        # Transitive reduction over the (small) step DAG.
        reach: list[set[int]] = [set() for _ in range(n)]
        for i in range(n):
            for j in preds[i]:
                reach[i].add(j)
                reach[i] |= reach[j]
        reduced: list[tuple[int, ...]] = []
        for i in range(n):
            direct = []
            for j in preds[i]:
                covered = any(
                    j in reach[k] for k in preds[i] if k != j
                )
                if not covered:
                    direct.append(j)
            reduced.append(tuple(direct))
        return tuple(reduced)

    def unrolled_edges(
        self, repeats: int, *, commute_incs: bool = False
    ) -> tuple[tuple[int, ...], ...]:
        """Edges of the program repeated ``repeats`` times back to back.

        Cross-repeat conflicts (this timestep's first loops reading what the
        previous timestep's last loops wrote) become ordinary edges into the
        earlier copy, which is how emitters and schedulers chain timesteps
        without a global barrier between them.
        """
        if repeats < 1:
            raise ValidationError(f"repeats must be >= 1, got {repeats}")
        unrolled = LoopProgram(
            name=f"{self.name}x{repeats}",
            steps=self.steps * repeats,
            partitions=self.partitions,
        )
        return unrolled.edges(commute_incs=commute_incs)

    def validate(self) -> None:
        """Structural checks: exchange start/wait pairing per channel."""
        inflight: set[str] = set()
        for step in self.steps:
            if not isinstance(step, ExchangeStep):
                continue
            if step.phase == "start":
                if step.op in inflight:
                    raise ValidationError(
                        f"{step.op} exchange started twice without a wait"
                    )
                inflight.add(step.op)
            elif step.phase == "wait":
                if step.op not in inflight:
                    raise ValidationError(
                        f"{step.op} wait without a matching start"
                    )
                inflight.discard(step.op)
            elif step.op in inflight:
                raise ValidationError(
                    f"blocking {step.op} exchange while one is in flight"
                )
        if inflight:
            raise ValidationError(
                f"program ends with in-flight exchange(s): {sorted(inflight)}"
            )

    def describe(self) -> str:
        loops = sum(1 for s in self.steps if isinstance(s, LoopStep))
        comms = len(self.steps) - loops
        return (
            f"program({self.name}: {loops} loop steps, {comms} exchange "
            f"steps, {len(self.subset_names())} subsets)"
        )
