"""Validation helpers and the exception hierarchy shared across subpackages.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library errors without also swallowing programming errors.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (bad shape, range, or type)."""


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise :class:`ValidationError` unless ``value`` is an ``expected`` instance."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ValidationError(
            f"{name} must be {exp}, got {type(value).__name__}: {value!r}"
        )


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise :class:`ValidationError` unless ``value`` is positive.

    With ``strict=False`` zero is accepted.
    """
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    lo_inclusive: bool = True,
    hi_inclusive: bool = True,
) -> None:
    """Raise :class:`ValidationError` unless ``lo (<)= value (<)= hi``."""
    ok_lo = value >= lo if lo_inclusive else value > lo
    ok_hi = value <= hi if hi_inclusive else value < hi
    if not (ok_lo and ok_hi):
        lb = "[" if lo_inclusive else "("
        rb = "]" if hi_inclusive else ")"
        raise ValidationError(f"{name} must be in {lb}{lo}, {hi}{rb}, got {value!r}")
