"""Small wall-clock timing helper used by the benchmark harness."""

from __future__ import annotations

import time


class WallTimer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def restart(self) -> None:
        """Reset the start point for incremental measurements."""
        self._start = time.perf_counter()

    def lap(self) -> float:
        """Seconds since construction/:meth:`restart` without stopping."""
        assert self._start is not None, "timer not started"
        return time.perf_counter() - self._start
