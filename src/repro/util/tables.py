"""Plain-text table and series rendering for the experiment harness.

The paper reports figures; we regenerate the underlying series and render them
as aligned ASCII tables plus a rough inline plot so results are readable in a
terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


class Table:
    """An aligned plain-text table.

    >>> t = Table(["threads", "time"])
    >>> t.add_row([1, 10.0])
    >>> t.add_row([2, 5.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    threads | time
    --------+-----
          1 | 10.0
          2 | 5.5
    """

    def __init__(self, columns: Sequence[str], *, float_fmt: str = "{:.4g}") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.float_fmt = float_fmt
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        cells = [self._fmt(v) for v in values]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def _fmt(self, v: Any) -> str:
        if isinstance(v, float):
            return self.float_fmt.format(v)
        return str(v)

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows), 1)
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip()
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for row in self.rows:
            lines.append(
                " | ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """One-line rendering of an (x, y) series, used in experiment logs."""
    pairs = ", ".join(f"{x:g}:{y:.4g}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render multiple (x, y) series as a crude ASCII scatter plot.

    Each series gets a single marker character. Intended for quick visual
    confirmation of curve shapes (who wins, where the knee is), not precision.
    """
    markers = "ox+*#@%&"
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        return "(empty plot)"
    xmin, xmax = min(all_x), max(all_x)
    ymin, ymax = min(all_y), max(all_y)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (name, (xs, ys)), marker in zip(series.items(), markers):
        legend.append(f"{marker}={name}")
        for x, y in zip(xs, ys):
            col = int((x - xmin) / xspan * (width - 1))
            row = height - 1 - int((y - ymin) / yspan * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y in [{ymin:.4g}, {ymax:.4g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x in [{xmin:g}, {xmax:g}]   " + "  ".join(legend))
    return "\n".join(lines)
