"""Shared utilities: seeded RNG, table rendering, timing, validation helpers."""

from repro.util.rng import seeded_rng, derive_seed
from repro.util.tables import Table, format_series, ascii_plot
from repro.util.timing import WallTimer
from repro.util.validate import (
    check_positive,
    check_in_range,
    check_type,
    ReproError,
    ValidationError,
)

__all__ = [
    "seeded_rng",
    "derive_seed",
    "Table",
    "format_series",
    "ascii_plot",
    "WallTimer",
    "check_positive",
    "check_in_range",
    "check_type",
    "ReproError",
    "ValidationError",
]
