"""Deterministic random number generation.

All stochastic pieces of the library (mesh perturbation, synthetic task cost
jitter, randomized property inputs) draw from generators produced here so that
experiments are exactly reproducible run to run.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seed used by every experiment unless the caller overrides it.
DEFAULT_SEED = 20160816  # ICPP 2016 conference date


def seeded_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` with a fixed default seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(base: int, *labels: object) -> int:
    """Derive a stable sub-seed from a base seed and a sequence of labels.

    Hashing (rather than e.g. ``base + hash(label)``) keeps the derivation
    stable across processes and Python versions, and decorrelates streams for
    nearby labels.
    """
    h = hashlib.sha256()
    h.update(str(base).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "little")
