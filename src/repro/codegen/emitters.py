"""Per-target code emitters.

Each emitter turns one :class:`~repro.codegen.ir.ParLoopIR` into the source
of a generated ``op_par_loop_<name>`` function. The generated bodies are the
Python analogues of the paper's code figures:

- ``seq`` — plain element loop;
- ``openmp`` — Fig 5: fork-join over the blocks of each color (the
  ``#pragma omp parallel for`` structure);
- ``foreach`` — Fig 6: ``hpx::parallel::for_each(par, ...)`` with the auto
  partitioner; Fig 7 when a static chunk size is requested;
- ``hpx_async`` — Fig 8 (direct loops: ``async`` + ``for_each(par)`` over
  per-thread ranges) and Fig 9 (indirect loops: ``for_each(par(task))``);
- ``hpx_dataflow`` — Figs 12–13: ``dataflow(unwrapped(...), futures...)``
  with the dependence bookkeeping of the modified OP2 API.

Generated functions keep OP2's calling convention
``op_par_loop_<name>(kernel, name, set, *args)`` so the application rewrite
is a pure call-target rename.
"""

from __future__ import annotations

from repro.codegen.ir import ParLoopIR


def _header(loop: ParLoopIR, flavor: str) -> str:
    kind = "direct" if loop.is_direct else "indirect"
    return (
        f"def {loop.generated_name}(kernel, name, set_, *args):\n"
        f'    """Generated {flavor} implementation of the {kind} loop '
        f'{loop.name!r}."""\n'
        f"    loop = ParLoop(kernel=kernel, name=name, set_=set_, args=tuple(args))\n"
    )


def emit_seq(loop: ParLoopIR) -> str:
    return _header(loop, "sequential") + (
        "    execute_loop(loop)\n"
    )


def emit_openmp(loop: ParLoopIR) -> str:
    # Paper Fig 5: one '#pragma omp parallel for' per color over its blocks;
    # the implicit barrier is the end of the (emulated) parallel region.
    return _header(loop, "OpenMP fork-join") + (
        "    rt = get_op2_runtime()\n"
        "    plan = rt.plans.get(set_, list(args), rt.block_size)\n"
        "    for color_blocks in plan.classes:\n"
        "        nblocks = len(color_blocks)\n"
        "        # '#pragma omp parallel for' over the blocks of this color\n"
        "        for blockIdx in range(nblocks):\n"
        "            blockId = color_blocks[blockIdx]\n"
        "            execute_loop(loop, plan.block_elements(blockId))\n"
        "        # implicit global barrier at the end of the parallel region\n"
    )


def emit_foreach(loop: ParLoopIR, static_chunk: int | None = None) -> str:
    # Paper Fig 6 (auto chunking) / Fig 7 (static_chunk_size scs(size)).
    if static_chunk is None:
        policy = "par"
        note = "# auto partitioner estimates the chunk size (Fig 6)\n"
    else:
        policy = f"par.with_(StaticChunkSize({static_chunk}))"
        note = f"# static_chunk_size scs({static_chunk}) chosen up front (Fig 7)\n"
    return _header(loop, "hpx::parallel::for_each(par)") + (
        "    rt = get_op2_runtime()\n"
        "    plan = rt.plans.get(set_, list(args), rt.block_size)\n"
        f"    {note.strip()}\n"
        "    for color_blocks in plan.classes:\n"
        "        nblocks = len(color_blocks)\n"
        "        def body(blockIdx, _blocks=color_blocks):\n"
        "            blockId = _blocks[blockIdx]\n"
        "            execute_loop(loop, plan.block_elements(blockId))\n"
        f"        for_each({policy}, range(nblocks), body)\n"
        "        # for_each(par) joins before returning: fork-join barrier\n"
    )


def emit_async(loop: ParLoopIR) -> str:
    if loop.is_direct:
        # Paper Fig 8: async(...) wrapping for_each(par) over per-thread
        # contiguous ranges; the returned future represents the loop.
        return _header(loop, "async + for_each(par)") + (
            "    def run():\n"
            "        nthreads = get_runtime().num_threads\n"
            "        bounds = [set_.size * t // nthreads for t in range(nthreads + 1)]\n"
            "        def body(thr):\n"
            "            start, finish = bounds[thr], bounds[thr + 1]\n"
            "            if finish > start:\n"
            "                execute_loop(loop, np.arange(start, finish))\n"
            "        for_each(par, range(nthreads), body)\n"
            "    return async_(run, name=name)\n"
        )
    # Paper Fig 9: for_each(par(task)) returning a future; multi-color plans
    # orchestrate colors sequentially inside one asynchronous task.
    return _header(loop, "for_each(par(task))") + (
        "    rt = get_op2_runtime()\n"
        "    plan = rt.plans.get(set_, list(args), rt.block_size)\n"
        "    if plan.ncolors <= 1:\n"
        "        blocks = plan.classes[0] if plan.classes else []\n"
        "        def body(blockIdx):\n"
        "            execute_loop(loop, plan.block_elements(blocks[blockIdx]))\n"
        "        return for_each(par_task, range(len(blocks)), body)\n"
        "    def run():\n"
        "        for color_blocks in plan.classes:\n"
        "            def body(blockIdx, _blocks=color_blocks):\n"
        "                execute_loop(loop, plan.block_elements(_blocks[blockIdx]))\n"
        "            for_each(par, range(len(color_blocks)), body)\n"
        "    return async_(run, name=name)\n"
    )


def emit_dataflow(loop: ParLoopIR) -> str:
    # Paper Figs 12-13: the modified op_arg_dat passes futures; dataflow
    # delays the loop until every input future is ready and returns the
    # future of its output. The tracker is the modified API's bookkeeping.
    return _header(loop, "dataflow") + (
        "    token = next(_dataflow_ids)\n"
        "    dep_ids = _dataflow_tracker.dependencies(list(loop.args), token=token)\n"
        "    deps = [_dataflow_futures[d] for d in dep_ids if d in _dataflow_futures]\n"
        "    def body(*_ready):\n"
        "        execute_loop(loop)\n"
        "    fut = dataflow(body, *deps, name=name)\n"
        "    _dataflow_futures[token] = fut\n"
        "    return fut\n"
    )


def emit_dataflow_epilogue() -> str:
    """Module-level state + finish() for the dataflow target."""
    return (
        "_dataflow_tracker = DatDependencyTracker()\n"
        "_dataflow_futures = {}\n"
        "_dataflow_ids = itertools.count()\n"
        "\n\n"
        "def dataflow_finish():\n"
        '    """Wait for every outstanding loop (end-of-run synchronization)."""\n'
        "    for token in _dataflow_tracker.outstanding():\n"
        "        fut = _dataflow_futures.get(token)\n"
        "        if fut is not None:\n"
        "            fut.get()\n"
        "    get_runtime().executor.drain()\n"
    )
