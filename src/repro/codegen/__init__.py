"""Source-to-source translation of OP2 applications.

OP2 is an *active library*: a translator rewrites the application's
``op_par_loop`` call sites into generated parallel loop implementations for a
chosen target. The paper's contribution is precisely a modification of OP2's
Python translator to emit HPX constructs instead of ``#pragma omp parallel
for``. This subpackage reimplements that translator:

- :mod:`~repro.codegen.ir` — the loop intermediate representation;
- :mod:`~repro.codegen.parser` — AST-level extraction of ``op_par_loop``
  call sites from application source;
- :mod:`~repro.codegen.emitters` — one code emitter per target
  (seq / openmp / foreach / async / dataflow), each producing the Python
  analogue of the paper's Figs 5–9 and 12–13;
- :mod:`~repro.codegen.translator` — drives parse -> emit -> assemble and
  materializes a runnable module.

Generated modules are real code: the tests import them and check they compute
exactly what the hand-written API path computes.
"""

from repro.codegen.ir import ArgIR, ParLoopIR
from repro.codegen.parser import parse_loops, CodegenError
from repro.codegen.translator import translate_source, generate_module, TARGETS

__all__ = [
    "ArgIR",
    "ParLoopIR",
    "parse_loops",
    "CodegenError",
    "translate_source",
    "generate_module",
    "TARGETS",
]
