"""AST-level extraction of ``op_par_loop`` call sites from application source.

The translator never executes the application — it reads the source, finds
calls of the form::

    op_par_loop(<kernel expr>, "<name>", <set expr>,
                op_arg_dat(<dat>, <idx>, <map or OP_ID>, <ACCESS>),
                ...,
                op_arg_gbl(<gbl>, <ACCESS>))

and lifts each into a :class:`~repro.codegen.ir.ParLoopIR`. Malformed call
sites produce :class:`CodegenError` with the offending line, mirroring the
diagnostics of OP2's real translator.
"""

from __future__ import annotations

import ast

from repro.codegen.ir import ArgIR, ParLoopIR
from repro.util.validate import ReproError

ACCESS_NAMES = frozenset(
    ["OP_READ", "OP_WRITE", "OP_RW", "OP_INC", "OP_MIN", "OP_MAX"]
)


class CodegenError(ReproError):
    """The translator could not understand an op_par_loop call site."""


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _access_name(node: ast.expr, lineno: int) -> str:
    if isinstance(node, ast.Name) and node.id in ACCESS_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in ACCESS_NAMES:
        return node.attr
    raise CodegenError(
        f"line {lineno}: expected an access mode (OP_READ/...), got "
        f"{ast.unparse(node)!r}"
    )


def _int_literal(node: ast.expr, lineno: int, what: str) -> int:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    raise CodegenError(
        f"line {lineno}: {what} must be an integer literal, got "
        f"{ast.unparse(node)!r}"
    )


def _parse_arg(node: ast.expr, lineno: int) -> ArgIR:
    if not isinstance(node, ast.Call):
        raise CodegenError(
            f"line {lineno}: loop argument must be op_arg_dat/op_arg_gbl, "
            f"got {ast.unparse(node)!r}"
        )
    fname = _call_name(node)
    if fname == "op_arg_gbl":
        if len(node.args) != 2:
            raise CodegenError(
                f"line {lineno}: op_arg_gbl takes (global, access), got "
                f"{len(node.args)} args"
            )
        return ArgIR(
            dat_src=ast.unparse(node.args[0]),
            idx=-1,
            map_src=None,
            access=_access_name(node.args[1], lineno),
            is_global=True,
        )
    if fname == "op_arg_dat":
        if len(node.args) != 4:
            raise CodegenError(
                f"line {lineno}: op_arg_dat takes (dat, idx, map, access), "
                f"got {len(node.args)} args"
            )
        dat_src = ast.unparse(node.args[0])
        idx = _int_literal(node.args[1], lineno, "map index")
        map_node = node.args[2]
        is_op_id = (isinstance(map_node, ast.Name) and map_node.id == "OP_ID") or (
            isinstance(map_node, ast.Attribute) and map_node.attr == "OP_ID"
        ) or (isinstance(map_node, ast.Constant) and map_node.value is None)
        map_src = None if is_op_id else ast.unparse(map_node)
        if map_src is None and idx != -1:
            raise CodegenError(
                f"line {lineno}: direct argument {dat_src!r} must use idx=-1"
            )
        return ArgIR(
            dat_src=dat_src,
            idx=idx,
            map_src=map_src,
            access=_access_name(node.args[3], lineno),
        )
    raise CodegenError(
        f"line {lineno}: loop argument must be op_arg_dat/op_arg_gbl, got "
        f"call to {fname!r}"
    )


def parse_loops(source: str) -> list[ParLoopIR]:
    """All ``op_par_loop`` call sites in ``source``, in textual order."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise CodegenError(f"input source does not parse: {exc}") from exc
    loops: list[ParLoopIR] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or _call_name(node) != "op_par_loop":
            continue
        lineno = node.lineno
        if len(node.args) < 3:
            raise CodegenError(
                f"line {lineno}: op_par_loop needs (kernel, name, set, args...)"
            )
        name_node = node.args[1]
        if not (
            isinstance(name_node, ast.Constant) and isinstance(name_node.value, str)
        ):
            raise CodegenError(
                f"line {lineno}: loop name must be a string literal, got "
                f"{ast.unparse(name_node)!r}"
            )
        loops.append(
            ParLoopIR(
                name=name_node.value,
                kernel_src=ast.unparse(node.args[0]),
                set_src=ast.unparse(node.args[2]),
                args=tuple(_parse_arg(a, lineno) for a in node.args[3:]),
                lineno=lineno,
            )
        )
    return loops


def rewrite_calls(source: str) -> str:
    """Rewrite each ``op_par_loop(k, "x", ...)`` to ``op_par_loop_x(k, ...)``.

    This is the application-side rewrite OP2's translator performs: the call
    target becomes the generated per-loop function.
    """

    class Rewriter(ast.NodeTransformer):
        def visit_Call(self, node: ast.Call) -> ast.Call:
            self.generic_visit(node)
            if _call_name(node) == "op_par_loop" and len(node.args) >= 3:
                name_node = node.args[1]
                if isinstance(name_node, ast.Constant) and isinstance(
                    name_node.value, str
                ):
                    node.func = ast.Name(
                        id=f"op_par_loop_{name_node.value}", ctx=ast.Load()
                    )
            return node

    tree = ast.parse(source)
    return ast.unparse(Rewriter().visit(tree))
