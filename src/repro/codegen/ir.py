"""The loop intermediate representation the translator works on."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ArgIR:
    """One ``op_arg_dat``/``op_arg_gbl`` call site, as source snippets."""

    #: source text of the dat/global expression (e.g. ``ctx.p_q``).
    dat_src: str
    #: map index literal (-1 for direct).
    idx: int
    #: source text of the map expression, or None for OP_ID/global.
    map_src: str | None
    #: access mode name: "OP_READ", "OP_WRITE", "OP_RW", "OP_INC", ...
    access: str
    #: True for op_arg_gbl call sites.
    is_global: bool = False

    @property
    def is_direct(self) -> bool:
        return self.map_src is None and not self.is_global

    @property
    def is_indirect(self) -> bool:
        return self.map_src is not None

    def reconstruct(self) -> str:
        """Source text that recreates this argument at run time."""
        if self.is_global:
            return f"op_arg_gbl({self.dat_src}, {self.access})"
        map_part = self.map_src if self.map_src is not None else "OP_ID"
        return f"op_arg_dat({self.dat_src}, {self.idx}, {map_part}, {self.access})"


@dataclass(frozen=True)
class ParLoopIR:
    """One ``op_par_loop`` call site."""

    #: loop name string literal ("save_soln").
    name: str
    #: source text of the kernel expression.
    kernel_src: str
    #: source text of the iteration-set expression.
    set_src: str
    args: tuple[ArgIR, ...] = field(default_factory=tuple)
    #: 1-based line number of the call in the input source.
    lineno: int = 0

    @property
    def is_direct(self) -> bool:
        """Paper §II-A: direct iff no argument is accessed through a map."""
        return all(not a.is_indirect for a in self.args)

    @property
    def has_indirect_reduction(self) -> bool:
        return any(
            a.is_indirect and a.access in ("OP_INC", "OP_MIN", "OP_MAX")
            for a in self.args
        )

    @property
    def generated_name(self) -> str:
        """Name of the generated loop function (OP2's naming convention)."""
        return f"op_par_loop_{self.name}"

    def describe(self) -> str:
        kind = "direct" if self.is_direct else "indirect"
        return f"{self.name} ({kind}, {len(self.args)} args, line {self.lineno})"
