"""Application sources used as translator input.

``AIRFOIL_SOURCE`` is the Airfoil timestep written exactly as the paper's
Fig 4 application code: plain ``op_par_loop`` calls against a context object
``ctx`` holding the sets/maps/dats. Targets that return futures handle their
own synchronization (async: end-of-call get via the returned futures being
driven at ``finish``; dataflow: tracker-driven), so one source serves every
backend — which is the whole point of an active library.
"""

AIRFOIL_SOURCE = '''\
def airfoil_step(ctx):
    """One Airfoil timestep (paper Fig 4): five op_par_loop calls."""
    r_save = op_par_loop(ctx.kernels["save_soln"], "save_soln", ctx.cells,
        op_arg_dat(ctx.p_q, -1, OP_ID, OP_READ),
        op_arg_dat(ctx.p_qold, -1, OP_ID, OP_WRITE))
    results = [r_save]
    for _k in range(2):
        r_adt = op_par_loop(ctx.kernels["adt_calc"], "adt_calc", ctx.cells,
            op_arg_dat(ctx.p_x, 0, ctx.pcell, OP_READ),
            op_arg_dat(ctx.p_x, 1, ctx.pcell, OP_READ),
            op_arg_dat(ctx.p_x, 2, ctx.pcell, OP_READ),
            op_arg_dat(ctx.p_x, 3, ctx.pcell, OP_READ),
            op_arg_dat(ctx.p_q, -1, OP_ID, OP_READ),
            op_arg_dat(ctx.p_adt, -1, OP_ID, OP_WRITE))
        ctx.sync(r_adt)
        r_res = op_par_loop(ctx.kernels["res_calc"], "res_calc", ctx.edges,
            op_arg_dat(ctx.p_x, 0, ctx.pedge, OP_READ),
            op_arg_dat(ctx.p_x, 1, ctx.pedge, OP_READ),
            op_arg_dat(ctx.p_q, 0, ctx.pecell, OP_READ),
            op_arg_dat(ctx.p_q, 1, ctx.pecell, OP_READ),
            op_arg_dat(ctx.p_adt, 0, ctx.pecell, OP_READ),
            op_arg_dat(ctx.p_adt, 1, ctx.pecell, OP_READ),
            op_arg_dat(ctx.p_res, 0, ctx.pecell, OP_INC),
            op_arg_dat(ctx.p_res, 1, ctx.pecell, OP_INC))
        r_bres = op_par_loop(ctx.kernels["bres_calc"], "bres_calc", ctx.bedges,
            op_arg_dat(ctx.p_x, 0, ctx.pbedge, OP_READ),
            op_arg_dat(ctx.p_x, 1, ctx.pbedge, OP_READ),
            op_arg_dat(ctx.p_q, 0, ctx.pbecell, OP_READ),
            op_arg_dat(ctx.p_adt, 0, ctx.pbecell, OP_READ),
            op_arg_dat(ctx.p_res, 0, ctx.pbecell, OP_INC),
            op_arg_dat(ctx.p_bound, -1, OP_ID, OP_READ),
            op_arg_gbl(ctx.g_qinf, OP_READ))
        ctx.sync(r_res, r_bres, results[0])
        r_update = op_par_loop(ctx.kernels["update"], "update", ctx.cells,
            op_arg_dat(ctx.p_qold, -1, OP_ID, OP_READ),
            op_arg_dat(ctx.p_q, -1, OP_ID, OP_WRITE),
            op_arg_dat(ctx.p_res, -1, OP_ID, OP_RW),
            op_arg_dat(ctx.p_adt, -1, OP_ID, OP_READ),
            op_arg_gbl(ctx.g_rms, OP_INC))
        ctx.sync(r_update)
        results.extend([r_adt, r_res, r_bres, r_update])
    return results
'''


class AirfoilContext:
    """The ``ctx`` object ``AIRFOIL_SOURCE`` is written against.

    Wraps an :class:`~repro.airfoil.app.AirfoilApp`'s sets/maps/dats and
    provides the ``sync`` hook: waiting for futures under the async target,
    a no-op under dataflow (dependence tracking already orders loops) and
    under the synchronous targets (nothing to wait for).
    """

    def __init__(self, app, mesh, target: str) -> None:
        self.kernels = app.kernels
        self.cells = mesh.cells
        self.edges = mesh.edges
        self.bedges = mesh.bedges
        self.pcell = mesh.pcell
        self.pedge = mesh.pedge
        self.pecell = mesh.pecell
        self.pbedge = mesh.pbedge
        self.pbecell = mesh.pbecell
        self.p_x = app.p_x
        self.p_bound = app.p_bound
        self.p_q = app.p_q
        self.p_qold = app.p_qold
        self.p_res = app.p_res
        self.p_adt = app.p_adt
        self.g_rms = app.g_rms
        self.g_qinf = app.g_qinf
        self._wait = target == "hpx_async"

    def sync(self, *futures) -> None:
        if not self._wait:
            return
        for f in futures:
            if f is not None:
                f.get()
