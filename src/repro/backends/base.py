"""Backend interface and the shared gather/compute/scatter execution core.

Every backend ultimately runs kernels through :func:`execute_loop`:

1. **gather** — for each argument, materialize a per-element batch buffer:
   direct args view/copy rows of the dat, indirect args gather through the
   map column, reduction args get identity-initialized buffers;
2. **compute** — invoke the vectorized kernel on the batch (or the elemental
   kernel row by row);
3. **scatter** — write results back: assignment for WRITE/RW, duplicate-safe
   ``np.add.at`` for indirect increments, and associative combination for
   global reductions.

This factorization makes the numerical result of every backend identical by
construction; backends differ only in how the iteration space is cut up and
ordered — which is precisely the paper's experimental variable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.op2.access import Access
from repro.op2.args import Arg
from repro.op2.dat import OpGlobal
from repro.op2.exceptions import Op2Error
from repro.op2.parloop import ParLoop

if TYPE_CHECKING:  # pragma: no cover
    from repro.hpx.future import Future
    from repro.op2.plan import Plan
    from repro.op2.runtime import Op2Runtime
    from repro.sim.machine import MachineConfig
    from repro.sim.task import TaskGraph
    from repro.op2.runtime import LoopLog


def _target_indices(arg: Arg, elements: np.ndarray | slice) -> np.ndarray | slice:
    """Row indices of ``arg.dat`` touched by ``elements`` of the loop set."""
    if arg.is_direct:
        return elements
    assert arg.map_ is not None
    return arg.map_.values[elements, arg.idx]


def gather_args(
    loop: ParLoop, elements: np.ndarray | slice, n: int
) -> tuple[list[np.ndarray], list[tuple[Arg, Any, np.ndarray]]]:
    """Build kernel input buffers; returns (buffers, scatter work list)."""
    buffers: list[np.ndarray] = []
    writebacks: list[tuple[Arg, Any, np.ndarray]] = []
    for arg in loop.args:
        if arg.is_global:
            gbl = arg.dat
            assert isinstance(gbl, OpGlobal)
            if arg.access is Access.READ:
                buf = gbl.data  # shared read-only constant
            elif arg.access is Access.INC:
                buf = np.zeros((n, gbl.dim), dtype=gbl.data.dtype)
            elif arg.access is Access.MIN:
                buf = np.full((n, gbl.dim), np.inf, dtype=gbl.data.dtype)
            elif arg.access is Access.MAX:
                buf = np.full((n, gbl.dim), -np.inf, dtype=gbl.data.dtype)
            else:  # pragma: no cover - blocked in op_arg_gbl
                raise Op2Error(f"unsupported global access {arg.access}")
            buffers.append(buf)
            if arg.access is not Access.READ:
                writebacks.append((arg, None, buf))
            continue

        dat = arg.dat
        tgt = _target_indices(arg, elements)
        if arg.access is Access.READ:
            buf = dat.data[tgt]  # view for direct slices, copy for gathers
        elif arg.access is Access.RW:
            buf = np.array(dat.data[tgt])  # private copy, scattered back
        elif arg.access is Access.WRITE:
            buf = np.empty((n, dat.dim), dtype=dat.data.dtype)
        elif arg.access is Access.INC:
            buf = np.zeros((n, dat.dim), dtype=dat.data.dtype)
        elif arg.access is Access.MIN:
            buf = np.full((n, dat.dim), np.inf, dtype=dat.data.dtype)
        elif arg.access is Access.MAX:
            buf = np.full((n, dat.dim), -np.inf, dtype=dat.data.dtype)
        else:  # pragma: no cover - exhaustive
            raise Op2Error(f"unsupported access {arg.access}")
        buffers.append(buf)
        if arg.access.writes:
            writebacks.append((arg, tgt, buf))
    return buffers, writebacks


def scatter_args(
    writebacks: list[tuple[Arg, Any, np.ndarray]],
    global_sink: list[tuple[Arg, np.ndarray]] | None = None,
) -> None:
    """Write kernel outputs back into dats/globals.

    When ``global_sink`` is given, global reductions are *not* applied to the
    shared ``OpGlobal`` storage; instead the batch-reduced partial is appended
    to the sink. Threaded execution uses this to keep concurrent tasks from
    racing on globals and to combine partials in a fixed (deterministic)
    order on the calling thread.
    """
    for arg, tgt, buf in writebacks:
        if arg.is_global:
            gbl = arg.dat
            assert isinstance(gbl, OpGlobal)
            if global_sink is not None:
                if arg.access is Access.INC:
                    global_sink.append((arg, buf.sum(axis=0)))
                elif arg.access is Access.MIN:
                    global_sink.append((arg, buf.min(axis=0)))
                elif arg.access is Access.MAX:
                    global_sink.append((arg, buf.max(axis=0)))
                continue
            if arg.access is Access.INC:
                gbl.data += buf.sum(axis=0)
            elif arg.access is Access.MIN:
                np.minimum(gbl.data, buf.min(axis=0), out=gbl.data)
            elif arg.access is Access.MAX:
                np.maximum(gbl.data, buf.max(axis=0), out=gbl.data)
            continue
        dat = arg.dat
        if arg.access in (Access.WRITE, Access.RW):
            dat.data[tgt] = buf
        elif arg.access is Access.INC:
            if arg.is_direct:
                dat.data[tgt] += buf  # direct: no duplicate targets possible
            else:
                np.add.at(dat.data, tgt, buf)
        elif arg.access is Access.MIN:
            if arg.is_direct:
                np.minimum(dat.data[tgt], buf, out=dat.data[tgt])
            else:
                np.minimum.at(dat.data, tgt, buf)
        elif arg.access is Access.MAX:
            if arg.is_direct:
                np.maximum(dat.data[tgt], buf, out=dat.data[tgt])
            else:
                np.maximum.at(dat.data, tgt, buf)


def apply_global_partials(partials: list[tuple[Arg, np.ndarray]]) -> None:
    """Fold deferred global-reduction partials into their ``OpGlobal``s.

    Partials are combined strictly in list order; threaded execution builds
    the list in task-submission order, which makes MIN/MAX/INC reductions
    deterministic regardless of worker scheduling.
    """
    for arg, part in partials:
        gbl = arg.dat
        assert isinstance(gbl, OpGlobal)
        if arg.access is Access.INC:
            gbl.data += part
        elif arg.access is Access.MIN:
            np.minimum(gbl.data, part, out=gbl.data)
        elif arg.access is Access.MAX:
            np.maximum(gbl.data, part, out=gbl.data)


def execute_loop(
    loop: ParLoop,
    elements: np.ndarray | slice | None = None,
    mode: str = "vectorized",
    *,
    global_sink: list[tuple[Arg, np.ndarray]] | None = None,
    bump_versions: bool = True,
) -> None:
    """Run ``loop`` over ``elements`` (default: the whole set).

    ``mode="vectorized"`` uses the kernel's numpy batch implementation;
    ``mode="elemental"`` applies the scalar kernel row by row (reference
    semantics; used by tests and tiny meshes).

    ``global_sink``/``bump_versions`` support threaded execution: global
    partials can be collected instead of applied (see :func:`scatter_args`)
    and dat version bumps deferred to the orchestrating thread.
    """
    if elements is None:
        elements = slice(0, loop.set_.size)
    if isinstance(elements, slice):
        n = (elements.stop or loop.set_.size) - (elements.start or 0)
    else:
        n = len(elements)
    if n == 0:
        return
    buffers, writebacks = gather_args(loop, elements, n)

    if mode == "vectorized":
        if not loop.kernel.has_vectorized:
            raise Op2Error(
                f"kernel {loop.kernel.name!r} has no vectorized form; "
                f"use mode='elemental'"
            )
        loop.kernel.vectorized(*buffers)
    elif mode == "elemental":
        gbl_read = [a.is_global and a.access is Access.READ for a in loop.args]
        for k in range(n):
            row_args = [
                buf if is_const else buf[k]
                for buf, is_const in zip(buffers, gbl_read)
            ]
            loop.kernel.elemental(*row_args)
    else:
        raise Op2Error(f"unknown execution mode {mode!r}")

    scatter_args(writebacks, global_sink=global_sink)
    if bump_versions:
        # Once per distinct dat: a dat named by two writing args of one loop
        # (res through two map columns) is still a single write event.
        seen: set[int] = set()
        for arg in loop.args:
            if not arg.is_global and arg.access.writes and id(arg.dat) not in seen:
                seen.add(id(arg.dat))
                arg.dat.bump_version()


def execute_loop_by_plan(loop: ParLoop, plan: "Plan", mode: str = "vectorized") -> None:
    """Execute block by block in color order (validates plan machinery)."""
    for color_class in plan.classes:
        for b in color_class:
            execute_loop(loop, plan.block_elements(b), mode=mode)


class Backend(ABC):
    """One loop-parallelization strategy: execution + task-graph emission."""

    #: registry key; subclasses override.
    name: str = "abstract"
    #: True when run_loop returns futures the application may sync on.
    asynchronous: bool = False

    def on_attach(self, rt: "Op2Runtime") -> None:
        """Hook: called once when a runtime adopts this backend."""

    @abstractmethod
    def run_loop(
        self, rt: "Op2Runtime", loop: ParLoop, plan: "Plan", loop_id: int
    ) -> "Future | None":
        """Execute (or schedule) one loop; returns a future iff asynchronous."""

    def _thread_chunker(self, rt: "Op2Runtime"):
        """Decomposition policy for real-thread execution (threads mode).

        The default — an even split of each color class across workers —
        matches OpenMP's static schedule; backends with their own chunking
        story (for_each auto/static) override this.
        """
        from repro.hpx.chunking import GuessChunkSize

        return GuessChunkSize()

    def run_loop_threads(
        self, rt: "Op2Runtime", loop: ParLoop, plan: "Plan", loop_id: int
    ) -> "Future | None":
        """Execute one loop on the runtime's real thread pool.

        Color classes run as sequential fork-join batches; blocks of one
        color execute concurrently (they write disjoint rows by plan
        coloring). Synchronous backends return ``None``; async flavors
        override this to return an already-completed future so application
        drivers keep their sync structure.
        """
        from repro.backends.threaded import run_loop_threaded

        run_loop_threaded(
            rt, loop, plan, self._thread_chunker(rt), mode=self._exec_mode(rt)
        )
        return None

    def finalize(self, rt: "Op2Runtime") -> None:
        """Complete outstanding asynchronous work (no-op for sync backends)."""

    def cancel(self, rt: "Op2Runtime") -> None:
        """Drop backend-side scheduling state after an aborted session.

        Called instead of :meth:`finalize` when the session body raised.
        Backends holding futures or dependency trackers override this so a
        runtime reused by a later session does not replay stale work.
        """

    @abstractmethod
    def emit(
        self,
        log: "LoopLog",
        machine: "MachineConfig",
        num_threads: int,
        cost_model: "Any",
    ) -> "TaskGraph":
        """Emit the simulator task graph for a recorded run at ``num_threads``."""

    def _exec_mode(self, rt: "Op2Runtime") -> str:
        return "vectorized"

    def run_functional(self, rt: "Op2Runtime", loop: ParLoop, plan: "Plan") -> None:
        """Shared functional execution honoring the runtime's granularity."""
        if rt.granularity == "block":
            execute_loop_by_plan(loop, plan, mode=self._exec_mode(rt))
        else:
            execute_loop(loop, mode=self._exec_mode(rt))
