"""The dataflow backend with the modified OP2 API (paper §III-B).

``op_arg_dat`` conceptually returns a *future* of the dat (paper Fig 12);
``op_par_loop`` becomes a dataflow node whose invocation is delayed until all
argument futures are ready (Fig 13). Chained over the application, this
builds the execution tree — a dependency graph — automatically, with no
programmer-placed ``get()`` calls and no step-boundary synchronization:
``data[t]`` depends on ``data[t-1]`` exactly as in paper Fig 14.

Functionally, the backend drives :func:`repro.hpx.dataflow.dataflow` with the
producer futures computed by :class:`~repro.op2.deps.DatDependencyTracker`.

For the simulator, the emitter refines loop-level dependence to **block
level** using the plans and maps (:mod:`repro.backends.blockdeps`): a
consumer block waits only for the producer blocks that touched the same dat
rows. This is the runtime interleaving of direct and indirect loops —
including across timestep boundaries — that the paper credits for the ~21%
scaling improvement.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import Backend, execute_loop
from repro.backends.blockdeps import BlockDepCache, hazard_dats
from repro.backends.emission import add_gate, record_block_costs
from repro.hpx.dataflow import dataflow
from repro.hpx.future import Future
from repro.op2.dat import OpDat
from repro.op2.deps import DatDependencyTracker
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from repro.op2.runtime import LoopLog, LoopRecord, Op2Runtime
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph

# Shared with the measured scheduler; the emitter keeps this alias.
_hazard_dats = hazard_dats


class HpxDataflowBackend(Backend):
    """Automatic dependence-driven asynchronous execution."""

    name = "hpx_dataflow"
    asynchronous = True

    def __init__(self) -> None:
        self.tracker: DatDependencyTracker[int] = DatDependencyTracker()
        self._futures: dict[int, Future] = {}
        self._blockdep_cache = BlockDepCache()
        self._sched = None  # threads-mode LoopScheduler, created lazily

    def on_attach(self, rt: Op2Runtime) -> None:
        self.tracker.reset()
        self._futures.clear()
        self._sched = None

    def _scheduler(self, rt: Op2Runtime):
        if self._sched is None:
            from repro.backends.scheduling import LoopScheduler

            self._sched = LoopScheduler(rt, refine_blocks=True)
        return self._sched

    def run_loop(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> Future:
        mode = self._exec_mode(rt)
        dep_ids = self.tracker.dependencies(list(loop.args), token=loop_id)
        dep_futures = [self._futures[d] for d in dep_ids if d in self._futures]

        def body(*_ready: Any) -> None:
            execute_loop(loop, mode=mode)

        result = dataflow(body, *dep_futures, name=f"dataflow.{loop.name}")
        self._futures[loop_id] = result
        return result

    def run_loop_threads(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> Future:
        # Real-thread mode: every chunk is released on the pool as soon as
        # the *conflicting producer blocks* complete (block-level refinement
        # via repro.backends.blockdeps), so dependent loops interleave on
        # real threads exactly like the emitted execution tree — including
        # across timestep boundaries. No per-loop or per-color join exists
        # anywhere on this path.
        return self._scheduler(rt).schedule(
            loop, plan, self._thread_chunker(rt), self._exec_mode(rt), loop_id
        )

    def finalize(self, rt: Op2Runtime) -> None:
        if self._sched is not None:
            self._sched.finalize()
        for loop_id in self.tracker.outstanding():
            fut = self._futures.get(loop_id)
            if fut is not None:
                fut.get()
        rt.hpx.executor.drain()

    def cancel(self, rt: Op2Runtime) -> None:
        # Abandon the dependency tree: outstanding dat-futures must not feed
        # the dataflow of whatever session next reuses this runtime.
        self.tracker.reset()
        self._futures.clear()
        if self._sched is not None:
            self._sched.cancel()

    # -- emission ------------------------------------------------------------

    def _block_deps(
        self, producer: LoopRecord, consumer: LoopRecord, dat: OpDat
    ) -> list[np.ndarray]:
        """Cached consumer-block -> producer-block relation (P-independent)."""
        return self._blockdep_cache.get(producer, consumer, dat)

    def emit(
        self,
        log: LoopLog,
        machine: MachineConfig,
        num_threads: int,
        cost_model: Any,
    ) -> TaskGraph:
        graph = TaskGraph()
        tracker: DatDependencyTracker[int] = DatDependencyTracker()
        rec_by_id: dict[int, LoopRecord] = {}
        gate_of: dict[int, int] = {}
        block_tids: dict[int, dict[int, int]] = {}  # loop_id -> {block: tid}

        for rec in log.loops():
            rec_by_id[rec.loop_id] = rec
            dep_ids = tracker.dependencies(list(rec.loop.args), token=rec.loop_id)

            # Per-block producer edges plus gate-level fallbacks (global
            # reductions, empty refinements).
            extra: dict[int, set[int]] = {}
            fallback: set[int] = set()
            for pid in dep_ids:
                producer = rec_by_id[pid]
                shared = _hazard_dats(producer, rec)
                if not shared:
                    fallback.add(gate_of[pid])
                    continue
                ptids = block_tids[pid]
                for dat in shared:
                    refined = self._block_deps(producer, rec, dat)
                    for b, producer_blocks in enumerate(refined):
                        if len(producer_blocks) == 0:
                            continue
                        bucket = extra.setdefault(b, set())
                        for j in producer_blocks:
                            bucket.add(ptids[int(j)])

            costs = record_block_costs(rec, machine, num_threads, cost_model)
            mem = rec.loop.kernel.cost.mem_fraction
            tids: dict[int, int] = {}
            prev_gate: int | None = None
            all_tids: list[int] = []
            for color, color_blocks in enumerate(rec.plan.classes):
                color_tids = []
                for b in color_blocks:
                    deps = set(extra.get(b, ()))
                    deps.update(fallback)
                    if prev_gate is not None:
                        deps.add(prev_gate)
                    tid = graph.add(
                        f"{rec.loop.name}[{rec.loop_id}].blk{b}",
                        costs[b],
                        sorted(deps),
                        affinity=None,
                        kind="work",
                        loop=rec.loop.name,
                        mem_fraction=mem,
                    )
                    tids[b] = tid
                    color_tids.append(tid)
                    all_tids.append(tid)
                if rec.plan.ncolors > 1:
                    prev_gate = add_gate(
                        graph,
                        f"{rec.loop.name}[{rec.loop_id}].gate.c{color}",
                        color_tids,
                        loop=rec.loop.name,
                    )
            gate_of[rec.loop_id] = add_gate(
                graph,
                f"{rec.loop.name}[{rec.loop_id}].done",
                all_tids if all_tids else [],
                loop=rec.loop.name,
            )
            block_tids[rec.loop_id] = tids
        return graph
