"""The dataflow backend with the modified OP2 API (paper §III-B).

``op_arg_dat`` conceptually returns a *future* of the dat (paper Fig 12);
``op_par_loop`` becomes a dataflow node whose invocation is delayed until all
argument futures are ready (Fig 13). Chained over the application, this
builds the execution tree — a dependency graph — automatically, with no
programmer-placed ``get()`` calls and no step-boundary synchronization:
``data[t]`` depends on ``data[t-1]`` exactly as in paper Fig 14.

Functionally, the backend drives :func:`repro.hpx.dataflow.dataflow` with the
producer futures computed by :class:`~repro.op2.deps.DatDependencyTracker`.

For the simulator, the emitter refines loop-level dependence to **block
level** using the plans and maps (:mod:`repro.backends.blockdeps`): a
consumer block waits only for the producer blocks that touched the same dat
rows. This is the runtime interleaving of direct and indirect loops —
including across timestep boundaries — that the paper credits for the ~21%
scaling improvement.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.backends.base import Backend, execute_loop
from repro.backends.blockdeps import block_dependencies
from repro.backends.emission import add_gate, record_block_costs
from repro.hpx.dataflow import dataflow
from repro.hpx.future import Future
from repro.op2.dat import OpDat
from repro.op2.deps import DatDependencyTracker
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from repro.op2.runtime import LoopLog, LoopRecord, Op2Runtime
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph


def _hazard_dats(producer: LoopRecord, consumer: LoopRecord) -> list[OpDat]:
    """Dats shared by two loops where at least one side writes."""
    prod_access: dict[int, tuple[OpDat, bool]] = {}
    for a in producer.loop.args:
        if isinstance(a.dat, OpDat):
            dat, writes = prod_access.get(id(a.dat), (a.dat, False))
            prod_access[id(a.dat)] = (dat, writes or a.access.writes)
    out: list[OpDat] = []
    seen: set[int] = set()
    for a in consumer.loop.args:
        if not isinstance(a.dat, OpDat) or id(a.dat) in seen:
            continue
        hit = prod_access.get(id(a.dat))
        if hit is None:
            continue
        dat, prod_writes = hit
        if prod_writes or a.access.writes:
            seen.add(id(a.dat))
            out.append(dat)
    return out


class HpxDataflowBackend(Backend):
    """Automatic dependence-driven asynchronous execution."""

    name = "hpx_dataflow"
    asynchronous = True

    def __init__(self) -> None:
        self.tracker: DatDependencyTracker[int] = DatDependencyTracker()
        self._futures: dict[int, Future] = {}
        self._blockdep_cache: dict[tuple, list[np.ndarray]] = {}

    def on_attach(self, rt: Op2Runtime) -> None:
        self.tracker.reset()
        self._futures.clear()

    def run_loop(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> Future:
        mode = self._exec_mode(rt)
        dep_ids = self.tracker.dependencies(list(loop.args), token=loop_id)
        dep_futures = [self._futures[d] for d in dep_ids if d in self._futures]

        def body(*_ready: Any) -> None:
            execute_loop(loop, mode=mode)

        result = dataflow(body, *dep_futures, name=f"dataflow.{loop.name}")
        self._futures[loop_id] = result
        return result

    def run_loop_threads(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> Future:
        # Real-thread mode executes eagerly in program order — program order
        # is a correct (if conservative) linearization of the dataflow graph.
        # The dat-future tree stays a simulated-only construct; measured
        # cross-loop overlap is future work on top of the thread pool.
        from repro.backends.threaded import run_loop_threaded
        from repro.hpx.future import make_ready_future

        run_loop_threaded(
            rt, loop, plan, self._thread_chunker(rt), mode=self._exec_mode(rt)
        )
        return make_ready_future(None, rt.hpx.executor)

    def finalize(self, rt: Op2Runtime) -> None:
        for loop_id in self.tracker.outstanding():
            fut = self._futures.get(loop_id)
            if fut is not None:
                fut.get()
        rt.hpx.executor.drain()

    def cancel(self, rt: Op2Runtime) -> None:
        # Abandon the dependency tree: outstanding dat-futures must not feed
        # the dataflow of whatever session next reuses this runtime.
        self.tracker.reset()
        self._futures.clear()

    # -- emission ------------------------------------------------------------

    def _block_deps(
        self, producer: LoopRecord, consumer: LoopRecord, dat: OpDat
    ) -> list[np.ndarray]:
        """Cached consumer-block -> producer-block relation (P-independent)."""
        key = (
            producer.loop.name,
            id(producer.plan),
            consumer.loop.name,
            id(consumer.plan),
            id(dat),
        )
        deps = self._blockdep_cache.get(key)
        if deps is None:
            deps = block_dependencies(producer, consumer, dat)
            self._blockdep_cache[key] = deps
        return deps

    def emit(
        self,
        log: LoopLog,
        machine: MachineConfig,
        num_threads: int,
        cost_model: Any,
    ) -> TaskGraph:
        graph = TaskGraph()
        tracker: DatDependencyTracker[int] = DatDependencyTracker()
        rec_by_id: dict[int, LoopRecord] = {}
        gate_of: dict[int, int] = {}
        block_tids: dict[int, dict[int, int]] = {}  # loop_id -> {block: tid}

        for rec in log.loops():
            rec_by_id[rec.loop_id] = rec
            dep_ids = tracker.dependencies(list(rec.loop.args), token=rec.loop_id)

            # Per-block producer edges plus gate-level fallbacks (global
            # reductions, empty refinements).
            extra: dict[int, set[int]] = {}
            fallback: set[int] = set()
            for pid in dep_ids:
                producer = rec_by_id[pid]
                shared = _hazard_dats(producer, rec)
                if not shared:
                    fallback.add(gate_of[pid])
                    continue
                ptids = block_tids[pid]
                for dat in shared:
                    refined = self._block_deps(producer, rec, dat)
                    for b, producer_blocks in enumerate(refined):
                        if len(producer_blocks) == 0:
                            continue
                        bucket = extra.setdefault(b, set())
                        for j in producer_blocks:
                            bucket.add(ptids[int(j)])

            costs = record_block_costs(rec, machine, num_threads, cost_model)
            mem = rec.loop.kernel.cost.mem_fraction
            tids: dict[int, int] = {}
            prev_gate: int | None = None
            all_tids: list[int] = []
            for color, color_blocks in enumerate(rec.plan.classes):
                color_tids = []
                for b in color_blocks:
                    deps = set(extra.get(b, ()))
                    deps.update(fallback)
                    if prev_gate is not None:
                        deps.add(prev_gate)
                    tid = graph.add(
                        f"{rec.loop.name}[{rec.loop_id}].blk{b}",
                        costs[b],
                        sorted(deps),
                        affinity=None,
                        kind="work",
                        loop=rec.loop.name,
                        mem_fraction=mem,
                    )
                    tids[b] = tid
                    color_tids.append(tid)
                    all_tids.append(tid)
                if rec.plan.ncolors > 1:
                    prev_gate = add_gate(
                        graph,
                        f"{rec.loop.name}[{rec.loop_id}].gate.c{color}",
                        color_tids,
                        loop=rec.loop.name,
                    )
            gate_of[rec.loop_id] = add_gate(
                graph,
                f"{rec.loop.name}[{rec.loop_id}].done",
                all_tids if all_tids else [],
                loop=rec.loop.name,
            )
            block_tids[rec.loop_id] = tids
        return graph
