"""Shared task-graph emission helpers used by the backend emitters."""

from __future__ import annotations

import numpy as np

from repro.backends.costs import LoopCostModel, block_costs
from repro.op2.runtime import LoopRecord
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph


def record_block_costs(
    rec: LoopRecord,
    machine: MachineConfig,
    num_threads: int,
    cost_model: LoopCostModel,
) -> list[float]:
    """Block costs of one recorded loop at ``num_threads``."""
    return block_costs(
        cost_model, rec.loop.name, rec.loop.kernel, rec.plan, machine, num_threads
    )


def static_split(items: list[int], parts: int) -> list[list[int]]:
    """OpenMP ``schedule(static)``: near-even contiguous split into ``parts``."""
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    bounds = np.linspace(0, len(items), parts + 1).astype(int)
    return [items[bounds[i] : bounds[i + 1]] for i in range(parts)]


def add_gate(
    graph: TaskGraph, name: str, deps: list[int], loop: str = ""
) -> int:
    """Zero-cost synchronization node that linearizes many-to-many edges."""
    return graph.add(name, 0.0, deps, kind="join", loop=loop)


def emit_static_color_class(
    graph: TaskGraph,
    rec: LoopRecord,
    color_blocks: list[int],
    costs: list[float],
    num_threads: int,
    entry_deps: list[int],
    mem_fraction: float,
) -> list[int]:
    """Emit one color class with static per-thread assignment.

    Blocks of each thread are chained (serial execution on that thread).
    Returns the final task of each non-empty thread chain — the set a
    subsequent barrier must wait on.
    """
    tails: list[int] = []
    for thread, blocks_of_t in enumerate(static_split(color_blocks, num_threads)):
        prev = None
        for b in blocks_of_t:
            deps = entry_deps if prev is None else [prev]
            prev = graph.add(
                f"{rec.loop.name}[{rec.loop_id}].blk{b}",
                costs[b],
                deps,
                affinity=thread,
                kind="work",
                loop=rec.loop.name,
                mem_fraction=mem_fraction,
            )
        if prev is not None:
            tails.append(prev)
    return tails


def emit_dynamic_blocks(
    graph: TaskGraph,
    rec: LoopRecord,
    blocks: list[int],
    costs: list[float],
    entry_deps: list[int],
    mem_fraction: float,
    extra_deps: dict[int, list[int]] | None = None,
) -> list[int]:
    """Emit blocks as work-stealing tasks (no affinity). Returns task ids.

    ``extra_deps`` maps a block id to additional dependency task ids (the
    dataflow emitter's block-level producer edges).
    """
    tids: list[int] = []
    for b in blocks:
        deps = list(entry_deps)
        if extra_deps is not None:
            deps.extend(extra_deps.get(b, ()))
        tids.append(
            graph.add(
                f"{rec.loop.name}[{rec.loop_id}].blk{b}",
                costs[b],
                deps,
                affinity=None,
                kind="work",
                loop=rec.loop.name,
                mem_fraction=mem_fraction,
            )
        )
    return tids
