"""The shared real-thread execution driver (``mode="threads"``).

Every backend's :meth:`~repro.backends.base.Backend.run_loop_threads` lands
here. One ``op_par_loop`` executes as follows:

1. the plan's color classes run **sequentially** (colors are the correctness
   barrier for indirect reductions);
2. within a color class, the backend's chunker splits the class's block list
   into chunks; each chunk becomes one pool task. Contiguous blocks inside a
   chunk are merged into single element *spans*, so a direct loop (one color,
   contiguous blocks) turns into a handful of large ``execute_loop`` slices —
   exactly the grain numpy needs to release the GIL for meaningful stretches;
3. serial-prefix chunks (the auto partitioner's measurement pass) run inline
   on the calling thread *before* the parallel chunks are submitted, matching
   HPX's behaviour;
4. global MIN/MAX/INC reductions are **deferred**: each task returns its
   batch partials, and the calling thread folds them in task-submission order
   (never completion order) — repeated runs with the same worker count are
   therefore bit-identical.

Why this is race-free:

- same-color blocks touch disjoint indirect-reduction rows (plan coloring,
  property-tested in ``tests/property/test_prop_threaded_race.py``);
- direct writes target each task's own element spans, which are disjoint by
  construction (chunks partition the class);
- globals are never written from worker threads (deferral above);
- dat version counters are bumped once per loop by the calling thread, not
  from workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.base import apply_global_partials, execute_loop
from repro.hpx.chunking import Chunk, Chunker
from repro.op2.args import Arg
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.runtime import Op2Runtime


@dataclass(frozen=True)
class Span:
    """A contiguous ``[start, stop)`` element range executed as one batch."""

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def chunk_spans(plan: Plan, class_blocks: list[int], chunk: Chunk) -> list[Span]:
    """Merge the chunk's plan blocks into maximal contiguous element spans.

    ``class_blocks[chunk.start:chunk.stop]`` names blocks of one color; for
    direct loops these are contiguous and collapse into a single span, for
    colored indirect loops same-color blocks are scattered and mostly stay
    one span per block.
    """
    spans: list[Span] = []
    for bi in class_blocks[chunk.start : chunk.stop]:
        b = plan.blocks[bi]
        if spans and spans[-1].stop == b.start:
            spans[-1] = Span(spans[-1].start, b.stop)
        else:
            spans.append(Span(b.start, b.stop))
    return spans


def _run_spans(
    loop: ParLoop, spans: list[Span], mode: str
) -> list[tuple[Arg, np.ndarray]]:
    """Execute the task's spans; return deferred global partials in order."""
    partials: list[tuple[Arg, np.ndarray]] = []
    for span in spans:
        execute_loop(
            loop,
            slice(span.start, span.stop),
            mode=mode,
            global_sink=partials,
            bump_versions=False,
        )
    return partials


def run_loop_threaded(
    rt: "Op2Runtime",
    loop: ParLoop,
    plan: Plan,
    chunker: Chunker,
    mode: str = "vectorized",
) -> None:
    """Execute ``loop`` under ``plan`` on the runtime's real thread pool.

    When the runtime carries a :class:`~repro.obs.recorder.TraceRecorder`
    (``rt.obs``), the orchestrating thread records per-loop and per-color
    spans plus serial-prefix and reduction-fold attribution; the pool's
    workers record their own task spans. Without a recorder every hook is a
    single ``is not None`` check.
    """
    pool = rt.thread_pool
    rec = rt.obs
    partials: list[tuple[Arg, np.ndarray]] = []
    t_loop = rec.now() if rec is not None else 0.0
    ncolors = 0
    ntasks = 0
    prefix_s = 0.0

    for ci, class_blocks in enumerate(plan.classes):
        if not class_blocks:
            continue
        ncolors += 1
        t_color = rec.now() if rec is not None else 0.0
        chunks = chunker.chunks(len(class_blocks), pool.num_workers)
        thunks = []
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            spans = chunk_spans(plan, class_blocks, chunk)
            if chunk.serial_prefix:
                # HPX's auto partitioner: measurement pass runs on the caller
                # before any parallel chunk is spawned.
                if rec is not None:
                    t0 = rec.now()
                    partials.extend(_run_spans(loop, spans, mode))
                    t1 = rec.now()
                    prefix_s += t1 - t0
                    rec.span(
                        f"{loop.name}.c{ci}.prefix", "prefix", loop.name,
                        t0, t1, color=ci, busy=True,
                    )
                else:
                    partials.extend(_run_spans(loop, spans, mode))
            else:
                thunks.append(lambda s=spans: _run_spans(loop, s, mode))
        ntasks += len(thunks)
        # One fork-join batch per color: run_batch returns in submission
        # order only after every task finished (the color barrier).
        for task_partials in pool.run_batch(thunks, loop=loop.name, color=ci):
            partials.extend(task_partials)
        if rec is not None:
            rec.span(
                f"{loop.name}.c{ci}", "color", loop.name,
                t_color, rec.now(), color=ci,
            )

    # Deferred side effects, applied deterministically by the calling thread
    # (one version bump per writing arg, as a whole-set execute_loop does).
    fold_s = 0.0
    if rec is not None and partials:
        t0 = rec.now()
        apply_global_partials(partials)
        fold_s = rec.now() - t0
        rec.span(f"{loop.name}.fold", "fold", loop.name, t0, t0 + fold_s, busy=True)
    else:
        apply_global_partials(partials)
    for arg in loop.args:
        if not arg.is_global and arg.access.writes:
            arg.dat.bump_version()
    if rec is not None:
        rec.span(loop.name, "loop", loop.name, t_loop, rec.now())
        _count, task_s = rec.take_task_totals(loop.name)
        rec.record_loop(
            loop.name, rec.now() - t_loop, ncolors, ntasks,
            task_s, prefix_s, fold_s,
        )
