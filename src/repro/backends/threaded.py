"""The shared real-thread execution driver (``mode="threads"``).

Every backend's :meth:`~repro.backends.base.Backend.run_loop_threads` lands
here. One ``op_par_loop`` executes as follows:

1. the plan's color classes run **sequentially** (colors are the correctness
   barrier for indirect reductions);
2. within a color class, the backend's chunker splits the class's block list
   into chunks; each chunk becomes one pool task. Contiguous blocks inside a
   chunk are merged into single element *spans*, so a direct loop (one color,
   contiguous blocks) turns into a handful of large ``execute_loop`` slices —
   exactly the grain numpy needs to release the GIL for meaningful stretches;
3. serial-prefix chunks (the auto partitioner's measurement pass) run inline
   on the calling thread *before* the parallel chunks are submitted, and are
   *timed*: the measured per-iteration cost feeds back into the chunker to
   size the remaining chunks (HPX ``auto_partitioner`` semantics);
4. a ``dynamic`` chunker (``DynamicChunkSize``) keeps the identical
   decomposition but hands chunks out on demand from a shared index
   (self-scheduling): ``min(workers, chunks)`` puller tasks drain the chunk
   list, storing each chunk's partials into its own slot;
5. global MIN/MAX/INC reductions are **deferred**: each task returns its
   batch partials, and the calling thread folds them in chunk-submission
   order (never completion order) — repeated runs with the same worker count
   are therefore bit-identical, and dynamic scheduling bit-matches static.

Why this is race-free:

- same-color blocks touch disjoint indirect-reduction rows (plan coloring,
  property-tested in ``tests/property/test_prop_threaded_race.py``);
- direct writes target each task's own element spans, which are disjoint by
  construction (chunks partition the class);
- globals are never written from worker threads (deferral above);
- dat version counters are bumped once per loop by the calling thread, not
  from workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.backends.base import apply_global_partials, execute_loop
from repro.hpx.chunking import Chunk, Chunker
from repro.hpx.threadpool import ThreadPoolEngine
from repro.op2.args import Arg
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.op2.runtime import Op2Runtime


@dataclass(frozen=True)
class Span:
    """A contiguous ``[start, stop)`` element range executed as one batch."""

    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def chunk_spans(plan: Plan, class_blocks: list[int], chunk: Chunk) -> list[Span]:
    """Merge the chunk's plan blocks into maximal contiguous element spans.

    ``class_blocks[chunk.start:chunk.stop]`` names blocks of one color; for
    direct loops these are contiguous and collapse into a single span, for
    colored indirect loops same-color blocks are scattered and mostly stay
    one span per block.
    """
    spans: list[Span] = []
    for bi in class_blocks[chunk.start : chunk.stop]:
        b = plan.blocks[bi]
        if spans and spans[-1].stop == b.start:
            spans[-1] = Span(spans[-1].start, b.stop)
        else:
            spans.append(Span(b.start, b.stop))
    return spans


def _run_spans(
    loop: ParLoop, spans: list[Span], mode: str
) -> list[tuple[Arg, np.ndarray]]:
    """Execute the task's spans; return deferred global partials in order."""
    partials: list[tuple[Arg, np.ndarray]] = []
    for span in spans:
        execute_loop(
            loop,
            slice(span.start, span.stop),
            mode=mode,
            global_sink=partials,
            bump_versions=False,
        )
    return partials


def _run_dynamic(
    pool: ThreadPoolEngine,
    loop: ParLoop,
    work: list[list[Span]],
    mode: str,
    color: int,
) -> list[list[tuple[Arg, np.ndarray]]]:
    """Self-scheduling: pullers drain a shared chunk index on demand.

    Each chunk's partials land in the slot matching its *chunk index*, so
    the caller folds them in decomposition order and the result bit-matches
    the statically pre-assigned schedule regardless of which worker ran
    which chunk.
    """
    slots: list[list[tuple[Arg, np.ndarray]] | None] = [None] * len(work)
    state = {"next": 0}
    lock = threading.Lock()

    def pull() -> None:
        while True:
            with lock:
                i = state["next"]
                if i >= len(work):
                    return
                state["next"] = i + 1
            slots[i] = _run_spans(loop, work[i], mode)

    width = min(pool.num_workers, len(work))
    pool.run_batch([pull for _ in range(width)], loop=loop.name, color=color)
    assert all(s is not None for s in slots)
    return slots  # type: ignore[return-value]


def bump_written_versions(loop: ParLoop) -> None:
    """Bump the version of each *distinct* written dat exactly once.

    A dat passed through two args of one loop (e.g. ``res`` via two map
    columns) must not be double-bumped: dependence invalidation counts
    writes per loop, not per argument.
    """
    seen: set[int] = set()
    for arg in loop.args:
        if not arg.is_global and arg.access.writes and id(arg.dat) not in seen:
            seen.add(id(arg.dat))
            arg.dat.bump_version()


def run_loop_threaded(
    rt: "Op2Runtime",
    loop: ParLoop,
    plan: Plan,
    chunker: Chunker,
    mode: str = "vectorized",
) -> None:
    """Execute ``loop`` under ``plan`` on the runtime's real thread pool.

    When the runtime carries a :class:`~repro.obs.recorder.TraceRecorder`
    (``rt.obs``), the orchestrating thread records per-loop and per-color
    spans plus serial-prefix and reduction-fold attribution; the pool's
    workers record their own task spans. Without a recorder every hook is a
    single ``is not None`` check.
    """
    pool = rt.thread_pool
    rec = rt.obs
    partials: list[tuple[Arg, np.ndarray]] = []
    t_loop = rec.now() if rec is not None else 0.0
    ncolors = 0
    ntasks = 0
    prefix_s = 0.0

    for ci, class_blocks in enumerate(plan.classes):
        if not class_blocks:
            continue
        ncolors += 1
        t_color = rec.now() if rec is not None else 0.0

        def run_prefix(chunk: Chunk, _blocks=class_blocks, _ci=ci) -> float:
            # HPX's auto partitioner: the measurement pass runs inline on the
            # caller before any parallel chunk is spawned, and its wall time
            # is what the chunker sizes the remaining chunks from.
            nonlocal prefix_s
            spans = chunk_spans(plan, _blocks, chunk)
            t0 = perf_counter()
            partials.extend(_run_spans(loop, spans, mode))
            elapsed = perf_counter() - t0
            if rec is not None:
                prefix_s += elapsed
                t1 = rec.now()
                rec.span(
                    f"{loop.name}.c{_ci}.prefix", "prefix", loop.name,
                    t1 - elapsed, t1, color=_ci, busy=True,
                )
            return elapsed

        chunks = chunker.split(len(class_blocks), pool.num_workers, measure=run_prefix)
        work = [
            chunk_spans(plan, class_blocks, c)
            for c in chunks
            if not c.serial_prefix and len(c)
        ]
        if chunker.dynamic and work:
            results = _run_dynamic(pool, loop, work, mode, color=ci)
            ntasks += min(pool.num_workers, len(work))
        else:
            # One fork-join batch per color: run_batch returns in submission
            # order only after every task finished (the color barrier).
            results = pool.run_batch(
                [lambda s=s: _run_spans(loop, s, mode) for s in work],
                loop=loop.name,
                color=ci,
            )
            ntasks += len(work)
        for task_partials in results:
            partials.extend(task_partials)
        if rec is not None:
            rec.span(
                f"{loop.name}.c{ci}", "color", loop.name,
                t_color, rec.now(), color=ci,
            )

    # Deferred side effects, applied deterministically by the calling thread
    # (one version bump per distinct written dat, as execute_loop does).
    fold_s = 0.0
    if rec is not None and partials:
        t0 = rec.now()
        apply_global_partials(partials)
        fold_s = rec.now() - t0
        rec.span(f"{loop.name}.fold", "fold", loop.name, t0, t0 + fold_s, busy=True)
    else:
        apply_global_partials(partials)
    bump_written_versions(loop)
    if rec is not None:
        rec.span(loop.name, "loop", loop.name, t_loop, rec.now())
        _count, task_s = rec.take_task_totals(loop.name)
        rec.record_loop(
            loop.name, rec.now() - t_loop, ncolors, ntasks,
            task_s, prefix_s, fold_s,
        )
