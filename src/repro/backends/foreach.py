"""The ``hpx::parallel::for_each(par, ...)`` backend (paper §III-A1).

Same fork-join shape as OpenMP — the algorithm joins before returning — but
with HPX's chunking over the block list:

- **auto chunking** (default): the auto partitioner executes ~1% of the
  blocks serially on the calling thread to estimate grain size before
  spawning the rest. For large loops that serial prefix costs real
  scalability (paper Fig 16, 'auto chunk' curve);
- **static chunking** (``foreach_static``): a programmer-supplied
  ``static_chunk_size`` removes the measurement prefix (Fig 7).

Chunk tasks have no thread affinity (HPX steals them), so load balance is
better than OpenMP's static schedule; per-chunk spawn cost and the join at
the end of every loop keep it from beating OpenMP (Fig 16).
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend
from repro.backends.emission import record_block_costs
from repro.hpx import for_each, par
from repro.hpx.chunking import AutoPartitioner, DynamicChunkSize, StaticChunkSize
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from repro.op2.runtime import LoopLog, Op2Runtime
from repro.sim.barriers import join_cost
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph

#: Default static chunk size (blocks per chunk) for the static variant. One
#: block per chunk maximizes schedulable parallelism once plan coloring has
#: already split loops into modest color classes — this is the "tuned by the
#: programmer" value of paper Fig 7.
DEFAULT_STATIC_CHUNK = 1


class ForEachBackend(Backend):
    """``for_each(par)`` over plan blocks, color class by color class."""

    asynchronous = False

    def __init__(
        self,
        static_chunking: bool = False,
        static_chunk: int = DEFAULT_STATIC_CHUNK,
        dynamic_schedule: bool = False,
    ) -> None:
        self.static_chunking = static_chunking
        self.static_chunk = int(static_chunk)
        #: hand fixed-size chunks out on demand (self-scheduling) instead of
        #: pre-assigning them — same decomposition, and the threads mode
        #: folds partials in chunk order, so results bit-match the static
        #: schedule (tested). Only meaningful with ``static_chunking``.
        self.dynamic_schedule = bool(dynamic_schedule)
        self.name = "foreach_static" if static_chunking else "foreach"

    def _chunker(self):
        if self.static_chunking:
            if self.dynamic_schedule:
                return DynamicChunkSize(self.static_chunk)
            return StaticChunkSize(self.static_chunk)
        return AutoPartitioner()

    def _thread_chunker(self, rt):
        # Threads mode uses the same chunking policy the simulator models:
        # auto partitioner (inline measurement prefix) or the programmer's
        # static chunk size, in units of plan blocks.
        return self._chunker()

    def run_loop(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> None:
        from repro.backends.base import execute_loop

        mode = self._exec_mode(rt)
        policy = par.with_(self._chunker())
        for color_blocks in plan.classes:
            def body(block_index: int, _blocks=color_blocks) -> None:
                execute_loop(loop, plan.block_elements(_blocks[block_index]), mode=mode)

            # for_each(par, ...) joins before returning: fork-join semantics.
            for_each(policy, range(len(color_blocks)), body)
        return None

    def emit(
        self,
        log: LoopLog,
        machine: MachineConfig,
        num_threads: int,
        cost_model: Any,
    ) -> TaskGraph:
        graph = TaskGraph()
        chunker = self._chunker()
        prev_join: int | None = None
        for rec in log.loops():
            costs = record_block_costs(rec, machine, num_threads, cost_model)
            mem = rec.loop.kernel.cost.mem_fraction
            for color, color_blocks in enumerate(rec.plan.classes):
                entry = [prev_join] if prev_join is not None else []
                chunks = chunker.chunks(len(color_blocks), num_threads)
                parallel_chunks = [c for c in chunks if not c.serial_prefix]
                prefix_chunks = [c for c in chunks if c.serial_prefix]

                spawn_deps = list(entry)
                for pc in prefix_chunks:
                    pid = graph.add(
                        f"{rec.loop.name}[{rec.loop_id}].prefix.c{color}",
                        sum(costs[color_blocks[i]] for i in range(pc.start, pc.stop)),
                        entry,
                        affinity=0,
                        kind="prefix",
                        loop=rec.loop.name,
                        mem_fraction=mem,
                    )
                    spawn_deps = [pid]

                spawn = graph.add(
                    f"{rec.loop.name}[{rec.loop_id}].spawn.c{color}",
                    machine.fork_overhead
                    + machine.chunk_spawn_overhead * len(parallel_chunks),
                    spawn_deps,
                    affinity=0,
                    kind="spawn",
                    loop=rec.loop.name,
                )
                chunk_tids = []
                for c in parallel_chunks:
                    chunk_cost = sum(
                        costs[color_blocks[i]] for i in range(c.start, c.stop)
                    )
                    chunk_tids.append(
                        graph.add(
                            f"{rec.loop.name}[{rec.loop_id}]"
                            f".chunk{c.start}-{c.stop}.c{color}",
                            chunk_cost,
                            [spawn],
                            affinity=None,
                            kind="work",
                            loop=rec.loop.name,
                            mem_fraction=mem,
                        )
                    )
                prev_join = graph.add(
                    f"{rec.loop.name}[{rec.loop_id}].join.c{color}",
                    join_cost(machine, num_threads),
                    chunk_tids if chunk_tids else [spawn],
                    affinity=None,
                    kind="join",
                    loop=rec.loop.name,
                )
        return graph
