"""Cost model: from mesh blocks to simulator task costs.

A block's cost is ``n_elements * unit_cost * contention * jitter`` where

- ``unit_cost``/``mem_fraction`` come from the kernel's
  :class:`~repro.op2.kernel.KernelCost` (calibrated per Airfoil kernel);
- ``contention`` is the bandwidth dilation of
  :func:`repro.sim.bandwidth.contention_factor` for the run's thread count;
- ``jitter`` is a deterministic pseudo-random per-block factor modeling
  cache/TLB variation between mini-partitions — the load-imbalance source
  that static fork-join scheduling cannot absorb but work stealing can.
"""

from __future__ import annotations

import numpy as np

from repro.op2.kernel import Kernel
from repro.op2.plan import Plan
from repro.sim.bandwidth import contention_factor
from repro.sim.machine import MachineConfig
from repro.util.rng import DEFAULT_SEED, derive_seed
from repro.util.validate import check_in_range


class LoopCostModel:
    """Maps (loop, block) to simulated cost at a given thread count."""

    def __init__(self, jitter: float = 0.25, seed: int = DEFAULT_SEED) -> None:
        check_in_range("jitter", jitter, 0.0, 0.9)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._jitter_cache: dict[tuple[str, int], np.ndarray] = {}

    def _jitter_factors(self, loop_name: str, nblocks: int) -> np.ndarray:
        """Per-block multiplicative factors in [1-j, 1+j], stable per loop."""
        key = (loop_name, nblocks)
        factors = self._jitter_cache.get(key)
        if factors is None:
            rng = np.random.default_rng(derive_seed(self.seed, "jitter", loop_name))
            factors = 1.0 + self.jitter * (2.0 * rng.random(nblocks) - 1.0)
            self._jitter_cache[key] = factors
        return factors

    def block_cost(
        self,
        loop_name: str,
        kernel: Kernel,
        plan: Plan,
        block: int,
        machine: MachineConfig,
        num_threads: int,
    ) -> float:
        """Simulated microseconds for one block of one loop."""
        nelems = len(plan.blocks[block])
        base = nelems * kernel.cost.unit_cost
        dilated = base * contention_factor(
            machine, num_threads, kernel.cost.mem_fraction
        )
        return dilated * float(self._jitter_factors(loop_name, plan.nblocks)[block])

    def loop_work(
        self,
        loop_name: str,
        kernel: Kernel,
        plan: Plan,
        machine: MachineConfig,
        num_threads: int,
    ) -> float:
        """Total sequential work of a loop at ``num_threads`` (with contention)."""
        return sum(
            self.block_cost(loop_name, kernel, plan, b, machine, num_threads)
            for b in range(plan.nblocks)
        )


def block_costs(
    cost_model: LoopCostModel,
    loop_name: str,
    kernel: Kernel,
    plan: Plan,
    machine: MachineConfig,
    num_threads: int,
) -> list[float]:
    """All block costs of a loop, in block order."""
    return [
        cost_model.block_cost(loop_name, kernel, plan, b, machine, num_threads)
        for b in range(plan.nblocks)
    ]
