"""Loop-execution backends: the five parallelization strategies of the paper.

Each backend implements the same numerical semantics (validated against the
plain-numpy reference) but a different *scheduling structure*:

- ``seq`` — serial reference.
- ``openmp`` — fork-join: static block distribution + implicit global
  barrier after every loop (``#pragma omp parallel for``, paper Fig 5).
- ``foreach`` — ``hpx::parallel::for_each(par)``: HPX chunking, still a
  join at the end of every loop (paper §III-A1, Figs 6–7).
- ``hpx_async`` — ``async`` + ``for_each(par(task))``: loops return futures,
  the application places ``.get()`` sync points (paper §III-A2, Figs 8–10).
- ``hpx_dataflow`` — the modified OP2 API: automatic dependence tracking and
  dataflow invocation (paper §III-B, Figs 11–14).

Backends also *emit* the task graph of a recorded run for the machine
simulator (:mod:`repro.sim`) — that is where the scaling differences between
the strategies become measurable.
"""

from repro.backends.base import Backend, execute_loop, gather_args, scatter_args
from repro.backends.registry import create_backend, register_backend, available_backends
from repro.backends.costs import LoopCostModel, block_costs
from repro.backends.seq import SeqBackend
from repro.backends.openmp import OpenMPBackend
from repro.backends.foreach import ForEachBackend
from repro.backends.hpx_async import HpxAsyncBackend
from repro.backends.hpx_dataflow import HpxDataflowBackend

__all__ = [
    "Backend",
    "execute_loop",
    "gather_args",
    "scatter_args",
    "create_backend",
    "register_backend",
    "available_backends",
    "LoopCostModel",
    "block_costs",
    "SeqBackend",
    "OpenMPBackend",
    "ForEachBackend",
    "HpxAsyncBackend",
    "HpxDataflowBackend",
]
