"""Dependency-driven scheduling of measured (``threads``-mode) loops.

This is the measured-mode counterpart of the dataflow emitter: instead of a
per-loop sequence of fork-join color batches, every chunk of every loop is
handed to :meth:`~repro.hpx.threadpool.ThreadPoolEngine.submit_after` with
exactly the predecessor tasks it conflicts with, and is *released* to the
pool the instant those complete. No color of one loop ever waits for an
unrelated chunk of another loop — the paper's barrier elimination, on real
OS threads rather than in the simulator.

Two refinement levels share this scheduler:

- **loop level** (``refine_blocks=False``, the async backend): a consumer
  chunk waits for the *finalizer* of each producer loop it conflicts with.
  Per-loop barriers disappear (the returned future resolves at the loop's
  last task; ``rt.sync(...)`` is the only real join), but cross-loop overlap
  is limited to independent loops — the Fig 17 execution shape.
- **block level** (``refine_blocks=True``, the dataflow backend): consumer
  chunks wait only for the producer *blocks* that touched the same dat rows
  (:mod:`repro.backends.blockdeps`), so the first chunks of a dependent loop
  start while late chunks of its producer are still running — the Fig 18
  execution tree.

Determinism contract (same worker count ⇒ bit-identical results):

- the decomposition (plans, colors, chunks) is wall-clock independent;
- global MIN/MAX/INC partials are folded by the loop's finalizer in chunk
  *submission* order, and finalizers of loops reducing into the same global
  are chained in program order;
- the dependence tracker runs with ``ordered_increments=True``: two loops
  incrementing the same dat are ordered by dependency edges, because
  floating-point ``+=`` streams commute only mathematically, not bitwise;
- finalizers of loops writing the same dat are chained, so version bumps
  (plain ``int`` increments) never race.

Loop finalizers run *inline* on whichever worker completes the loop's last
chunk: they fold partials, bump dat versions once per distinct written dat,
and record the loop's wall-clock aggregates. The application only ever
blocks in ``rt.sync(...)`` / ``rt.finish()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends.base import apply_global_partials
from repro.backends.blockdeps import BlockDepCache, hazard_dats
from repro.backends.threaded import _run_spans, bump_written_versions, chunk_spans
from repro.hpx.threadpool import PoolFuture, PoolTask
from repro.op2.access import Access
from repro.op2.dat import OpGlobal
from repro.op2.deps import DatDependencyTracker
from repro.op2.runtime import LoopRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.hpx.chunking import Chunker
    from repro.op2.parloop import ParLoop
    from repro.op2.plan import Plan
    from repro.op2.runtime import Op2Runtime

#: Completed loop handles retained for block-level refinement. Handles still
#: referenced by the dependence tracker are always kept; beyond that, the
#: oldest finished loops are dropped so a multi-million-timestep run does not
#: accumulate one handle (and its task objects) per loop forever.
HANDLE_RETENTION = 256


class _LoopHandle:
    """Scheduling state of one in-flight (or recently finished) loop."""

    __slots__ = ("rec", "block_task", "chunk_tasks", "final")

    def __init__(
        self,
        rec: LoopRecord,
        block_task: dict[int, PoolTask],
        chunk_tasks: list[PoolTask],
        final: PoolTask,
    ) -> None:
        self.rec = rec
        #: plan-wide block id -> the chunk task that executes it.
        self.block_task = block_task
        #: every chunk task, in submission (= fold) order.
        self.chunk_tasks = chunk_tasks
        #: inline finalizer: folds partials, bumps versions, records timing.
        self.final = final


def _global_rw(rec: LoopRecord) -> dict[int, tuple[bool, bool]]:
    """``id(global) -> (reads, writes)`` over the loop's global arguments."""
    out: dict[int, tuple[bool, bool]] = {}
    for a in rec.loop.args:
        if isinstance(a.dat, OpGlobal):
            r, w = out.get(id(a.dat), (False, False))
            if a.access is Access.READ:
                r = True
            else:
                w = True
            out[id(a.dat)] = (r, w)
    return out


def _shared_global_hazard(producer: LoopRecord, consumer: LoopRecord) -> bool:
    """True when one loop reads a global the other reduces into.

    Worker chunks *read* globals at gather time, while reductions mutate them
    in the producer's finalizer — so a read/write pair cannot be refined to
    block level and falls back to a whole-loop edge. Write/write pairs need
    no fallback: both mutations happen in finalizers, which the scheduler
    chains per global in program order.
    """
    prod = _global_rw(producer)
    for gid, (c_reads, c_writes) in _global_rw(consumer).items():
        hit = prod.get(gid)
        if hit is None:
            continue
        p_reads, p_writes = hit
        if (p_writes and c_reads) or (p_reads and c_writes):
            return True
    return False


class LoopScheduler:
    """Schedules threads-mode loops as dependency-released pool tasks."""

    def __init__(self, rt: "Op2Runtime", refine_blocks: bool) -> None:
        self.rt = rt
        self.refine_blocks = refine_blocks
        self.tracker: DatDependencyTracker[int] = DatDependencyTracker(
            ordered_increments=True
        )
        #: loop_id -> handle, insertion (= program) order.
        self.handles: dict[int, _LoopHandle] = {}
        #: id(global) -> finalizer of its last reducing loop (fold order).
        self._global_gates: dict[int, PoolTask] = {}
        #: id(dat) -> finalizer of its last writing loop (version-bump order).
        self._dat_gates: dict[int, PoolTask] = {}
        self._block_deps = BlockDepCache()

    # -- dependence analysis -------------------------------------------------

    def _external_deps(
        self, rec: LoopRecord, producers: list[_LoopHandle]
    ) -> tuple[dict[int, dict[int, PoolTask]], list[PoolTask]]:
        """Split producer edges into per-block refinements and loop fallbacks.

        Returns ``(per_block, fallback)``: ``per_block`` maps a consumer
        block id to the producer chunk tasks it must wait for (deduplicated
        by task identity); ``fallback`` lists producer finalizers that must
        precede the consumer's first color wholesale — used when refinement
        is disabled, the loops share no dat, or a global read/write hazard
        makes block-level ordering insufficient.
        """
        per_block: dict[int, dict[int, PoolTask]] = {}
        fallback: list[PoolTask] = []
        for handle in producers:
            shared = hazard_dats(handle.rec, rec) if self.refine_blocks else []
            if not shared or _shared_global_hazard(handle.rec, rec):
                fallback.append(handle.final)
                continue
            ptasks = handle.block_task
            for dat in shared:
                refined = self._block_deps.get(handle.rec, rec, dat)
                for b, producer_blocks in enumerate(refined):
                    if len(producer_blocks) == 0:
                        continue
                    bucket = per_block.setdefault(b, {})
                    for j in producer_blocks:
                        t = ptasks.get(int(j))
                        if t is not None:
                            bucket[id(t)] = t
        return per_block, fallback

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        loop: "ParLoop",
        plan: "Plan",
        chunker: "Chunker",
        mode: str,
        loop_id: int,
    ) -> PoolFuture:
        """Submit every chunk of ``loop`` with its conflict-exact deps.

        Returns a future that resolves when the loop's finalizer has run —
        i.e. when results (including global reductions and version bumps)
        are visible. Nothing blocks here.
        """
        pool = self.rt.thread_pool
        rec = self.rt.obs
        record = LoopRecord(loop_id=loop_id, loop=loop, plan=plan)

        dep_ids = self.tracker.dependencies(list(loop.args), token=loop_id)
        producers = [self.handles[d] for d in dep_ids if d in self.handles]
        per_block, fallback = self._external_deps(record, producers)

        t_loop = rec.now() if rec is not None else 0.0
        chunk_tasks: list[PoolTask] = []
        block_task: dict[int, PoolTask] = {}
        prev_gate: PoolTask | None = None
        first_color = True
        ncolors = 0
        for ci, class_blocks in enumerate(plan.classes):
            if not class_blocks:
                continue
            ncolors += 1
            color_tasks: list[PoolTask] = []
            for k, chunk in enumerate(chunker.chunks(len(class_blocks), pool.num_workers)):
                if not len(chunk):
                    continue
                spans = chunk_spans(plan, class_blocks, chunk)
                deps: list[PoolTask] = []
                seen: set[int] = set()

                def need(t: PoolTask) -> None:
                    if id(t) not in seen:
                        seen.add(id(t))
                        deps.append(t)

                if prev_gate is not None:
                    need(prev_gate)
                if first_color:
                    # Later colors inherit the fallbacks transitively through
                    # the previous color's gate.
                    for t in fallback:
                        need(t)
                for bi in class_blocks[chunk.start : chunk.stop]:
                    bucket = per_block.get(bi)
                    if bucket:
                        for t in bucket.values():
                            need(t)
                task = pool.submit_after(
                    lambda s=spans: _run_spans(loop, s, mode),
                    deps,
                    loop=loop.name,
                    color=ci,
                    index=k,
                )
                for bi in class_blocks[chunk.start : chunk.stop]:
                    block_task[bi] = task
                color_tasks.append(task)
                chunk_tasks.append(task)
            first_color = False
            if len(color_tasks) == 1:
                prev_gate = color_tasks[0]
            elif color_tasks:
                prev_gate = pool.gate(color_tasks, loop=loop.name, color=ci)

        final_deps: list[PoolTask] = list(chunk_tasks)
        if not chunk_tasks:
            # Empty iteration space: the finalizer still carries the loop's
            # ordering obligations (it is what successors will wait on).
            final_deps.extend(fallback)
            for bucket in per_block.values():
                final_deps.extend(bucket.values())
        gate_globals: list[int] = []
        gate_dats: list[int] = []
        g_seen: set[int] = set()
        for arg in loop.args:
            if not arg.access.writes or id(arg.dat) in g_seen:
                continue
            g_seen.add(id(arg.dat))
            if isinstance(arg.dat, OpGlobal):
                prev = self._global_gates.get(id(arg.dat))
                gate_globals.append(id(arg.dat))
            else:
                prev = self._dat_gates.get(id(arg.dat))
                gate_dats.append(id(arg.dat))
            if prev is not None:
                final_deps.append(prev)

        ntasks = len(chunk_tasks)

        def finish() -> None:
            partials = []
            for t in chunk_tasks:  # submission order = deterministic fold
                partials.extend(t.value())
            if rec is not None and partials:
                t0 = rec.now()
                apply_global_partials(partials)
                fold_s = rec.now() - t0
                rec.span(
                    f"{loop.name}.fold", "fold", loop.name, t0, t0 + fold_s,
                    busy=True,
                )
            else:
                fold_s = 0.0
                apply_global_partials(partials)
            bump_written_versions(loop)
            if rec is not None:
                end = rec.now()
                rec.span(loop.name, "loop", loop.name, t_loop, end)
                _count, task_s = rec.take_task_totals(loop.name)
                rec.record_loop(
                    loop.name, end - t_loop, ncolors, ntasks, task_s, 0.0, fold_s
                )

        final = pool.submit_after(
            finish, final_deps, inline=True, loop=loop.name
        )
        for gid in gate_globals:
            self._global_gates[gid] = final
        for did in gate_dats:
            self._dat_gates[did] = final

        self.handles[loop_id] = _LoopHandle(record, block_task, chunk_tasks, final)
        self._prune()
        return PoolFuture(final, pool, name=f"threads.{loop.name}")

    def _prune(self) -> None:
        """Drop the oldest finished handles beyond :data:`HANDLE_RETENTION`.

        A handle still live in the tracker can become a producer of a future
        loop and must stay; an evicted handle's finalizer is complete, so no
        later loop can need its tasks.
        """
        if len(self.handles) <= HANDLE_RETENTION:
            return
        live = set(self.tracker.outstanding())
        for lid in list(self.handles):
            if len(self.handles) <= HANDLE_RETENTION:
                return
            if lid in live:
                continue
            if self.handles[lid].final.done():
                del self.handles[lid]

    # -- lifecycle -----------------------------------------------------------

    def finalize(self) -> None:
        """Join every outstanding finalizer (``rt.finish()``), then reset.

        After this full barrier no dependency can reach back across it, so
        the tracker and gate chains restart empty — the measured analogue of
        the emitter replaying a fresh log.
        """
        finals = [h.final for h in self.handles.values() if not h.final.done()]
        if finals:
            self.rt.thread_pool.wait_all(finals, loop="finalize")
        self.handles.clear()
        self._global_gates.clear()
        self._dat_gates.clear()
        self.tracker.reset()

    def cancel(self) -> None:
        """Drop scheduling state after an aborted session (no waiting).

        The runtime cancels the pool's unreleased tasks itself; this only
        forgets them so a reused runtime does not chain new loops onto stale
        finalizers.
        """
        self.handles.clear()
        self._global_gates.clear()
        self._dat_gates.clear()
        self.tracker.reset()
