"""Sequential reference backend."""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend
from repro.backends.emission import record_block_costs
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from repro.op2.runtime import LoopLog, Op2Runtime
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph


class SeqBackend(Backend):
    """Executes every loop inline, in program order; emits a serial chain."""

    name = "seq"
    asynchronous = False

    def run_loop(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> None:
        self.run_functional(rt, loop, plan)
        return None

    def run_loop_threads(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> None:
        # The sequential reference stays sequential in every mode — it is the
        # baseline both the conformance matrix and wall-clock speedups use.
        return self.run_loop(rt, loop, plan, loop_id)

    def emit(
        self,
        log: LoopLog,
        machine: MachineConfig,
        num_threads: int,
        cost_model: Any,
    ) -> TaskGraph:
        graph = TaskGraph()
        prev: int | None = None
        for rec in log.loops():
            costs = record_block_costs(rec, machine, num_threads, cost_model)
            mem = rec.loop.kernel.cost.mem_fraction
            for b in range(rec.plan.nblocks):
                prev = graph.add(
                    f"{rec.loop.name}[{rec.loop_id}].blk{b}",
                    costs[b],
                    [prev] if prev is not None else [],
                    affinity=0,
                    kind="work",
                    loop=rec.loop.name,
                    mem_fraction=mem,
                )
        return graph
