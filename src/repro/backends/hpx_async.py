"""The ``async`` + ``for_each(par(task))`` backend (paper §III-A2).

Every ``op_par_loop`` returns a *future*; the application decides where to
synchronize by calling ``runtime.sync(...)`` (the ``new_data.get()`` of paper
Fig 10). Between sync points, loops overlap freely: an idle thread that
finished its part of ``save_soln`` can pick up ``adt_calc`` chunks instead of
spinning at a barrier.

Functional execution really is deferred — loop bodies run as executor tasks
when futures are driven — so a misplaced sync shows up as a wrong answer in
tests, exactly the hazard the paper attributes to manual ``get`` placement.

The emitter replays the recorded loop/sync sequence: loop chunks depend only
on the driver's position (spawn chain + sync joins) and on the previous color
of their own loop, never on a global barrier.
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend, execute_loop
from repro.backends.emission import add_gate, record_block_costs
from repro.hpx import for_each, par, par_task
from repro.hpx.future import Future
from repro.hpx.runtime import get_runtime
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from repro.op2.runtime import LoopLog, LoopRecord, Op2Runtime, SyncRecord
from repro.sim.barriers import join_cost
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph


class HpxAsyncBackend(Backend):
    """Future-returning loops with application-placed synchronization."""

    name = "hpx_async"
    asynchronous = True

    def __init__(self) -> None:
        self._sched = None  # threads-mode LoopScheduler, created lazily

    def on_attach(self, rt: Op2Runtime) -> None:
        self._sched = None

    def _scheduler(self, rt: Op2Runtime):
        if self._sched is None:
            from repro.backends.scheduling import LoopScheduler

            self._sched = LoopScheduler(rt, refine_blocks=False)
        return self._sched

    def run_loop(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> Future:
        mode = self._exec_mode(rt)

        if loop.is_direct or plan.ncolors == 1:
            # Paper Fig 8/9: one bulk for_each(par(task)) suffices; chunks of
            # a single color never conflict.
            blocks = plan.classes[0] if plan.classes else []

            def body(i: int) -> None:
                execute_loop(loop, plan.block_elements(blocks[i]), mode=mode)

            result = for_each(par_task, range(len(blocks)), body)
            assert isinstance(result, Future)
            return result

        # Colored indirect loop: colors must run as sequential stages. An
        # async orchestration task runs the color-ordered fork-joins; only
        # consumers of the returned future wait on it.
        def orchestrate() -> None:
            for color_blocks in plan.classes:
                def body(i: int, _blocks=color_blocks) -> None:
                    execute_loop(loop, plan.block_elements(_blocks[i]), mode=mode)

                for_each(par, range(len(color_blocks)), body)

        return get_runtime().async_(orchestrate, name=f"async.{loop.name}")

    def run_loop_threads(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> Future:
        # Real-thread mode: every chunk is dependency-released on the pool
        # with no per-loop barrier; the returned future resolves when the
        # loop's finalizer task runs, so the application's ``rt.sync(...)``
        # placement — paper Fig 10's ``new_data.get()`` — is the only real
        # join. Conflicting loops are ordered at loop granularity (the
        # dataflow backend refines to block level).
        return self._scheduler(rt).schedule(
            loop, plan, self._thread_chunker(rt), self._exec_mode(rt), loop_id
        )

    def finalize(self, rt: Op2Runtime) -> None:
        if self._sched is not None:
            self._sched.finalize()
        rt.hpx.executor.drain()

    def cancel(self, rt: Op2Runtime) -> None:
        if self._sched is not None:
            self._sched.cancel()

    def emit(
        self,
        log: LoopLog,
        machine: MachineConfig,
        num_threads: int,
        cost_model: Any,
    ) -> TaskGraph:
        graph = TaskGraph()
        driver: int | None = None  # last task the spawning thread completed
        loop_gate: dict[int, int] = {}  # loop_id -> completion gate task

        for entry in log.entries:
            if isinstance(entry, SyncRecord):
                deps = [loop_gate[lid] for lid in entry.loop_ids if lid in loop_gate]
                if driver is not None:
                    deps.append(driver)
                driver = graph.add(
                    f"sync{entry.loop_ids}",
                    join_cost(machine, num_threads),
                    deps,
                    affinity=0,
                    kind="join",
                )
                continue

            rec = entry
            assert isinstance(rec, LoopRecord)
            costs = record_block_costs(rec, machine, num_threads, cost_model)
            mem = rec.loop.kernel.cost.mem_fraction
            spawn = graph.add(
                f"{rec.loop.name}[{rec.loop_id}].spawn",
                machine.chunk_spawn_overhead * rec.plan.nblocks,
                [driver] if driver is not None else [],
                affinity=0,
                kind="spawn",
                loop=rec.loop.name,
            )
            driver = spawn  # the driver moves on immediately after spawning
            prev_gate: int | None = None
            for color, color_blocks in enumerate(rec.plan.classes):
                entry_deps = [spawn] if prev_gate is None else [prev_gate]
                tids = [
                    graph.add(
                        f"{rec.loop.name}[{rec.loop_id}].blk{b}",
                        costs[b],
                        entry_deps,
                        affinity=None,
                        kind="work",
                        loop=rec.loop.name,
                        mem_fraction=mem,
                    )
                    for b in color_blocks
                ]
                prev_gate = add_gate(
                    graph,
                    f"{rec.loop.name}[{rec.loop_id}].gate.c{color}",
                    tids if tids else [spawn],
                    loop=rec.loop.name,
                )
            loop_gate[rec.loop_id] = (
                prev_gate
                if prev_gate is not None
                else add_gate(graph, f"{rec.loop.name}.empty", [spawn])
            )

        # The run ends when everything completes (application drain).
        return graph
