"""The OpenMP fork-join backend: ``#pragma omp parallel for`` semantics.

Paper Fig 5: OP2's generated OpenMP code runs each color class of each loop
as one parallel region with static block scheduling and an **implicit global
barrier** at its end. No work of loop N+1 can start before the last straggler
of loop N — the fork-join property the paper identifies as the scalability
limit (Amdahl's-law sequential time between loops).
"""

from __future__ import annotations

from typing import Any

from repro.backends.base import Backend
from repro.backends.emission import emit_static_color_class, record_block_costs
from repro.op2.parloop import ParLoop
from repro.op2.plan import Plan
from repro.op2.runtime import LoopLog, Op2Runtime
from repro.sim.barriers import barrier_cost
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph


class OpenMPBackend(Backend):
    """Fork-join execution with static scheduling and per-loop barriers."""

    name = "openmp"
    asynchronous = False

    def run_loop(
        self, rt: Op2Runtime, loop: ParLoop, plan: Plan, loop_id: int
    ) -> None:
        # Functionally, fork-join over blocks in color order is just ordered
        # execution; the numerical result matches the reference exactly.
        self.run_functional(rt, loop, plan)
        return None

    def emit(
        self,
        log: LoopLog,
        machine: MachineConfig,
        num_threads: int,
        cost_model: Any,
    ) -> TaskGraph:
        graph = TaskGraph()
        prev_barrier: int | None = None
        for rec in log.loops():
            costs = record_block_costs(rec, machine, num_threads, cost_model)
            mem = rec.loop.kernel.cost.mem_fraction
            for color, color_blocks in enumerate(rec.plan.classes):
                fork_deps = [prev_barrier] if prev_barrier is not None else []
                fork = graph.add(
                    f"{rec.loop.name}[{rec.loop_id}].fork.c{color}",
                    machine.fork_overhead,
                    fork_deps,
                    affinity=0,
                    kind="spawn",
                    loop=rec.loop.name,
                )
                tails = emit_static_color_class(
                    graph,
                    rec,
                    color_blocks,
                    costs,
                    num_threads,
                    [fork],
                    mem,
                )
                prev_barrier = graph.add(
                    f"{rec.loop.name}[{rec.loop_id}].barrier.c{color}",
                    barrier_cost(machine, num_threads),
                    tails if tails else [fork],
                    affinity=None,
                    kind="barrier",
                    loop=rec.loop.name,
                )
        return graph
