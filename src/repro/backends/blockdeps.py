"""Block-level dependence refinement for the dataflow backend.

Loop-level futures order whole loops; the dataflow *runtime* can do better:
a consumer block only truly depends on the producer blocks that touched the
same rows of the shared dat. This module computes that bipartite relation
from the plans and maps — the "automatic execution tree" the paper credits
for interleaving direct and indirect loops at runtime (§III-B).

All computations are vectorized; the relation is independent of thread count
and is cached by the emitter.
"""

from __future__ import annotations

import numpy as np

from repro.op2.dat import OpDat
from repro.op2.runtime import LoopRecord


def touched_per_block(rec: LoopRecord, dat: OpDat) -> list[np.ndarray]:
    """For each block of ``rec``, the unique dat rows it touches (any access)."""
    out: list[np.ndarray] = []
    args = [a for a in rec.loop.args if a.dat is dat]
    if not args:
        return [np.empty(0, dtype=np.int64) for _ in rec.plan.blocks]
    for block in rec.plan.blocks:
        pieces = []
        for arg in args:
            if arg.is_direct:
                pieces.append(np.arange(block.start, block.stop, dtype=np.int64))
            else:
                assert arg.map_ is not None
                pieces.append(arg.map_.values[block.start : block.stop, arg.idx])
        out.append(np.unique(np.concatenate(pieces)))
    return out


def _ranges_gather(
    starts: np.ndarray, lens: np.ndarray, data: np.ndarray
) -> np.ndarray:
    """Concatenate ``data[starts[i] : starts[i]+lens[i]]`` without a Python loop."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=data.dtype)
    # Offsets within the concatenated output where each range begins.
    out_starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
    # For every output position, the source index.
    idx = np.repeat(starts - out_starts, lens) + np.arange(total)
    return data[idx]


class ElementBlockIndex:
    """CSR index: dat row -> ids of the blocks that touched it."""

    def __init__(self, per_block: list[np.ndarray], num_rows: int) -> None:
        if per_block:
            elems = np.concatenate(per_block)
            blocks = np.repeat(
                np.arange(len(per_block), dtype=np.int64),
                [len(t) for t in per_block],
            )
        else:
            elems = np.empty(0, dtype=np.int64)
            blocks = np.empty(0, dtype=np.int64)
        order = np.argsort(elems, kind="stable")
        elems = elems[order]
        self._blocks = blocks[order]
        counts = np.bincount(elems, minlength=num_rows)
        self._indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self.num_rows = num_rows

    def blocks_for(self, rows: np.ndarray) -> np.ndarray:
        """Unique block ids touching any of ``rows`` (rows must be in range)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._indptr[rows]
        lens = self._indptr[rows + 1] - starts
        return np.unique(_ranges_gather(starts, lens, self._blocks))


def hazard_dats(producer: LoopRecord, consumer: LoopRecord) -> list[OpDat]:
    """Dats shared by two loops where at least one side writes."""
    prod_access: dict[int, tuple[OpDat, bool]] = {}
    for a in producer.loop.args:
        if isinstance(a.dat, OpDat):
            dat, writes = prod_access.get(id(a.dat), (a.dat, False))
            prod_access[id(a.dat)] = (dat, writes or a.access.writes)
    out: list[OpDat] = []
    seen: set[int] = set()
    for a in consumer.loop.args:
        if not isinstance(a.dat, OpDat) or id(a.dat) in seen:
            continue
        hit = prod_access.get(id(a.dat))
        if hit is None:
            continue
        dat, prod_writes = hit
        if prod_writes or a.access.writes:
            seen.add(id(a.dat))
            out.append(dat)
    return out


def block_dependencies(
    producer: LoopRecord, consumer: LoopRecord, dat: OpDat
) -> list[np.ndarray]:
    """For each consumer block, the producer block ids it depends on.

    Valid for every hazard type (RAW/WAR/WAW): a consumer block must wait for
    exactly the producer blocks that touched the same dat rows.
    """
    index = ElementBlockIndex(touched_per_block(producer, dat), dat.set.size)
    return [index.blocks_for(rows) for rows in touched_per_block(consumer, dat)]


class BlockDepCache:
    """Memoized :func:`block_dependencies` keyed by (plans, dat) identity.

    The relation depends only on the two plans and the shared dat — not on
    worker count or time — so one entry serves every timestep in which the
    same pair of loops recurs. Both the dataflow emitter and the measured
    thread scheduler keep an instance.
    """

    def __init__(self) -> None:
        self._cache: dict[tuple, list[np.ndarray]] = {}

    def get(
        self, producer: LoopRecord, consumer: LoopRecord, dat: OpDat
    ) -> list[np.ndarray]:
        key = (
            producer.loop.name,
            id(producer.plan),
            consumer.loop.name,
            id(consumer.plan),
            id(dat),
        )
        deps = self._cache.get(key)
        if deps is None:
            deps = block_dependencies(producer, consumer, dat)
            self._cache[key] = deps
        return deps


def dependency_edge_count(deps: list[np.ndarray]) -> int:
    """Total bipartite edges (diagnostics for emitter budgets)."""
    return int(sum(len(d) for d in deps))
