"""Backend registry: name -> factory.

Mirrors OP2's code-generator targets: the application picks a backend by
name, everything else is unchanged (the point of an active library).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.backends.base import Backend
from repro.op2.exceptions import Op2Error

_REGISTRY: dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (idempotent re-register)."""
    if not name:
        raise Op2Error("backend name must be non-empty")
    _REGISTRY[name] = factory


def create_backend(name: str) -> Backend:
    """Instantiate a registered backend by name."""
    _ensure_builtin()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise Op2Error(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory()


def available_backends() -> list[str]:
    """Names of all registered backends."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def _ensure_builtin() -> None:
    """Lazily register the built-in backends (avoids import cycles)."""
    if "seq" in _REGISTRY:
        return
    from repro.backends.seq import SeqBackend
    from repro.backends.openmp import OpenMPBackend
    from repro.backends.foreach import ForEachBackend
    from repro.backends.hpx_async import HpxAsyncBackend
    from repro.backends.hpx_dataflow import HpxDataflowBackend

    register_backend("seq", SeqBackend)
    register_backend("openmp", OpenMPBackend)
    register_backend("foreach", ForEachBackend)
    register_backend("foreach_static", lambda: ForEachBackend(static_chunking=True))
    register_backend("hpx_async", HpxAsyncBackend)
    register_backend("hpx_dataflow", HpxDataflowBackend)
