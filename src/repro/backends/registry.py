"""Backend registry: name -> factory.

Mirrors OP2's code-generator targets: the application picks a backend by
name, everything else is unchanged (the point of an active library).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.backends.base import Backend
from repro.op2.exceptions import Op2Error

_REGISTRY: dict[str, Callable[[], Backend]] = {}


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (idempotent re-register)."""
    if not name:
        raise Op2Error("backend name must be non-empty")
    _REGISTRY[name] = factory


def create_backend(name: str, **options) -> Backend:
    """Instantiate a registered backend by name.

    ``options`` are forwarded to the factory — e.g.
    ``create_backend("foreach_static", static_chunk=16)`` tunes the grain a
    threads-mode run uses, the "chosen by the programmer" knob of paper
    Fig 7. A factory that does not accept an option raises ``Op2Error``.
    """
    _ensure_builtin()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise Op2Error(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    try:
        return factory(**options)
    except TypeError as exc:
        raise Op2Error(
            f"backend {name!r} rejected options {sorted(options)}: {exc}"
        ) from None


def available_backends() -> list[str]:
    """Names of all registered backends."""
    _ensure_builtin()
    return sorted(_REGISTRY)


def _ensure_builtin() -> None:
    """Lazily register the built-in backends (avoids import cycles)."""
    if "seq" in _REGISTRY:
        return
    from repro.backends.seq import SeqBackend
    from repro.backends.openmp import OpenMPBackend
    from repro.backends.foreach import ForEachBackend
    from repro.backends.hpx_async import HpxAsyncBackend
    from repro.backends.hpx_dataflow import HpxDataflowBackend

    register_backend("seq", SeqBackend)
    register_backend("openmp", OpenMPBackend)
    register_backend("foreach", ForEachBackend)
    register_backend(
        "foreach_static",
        lambda **kw: ForEachBackend(static_chunking=True, **kw),
    )
    register_backend("hpx_async", HpxAsyncBackend)
    register_backend("hpx_dataflow", HpxDataflowBackend)
