"""The Airfoil application driver (paper Fig 4 / Fig 10 / Fig 14).

One solver iteration is::

    save_soln                       # qold <- q
    repeat 2x (RK2-like):           #
        adt_calc                    # local timestep per cell
        res_calc                    # interior fluxes -> res
        bres_calc                   # boundary fluxes -> res
        update                      # q <- qold - res/adt, res <- 0, rms +=

Three driver variants mirror the paper:

- **sync** (seq / openmp / foreach backends): plain program order — every
  loop completes before the next starts (Fig 4);
- **async**: loops return futures; ``rt.sync(...)`` calls mark the
  programmer-placed ``new_data.get()`` points of Fig 10 (with the extra
  save_soln sync the data dependence on ``qold`` requires — the manual
  placement hazard the paper itself points out);
- **dataflow**: no syncs at all; the modified OP2 API orders loops by their
  actual data dependencies, across timestep boundaries (Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.airfoil.constants import DEFAULT_CONSTANTS, FlowConstants
from repro.airfoil.kernels import make_kernels
from repro.airfoil.meshgen import AirfoilMesh
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_RW,
    OP_WRITE,
    OpDat,
    OpGlobal,
    Op2Runtime,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
)

#: Inner iterations per timestep (the original Airfoil uses an RK2 scheme).
INNER_ITERS = 2


@dataclass
class AirfoilResult:
    """Final state of a run, for validation and reporting."""

    iterations: int
    rms_total: float
    q_norm: float
    rms_history: list[float] = field(default_factory=list)

    def final_rms(self, ncells: int) -> float:
        """Paper-style RMS residual (normalized by cell count)."""
        return float(np.sqrt(self.rms_total / ncells))


class AirfoilApp:
    """The Airfoil solver wired to the OP2 API."""

    def __init__(
        self, mesh: AirfoilMesh, constants: FlowConstants = DEFAULT_CONSTANTS
    ) -> None:
        self.mesh = mesh
        self.constants = constants
        self.kernels = make_kernels(constants)

        ncells = mesh.cells.size
        freestream = constants.freestream()
        self.p_x = mesh.x
        self.p_bound = mesh.bound
        self.p_q = OpDat("q", mesh.cells, 4, np.tile(freestream, (ncells, 1)))
        self.p_qold = OpDat("qold", mesh.cells, 4)
        self.p_res = OpDat("res", mesh.cells, 4)
        self.p_adt = OpDat("adt", mesh.cells, 1)
        self.g_rms = OpGlobal("rms", 1)
        self.g_qinf = OpGlobal("qinf", 4, freestream)

    # -- the five loops -------------------------------------------------------

    def loop_save_soln(self):
        return op_par_loop(
            self.kernels["save_soln"],
            "save_soln",
            self.mesh.cells,
            op_arg_dat(self.p_q, -1, OP_ID, OP_READ),
            op_arg_dat(self.p_qold, -1, OP_ID, OP_WRITE),
        )

    def loop_adt_calc(self):
        return op_par_loop(
            self.kernels["adt_calc"],
            "adt_calc",
            self.mesh.cells,
            op_arg_dat(self.p_x, 0, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_x, 1, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_x, 2, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_x, 3, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_q, -1, OP_ID, OP_READ),
            op_arg_dat(self.p_adt, -1, OP_ID, OP_WRITE),
        )

    def loop_res_calc(self):
        return op_par_loop(
            self.kernels["res_calc"],
            "res_calc",
            self.mesh.edges,
            op_arg_dat(self.p_x, 0, self.mesh.pedge, OP_READ),
            op_arg_dat(self.p_x, 1, self.mesh.pedge, OP_READ),
            op_arg_dat(self.p_q, 0, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_q, 1, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_adt, 0, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_adt, 1, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_res, 0, self.mesh.pecell, OP_INC),
            op_arg_dat(self.p_res, 1, self.mesh.pecell, OP_INC),
        )

    def loop_bres_calc(self):
        return op_par_loop(
            self.kernels["bres_calc"],
            "bres_calc",
            self.mesh.bedges,
            op_arg_dat(self.p_x, 0, self.mesh.pbedge, OP_READ),
            op_arg_dat(self.p_x, 1, self.mesh.pbedge, OP_READ),
            op_arg_dat(self.p_q, 0, self.mesh.pbecell, OP_READ),
            op_arg_dat(self.p_adt, 0, self.mesh.pbecell, OP_READ),
            op_arg_dat(self.p_res, 0, self.mesh.pbecell, OP_INC),
            op_arg_dat(self.p_bound, -1, OP_ID, OP_READ),
            op_arg_gbl(self.g_qinf, OP_READ),
        )

    def loop_update(self):
        return op_par_loop(
            self.kernels["update"],
            "update",
            self.mesh.cells,
            op_arg_dat(self.p_qold, -1, OP_ID, OP_READ),
            op_arg_dat(self.p_q, -1, OP_ID, OP_WRITE),
            op_arg_dat(self.p_res, -1, OP_ID, OP_RW),
            op_arg_dat(self.p_adt, -1, OP_ID, OP_READ),
            op_arg_gbl(self.g_rms, OP_INC),
        )

    # -- driver variants ------------------------------------------------------

    def _step_sync(self, rt: Op2Runtime) -> None:
        self.loop_save_soln()
        for _ in range(INNER_ITERS):
            self.loop_adt_calc()
            self.loop_res_calc()
            self.loop_bres_calc()
            self.loop_update()

    def _step_async(self, rt: Op2Runtime) -> None:
        # Paper Fig 10 sync placement, plus the save_soln sync that the
        # qold dependence of update requires.
        f_save = self.loop_save_soln()
        for k in range(INNER_ITERS):
            f_adt = self.loop_adt_calc()
            rt.sync(f_adt)  # res/bres read adt
            f_res = self.loop_res_calc()
            f_bres = self.loop_bres_calc()
            rt.sync(f_res, f_bres)  # update consumes res
            if k == 0:
                rt.sync(f_save)  # update reads qold
            f_update = self.loop_update()
            rt.sync(f_update)  # next adt_calc reads the new q
        del f_update

    def _step_dataflow(self, rt: Op2Runtime) -> None:
        # No synchronization anywhere: the modified API tracks dependencies
        # automatically, including across timestep boundaries.
        self.loop_save_soln()
        for _ in range(INNER_ITERS):
            self.loop_adt_calc()
            self.loop_res_calc()
            self.loop_bres_calc()
            self.loop_update()

    def run(self, rt: Op2Runtime, niter: int) -> AirfoilResult:
        """Run ``niter`` timesteps on the given runtime's backend."""
        backend = rt.backend
        if backend.name == "hpx_dataflow":
            step = self._step_dataflow
        elif backend.asynchronous:
            step = self._step_async
        else:
            step = self._step_sync

        history: list[float] = []
        track_history = not backend.asynchronous
        for _ in range(niter):
            step(rt)
            if track_history:
                # rms accumulates monotonically; per-step increments give the
                # classic convergence trace without forcing async syncs.
                history.append(float(self.g_rms.value()))
        rt.finish()
        return AirfoilResult(
            iterations=niter,
            rms_total=float(self.g_rms.value()),
            q_norm=self.p_q.norm(),
            rms_history=history,
        )
