"""The Airfoil application driver (paper Fig 4 / Fig 10 / Fig 14).

One solver iteration is::

    save_soln                       # qold <- q
    repeat 2x (RK2-like):           #
        adt_calc                    # local timestep per cell
        res_calc                    # interior fluxes -> res
        bres_calc                   # boundary fluxes -> res
        update                      # q <- qold - res/adt, res <- 0, rms +=

The iteration itself lives in :func:`repro.engine.airfoil.airfoil_timestep`
— the one canonical loop-program definition — and this driver *walks* it.
Three walk variants mirror the paper:

- **sync** (seq / openmp / foreach backends): plain program order — every
  loop completes before the next starts (Fig 4);
- **async**: loops return futures; the ``rt.sync(...)`` points are derived
  from the program's footprint conflicts (with increments commuting), which
  lands them exactly where Fig 10's ``new_data.get()`` calls go — including
  the extra save_soln sync the ``qold`` dependence of update requires, the
  manual-placement hazard the paper itself points out;
- **dataflow**: no syncs at all; the modified OP2 API orders loops by their
  actual data dependencies, across timestep boundaries (Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.airfoil.constants import DEFAULT_CONSTANTS, FlowConstants
from repro.airfoil.kernels import make_kernels
from repro.airfoil.meshgen import AirfoilMesh
from repro.engine import INNER_ITERS, airfoil_timestep
from repro.engine.program import LoopStep, steps_conflict
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    OP_RW,
    OP_WRITE,
    OpDat,
    OpGlobal,
    Op2Runtime,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
)

__all__ = ["AirfoilApp", "AirfoilResult", "INNER_ITERS"]


@dataclass
class AirfoilResult:
    """Final state of a run, for validation and reporting."""

    iterations: int
    rms_total: float
    q_norm: float
    rms_history: list[float] = field(default_factory=list)

    def final_rms(self, ncells: int) -> float:
        """Paper-style RMS residual (normalized by cell count)."""
        return float(np.sqrt(self.rms_total / ncells))


class AirfoilApp:
    """The Airfoil solver wired to the OP2 API."""

    def __init__(
        self, mesh: AirfoilMesh, constants: FlowConstants = DEFAULT_CONSTANTS
    ) -> None:
        self.mesh = mesh
        self.constants = constants
        self.kernels = make_kernels(constants)

        ncells = mesh.cells.size
        freestream = constants.freestream()
        self.p_x = mesh.x
        self.p_bound = mesh.bound
        self.p_q = OpDat("q", mesh.cells, 4, np.tile(freestream, (ncells, 1)))
        self.p_qold = OpDat("qold", mesh.cells, 4)
        self.p_res = OpDat("res", mesh.cells, 4)
        self.p_adt = OpDat("adt", mesh.cells, 1)
        self.g_rms = OpGlobal("rms", 1)
        self.g_qinf = OpGlobal("qinf", 4, freestream)

        #: the canonical timestep; all three walk variants consume it.
        self.program = airfoil_timestep()
        #: loops fired but not yet synced, for the async walk: the sync
        #: points are derived, not hand-placed.
        self._pending: list[tuple[LoopStep, object]] = []

    # -- the five loops -------------------------------------------------------

    def loop_save_soln(self):
        return op_par_loop(
            self.kernels["save_soln"],
            "save_soln",
            self.mesh.cells,
            op_arg_dat(self.p_q, -1, OP_ID, OP_READ),
            op_arg_dat(self.p_qold, -1, OP_ID, OP_WRITE),
        )

    def loop_adt_calc(self):
        return op_par_loop(
            self.kernels["adt_calc"],
            "adt_calc",
            self.mesh.cells,
            op_arg_dat(self.p_x, 0, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_x, 1, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_x, 2, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_x, 3, self.mesh.pcell, OP_READ),
            op_arg_dat(self.p_q, -1, OP_ID, OP_READ),
            op_arg_dat(self.p_adt, -1, OP_ID, OP_WRITE),
        )

    def loop_res_calc(self):
        return op_par_loop(
            self.kernels["res_calc"],
            "res_calc",
            self.mesh.edges,
            op_arg_dat(self.p_x, 0, self.mesh.pedge, OP_READ),
            op_arg_dat(self.p_x, 1, self.mesh.pedge, OP_READ),
            op_arg_dat(self.p_q, 0, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_q, 1, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_adt, 0, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_adt, 1, self.mesh.pecell, OP_READ),
            op_arg_dat(self.p_res, 0, self.mesh.pecell, OP_INC),
            op_arg_dat(self.p_res, 1, self.mesh.pecell, OP_INC),
        )

    def loop_bres_calc(self):
        return op_par_loop(
            self.kernels["bres_calc"],
            "bres_calc",
            self.mesh.bedges,
            op_arg_dat(self.p_x, 0, self.mesh.pbedge, OP_READ),
            op_arg_dat(self.p_x, 1, self.mesh.pbedge, OP_READ),
            op_arg_dat(self.p_q, 0, self.mesh.pbecell, OP_READ),
            op_arg_dat(self.p_adt, 0, self.mesh.pbecell, OP_READ),
            op_arg_dat(self.p_res, 0, self.mesh.pbecell, OP_INC),
            op_arg_dat(self.p_bound, -1, OP_ID, OP_READ),
            op_arg_gbl(self.g_qinf, OP_READ),
        )

    def loop_update(self):
        return op_par_loop(
            self.kernels["update"],
            "update",
            self.mesh.cells,
            op_arg_dat(self.p_qold, -1, OP_ID, OP_READ),
            op_arg_dat(self.p_q, -1, OP_ID, OP_WRITE),
            op_arg_dat(self.p_res, -1, OP_ID, OP_RW),
            op_arg_dat(self.p_adt, -1, OP_ID, OP_READ),
            op_arg_gbl(self.g_rms, OP_INC),
        )

    # -- program walks --------------------------------------------------------

    def _fire(self, step: LoopStep):
        """Launch one program step through its ``op_par_loop``."""
        return getattr(self, f"loop_{step.name}")()

    def _step_sync(self, rt: Op2Runtime) -> None:
        for step in self.program:
            self._fire(step)

    def _step_async(self, rt: Op2Runtime) -> None:
        # Before each launch, sync exactly the pending futures whose steps
        # conflict with it (increments commute: res_calc and bres_calc fly
        # together). On this program that derivation reproduces Fig 10's
        # hand placement: adt before res/bres, {save, res, bres} before
        # update, update before the next adt — carried across timestep
        # boundaries by the pending list.
        for step in self.program:
            due = [
                (s, f)
                for s, f in self._pending
                if steps_conflict(s, step, commute_incs=True)
            ]
            if due:
                rt.sync(*(f for _, f in due))
                self._pending = [p for p in self._pending if p not in due]
            self._pending.append((step, self._fire(step)))

    def _step_dataflow(self, rt: Op2Runtime) -> None:
        # No synchronization anywhere: the modified API tracks dependencies
        # automatically, including across timestep boundaries.
        for step in self.program:
            self._fire(step)

    def run(self, rt: Op2Runtime, niter: int) -> AirfoilResult:
        """Run ``niter`` timesteps on the given runtime's backend."""
        backend = rt.backend
        if backend.name == "hpx_dataflow":
            step = self._step_dataflow
        elif backend.asynchronous:
            step = self._step_async
        else:
            step = self._step_sync

        history: list[float] = []
        track_history = not backend.asynchronous
        for _ in range(niter):
            step(rt)
            if track_history:
                # rms accumulates monotonically; per-step increments give the
                # classic convergence trace without forcing async syncs.
                history.append(float(self.g_rms.value()))
        rt.finish()
        self._pending.clear()
        return AirfoilResult(
            iterations=niter,
            rms_total=float(self.g_rms.value()),
            q_norm=self.p_q.norm(),
            rms_history=history,
        )
