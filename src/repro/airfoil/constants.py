"""Flow constants and freestream state for the Airfoil solver.

Matches the constants of the original OP2 Airfoil demo: ideal gas with
``gam = 1.4``, CFL 0.9, smoothing coefficient 0.05, freestream Mach 0.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FlowConstants:
    """Physical and numerical constants of the solver."""

    gam: float = 1.4
    cfl: float = 0.9
    eps: float = 0.05
    mach: float = 0.4
    #: angle of attack in degrees (the original Airfoil declares alpha = 3
    #: degrees but leaves the freestream x-aligned; default 0 keeps that
    #: behaviour, nonzero rotates the freestream velocity).
    alpha_deg: float = 0.0

    @property
    def gm1(self) -> float:
        return self.gam - 1.0

    @property
    def alpha(self) -> float:
        """Angle of attack in radians."""
        return math.radians(self.alpha_deg)

    def freestream(self) -> np.ndarray:
        """Conservative freestream state ``[rho, rho*u, rho*v, rho*E]``.

        Density and pressure are 1; the speed realizes the freestream Mach
        number, directed ``alpha_deg`` above the x axis.
        """
        p = 1.0
        r = 1.0
        speed = math.sqrt(self.gam * p / r) * self.mach
        u = speed * math.cos(self.alpha)
        v = speed * math.sin(self.alpha)
        e = p / (r * self.gm1) + 0.5 * speed * speed
        return np.array([r, r * u, r * v, r * e], dtype=np.float64)


#: Module-level default constants used by the kernels.
DEFAULT_CONSTANTS = FlowConstants()
