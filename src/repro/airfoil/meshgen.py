"""Body-fitted O-mesh generation around an airfoil.

Replaces the paper's mesh input file with a parametric generator. The mesh is
an O-topology quad grid: ``ni`` cells around the airfoil, ``nj`` cell layers
from the wall (j=0) to a circular far field (j=nj), with geometric radial
clustering near the wall. Although generated from a structured template, the
result is delivered purely as unstructured sets + maps + dats — exactly the
representation OP2's Airfoil reads from its grid file, and the only thing any
kernel ever sees.

Layout (all ids 0-based, rows contiguous):

- nodes:  ``ni * (nj + 1)``; node(i, j) = ``j * ni + i``; i wraps mod ni.
- cells:  ``ni * nj``;       cell(i, j) = ``j * ni + i``.
- edges:  ``ni * nj`` radial-face edges (between circumferential neighbour
  cells) followed by ``ni * (nj - 1)`` circumferential-face edges (between
  radial neighbour cells).
- bedges: ``ni`` wall edges (bound=1) then ``ni`` far-field edges (bound=2).

Maps: pedge (edges -> 2 nodes), pecell (edges -> 2 cells), pbedge
(bedges -> 2 nodes), pbecell (bedges -> 1 cell), pcell (cells -> 4 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.airfoil.naca import naca4_surface
from repro.op2 import OpDat, OpMap, OpSet
from repro.util.validate import ValidationError

WALL = 1
FARFIELD = 2


@dataclass
class AirfoilMesh:
    """The generated unstructured mesh in OP2 terms."""

    ni: int
    nj: int
    nodes: OpSet
    edges: OpSet
    bedges: OpSet
    cells: OpSet
    pedge: OpMap
    pecell: OpMap
    pbedge: OpMap
    pbecell: OpMap
    pcell: OpMap
    x: OpDat  # node coordinates, dim 2
    bound: OpDat  # boundary condition tag per bedge, dim 1 (int64)

    def summary(self) -> str:
        return (
            f"O-mesh {self.ni}x{self.nj}: {self.nodes.size} nodes, "
            f"{self.cells.size} cells, {self.edges.size} edges, "
            f"{self.bedges.size} bedges"
        )


def _radial_fractions(nj: int, clustering: float) -> np.ndarray:
    """Wall-clustered fractions f_0=0 < ... < f_nj=1 (geometric stretching)."""
    j = np.arange(nj + 1, dtype=np.float64) / nj
    if clustering <= 1.0:
        return j
    return (clustering**j - 1.0) / (clustering - 1.0)


def generate_mesh(
    ni: int = 60,
    nj: int = 30,
    far_radius: float = 10.0,
    thickness: float = 0.12,
    clustering: float = 8.0,
) -> AirfoilMesh:
    """Generate the O-mesh and wrap it in OP2 sets/maps/dats."""
    if ni < 8 or ni % 2 != 0:
        raise ValidationError(f"ni must be even and >= 8, got {ni}")
    if nj < 2:
        raise ValidationError(f"nj must be >= 2, got {nj}")
    if far_radius <= 1.0:
        raise ValidationError(f"far_radius must exceed the chord, got {far_radius}")

    nnodes = ni * (nj + 1)
    ncells = ni * nj
    nedges = ni * nj + ni * (nj - 1)
    nbedges = 2 * ni

    def node(i: np.ndarray | int, j: np.ndarray | int) -> np.ndarray | int:
        return (np.asarray(j) * ni + np.asarray(i) % ni).astype(np.int64)

    def cell(i: np.ndarray | int, j: np.ndarray | int) -> np.ndarray | int:
        return (np.asarray(j) * ni + np.asarray(i) % ni).astype(np.int64)

    # -- geometry -----------------------------------------------------------
    surface = naca4_surface(ni, thickness=thickness)
    centroid = np.array([0.5, 0.0])
    angles = np.arctan2(surface[:, 1] - centroid[1], surface[:, 0] - centroid[0])
    outer = centroid + far_radius * np.stack(
        [np.cos(angles), np.sin(angles)], axis=1
    )
    fractions = _radial_fractions(nj, clustering)
    coords = np.empty((nnodes, 2), dtype=np.float64)
    for j in range(nj + 1):
        f = fractions[j]
        coords[j * ni : (j + 1) * ni] = surface * (1.0 - f) + outer * f

    # -- connectivity -------------------------------------------------------
    ii = np.arange(ni, dtype=np.int64)

    # cells -> 4 nodes (counterclockwise within a layer).
    pcell_vals = np.empty((ncells, 4), dtype=np.int64)
    for j in range(nj):
        rows = slice(j * ni, (j + 1) * ni)
        pcell_vals[rows, 0] = node(ii, j)
        pcell_vals[rows, 1] = node(ii + 1, j)
        pcell_vals[rows, 2] = node(ii + 1, j + 1)
        pcell_vals[rows, 3] = node(ii, j + 1)

    pedge_vals = np.empty((nedges, 2), dtype=np.int64)
    pecell_vals = np.empty((nedges, 2), dtype=np.int64)
    # Radial-face edges: between cell(i, j) and cell(i+1, j); the shared face
    # runs radially through nodes (i+1, j+1) -> (i+1, j). Node order matters:
    # the kernels' normal (dy, -dx) with (dx, dy) = x1 - x2 must point OUT of
    # cell1 = cell(i, j), which for a CCW cell means x1 is the outer node.
    for j in range(nj):
        rows = slice(j * ni, (j + 1) * ni)
        pedge_vals[rows, 0] = node(ii + 1, j + 1)
        pedge_vals[rows, 1] = node(ii + 1, j)
        pecell_vals[rows, 0] = cell(ii, j)
        pecell_vals[rows, 1] = cell(ii + 1, j)
    # Circumferential-face edges: between cell(i, j) and cell(i, j+1); the
    # shared face runs circumferentially through nodes (i, j+1) -> (i+1, j+1).
    base = ni * nj
    for j in range(nj - 1):
        rows = slice(base + j * ni, base + (j + 1) * ni)
        pedge_vals[rows, 0] = node(ii, j + 1)
        pedge_vals[rows, 1] = node(ii + 1, j + 1)
        pecell_vals[rows, 0] = cell(ii, j)
        pecell_vals[rows, 1] = cell(ii, j + 1)

    pbedge_vals = np.empty((nbedges, 2), dtype=np.int64)
    pbecell_vals = np.empty((nbedges, 1), dtype=np.int64)
    bound_vals = np.empty((nbedges, 1), dtype=np.int64)
    # Wall edges along j=0 under cell(i, 0). Node order is flipped relative
    # to the far-field edges so the signed edge vector matches the interior
    # face convention (outward normal); the discretization telescopes to a
    # conservative scheme only with this orientation.
    pbedge_vals[:ni, 0] = node(ii + 1, 0)
    pbedge_vals[:ni, 1] = node(ii, 0)
    pbecell_vals[:ni, 0] = cell(ii, 0)
    bound_vals[:ni, 0] = WALL
    # Far-field edges along j=nj above cell(i, nj-1).
    pbedge_vals[ni:, 0] = node(ii, nj)
    pbedge_vals[ni:, 1] = node(ii + 1, nj)
    pbecell_vals[ni:, 0] = cell(ii, nj - 1)
    bound_vals[ni:, 0] = FARFIELD

    nodes = OpSet("nodes", nnodes)
    edges = OpSet("edges", nedges)
    bedges = OpSet("bedges", nbedges)
    cells = OpSet("cells", ncells)
    return AirfoilMesh(
        ni=ni,
        nj=nj,
        nodes=nodes,
        edges=edges,
        bedges=bedges,
        cells=cells,
        pedge=OpMap("pedge", edges, nodes, 2, pedge_vals),
        pecell=OpMap("pecell", edges, cells, 2, pecell_vals),
        pbedge=OpMap("pbedge", bedges, nodes, 2, pbedge_vals),
        pbecell=OpMap("pbecell", bedges, cells, 1, pbecell_vals),
        pcell=OpMap("pcell", cells, nodes, 4, pcell_vals),
        x=OpDat("x", nodes, 2, coords),
        bound=OpDat("bound", bedges, 1, bound_vals, dtype=np.int64),
    )


def scaled_mesh_dims(base_ni: int, base_nj: int, factor: float) -> tuple[int, int]:
    """Scale mesh dimensions so the cell count grows ~``factor``-fold.

    Used by weak scaling: both directions grow by sqrt(factor); ``ni`` stays
    even as the O-topology requires.
    """
    if factor <= 0:
        raise ValidationError(f"factor must be > 0, got {factor}")
    s = float(np.sqrt(factor))
    ni = max(8, int(round(base_ni * s / 2.0)) * 2)
    nj = max(2, int(round(base_nj * s)))
    return ni, nj
