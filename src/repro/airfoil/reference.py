"""Independent plain-numpy Airfoil implementation for validating backends.

Deliberately does **not** reuse the OP2 kernels or gather/scatter machinery:
the timestep is written directly against the mesh arrays, so agreement with
the OP2-driven runs validates the whole pipeline (args, plans, backends,
futures, dataflow) and not just the kernel algebra.
"""

from __future__ import annotations

import numpy as np

from repro.airfoil.app import INNER_ITERS, AirfoilResult
from repro.airfoil.constants import DEFAULT_CONSTANTS, FlowConstants
from repro.airfoil.meshgen import WALL, AirfoilMesh


class ReferenceAirfoil:
    """Straight-line numpy Euler solver over the generated mesh."""

    def __init__(
        self, mesh: AirfoilMesh, constants: FlowConstants = DEFAULT_CONSTANTS
    ) -> None:
        self.mesh = mesh
        self.c = constants
        ncells = mesh.cells.size
        self.qinf = constants.freestream()
        self.q = np.tile(self.qinf, (ncells, 1))
        self.qold = np.zeros((ncells, 4))
        self.res = np.zeros((ncells, 4))
        self.adt = np.zeros((ncells, 1))
        self.rms = 0.0

    # -- loop equivalents -----------------------------------------------------

    def _adt_calc(self) -> None:
        c = self.c
        xs = self.mesh.x.data
        corners = [xs[self.mesh.pcell.values[:, k]] for k in range(4)]
        ri = 1.0 / self.q[:, 0]
        u = ri * self.q[:, 1]
        v = ri * self.q[:, 2]
        snd = np.sqrt(c.gam * c.gm1 * (ri * self.q[:, 3] - 0.5 * (u * u + v * v)))
        total = np.zeros_like(u)
        for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
            dx = corners[b][:, 0] - corners[a][:, 0]
            dy = corners[b][:, 1] - corners[a][:, 1]
            total += np.abs(u * dy - v * dx) + snd * np.sqrt(dx * dx + dy * dy)
        self.adt[:, 0] = total / c.cfl

    def _res_calc(self) -> None:
        c = self.c
        xs = self.mesh.x.data
        pedge = self.mesh.pedge.values
        pecell = self.mesh.pecell.values
        x1 = xs[pedge[:, 0]]
        x2 = xs[pedge[:, 1]]
        q1 = self.q[pecell[:, 0]]
        q2 = self.q[pecell[:, 1]]
        adt1 = self.adt[pecell[:, 0], 0]
        adt2 = self.adt[pecell[:, 1], 0]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri = 1.0 / q1[:, 0]
        p1 = c.gm1 * (q1[:, 3] - 0.5 * ri * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri * (q1[:, 1] * dy - q1[:, 2] * dx)
        ri = 1.0 / q2[:, 0]
        p2 = c.gm1 * (q2[:, 3] - 0.5 * ri * (q2[:, 1] ** 2 + q2[:, 2] ** 2))
        vol2 = ri * (q2[:, 1] * dy - q2[:, 2] * dx)
        mu = 0.5 * (adt1 + adt2) * c.eps
        f0 = 0.5 * (vol1 * q1[:, 0] + vol2 * q2[:, 0]) + mu * (q1[:, 0] - q2[:, 0])
        f1 = 0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * q2[:, 1] + p2 * dy) + mu * (
            q1[:, 1] - q2[:, 1]
        )
        f2 = 0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * q2[:, 2] - p2 * dx) + mu * (
            q1[:, 2] - q2[:, 2]
        )
        f3 = 0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (q2[:, 3] + p2)) + mu * (
            q1[:, 3] - q2[:, 3]
        )
        flux = np.stack([f0, f1, f2, f3], axis=1)
        np.add.at(self.res, pecell[:, 0], flux)
        np.add.at(self.res, pecell[:, 1], -flux)

    def _bres_calc(self) -> None:
        c = self.c
        xs = self.mesh.x.data
        pbedge = self.mesh.pbedge.values
        pbecell = self.mesh.pbecell.values
        bound = self.mesh.bound.data[:, 0]
        qinf = self.qinf
        x1 = xs[pbedge[:, 0]]
        x2 = xs[pbedge[:, 1]]
        q1 = self.q[pbecell[:, 0]]
        adt1 = self.adt[pbecell[:, 0], 0]
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri = 1.0 / q1[:, 0]
        p1 = c.gm1 * (q1[:, 3] - 0.5 * ri * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri * (q1[:, 1] * dy - q1[:, 2] * dx)
        rinf = 1.0 / qinf[0]
        p2 = c.gm1 * (qinf[3] - 0.5 * rinf * (qinf[1] ** 2 + qinf[2] ** 2))
        vol2 = rinf * (qinf[1] * dy - qinf[2] * dx)
        mu = adt1 * c.eps
        f0 = 0.5 * (vol1 * q1[:, 0] + vol2 * qinf[0]) + mu * (q1[:, 0] - qinf[0])
        f1 = 0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * qinf[1] + p2 * dy) + mu * (
            q1[:, 1] - qinf[1]
        )
        f2 = 0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * qinf[2] - p2 * dx) + mu * (
            q1[:, 2] - qinf[2]
        )
        f3 = 0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (qinf[3] + p2)) + mu * (
            q1[:, 3] - qinf[3]
        )
        far = np.stack([f0, f1, f2, f3], axis=1)
        wall_flux = np.zeros_like(far)
        wall_flux[:, 1] = p1 * dy
        wall_flux[:, 2] = -p1 * dx
        flux = np.where((bound == WALL)[:, None], wall_flux, far)
        np.add.at(self.res, pbecell[:, 0], flux)

    def _update(self) -> None:
        delta = self.res / self.adt
        self.q[:] = self.qold - delta
        self.res[:] = 0.0
        self.rms += float(np.sum(delta * delta))

    # -- driver ---------------------------------------------------------------

    def step(self) -> None:
        self.qold[:] = self.q
        for _ in range(INNER_ITERS):
            self._adt_calc()
            self._res_calc()
            self._bres_calc()
            self._update()

    def run(self, niter: int) -> AirfoilResult:
        history = []
        for _ in range(niter):
            self.step()
            history.append(self.rms)
        return AirfoilResult(
            iterations=niter,
            rms_total=self.rms,
            q_norm=float(np.sqrt(np.sum(self.q**2))),
            rms_history=history,
        )
