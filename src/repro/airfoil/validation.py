"""Validation helpers: comparing solver states across backends."""

from __future__ import annotations

import numpy as np

from repro.airfoil.app import AirfoilApp, AirfoilResult
from repro.airfoil.reference import ReferenceAirfoil
from repro.util.validate import ValidationError


def max_rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum difference relative to the arrays' overall magnitude.

    Element-wise relative error is meaningless for fields with incidental
    near-zeros (the v-momentum of an x-aligned freestream is ~1e-16), so the
    denominator is the largest magnitude in either array, not per element.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValidationError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    scale = max(float(np.max(np.abs(a))), float(np.max(np.abs(b))), 1e-30)
    return float(np.max(np.abs(a - b))) / scale


def compare_states(
    app: AirfoilApp, ref: ReferenceAirfoil, tol: float = 1e-10
) -> dict[str, float]:
    """Compare an OP2 app's state to the reference; raise beyond ``tol``.

    Returns the per-field maximum relative differences for reporting.
    """
    diffs = {
        "q": max_rel_diff(app.p_q.data, ref.q),
        "qold": max_rel_diff(app.p_qold.data, ref.qold),
        "res": max_rel_diff(app.p_res.data, ref.res),
        "adt": max_rel_diff(app.p_adt.data, ref.adt),
        "rms": max_rel_diff(
            np.array([app.g_rms.value()]), np.array([ref.rms])
        ),
    }
    bad = {k: v for k, v in diffs.items() if v > tol}
    if bad:
        raise ValidationError(
            f"backend state deviates from reference beyond tol={tol}: {bad}"
        )
    return diffs


def compare_results(a: AirfoilResult, b: AirfoilResult, tol: float = 1e-10) -> None:
    """Check two runs produced the same physics."""
    if a.iterations != b.iterations:
        raise ValidationError(
            f"iteration counts differ: {a.iterations} vs {b.iterations}"
        )
    for field in ("rms_total", "q_norm"):
        va, vb = getattr(a, field), getattr(b, field)
        scale = max(abs(va), abs(vb), 1e-30)
        if abs(va - vb) / scale > tol:
            raise ValidationError(
                f"{field} differs beyond tol={tol}: {va!r} vs {vb!r}"
            )
