"""The Airfoil application: a standard unstructured-mesh finite-volume CFD code.

Airfoil (Giles et al.) is OP2's canonical demo and the paper's benchmark: an
inviscid 2-D Euler solver around an airfoil with five parallel loops per
timestep (paper Fig 4):

- ``save_soln`` (direct, cells) — copy the solution;
- ``adt_calc`` (indirect, cells via the cell->node map) — local timestep;
- ``res_calc`` (indirect, edges via edge->node and edge->cell maps) — interior
  fluxes, incrementing cell residuals;
- ``bres_calc`` (indirect, boundary edges) — wall/far-field fluxes;
- ``update`` (direct, cells) — explicit update plus an RMS global reduction.

The paper's mesh input file is replaced by a parametric body-fitted O-mesh
generator around a NACA airfoil (:mod:`~repro.airfoil.meshgen`) producing the
same sets/maps/dats layout at any resolution.
"""

from repro.airfoil.constants import FlowConstants
from repro.airfoil.naca import naca4_thickness, naca4_surface
from repro.airfoil.meshgen import AirfoilMesh, generate_mesh
from repro.airfoil.kernels import make_kernels
from repro.airfoil.app import AirfoilApp, AirfoilResult
from repro.airfoil.reference import ReferenceAirfoil
from repro.airfoil.validation import compare_states, max_rel_diff
from repro.airfoil.metrics import ForceCoefficients, compute_forces, reference_forces
from repro.airfoil.quality import MeshQuality, mesh_quality

__all__ = [
    "FlowConstants",
    "naca4_thickness",
    "naca4_surface",
    "AirfoilMesh",
    "generate_mesh",
    "make_kernels",
    "AirfoilApp",
    "AirfoilResult",
    "ReferenceAirfoil",
    "compare_states",
    "max_rel_diff",
    "ForceCoefficients",
    "compute_forces",
    "reference_forces",
    "MeshQuality",
    "mesh_quality",
]
