"""The five Airfoil kernels, in elemental and vectorized form.

Each kernel exists twice with identical semantics:

- the *elemental* form mirrors the original OP2 user kernels (``save_soln.h``
  etc.): plain scalar Python over one element's argument views;
- the *vectorized* form operates in place on gathered ``(n, dim)`` batches —
  the fast path all backends use.

The test suite checks the two forms agree element-for-element on random
states; the cost numbers calibrate the machine simulator (they reflect the
relative arithmetic/memory intensity of each kernel).
"""

from __future__ import annotations

import math

import numpy as np

from repro.airfoil.constants import FlowConstants
from repro.airfoil.meshgen import WALL
from repro.op2 import Kernel, KernelCost


def make_kernels(constants: FlowConstants) -> dict[str, Kernel]:
    """Build the Airfoil kernel set for the given flow constants."""
    gam = constants.gam
    gm1 = constants.gm1
    cfl = constants.cfl
    eps = constants.eps

    # -- save_soln: qold <- q (direct, cells) --------------------------------

    def save_soln(q, qold):
        for n in range(4):
            qold[n] = q[n]

    def save_soln_vec(q, qold):
        qold[:] = q

    # -- adt_calc: local timestep from cell nodes (indirect, cells) ----------

    def adt_calc(x1, x2, x3, x4, q, adt):
        ri = 1.0 / q[0]
        u = ri * q[1]
        v = ri * q[2]
        c = math.sqrt(gam * gm1 * (ri * q[3] - 0.5 * (u * u + v * v)))
        total = 0.0
        for xa, xb in ((x1, x2), (x2, x3), (x3, x4), (x4, x1)):
            dx = xb[0] - xa[0]
            dy = xb[1] - xa[1]
            total += abs(u * dy - v * dx) + c * math.sqrt(dx * dx + dy * dy)
        adt[0] = total / cfl

    def adt_calc_vec(x1, x2, x3, x4, q, adt):
        ri = 1.0 / q[:, 0]
        u = ri * q[:, 1]
        v = ri * q[:, 2]
        c = np.sqrt(gam * gm1 * (ri * q[:, 3] - 0.5 * (u * u + v * v)))
        total = np.zeros_like(u)
        for xa, xb in ((x1, x2), (x2, x3), (x3, x4), (x4, x1)):
            dx = xb[:, 0] - xa[:, 0]
            dy = xb[:, 1] - xa[:, 1]
            total += np.abs(u * dy - v * dx) + c * np.sqrt(dx * dx + dy * dy)
        adt[:, 0] = total / cfl

    # -- res_calc: interior fluxes (indirect, edges) --------------------------

    def res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2):
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]
        ri = 1.0 / q1[0]
        p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]))
        vol1 = ri * (q1[1] * dy - q1[2] * dx)
        ri = 1.0 / q2[0]
        p2 = gm1 * (q2[3] - 0.5 * ri * (q2[1] * q2[1] + q2[2] * q2[2]))
        vol2 = ri * (q2[1] * dy - q2[2] * dx)
        mu = 0.5 * (adt1[0] + adt2[0]) * eps
        f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0])
        res1[0] += f
        res2[0] -= f
        f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (
            q1[1] - q2[1]
        )
        res1[1] += f
        res2[1] -= f
        f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (
            q1[2] - q2[2]
        )
        res1[2] += f
        res2[2] -= f
        f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3])
        res1[3] += f
        res2[3] -= f

    def res_calc_vec(x1, x2, q1, q2, adt1, adt2, res1, res2):
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri = 1.0 / q1[:, 0]
        p1 = gm1 * (q1[:, 3] - 0.5 * ri * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        vol1 = ri * (q1[:, 1] * dy - q1[:, 2] * dx)
        ri = 1.0 / q2[:, 0]
        p2 = gm1 * (q2[:, 3] - 0.5 * ri * (q2[:, 1] ** 2 + q2[:, 2] ** 2))
        vol2 = ri * (q2[:, 1] * dy - q2[:, 2] * dx)
        mu = 0.5 * (adt1[:, 0] + adt2[:, 0]) * eps
        f0 = 0.5 * (vol1 * q1[:, 0] + vol2 * q2[:, 0]) + mu * (q1[:, 0] - q2[:, 0])
        f1 = 0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * q2[:, 1] + p2 * dy) + mu * (
            q1[:, 1] - q2[:, 1]
        )
        f2 = 0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * q2[:, 2] - p2 * dx) + mu * (
            q1[:, 2] - q2[:, 2]
        )
        f3 = 0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (q2[:, 3] + p2)) + mu * (
            q1[:, 3] - q2[:, 3]
        )
        flux = np.stack([f0, f1, f2, f3], axis=1)
        res1 += flux
        res2 -= flux

    # -- bres_calc: boundary fluxes (indirect, bedges) ------------------------

    def bres_calc(x1, x2, q1, adt1, res1, bound, qinf):
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]
        ri = 1.0 / q1[0]
        p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]))
        if bound[0] == WALL:
            res1[1] += +p1 * dy
            res1[2] += -p1 * dx
            return
        vol1 = ri * (q1[1] * dy - q1[2] * dx)
        ri = 1.0 / qinf[0]
        p2 = gm1 * (qinf[3] - 0.5 * ri * (qinf[1] * qinf[1] + qinf[2] * qinf[2]))
        vol2 = ri * (qinf[1] * dy - qinf[2] * dx)
        mu = adt1[0] * eps
        f = 0.5 * (vol1 * q1[0] + vol2 * qinf[0]) + mu * (q1[0] - qinf[0])
        res1[0] += f
        f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * qinf[1] + p2 * dy) + mu * (
            q1[1] - qinf[1]
        )
        res1[1] += f
        f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * qinf[2] - p2 * dx) + mu * (
            q1[2] - qinf[2]
        )
        res1[2] += f
        f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (qinf[3] + p2)) + mu * (
            q1[3] - qinf[3]
        )
        res1[3] += f

    def bres_calc_vec(x1, x2, q1, adt1, res1, bound, qinf):
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri = 1.0 / q1[:, 0]
        p1 = gm1 * (q1[:, 3] - 0.5 * ri * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        wall = bound[:, 0] == WALL

        # Far-field flux against the freestream state.
        vol1 = ri * (q1[:, 1] * dy - q1[:, 2] * dx)
        rinf = 1.0 / qinf[0]
        p2 = gm1 * (qinf[3] - 0.5 * rinf * (qinf[1] ** 2 + qinf[2] ** 2))
        vol2 = rinf * (qinf[1] * dy - qinf[2] * dx)
        mu = adt1[:, 0] * eps
        f0 = 0.5 * (vol1 * q1[:, 0] + vol2 * qinf[0]) + mu * (q1[:, 0] - qinf[0])
        f1 = 0.5 * (vol1 * q1[:, 1] + p1 * dy + vol2 * qinf[1] + p2 * dy) + mu * (
            q1[:, 1] - qinf[1]
        )
        f2 = 0.5 * (vol1 * q1[:, 2] - p1 * dx + vol2 * qinf[2] - p2 * dx) + mu * (
            q1[:, 2] - qinf[2]
        )
        f3 = 0.5 * (vol1 * (q1[:, 3] + p1) + vol2 * (qinf[3] + p2)) + mu * (
            q1[:, 3] - qinf[3]
        )
        far = np.stack([f0, f1, f2, f3], axis=1)
        # Wall: pressure force only.
        wall_flux = np.zeros_like(far)
        wall_flux[:, 1] = p1 * dy
        wall_flux[:, 2] = -p1 * dx
        res1 += np.where(wall[:, None], wall_flux, far)

    # -- update: explicit step + RMS reduction (direct, cells) ---------------

    def update(qold, q, res, adt, rms):
        adti = 1.0 / adt[0]
        acc = 0.0
        for n in range(4):
            delta = adti * res[n]
            q[n] = qold[n] - delta
            res[n] = 0.0
            acc += delta * delta
        rms[0] += acc

    def update_vec(qold, q, res, adt, rms):
        delta = res / adt  # adt broadcasts over the 4 components
        q[:] = qold - delta
        res[:] = 0.0
        rms[:, 0] += np.sum(delta * delta, axis=1)

    # Per-element costs (abstract microseconds) reflect relative arithmetic
    # and memory traffic; they calibrate the simulator, not the numerics.
    return {
        "save_soln": Kernel(
            "save_soln", save_soln, save_soln_vec, KernelCost(0.08, 0.95)
        ),
        "adt_calc": Kernel(
            "adt_calc", adt_calc, adt_calc_vec, KernelCost(0.45, 0.35)
        ),
        "res_calc": Kernel(
            "res_calc", res_calc, res_calc_vec, KernelCost(0.55, 0.55)
        ),
        "bres_calc": Kernel(
            "bres_calc", bres_calc, bres_calc_vec, KernelCost(0.45, 0.40)
        ),
        "update": Kernel("update", update, update_vec, KernelCost(0.20, 0.80)),
    }
