"""Mesh quality metrics: the numbers a CFD practitioner checks first.

Bad cells destabilize the explicit solver long before they crash it (the
orientation and aspect-ratio bugs found while building this reproduction
both manifested as slow residual growth). This module quantifies:

- signed **areas** (all must be positive — orientation);
- **aspect ratio** per cell (longest face over shortest face);
- **skewness** per cell (worst interior-angle deviation from 90 degrees,
  normalized to [0, 1] where 0 is a perfect rectangle);
- **smoothness** per interior edge (larger neighbour area over smaller).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.airfoil.meshgen import AirfoilMesh
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class MeshQuality:
    """Summary statistics of a mesh's cell quality."""

    ncells: int
    min_area: float
    max_area: float
    max_aspect: float
    mean_aspect: float
    max_skew: float
    mean_skew: float
    max_smoothness: float

    def healthy(
        self,
        max_aspect: float = 120.0,
        max_skew: float = 0.98,
        max_smoothness: float = 10.0,
    ) -> bool:
        """True when no metric exceeds its (generous) solver-safety bound.

        Bounds reflect what the explicit solver demonstrably tolerates on the
        generated meshes: cosine surface spacing makes needle cells near the
        trailing edge (aspect ~55 at default resolution) that run stably.
        """
        return (
            self.min_area > 0.0
            and self.max_aspect <= max_aspect
            and self.max_skew <= max_skew
            and self.max_smoothness <= max_smoothness
        )

    def report(self) -> str:
        return (
            f"{self.ncells} cells: area [{self.min_area:.3g}, {self.max_area:.3g}], "
            f"aspect max {self.max_aspect:.1f} (mean {self.mean_aspect:.2f}), "
            f"skew max {self.max_skew:.2f} (mean {self.mean_skew:.2f}), "
            f"smoothness max {self.max_smoothness:.2f}"
        )


def cell_quality_arrays(mesh: AirfoilMesh) -> dict[str, np.ndarray]:
    """Per-cell quality arrays: area, aspect, skew."""
    x = mesh.x.data[mesh.pcell.values]  # (ncells, 4, 2)
    # Signed area (shoelace over the quad corners).
    area = np.zeros(mesh.cells.size)
    side_len = np.empty((mesh.cells.size, 4))
    angles = np.empty((mesh.cells.size, 4))
    for i, (a, b) in enumerate(((0, 1), (1, 2), (2, 3), (3, 0))):
        area += x[:, a, 0] * x[:, b, 1] - x[:, b, 0] * x[:, a, 1]
        side_len[:, i] = np.hypot(
            x[:, b, 0] - x[:, a, 0], x[:, b, 1] - x[:, a, 1]
        )
    area *= 0.5
    for i in range(4):
        prev = (i - 1) % 4
        nxt = (i + 1) % 4
        v1 = x[:, prev] - x[:, i]
        v2 = x[:, nxt] - x[:, i]
        dot = np.sum(v1 * v2, axis=1)
        norms = np.linalg.norm(v1, axis=1) * np.linalg.norm(v2, axis=1)
        angles[:, i] = np.arccos(np.clip(dot / np.maximum(norms, 1e-300), -1, 1))
    aspect = side_len.max(axis=1) / np.maximum(side_len.min(axis=1), 1e-300)
    # Quad skewness: worst deviation from the ideal right angle.
    skew = np.max(np.abs(angles - np.pi / 2), axis=1) / (np.pi / 2)
    return {"area": area, "aspect": aspect, "skew": skew}


def mesh_quality(mesh: AirfoilMesh) -> MeshQuality:
    """Compute the summary quality record for a mesh."""
    arrays = cell_quality_arrays(mesh)
    area = arrays["area"]
    if mesh.cells.size == 0:
        raise ValidationError("cannot assess an empty mesh")
    a1 = area[mesh.pecell.values[:, 0]]
    a2 = area[mesh.pecell.values[:, 1]]
    smooth = np.maximum(a1, a2) / np.maximum(np.minimum(a1, a2), 1e-300)
    return MeshQuality(
        ncells=mesh.cells.size,
        min_area=float(area.min()),
        max_area=float(area.max()),
        max_aspect=float(arrays["aspect"].max()),
        mean_aspect=float(arrays["aspect"].mean()),
        max_skew=float(arrays["skew"].max()),
        mean_skew=float(arrays["skew"].mean()),
        max_smoothness=float(smooth.max()),
    )
