"""NACA 4-digit airfoil geometry."""

from __future__ import annotations

import numpy as np

from repro.util.validate import ValidationError


def naca4_thickness(x: np.ndarray, thickness: float = 0.12) -> np.ndarray:
    """Half-thickness of a NACA 4-digit section at chordwise positions ``x``.

    Uses the closed-trailing-edge coefficient set so the surface loop closes
    exactly (required for a watertight O-mesh).
    """
    if not 0.0 < thickness < 1.0:
        raise ValidationError(f"thickness must be in (0, 1), got {thickness}")
    x = np.asarray(x, dtype=np.float64)
    if np.any((x < 0.0) | (x > 1.0)):
        raise ValidationError("chordwise positions must lie in [0, 1]")
    return (
        5.0
        * thickness
        * (
            0.2969 * np.sqrt(x)
            - 0.1260 * x
            - 0.3516 * x**2
            + 0.2843 * x**3
            - 0.1036 * x**4  # -0.1015 for the open-TE variant
        )
    )


def naca4_camber(x: np.ndarray, m: float = 0.0, p: float = 0.4) -> np.ndarray:
    """Camber line of a NACA 4-digit section (``m`` max camber at ``p``)."""
    x = np.asarray(x, dtype=np.float64)
    if m == 0.0:
        return np.zeros_like(x)
    if not 0.0 < p < 1.0:
        raise ValidationError(f"camber position must be in (0, 1), got {p}")
    fore = (m / p**2) * (2.0 * p * x - x**2)
    aft = (m / (1.0 - p) ** 2) * ((1.0 - 2.0 * p) + 2.0 * p * x - x**2)
    return np.where(x < p, fore, aft)


def naca4_surface(
    n: int, thickness: float = 0.12, camber: float = 0.0, camber_pos: float = 0.4
) -> np.ndarray:
    """``n`` surface points around the airfoil, counterclockwise from the TE.

    Cosine spacing clusters points at the leading and trailing edges. The
    loop is closed implicitly: point ``n`` would coincide with point 0.
    Returns an ``(n, 2)`` array.
    """
    if n < 8:
        raise ValidationError(f"need at least 8 surface points, got {n}")
    if n % 2 != 0:
        raise ValidationError(f"surface point count must be even, got {n}")
    # s in [0, 1): 0 -> TE, 0.5 -> LE, lower surface first. Traversing the
    # lower surface first (a clockwise polygon) combined with the outward
    # radial mesh direction gives the O-mesh cells positive (CCW)
    # orientation — the flux sign convention of the kernels requires it
    # (wall pressure must push outward).
    s = np.arange(n, dtype=np.float64) / n
    xc = 0.5 * (1.0 + np.cos(2.0 * np.pi * s))
    lower = s < 0.5
    yt = naca4_thickness(xc, thickness)
    yc = naca4_camber(xc, camber, camber_pos)
    y = np.where(lower, yc - yt, yc + yt)
    return np.stack([xc, y], axis=1)
