"""Aerodynamic force metrics: lift and drag from the wall pressure.

Implemented as a real ``op_par_loop`` over the boundary edges with a global
``OP_INC`` reduction — the same API pattern as the solver's RMS — so the
diagnostic runs under every backend, including asynchronously.

The force the fluid exerts on the airfoil is the wall-pressure integral
``F = sum over wall faces of p * n * len``; with the kernels' edge-vector
convention ``(dx, dy) = x1 - x2``, the cell-outward (into-body) normal times
the face length is exactly ``(dy, -dx)``. Coefficients are normalized by the
freestream dynamic pressure and unit chord.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.airfoil.app import AirfoilApp
from repro.airfoil.meshgen import WALL
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_READ,
    Kernel,
    KernelCost,
    OpGlobal,
    Op2Runtime,
    op_arg_dat,
    op_arg_gbl,
)
from repro.op2.parloop import op_par_loop


@dataclass(frozen=True)
class ForceCoefficients:
    """Integrated aerodynamic coefficients."""

    drag: float  # c_d: force component along the freestream (+x)
    lift: float  # c_l: force component normal to the freestream (+y)

    def magnitude(self) -> float:
        return float(np.hypot(self.drag, self.lift))


def make_force_kernel(gm1: float) -> Kernel:
    """Per-bedge wall-pressure force contribution (zero off the wall)."""

    def force(x1, x2, q1, bound, f):
        if bound[0] != WALL:
            return
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]
        ri = 1.0 / q1[0]
        p1 = gm1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]))
        f[0] += p1 * dy
        f[1] += -p1 * dx

    def force_vec(x1, x2, q1, bound, f):
        wall = bound[:, 0] == WALL
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        ri = 1.0 / q1[:, 0]
        p1 = gm1 * (q1[:, 3] - 0.5 * ri * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
        f[:, 0] = np.where(wall, p1 * dy, 0.0)
        f[:, 1] = np.where(wall, -p1 * dx, 0.0)

    return Kernel("wall_force", force, force_vec, KernelCost(0.25, 0.4))


def compute_forces(app: AirfoilApp, rt: Op2Runtime) -> ForceCoefficients:
    """Integrate wall-pressure forces for the app's current solution.

    Runs one op_par_loop over bedges; under async/dataflow backends the
    reduction is synchronized before the value is read.
    """
    g_force = OpGlobal("force", 2)
    kernel = make_force_kernel(app.constants.gm1)
    result = op_par_loop(
        kernel,
        "wall_force",
        app.mesh.bedges,
        op_arg_dat(app.p_x, 0, app.mesh.pbedge, OP_READ),
        op_arg_dat(app.p_x, 1, app.mesh.pbedge, OP_READ),
        op_arg_dat(app.p_q, 0, app.mesh.pbecell, OP_READ),
        op_arg_dat(app.p_bound, -1, OP_ID, OP_READ),
        op_arg_gbl(g_force, OP_INC),
    )
    rt.sync(result)
    rt.finish()
    fx, fy = g_force.data
    return _to_wind_axes(app, float(fx), float(fy))


def reference_forces(app: AirfoilApp) -> ForceCoefficients:
    """Plain-numpy wall-pressure integral for validating the loop version."""
    mesh = app.mesh
    gm1 = app.constants.gm1
    wall = mesh.bound.data[:, 0] == WALL
    x1 = mesh.x.data[mesh.pbedge.values[wall, 0]]
    x2 = mesh.x.data[mesh.pbedge.values[wall, 1]]
    q1 = app.p_q.data[mesh.pbecell.values[wall, 0]]
    dx = x1[:, 0] - x2[:, 0]
    dy = x1[:, 1] - x2[:, 1]
    ri = 1.0 / q1[:, 0]
    p1 = gm1 * (q1[:, 3] - 0.5 * ri * (q1[:, 1] ** 2 + q1[:, 2] ** 2))
    return _to_wind_axes(app, float(np.sum(p1 * dy)), float(np.sum(-p1 * dx)))


def _to_wind_axes(app: AirfoilApp, fx: float, fy: float) -> ForceCoefficients:
    """Rotate body-axis forces into wind axes and normalize.

    Drag is the component along the freestream direction (alpha above x),
    lift the component perpendicular to it.
    """
    c = app.constants
    qinf = c.freestream()
    speed2 = (qinf[1] ** 2 + qinf[2] ** 2) / qinf[0] ** 2
    dyn = 0.5 * qinf[0] * speed2  # chord = 1
    ca, sa = np.cos(c.alpha), np.sin(c.alpha)
    return ForceCoefficients(
        drag=float((fx * ca + fy * sa) / dyn),
        lift=float((-fx * sa + fy * ca) / dyn),
    )
