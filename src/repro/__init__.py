"""repro: reproduction of "Using HPX and OP2 for Improving Parallel Scaling
Performance of Unstructured Grid Applications" (Khatami, Kaiser, Ramanujam,
ICPP 2016).

Subpackages:

- :mod:`repro.hpx` — an HPX-like asynchronous runtime (futures, dataflow,
  parallel algorithms, execution policies, chunkers).
- :mod:`repro.sim` — a discrete-event multicore machine simulator that
  replays task graphs under a calibrated cost model.
- :mod:`repro.op2` — the OP2 active library (sets, maps, dats, access
  descriptors, plans with conflict coloring, the op_par_loop API).
- :mod:`repro.backends` — the five loop-parallelization strategies compared
  by the paper (seq, openmp, foreach, hpx_async, hpx_dataflow).
- :mod:`repro.codegen` — the source-to-source translator that rewrites
  op_par_loop call sites for each backend.
- :mod:`repro.airfoil` — the Airfoil CFD application and mesh generator.
- :mod:`repro.experiments` — the harness regenerating the paper's figures.
"""

__version__ = "1.0.0"
