"""Block partitioners: split an iteration set into mini-partitions.

OP2 plans execute loops block by block; the block ("mini-partition") is the
scheduling grain for OpenMP chunks, HPX tasks and the machine simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.op2.exceptions import PlanError


@dataclass(frozen=True)
class Block:
    """A contiguous ``[start, stop)`` range of set elements."""

    index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start

    def elements(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)


def contiguous_blocks(set_size: int, block_size: int) -> list[Block]:
    """Tile ``range(set_size)`` with blocks of ``block_size`` (last short)."""
    if block_size < 1:
        raise PlanError(f"block_size must be >= 1, got {block_size}")
    if set_size < 0:
        raise PlanError(f"set_size must be >= 0, got {set_size}")
    blocks = []
    for index, start in enumerate(range(0, set_size, block_size)):
        blocks.append(Block(index, start, min(start + block_size, set_size)))
    return blocks


def balanced_blocks(set_size: int, num_blocks: int) -> list[Block]:
    """Split into exactly ``num_blocks`` near-equal contiguous blocks."""
    if num_blocks < 1:
        raise PlanError(f"num_blocks must be >= 1, got {num_blocks}")
    if set_size < 0:
        raise PlanError(f"set_size must be >= 0, got {set_size}")
    bounds = np.linspace(0, set_size, num_blocks + 1).astype(np.int64)
    return [
        Block(i, int(bounds[i]), int(bounds[i + 1]))
        for i in range(num_blocks)
        if bounds[i + 1] > bounds[i]
    ]


def validate_blocks(blocks: list[Block], set_size: int) -> None:
    """Raise unless ``blocks`` exactly tile ``[0, set_size)`` in order."""
    pos = 0
    for b in blocks:
        if b.start != pos or b.stop < b.start:
            raise PlanError(f"blocks do not tile [0, {set_size}): {blocks!r}")
        pos = b.stop
    if pos != set_size:
        raise PlanError(f"blocks cover [0, {pos}), expected [0, {set_size})")


def block_of_element(blocks: list[Block], element: int) -> int:
    """Index of the block containing ``element`` (blocks must tile the set)."""
    lo, hi = 0, len(blocks) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        b = blocks[mid]
        if element < b.start:
            hi = mid - 1
        elif element >= b.stop:
            lo = mid + 1
        else:
            return mid
    raise PlanError(f"element {element} not covered by blocks")


def imbalance(blocks: list[Block]) -> float:
    """Max block length over mean block length (1.0 = perfectly even)."""
    if not blocks:
        return 1.0
    lengths = [len(b) for b in blocks]
    mean = sum(lengths) / len(lengths)
    return max(lengths) / mean if mean else 1.0
