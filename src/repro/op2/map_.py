"""Maps: connectivity between sets (e.g. each edge -> its 2 cells)."""

from __future__ import annotations

import itertools

import numpy as np

from repro.op2.exceptions import MapBoundsError, Op2Error
from repro.op2.set_ import OpSet

#: Process-wide source of map identities (see :attr:`OpMap.uid`).
_UIDS = itertools.count()

#: Sentinel "identity map": the argument is addressed directly by the
#: iteration index (OP2 spells this OP_ID).
OP_ID = None


class OpMap:
    """A fixed-arity mapping ``from_set -> to_set``.

    ``values`` has shape ``(from_set.size, arity)``; entry ``[e, k]`` is the
    index in ``to_set`` of the k-th neighbour of element ``e``. Validated at
    construction — a map that points outside its target set is the classic
    unstructured-mesh input bug.

    ``uid`` is a process-unique identity assigned at construction. Since
    ``values`` is frozen (read-only) after construction, the uid identifies
    the map's *contents*, not just its name — plan caches key on it so two
    same-named maps with different connectivity never alias.
    """

    __slots__ = ("name", "from_set", "to_set", "arity", "values", "uid")

    def __init__(
        self,
        name: str,
        from_set: OpSet,
        to_set: OpSet,
        arity: int,
        values: np.ndarray,
    ) -> None:
        if not name:
            raise Op2Error("map name must be non-empty")
        if arity < 1:
            raise Op2Error(f"map {name!r} arity must be >= 1, got {arity}")
        values = np.ascontiguousarray(values, dtype=np.int64)
        expected = (from_set.size, arity)
        if values.shape != expected:
            raise Op2Error(
                f"map {name!r} values shape {values.shape} != {expected}"
            )
        if from_set.size > 0:
            lo = int(values.min())
            hi = int(values.max())
            if lo < 0 or hi >= to_set.size:
                raise MapBoundsError(
                    f"map {name!r} entries span [{lo}, {hi}], target set "
                    f"{to_set.name!r} has size {to_set.size}"
                )
        self.name = name
        self.from_set = from_set
        self.to_set = to_set
        self.arity = int(arity)
        self.values = values
        self.values.setflags(write=False)
        self.uid = next(_UIDS)

    def targets(self, elements: np.ndarray | slice, idx: int) -> np.ndarray:
        """Indices in ``to_set`` addressed by column ``idx`` for ``elements``."""
        if not 0 <= idx < self.arity:
            raise Op2Error(
                f"map {self.name!r} index {idx} out of range [0, {self.arity})"
            )
        return self.values[elements, idx]

    def __repr__(self) -> str:
        return (
            f"OpMap({self.name!r}, {self.from_set.name}->{self.to_set.name}, "
            f"arity={self.arity})"
        )


def op_decl_map(
    from_set: OpSet, to_set: OpSet, arity: int, values: np.ndarray, name: str
) -> OpMap:
    """OP2-style declaration spelling."""
    return OpMap(name, from_set, to_set, arity, values)
