"""Access descriptors: how a kernel touches each argument.

Mirrors OP2's ``op_access`` enum. The mode drives both correctness machinery
(gather/scatter strategy, reduction combination, plan coloring) and the
dependence analysis that async/dataflow execution is built on.
"""

from __future__ import annotations

import enum


class Access(enum.Enum):
    """Declared access mode of one ``op_par_loop`` argument."""

    READ = "read"
    WRITE = "write"
    RW = "rw"
    INC = "inc"
    MIN = "min"
    MAX = "max"

    @property
    def reads(self) -> bool:
        """Kernel observes the previous value."""
        return self in (Access.READ, Access.RW, Access.MIN, Access.MAX)

    @property
    def writes(self) -> bool:
        """Kernel modifies the value (including accumulation)."""
        return self is not Access.READ

    @property
    def is_reduction(self) -> bool:
        """Contributions combine associatively (order-insensitive)."""
        return self in (Access.INC, Access.MIN, Access.MAX)


OP_READ = Access.READ
OP_WRITE = Access.WRITE
OP_RW = Access.RW
OP_INC = Access.INC
OP_MIN = Access.MIN
OP_MAX = Access.MAX
