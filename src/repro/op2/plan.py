"""Execution plans: mini-partition blocking + conflict coloring.

An OP2 plan decides how one ``op_par_loop`` runs in parallel:

- the iteration set is tiled into contiguous *blocks* (mini-partitions);
- for indirect loops with reduction (``OP_INC``/``OP_MIN``/``OP_MAX``)
  arguments, blocks touching a common indirect target element get different
  *colors*; execution proceeds color by color, blocks of one color in
  parallel.

Plans depend only on (set, maps, reduction pattern, block size), so the
runtime caches them across loops and timesteps — exactly as OP2 does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.op2.args import Arg
from repro.op2.coloring import (
    build_block_conflicts,
    color_classes,
    greedy_coloring,
    validate_coloring,
)
from repro.op2.exceptions import PlanError
from repro.op2.partition import Block, contiguous_blocks, validate_blocks
from repro.op2.set_ import OpSet

#: Default mini-partition size (elements per block), as in OP2's plans.
DEFAULT_BLOCK_SIZE = 256


@dataclass(frozen=True)
class Plan:
    """The parallel execution recipe for one loop shape."""

    set_: OpSet
    block_size: int
    blocks: list[Block]
    #: color of each block; all zeros for direct loops.
    colors: list[int]
    ncolors: int
    #: blocks grouped by color, colors ascending.
    classes: list[list[int]] = field(repr=False)
    #: True when coloring was required (indirect reduction present).
    colored: bool = False

    @property
    def nblocks(self) -> int:
        return len(self.blocks)

    def block_elements(self, block: int) -> np.ndarray:
        return self.blocks[block].elements()

    def describe(self) -> str:
        return (
            f"plan({self.set_.name}: {self.nblocks} blocks of "
            f"<= {self.block_size}, {self.ncolors} colors)"
        )


def _reduction_maps(args: list[Arg]):
    """(map, idx) pairs of indirect reduction arguments (the race sources)."""
    seen = set()
    out = []
    for arg in args:
        if arg.is_indirect and arg.access.is_reduction:
            key = (id(arg.map_), arg.idx)
            if key not in seen:
                seen.add(key)
                out.append(arg)
    return out


def build_plan(
    set_: OpSet,
    args: list[Arg],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Plan:
    """Construct (and verify) the plan for a loop over ``set_`` with ``args``."""
    if block_size < 1:
        raise PlanError(f"block_size must be >= 1, got {block_size}")
    blocks = contiguous_blocks(set_.size, block_size)
    validate_blocks(blocks, set_.size)

    reduction_args = _reduction_maps(args)
    if not reduction_args:
        colors = [0] * len(blocks)
        classes = [list(range(len(blocks)))] if blocks else []
        return Plan(
            set_=set_,
            block_size=block_size,
            blocks=blocks,
            colors=colors,
            ncolors=1 if blocks else 0,
            classes=classes,
            colored=False,
        )

    # Targets each block increments, across every indirect reduction arg.
    targets_per_block: list[np.ndarray] = []
    for b in blocks:
        pieces = []
        for arg in reduction_args:
            assert arg.map_ is not None
            pieces.append(arg.map_.values[b.start : b.stop, arg.idx])
        targets_per_block.append(
            np.unique(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)
        )

    adjacency = build_block_conflicts(targets_per_block)
    colors = greedy_coloring(adjacency)
    validate_coloring(adjacency, colors)
    ncolors = max(colors, default=-1) + 1
    return Plan(
        set_=set_,
        block_size=block_size,
        blocks=blocks,
        colors=colors,
        ncolors=ncolors,
        classes=color_classes(colors),
        colored=True,
    )


def subset_color_pieces(
    plan: Plan, subset: np.ndarray | None
) -> list[list[np.ndarray]]:
    """Restrict a colored plan to an iteration subset, block by block.

    Returns, per color class, the subset's element ids falling inside each
    of the class's blocks (empty pieces dropped). Same-color pieces inherit
    the plan's disjoint-target guarantee — a subset of a block increments a
    subset of the block's targets — so they may run concurrently; distinct
    colors must still be barrier-separated. ``subset=None`` means the whole
    set (each piece is the full block range).

    ``subset`` must be sorted ascending: pieces are cut with binary searches
    against the block bounds.
    """
    if subset is not None:
        subset = np.asarray(subset)
        if subset.size and np.any(np.diff(subset) < 0):
            raise PlanError("subset_color_pieces requires a sorted subset")
    out: list[list[np.ndarray]] = []
    for class_blocks in plan.classes:
        pieces: list[np.ndarray] = []
        for bi in class_blocks:
            b = plan.blocks[bi]
            if subset is None:
                piece = np.arange(b.start, b.stop, dtype=np.int64)
            else:
                lo = int(np.searchsorted(subset, b.start, side="left"))
                hi = int(np.searchsorted(subset, b.stop, side="left"))
                piece = subset[lo:hi]
            if len(piece):
                pieces.append(piece)
        out.append(pieces)
    return out


class PlanCache:
    """Memoizes plans by loop shape, as the OP2 runtime does.

    The key covers everything the plan depends on: the iteration set, the
    block size, and the (map, idx) pattern of indirect reduction arguments.
    """

    def __init__(self) -> None:
        self._plans: dict[tuple, Plan] = {}
        self.hits = 0
        self.misses = 0

    def key(self, set_: OpSet, args: list[Arg], block_size: int) -> tuple:
        # Keyed on map *identity* (OpMap.uid), not just the map name: map
        # values are frozen at construction, so the uid pins the contents the
        # coloring depends on. Two meshes with same-named sets/maps used in
        # one session would otherwise alias each other's cache entries.
        reduction_key = tuple(
            sorted(
                (arg.map_.name, arg.map_.uid, arg.idx)
                for arg in _reduction_maps(args)
                if arg.map_ is not None
            )
        )
        return (set_.name, set_.size, block_size, reduction_key)

    def get(self, set_: OpSet, args: list[Arg], block_size: int) -> Plan:
        k = self.key(set_, args, block_size)
        plan = self._plans.get(k)
        if plan is None:
            self.misses += 1
            plan = build_plan(set_, args, block_size)
            self._plans[k] = plan
        else:
            self.hits += 1
        return plan

    def __len__(self) -> int:
        return len(self._plans)
