"""Mesh and dat I/O: save/load an OP2 problem as a portable .npz archive.

OP2 applications read their grids from files (the Airfoil demo reads
``new_grid.dat``; OP2 proper has an HDF5 layer with ``op_decl_*_hdf5``).
This module provides the equivalent for this reproduction: a self-describing
single-file archive of sets, maps and dats, so meshes can be generated once
and shared between runs, examples and external tools.

Archive layout (all numpy arrays):

- ``__sets__``            — structured array of (name, size);
- ``map:<name>``          — the map values, plus ``map:<name>:meta`` holding
  ``[from_set, to_set]`` as strings;
- ``dat:<name>``          — the data array, plus ``dat:<name>:meta`` holding
  ``[set_name]``.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from repro.op2.dat import OpDat
from repro.op2.exceptions import Op2Error
from repro.op2.map_ import OpMap
from repro.op2.set_ import OpSet


def save_problem(
    path: str | Path | _io.BytesIO,
    sets: list[OpSet],
    maps: list[OpMap],
    dats: list[OpDat],
) -> None:
    """Write sets/maps/dats to ``path`` as a compressed .npz archive."""
    names = [s.name for s in sets]
    if len(set(names)) != len(names):
        raise Op2Error(f"duplicate set names: {names}")
    payload: dict[str, np.ndarray] = {
        "__sets__": np.array(
            [(s.name, s.size) for s in sets], dtype=[("name", "U64"), ("size", "i8")]
        )
    }
    known = set(names)
    for m in maps:
        if m.from_set.name not in known or m.to_set.name not in known:
            raise Op2Error(
                f"map {m.name!r} references sets not being saved "
                f"({m.from_set.name!r} -> {m.to_set.name!r})"
            )
        payload[f"map:{m.name}"] = m.values
        payload[f"map:{m.name}:meta"] = np.array(
            [m.from_set.name, m.to_set.name], dtype="U64"
        )
    for d in dats:
        if d.set.name not in known:
            raise Op2Error(f"dat {d.name!r} lives on unsaved set {d.set.name!r}")
        payload[f"dat:{d.name}"] = d.data
        payload[f"dat:{d.name}:meta"] = np.array([d.set.name], dtype="U64")
    np.savez_compressed(path, **payload)


def load_problem(
    path: str | Path | _io.BytesIO,
) -> tuple[dict[str, OpSet], dict[str, OpMap], dict[str, OpDat]]:
    """Load an archive written by :func:`save_problem`.

    Returns (sets, maps, dats) dictionaries keyed by name, fully
    reconstructed and re-validated (map bounds are checked on load).
    """
    with np.load(path, allow_pickle=False) as archive:
        if "__sets__" not in archive:
            raise Op2Error(f"{path!r} is not an OP2 problem archive")
        sets: dict[str, OpSet] = {
            str(row["name"]): OpSet(str(row["name"]), int(row["size"]))
            for row in archive["__sets__"]
        }
        maps: dict[str, OpMap] = {}
        dats: dict[str, OpDat] = {}
        for key in archive.files:
            if key.startswith("map:") and not key.endswith(":meta"):
                name = key[len("map:") :]
                from_name, to_name = archive[f"{key}:meta"]
                values = archive[key]
                maps[name] = OpMap(
                    name,
                    sets[str(from_name)],
                    sets[str(to_name)],
                    values.shape[1],
                    values,
                )
            elif key.startswith("dat:") and not key.endswith(":meta"):
                name = key[len("dat:") :]
                (set_name,) = archive[f"{key}:meta"]
                data = archive[key]
                dats[name] = OpDat(
                    name,
                    sets[str(set_name)],
                    data.shape[1],
                    data,
                    dtype=data.dtype,
                )
    return sets, maps, dats


def save_mesh(path: str | Path | _io.BytesIO, mesh) -> None:
    """Save a generated :class:`~repro.airfoil.meshgen.AirfoilMesh`."""
    save_problem(
        path,
        sets=[mesh.nodes, mesh.edges, mesh.bedges, mesh.cells],
        maps=[mesh.pedge, mesh.pecell, mesh.pbedge, mesh.pbecell, mesh.pcell],
        dats=[mesh.x, mesh.bound],
    )


def load_mesh(path: str | Path | _io.BytesIO):
    """Load an Airfoil mesh archive back into an ``AirfoilMesh``.

    The ``ni``/``nj`` template parameters are not stored; they are recovered
    from the set sizes (nodes = ni*(nj+1), cells = ni*nj).
    """
    from repro.airfoil.meshgen import AirfoilMesh

    sets, maps, dats = load_problem(path)
    for required in ("nodes", "edges", "bedges", "cells"):
        if required not in sets:
            raise Op2Error(f"archive is missing the {required!r} set")
    ncells = sets["cells"].size
    nnodes = sets["nodes"].size
    ni = sets["bedges"].size // 2
    if ni <= 0 or ncells % ni or nnodes != ncells + ni:
        raise Op2Error("archive set sizes do not describe an O-mesh")
    return AirfoilMesh(
        ni=ni,
        nj=ncells // ni,
        nodes=sets["nodes"],
        edges=sets["edges"],
        bedges=sets["bedges"],
        cells=sets["cells"],
        pedge=maps["pedge"],
        pecell=maps["pecell"],
        pbedge=maps["pbedge"],
        pbecell=maps["pbecell"],
        pcell=maps["pcell"],
        x=dats["x"],
        bound=dats["bound"],
    )
