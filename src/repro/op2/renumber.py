"""Mesh renumbering for locality: reverse Cuthill–McKee over the dual graph.

OP2 renumbers mesh elements so that elements referencing each other sit close
in memory (Giles et al. discuss GPS/RCM renumbering for the plans' staging
efficiency). Here renumbering has a second payoff: contiguous blocks of a
well-numbered set touch fewer foreign blocks, so the dataflow backend's
block-level dependence refinement gets sparser and plans need fewer colors.

The central routine, :func:`rcm_order`, is a plain BFS-based reverse
Cuthill–McKee on a CSR adjacency; helpers build the cell dual graph from an
edge->cell map and apply a permutation consistently to sets, maps and dats.
"""

from __future__ import annotations

import numpy as np

from repro.op2.exceptions import Op2Error


def dual_graph_csr(
    pecell: np.ndarray, ncells: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of the cell dual graph (cells adjacent via an edge)."""
    pecell = np.asarray(pecell, dtype=np.int64)
    if pecell.ndim != 2 or pecell.shape[1] != 2:
        raise Op2Error("pecell must be an (nedges, 2) array")
    src = np.concatenate([pecell[:, 0], pecell[:, 1]])
    dst = np.concatenate([pecell[:, 1], pecell[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=ncells)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return indptr, dst


def rcm_order(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Reverse Cuthill–McKee ordering of a CSR graph.

    Returns a permutation ``perm`` where ``perm[new] = old``. Disconnected
    components are processed in order of their minimum-degree seed.
    """
    n = len(indptr) - 1
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Seed order: ascending degree (classic pseudo-peripheral heuristic).
    seeds = np.argsort(degree, kind="stable")
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue = [int(seed)]
        while queue:
            v = queue.pop(0)
            order.append(v)
            neighbours = indices[indptr[v] : indptr[v + 1]]
            fresh = [int(u) for u in neighbours if not visited[u]]
            fresh.sort(key=lambda u: int(degree[u]))
            for u in fresh:
                visited[u] = True
            queue.extend(fresh)
    if len(order) != n:  # pragma: no cover - BFS covers every vertex
        raise Op2Error("renumbering did not visit every vertex")
    return np.array(order[::-1], dtype=np.int64)


def bandwidth(indptr: np.ndarray, indices: np.ndarray, perm: np.ndarray | None = None) -> int:
    """Graph bandwidth under a permutation (``perm[new] = old``)."""
    n = len(indptr) - 1
    if perm is None:
        position = np.arange(n, dtype=np.int64)
    else:
        position = np.empty(n, dtype=np.int64)
        position[perm] = np.arange(n, dtype=np.int64)
    worst = 0
    for v in range(n):
        neighbours = indices[indptr[v] : indptr[v + 1]]
        if len(neighbours):
            worst = max(worst, int(np.max(np.abs(position[neighbours] - position[v]))))
    return worst


def renumber_mesh(mesh):
    """Return a copy of an Airfoil mesh with RCM-renumbered cells.

    Cells are permuted; edges are re-sorted so that edge order follows the
    new cell numbering of their first endpoint (keeping edge-block locality
    aligned with cell-block locality). Node numbering is untouched.
    """
    from repro.airfoil.meshgen import AirfoilMesh
    from repro.op2 import OpDat, OpMap, OpSet

    ncells = mesh.cells.size
    indptr, indices = dual_graph_csr(mesh.pecell.values, ncells)
    perm = rcm_order(indptr, indices)  # perm[new] = old
    inverse = np.empty(ncells, dtype=np.int64)
    inverse[perm] = np.arange(ncells, dtype=np.int64)

    # Renumber cell-valued maps.
    pecell_new = inverse[mesh.pecell.values]
    pbecell_new = inverse[mesh.pbecell.values]
    pcell_new = mesh.pcell.values[perm]

    # Re-sort edges by (new) first cell for cache-coherent edge blocks.
    edge_order = np.argsort(pecell_new[:, 0], kind="stable")
    pecell_new = pecell_new[edge_order]
    pedge_new = mesh.pedge.values[edge_order]

    cells = OpSet("cells", ncells)
    edges = OpSet("edges", mesh.edges.size)
    bedges = OpSet("bedges", mesh.bedges.size)
    nodes = OpSet("nodes", mesh.nodes.size)
    return AirfoilMesh(
        ni=mesh.ni,
        nj=mesh.nj,
        nodes=nodes,
        edges=edges,
        bedges=bedges,
        cells=cells,
        pedge=OpMap("pedge", edges, nodes, 2, pedge_new),
        pecell=OpMap("pecell", edges, cells, 2, pecell_new),
        pbedge=OpMap("pbedge", bedges, nodes, 2, mesh.pbedge.values.copy()),
        pbecell=OpMap("pbecell", bedges, cells, 1, pbecell_new),
        pcell=OpMap("pcell", cells, nodes, 4, pcell_new),
        x=OpDat("x", nodes, 2, mesh.x.data.copy()),
        bound=OpDat("bound", bedges, 1, mesh.bound.data.copy(), dtype=np.int64),
    )
