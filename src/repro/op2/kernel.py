"""Kernels: the per-element computations applied by ``op_par_loop``.

A :class:`Kernel` bundles:

- ``elemental`` — a plain Python function operating on one element's argument
  views (the reference semantics; slow, used for validation);
- ``vectorized`` — an optional numpy implementation operating on gathered
  ``(n, dim)`` batches in place (the fast path every backend uses);
- ``cost`` — the per-element cost model feeding the machine simulator.

Both callables receive one positional argument per ``op_par_loop`` argument,
in order. The runtime gathers/scatters around them (see
:mod:`repro.backends.base`), so kernels never see maps or indices.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable
from dataclasses import dataclass

from repro.op2.exceptions import KernelSignatureError
from repro.util.validate import check_in_range, check_positive


@dataclass(frozen=True)
class KernelCost:
    """Per-element cost model for the simulator.

    Attributes:
        unit_cost: abstract microseconds of sequential work per element.
        mem_fraction: share of that time bound by memory bandwidth, in [0,1].
    """

    unit_cost: float = 0.2
    mem_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_positive("unit_cost", self.unit_cost)
        check_in_range("mem_fraction", self.mem_fraction, 0.0, 1.0)


class Kernel:
    """A named elemental computation with optional vectorized fast path."""

    def __init__(
        self,
        name: str,
        elemental: Callable[..., None],
        vectorized: Callable[..., None] | None = None,
        cost: KernelCost | None = None,
    ) -> None:
        if not name:
            raise KernelSignatureError("kernel name must be non-empty")
        self.name = name
        self.elemental = elemental
        self.vectorized = vectorized
        self.cost = cost if cost is not None else KernelCost()
        self._arity = self._infer_arity(elemental)

    @staticmethod
    def _infer_arity(fn: Callable[..., None]) -> int | None:
        """Positional parameter count, or None for ``*args`` kernels."""
        try:
            sig = inspect.signature(fn)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            return None
        count = 0
        for p in sig.parameters.values():
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD):
                count += 1
            elif p.kind is p.VAR_POSITIONAL:
                return None
        return count

    def check_arity(self, nargs: int) -> None:
        """Raise unless the kernel accepts ``nargs`` positional arguments."""
        if self._arity is not None and self._arity != nargs:
            raise KernelSignatureError(
                f"kernel {self.name!r} takes {self._arity} argument(s), "
                f"op_par_loop supplied {nargs}"
            )

    @property
    def has_vectorized(self) -> bool:
        return self.vectorized is not None

    def __repr__(self) -> str:
        vec = "+vec" if self.has_vectorized else ""
        return f"Kernel({self.name!r}{vec})"
