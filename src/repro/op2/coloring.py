"""Graph coloring for conflict-free parallel execution of indirect loops.

Two blocks of an indirect loop *conflict* when they increment the same target
element through a map (OP_INC through e.g. edges->cells): running them
concurrently would race. OP2's plan colors the block-conflict graph and
executes one color at a time, blocks within a color in parallel.
"""

from __future__ import annotations

import numpy as np

from repro.op2.exceptions import PlanError


def build_block_conflicts(
    target_indices_per_block: list[np.ndarray],
) -> list[set[int]]:
    """Adjacency of the block-conflict graph.

    ``target_indices_per_block[b]`` holds the indirect target elements block
    ``b`` increments. Blocks sharing any target are adjacent.
    """
    nblocks = len(target_indices_per_block)
    adjacency: list[set[int]] = [set() for _ in range(nblocks)]
    # element -> first/previous blocks seen, via a sorted (element, block)
    # sweep; avoids a dict of lists for large meshes.
    pairs = []
    for b, targets in enumerate(target_indices_per_block):
        uniq = np.unique(np.asarray(targets, dtype=np.int64))
        pairs.append(
            np.stack([uniq, np.full(uniq.shape, b, dtype=np.int64)], axis=1)
        )
    if not pairs:
        return adjacency
    flat = np.concatenate(pairs, axis=0)
    order = np.lexsort((flat[:, 1], flat[:, 0]))
    flat = flat[order]
    start = 0
    n = flat.shape[0]
    while start < n:
        element = flat[start, 0]
        stop = start
        while stop < n and flat[stop, 0] == element:
            stop += 1
        group = flat[start:stop, 1]
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                a, b = int(group[i]), int(group[j])
                adjacency[a].add(b)
                adjacency[b].add(a)
        start = stop
    return adjacency


def greedy_coloring(adjacency: list[set[int]], order: list[int] | None = None) -> list[int]:
    """First-fit greedy coloring in the given (default: natural) order."""
    n = len(adjacency)
    colors = [-1] * n
    sequence = order if order is not None else list(range(n))
    if sorted(sequence) != list(range(n)):
        raise PlanError("coloring order must be a permutation of the blocks")
    for v in sequence:
        taken = {colors[u] for u in adjacency[v] if colors[u] >= 0}
        c = 0
        while c in taken:
            c += 1
        colors[v] = c
    return colors


def degree_coloring(adjacency: list[set[int]]) -> list[int]:
    """Greedy coloring in descending-degree order (Welsh–Powell).

    Usually needs no more colors than first-fit and often fewer; the
    coloring-strategy ablation bench compares both.
    """
    order = sorted(range(len(adjacency)), key=lambda v: (-len(adjacency[v]), v))
    return greedy_coloring(adjacency, order)


def validate_coloring(adjacency: list[set[int]], colors: list[int]) -> None:
    """Raise unless ``colors`` is a proper coloring of ``adjacency``."""
    if len(colors) != len(adjacency):
        raise PlanError("color vector length mismatch")
    for v, neighbours in enumerate(adjacency):
        if colors[v] < 0:
            raise PlanError(f"block {v} is uncolored")
        for u in neighbours:
            if colors[u] == colors[v]:
                raise PlanError(
                    f"conflicting blocks {v} and {u} share color {colors[v]}"
                )


def color_classes(colors: list[int]) -> list[list[int]]:
    """Blocks grouped by color, colors ascending."""
    ncolors = max(colors, default=-1) + 1
    classes: list[list[int]] = [[] for _ in range(ncolors)]
    for block, color in enumerate(colors):
        classes[color].append(block)
    return classes
