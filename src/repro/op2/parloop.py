"""``op_par_loop``: the parallel loop over a set.

The free function :func:`op_par_loop` mirrors the paper's API (Fig 2): it
validates the kernel/argument combination, classifies the loop as direct or
indirect, and hands it to the active :class:`~repro.op2.runtime.Op2Runtime`
for execution under the configured backend. Async-flavored backends return a
future (paper Fig 10); synchronous ones return ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.op2.args import Arg
from repro.op2.exceptions import Op2Error
from repro.op2.kernel import Kernel
from repro.op2.set_ import OpSet


@dataclass(frozen=True)
class ParLoop:
    """A fully-specified loop: kernel applied over a set with typed args."""

    kernel: Kernel
    name: str
    set_: OpSet
    args: tuple[Arg, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise Op2Error("loop name must be non-empty")
        if self.set_.size < 0:
            raise Op2Error("loop set has negative size")
        self.kernel.check_arity(len(self.args))
        for arg in self.args:
            if arg.is_direct and arg.dat.set != self.set_:
                raise Op2Error(
                    f"loop {self.name!r}: direct arg {arg.dat.name!r} lives on "
                    f"{arg.dat.set.name!r}, loop iterates {self.set_.name!r}"
                )
            if arg.is_indirect and arg.map_.from_set != self.set_:
                raise Op2Error(
                    f"loop {self.name!r}: map {arg.map_.name!r} starts from "
                    f"{arg.map_.from_set.name!r}, loop iterates {self.set_.name!r}"
                )

    @property
    def is_direct(self) -> bool:
        """True when no argument is addressed through a map (paper §II-A)."""
        return all(not arg.is_indirect for arg in self.args)

    @property
    def is_indirect(self) -> bool:
        return not self.is_direct

    @property
    def has_indirect_reduction(self) -> bool:
        """Needs plan coloring: increments through a map."""
        return any(a.is_indirect and a.access.is_reduction for a in self.args)

    def dats_read(self) -> list:
        return [a.dat for a in self.args if a.access.reads]

    def dats_written(self) -> list:
        return [a.dat for a in self.args if a.access.writes]

    def global_reductions(self) -> list[Arg]:
        return [a for a in self.args if a.is_global and a.access.is_reduction]

    def describe(self) -> str:
        kind = "direct" if self.is_direct else "indirect"
        args = ", ".join(a.describe() for a in self.args)
        return f"{self.name}[{kind} over {self.set_.name}]({args})"


def op_par_loop(kernel: Kernel, name: str, set_: OpSet, *args: Arg):
    """Execute (or schedule) a parallel loop on the current OP2 runtime.

    Returns whatever the active backend returns: ``None`` for synchronous
    backends (seq/openmp/foreach), a :class:`~repro.hpx.future.Future` for
    async/dataflow backends.
    """
    from repro.op2.runtime import get_op2_runtime

    for i, arg in enumerate(args):
        if not isinstance(arg, Arg):
            raise Op2Error(
                f"op_par_loop {name!r} argument {i} is not an Arg: {arg!r}"
            )
    loop = ParLoop(kernel=kernel, name=name, set_=set_, args=tuple(args))
    return get_op2_runtime().par_loop(loop)
