"""Argument descriptors: ``op_arg_dat`` / ``op_arg_gbl``.

An :class:`Arg` states *which* data a loop touches and *how* — directly
(``map_ is OP_ID``) or through a map column, with a declared access mode.
This is the information OP2 exploits for planning, and the paper's dataflow
variant exploits for automatic dependence construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.op2.access import Access
from repro.op2.dat import OpDat, OpGlobal
from repro.op2.exceptions import AccessError, Op2Error
from repro.op2.map_ import OpMap


@dataclass(frozen=True)
class Arg:
    """One argument slot of an ``op_par_loop``."""

    dat: OpDat | OpGlobal
    idx: int
    map_: OpMap | None
    access: Access

    # -- classification -----------------------------------------------------

    @property
    def is_global(self) -> bool:
        return isinstance(self.dat, OpGlobal)

    @property
    def is_direct(self) -> bool:
        """Addressed by the iteration index itself (OP_ID)."""
        return self.map_ is None and not self.is_global

    @property
    def is_indirect(self) -> bool:
        return self.map_ is not None

    def describe(self) -> str:
        how = "gbl" if self.is_global else (
            "direct" if self.is_direct else f"via {self.map_.name}[{self.idx}]"
        )
        return f"{self.dat.name}({how}, {self.access.value})"


def op_arg_dat(
    dat: OpDat, idx: int, map_: OpMap | None, access: Access
) -> Arg:
    """Create a dat argument, validating map/index consistency.

    Matches the paper's ``op_arg_dat(p_x, 0, pcell, 2, "double", OP_READ)``
    with dim and typename inferred from the dat itself.
    """
    if not isinstance(dat, OpDat):
        raise Op2Error(f"op_arg_dat expects an OpDat, got {type(dat).__name__}")
    if not isinstance(access, Access):
        raise AccessError(f"access must be an Access, got {access!r}")
    if map_ is None:
        if idx != -1:
            raise Op2Error(
                f"direct arg for dat {dat.name!r} must use idx=-1, got {idx}"
            )
    else:
        if not isinstance(map_, OpMap):
            raise Op2Error(f"map_ must be an OpMap or OP_ID, got {map_!r}")
        if not 0 <= idx < map_.arity:
            raise Op2Error(
                f"map index {idx} out of range for {map_.name!r} "
                f"(arity {map_.arity})"
            )
        if map_.to_set != dat.set:
            raise Op2Error(
                f"map {map_.name!r} targets set {map_.to_set.name!r} but dat "
                f"{dat.name!r} lives on {dat.set.name!r}"
            )
    return Arg(dat=dat, idx=idx, map_=map_, access=access)


def op_arg_gbl(gbl: OpGlobal, access: Access) -> Arg:
    """Create a global argument (read-only constant or reduction target)."""
    if not isinstance(gbl, OpGlobal):
        raise Op2Error(f"op_arg_gbl expects an OpGlobal, got {type(gbl).__name__}")
    if not isinstance(access, Access):
        raise AccessError(f"access must be an Access, got {access!r}")
    if access in (Access.WRITE, Access.RW):
        raise AccessError(
            f"global {gbl.name!r}: plain WRITE/RW on globals is racy; use a "
            f"reduction access (INC/MIN/MAX) or READ"
        )
    return Arg(dat=gbl, idx=-1, map_=None, access=access)
