"""Sets: the iteration domains of unstructured-grid algorithms."""

from __future__ import annotations

from repro.op2.exceptions import Op2Error


class OpSet:
    """A named collection of mesh elements (nodes, edges, cells, ...).

    Sets carry no data themselves; :class:`~repro.op2.dat.OpDat` attaches data
    and :class:`~repro.op2.map_.OpMap` attaches connectivity.
    """

    __slots__ = ("name", "size")

    def __init__(self, name: str, size: int) -> None:
        if not name:
            raise Op2Error("set name must be non-empty")
        if size < 0:
            raise Op2Error(f"set {name!r} size must be >= 0, got {size}")
        self.name = name
        self.size = int(size)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, OpSet)
            and other.name == self.name
            and other.size == self.size
        )

    def __hash__(self) -> int:
        return hash((self.name, self.size))

    def __repr__(self) -> str:
        return f"OpSet({self.name!r}, size={self.size})"


def op_decl_set(size: int, name: str) -> OpSet:
    """OP2-style declaration spelling (``op_decl_set`` in the C API)."""
    return OpSet(name, size)
