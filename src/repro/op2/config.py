"""Runtime execution configuration: simulated vs. measured execution.

Every :class:`~repro.op2.runtime.Op2Runtime` carries a :class:`RuntimeConfig`
selecting one of two execution modes:

- ``"sim"`` (default) — the cooperative single-OS-thread path: backends run
  their loops through the deterministic
  :class:`~repro.hpx.executor.TaskExecutor` and the machine *simulator*
  produces the scaling numbers. Bit-identical to the historical behaviour.
- ``"threads"`` — real shared-memory execution: the gather/compute/scatter
  core runs on a :class:`~repro.hpx.threadpool.ThreadPoolEngine` backed by a
  ``concurrent.futures.ThreadPoolExecutor``. Direct loops are split into
  chunks by the backend's chunking policy; indirect loops run color by color
  with all same-color plan blocks dispatched concurrently (numpy releases the
  GIL inside batch kernels, so this genuinely scales on multicore hosts).

The mode is orthogonal to the backend choice: every backend keeps its own
decomposition policy (OpenMP-style even split, for_each auto/static chunking,
async/dataflow), so wall-clock measurements stay comparable to the simulated
curves of Figs 15-19.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.op2.exceptions import Op2Error

#: Valid execution modes.
MODES = ("sim", "threads")


@dataclass(frozen=True)
class RuntimeConfig:
    """How loops are physically executed.

    Attributes:
        mode: ``"sim"`` (cooperative, deterministic, default) or ``"threads"``
            (real ``ThreadPoolExecutor`` workers measuring wall-clock).
        num_workers: OS threads for ``mode="threads"``; ``None`` inherits the
            runtime's ``num_threads``.
    """

    mode: str = "sim"
    num_workers: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise Op2Error(
                f"execution mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise Op2Error(
                f"num_workers must be >= 1, got {self.num_workers}"
            )

    @property
    def threaded(self) -> bool:
        return self.mode == "threads"

    def resolve_workers(self, default: int) -> int:
        """Worker count for the thread pool (``None`` -> ``default``)."""
        return int(self.num_workers) if self.num_workers is not None else int(default)
