"""Runtime execution configuration: simulated vs. measured execution.

Every :class:`~repro.op2.runtime.Op2Runtime` carries a :class:`RuntimeConfig`
selecting one of two execution modes:

- ``"sim"`` (default) — the cooperative single-OS-thread path: backends run
  their loops through the deterministic
  :class:`~repro.hpx.executor.TaskExecutor` and the machine *simulator*
  produces the scaling numbers. Bit-identical to the historical behaviour.
- ``"threads"`` — real shared-memory execution: the gather/compute/scatter
  core runs on a :class:`~repro.hpx.threadpool.ThreadPoolEngine` backed by a
  ``concurrent.futures.ThreadPoolExecutor``. Direct loops are split into
  chunks by the backend's chunking policy; indirect loops run color by color
  with all same-color plan blocks dispatched concurrently (numpy releases the
  GIL inside batch kernels, so this genuinely scales on multicore hosts).

The mode is orthogonal to the backend choice: every backend keeps its own
decomposition policy (OpenMP-style even split, for_each auto/static chunking,
async/dataflow), so wall-clock measurements stay comparable to the simulated
curves of Figs 15-19.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.op2.exceptions import Op2Error

#: Valid execution modes.
MODES = ("sim", "threads", "procs")

#: Default :class:`~repro.op2.runtime.LoopLog` bound for ``mode="threads"``.
#: Threaded runs never replay their logs on the simulator, so keeping one
#: record per loop forever is a memory leak on exactly the long wall-clock
#: runs the mode targets; the sim mode keeps full logs (emission needs them).
DEFAULT_THREADS_LOG_LIMIT = 512


@dataclass(frozen=True)
class RuntimeConfig:
    """How loops are physically executed.

    Attributes:
        mode: ``"sim"`` (cooperative, deterministic, default), ``"threads"``
            (real ``ThreadPoolExecutor`` workers measuring wall-clock), or
            ``"procs"`` (rank-per-process SPMD execution with shared-memory
            dats and pipe-based halo exchanges — driven through
            :func:`repro.procs.run_procs`, not per-loop dispatch).
        num_workers: OS threads for ``mode="threads"``; ``None`` inherits the
            runtime's ``num_threads``.
        num_ranks: OS processes for ``mode="procs"``; ``None`` elsewhere.
        threads_per_rank: pool threads inside each rank process for
            ``mode="procs"`` (the hybrid MPI+OpenMP analogue); ``None``
            elsewhere, ``1`` keeps ranks single-threaded.
        trace: collect per-task/per-color/per-loop wall-clock events for
            Chrome-trace export (threads mode; implies per-kernel timing).
        timing: collect the per-kernel timing aggregates only (no event
            stream) — the cheap ``op_timing_output`` flavor.
        log_limit: loop-log bound. ``None`` resolves per mode (unbounded for
            ``sim``, :data:`DEFAULT_THREADS_LOG_LIMIT` for ``threads``);
            ``0`` disables logging; ``n > 0`` keeps the last ``n`` records.
    """

    mode: str = "sim"
    num_workers: int | None = None
    num_ranks: int | None = None
    threads_per_rank: int | None = None
    trace: bool = False
    timing: bool = False
    log_limit: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise Op2Error(
                f"execution mode must be one of {MODES}, got {self.mode!r}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise Op2Error(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.num_ranks is not None:
            if self.mode != "procs":
                raise Op2Error(
                    f"num_ranks only applies to mode='procs', got mode={self.mode!r}"
                )
            if self.num_ranks < 1:
                raise Op2Error(f"num_ranks must be >= 1, got {self.num_ranks}")
        if self.threads_per_rank is not None:
            if self.mode != "procs":
                raise Op2Error(
                    "threads_per_rank only applies to mode='procs', "
                    f"got mode={self.mode!r}"
                )
            if self.threads_per_rank < 1:
                raise Op2Error(
                    f"threads_per_rank must be >= 1, got {self.threads_per_rank}"
                )
        if self.log_limit is not None and self.log_limit < 0:
            raise Op2Error(
                f"log_limit must be >= 0 (0 disables), got {self.log_limit}"
            )

    @property
    def threaded(self) -> bool:
        return self.mode == "threads"

    @property
    def procs(self) -> bool:
        return self.mode == "procs"

    def resolve_ranks(self, default: int = 2) -> int:
        """Rank-process count for ``mode='procs'`` (``None`` -> ``default``)."""
        return int(self.num_ranks) if self.num_ranks is not None else int(default)

    def resolve_threads_per_rank(self, default: int = 1) -> int:
        """Per-rank pool width for ``mode='procs'`` (``None`` -> ``default``)."""
        if self.threads_per_rank is not None:
            return int(self.threads_per_rank)
        return int(default)

    @property
    def observing(self) -> bool:
        """True when the runtime should carry a wall-clock recorder."""
        return self.trace or self.timing

    def resolve_workers(self, default: int) -> int:
        """Worker count for the thread pool (``None`` -> ``default``)."""
        return int(self.num_workers) if self.num_workers is not None else int(default)

    def resolve_log_limit(self) -> int | None:
        """Effective loop-log bound (``None`` = unbounded)."""
        if self.log_limit is not None:
            return int(self.log_limit)
        return DEFAULT_THREADS_LOG_LIMIT if self.threaded else None
