"""The OP2 runtime session: backend dispatch, plan cache, loop log.

An :class:`Op2Runtime` is one configured execution context: which backend
(openmp / hpx flavor), how many threads, what block size. It owns

- the plan cache (plans are reused across loops and timesteps);
- the HPX runtime for the async/dataflow backends;
- the **loop log**: the sequence of executed loops and synchronization
  points, which the task-graph emitters replay onto the machine simulator.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.hpx.future import Future
from repro.hpx.runtime import HPXRuntime, set_runtime
from repro.hpx.threadpool import PoolStats, ThreadPoolEngine
from repro.obs.recorder import TraceRecorder
from repro.obs.timing import TimingSummary
from repro.op2.config import RuntimeConfig
from repro.op2.exceptions import Op2Error
from repro.op2.parloop import ParLoop
from repro.op2.plan import DEFAULT_BLOCK_SIZE, Plan, PlanCache
from repro.util.validate import check_positive


@dataclass(frozen=True)
class LoopRecord:
    """One executed op_par_loop, in program order."""

    loop_id: int
    loop: ParLoop
    plan: Plan


@dataclass(frozen=True)
class SyncRecord:
    """An explicit synchronization point (``future.get()`` calls, Fig 10)."""

    loop_ids: tuple[int, ...]


@dataclass
class LoopLog:
    """Program-order record of loops and syncs for one run.

    ``limit`` bounds the retained entries: ``None`` keeps everything (the
    sim mode's emitters replay the *full* log, so they need it all), ``0``
    disables retention, and ``n > 0`` keeps the last ``n`` records — the
    threads-mode default, where the log is purely diagnostic and one record
    per loop forever is a memory leak on multi-million-timestep runs.
    ``total`` counts every append, including evicted/dropped ones.
    """

    entries: list[LoopRecord | SyncRecord] = field(default_factory=list)
    limit: int | None = None
    total: int = 0

    def loops(self) -> list[LoopRecord]:
        return [e for e in self.entries if isinstance(e, LoopRecord)]

    def append(self, entry: LoopRecord | SyncRecord) -> None:
        self.total += 1
        if self.limit == 0:
            return
        self.entries.append(entry)
        if self.limit is not None and len(self.entries) > self.limit:
            del self.entries[0]

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


class Op2Runtime:
    """One OP2 execution session."""

    def __init__(
        self,
        backend: str = "seq",
        num_threads: int = 1,
        block_size: int = DEFAULT_BLOCK_SIZE,
        granularity: str = "set",
        config: RuntimeConfig | None = None,
        backend_options: dict | None = None,
    ) -> None:
        from repro.backends.registry import create_backend

        check_positive("num_threads", num_threads)
        check_positive("block_size", block_size)
        if granularity not in ("set", "block"):
            raise Op2Error(
                f"granularity must be 'set' or 'block', got {granularity!r}"
            )
        self.backend_name = backend
        self.backend = create_backend(backend, **(backend_options or {}))
        self.num_threads = int(num_threads)
        self.block_size = int(block_size)
        self.granularity = granularity
        self.config = config if config is not None else RuntimeConfig()
        self.num_workers = self.config.resolve_workers(self.num_threads)
        self.hpx = HPXRuntime(self.num_threads)
        self.plans = PlanCache()
        self.log = LoopLog(limit=self.config.resolve_log_limit())
        #: wall-clock recorder for the threads mode; ``None`` unless the
        #: config asks for tracing/timing, so the disabled path stays bare.
        self.obs: TraceRecorder | None = (
            TraceRecorder(events=self.config.trace)
            if self.config.observing
            else None
        )
        self._pool: ThreadPoolEngine | None = None
        self._pool_stats: PoolStats | None = None
        self._next_loop_id = 0
        self.backend.on_attach(self)

    @property
    def thread_pool(self) -> ThreadPoolEngine:
        """The real worker pool for ``threads`` mode (created lazily)."""
        if self._pool is None:
            self._pool = ThreadPoolEngine(self.num_workers)
            self._pool.recorder = self.obs
        return self._pool

    @property
    def pool_stats(self) -> PoolStats:
        """Pool activity counters; survives :meth:`close` as a snapshot.

        Benchmarks read this *after* a session exits (the ``with`` block
        closes the pool on the way out), so the counters of the released
        pool are kept rather than discarded with it.
        """
        if self._pool is not None:
            return self._pool.stats
        if self._pool_stats is not None:
            return self._pool_stats
        return PoolStats()

    # -- loop execution -----------------------------------------------------

    def par_loop(self, loop: ParLoop) -> Future | None:
        """Record and dispatch one loop; returns the backend's result."""
        if self.config.procs:
            raise Op2Error(
                "mode='procs' executes whole applications across rank "
                "processes (see repro.procs.run_procs); per-loop dispatch "
                "through a session is not available in this mode"
            )
        plan = self.plans.get(loop.set_, list(loop.args), self.block_size)
        loop_id = self._next_loop_id
        self._next_loop_id += 1
        self.log.append(LoopRecord(loop_id=loop_id, loop=loop, plan=plan))
        if self.config.threaded:
            result = self.backend.run_loop_threads(self, loop, plan, loop_id)
        else:
            result = self.backend.run_loop(self, loop, plan, loop_id)
        if isinstance(result, Future):
            # The loop id lives on the future itself: an id()-keyed side
            # table maps a *new* future to a stale loop after CPython reuses
            # a collected future's address, and grows without bound.
            result.loop_id = loop_id
        return result

    def sync(self, *results: Future | None) -> None:
        """``new_data.get()`` of the paper: wait for loop futures, log it."""
        waited: list[int] = []
        for r in results:
            if r is None:
                continue
            if not isinstance(r, Future):
                raise Op2Error(f"sync expects loop futures, got {r!r}")
            r.get()
            if r.loop_id is not None:
                waited.append(r.loop_id)
        if waited:
            self.log.append(SyncRecord(loop_ids=tuple(waited)))

    def finish(self) -> None:
        """Complete all outstanding asynchronous work."""
        self.backend.finalize(self)
        self.hpx.executor.drain()

    def cancel(self) -> None:
        """Discard outstanding asynchronous work (error-path cleanup).

        Used instead of :meth:`finish` when a session body raised: queued
        executor tasks are dropped (their futures fail rather than linger)
        and backend scheduling state is reset, so a runtime reused by a
        later session does not replay this session's stale work.
        """
        if self._pool is not None:
            # Unreleased dependency-scheduled tasks must never fire after
            # their session aborted; in-flight ones are waited out so no
            # worker still mutates shared dats when control returns.
            self._pool.cancel_all()
        self.backend.cancel(self)
        self.hpx.executor.cancel_pending()

    # -- observability -------------------------------------------------------

    def timing_summary(self) -> TimingSummary:
        """Per-kernel wall-clock table (OP2's ``op_timing_output``)."""
        if self.obs is None:
            raise Op2Error(
                "timing is not enabled; construct the session with "
                "timing=True or trace=True"
            )
        return self.obs.summary(self.num_workers, joins=self.pool_stats.joins)

    def export_trace(self, path) -> int:
        """Write the measured Chrome-trace JSON; returns the event count."""
        if self.obs is None or not self.obs.collect_events:
            raise Op2Error(
                "tracing is not enabled; construct the session with trace=True"
            )
        from repro.obs.chrome import export_obs_trace

        return export_obs_trace(
            self.obs, path, process_name=f"repro.threads[{self.backend_name}]"
        )

    def close(self) -> None:
        """Release OS resources (thread-pool workers). Idempotent.

        The runtime remains usable afterwards: the pool is re-created lazily
        if another threaded loop runs.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool_stats = self._pool.stats
            self._pool = None

    # -- session management -------------------------------------------------

    def activate(self) -> "Op2Runtime | None":
        """Install as the current OP2 + HPX runtime; returns the previous."""
        previous = set_op2_runtime(self)
        set_runtime(self.hpx)
        return previous

    def deactivate(self, previous: "Op2Runtime | None") -> None:
        set_op2_runtime(previous)
        set_runtime(previous.hpx if previous is not None else None)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Op2Runtime backend={self.backend_name} threads={self.num_threads} "
            f"block={self.block_size}>"
        )


_current: Op2Runtime | None = None


def get_op2_runtime() -> Op2Runtime:
    """The active session; loops outside a session run on a default seq one."""
    global _current
    if _current is None:
        _current = Op2Runtime()
        set_runtime(_current.hpx)
    return _current


def set_op2_runtime(rt: Op2Runtime | None) -> Op2Runtime | None:
    global _current
    previous = _current
    _current = rt
    return previous


@contextmanager
def op2_session(
    backend: str = "seq",
    num_threads: int = 1,
    block_size: int = DEFAULT_BLOCK_SIZE,
    granularity: str = "set",
    mode: str = "sim",
    num_workers: int | None = None,
    num_ranks: int | None = None,
    backend_options: dict | None = None,
    trace: bool = False,
    timing: bool = False,
    log_limit: int | None = None,
) -> Iterator[Op2Runtime]:
    """Scoped OP2 session: installs the runtime, finishes and restores on exit.

    ``mode="threads"`` selects real shared-memory execution on
    ``num_workers`` OS threads (default: ``num_threads``); the default
    ``"sim"`` keeps the deterministic cooperative path. ``trace``/``timing``
    enable the wall-clock observability layer (see :mod:`repro.obs`);
    ``log_limit`` bounds the loop log (see :class:`LoopLog`).

    If the body raises, outstanding asynchronous work is *cancelled* rather
    than finished — queued tasks must not leak into a later session that
    reuses this runtime — and the exception propagates unchanged.

    >>> from repro.op2 import op2_session
    >>> with op2_session(backend="openmp", num_threads=4) as rt:
    ...     pass  # run op_par_loop(...) calls here
    """
    rt = Op2Runtime(
        backend=backend,
        num_threads=num_threads,
        block_size=block_size,
        granularity=granularity,
        config=RuntimeConfig(
            mode=mode,
            num_workers=num_workers,
            num_ranks=num_ranks,
            trace=trace,
            timing=timing,
            log_limit=log_limit,
        ),
        backend_options=backend_options,
    )
    previous = rt.activate()
    try:
        yield rt
        rt.finish()
    except BaseException:
        # A raising body (or a raising kernel surfacing in finish) would
        # otherwise skip the drain and leave queued work behind.
        rt.cancel()
        raise
    finally:
        rt.deactivate(previous)
        rt.close()
