"""OP2 exception hierarchy."""

from repro.util.validate import ReproError


class Op2Error(ReproError):
    """Base class for OP2 API misuse and internal inconsistencies."""


class MapBoundsError(Op2Error):
    """A map entry points outside its target set."""


class AccessError(Op2Error):
    """Illegal access-mode combination for an argument."""


class PlanError(Op2Error):
    """Execution-plan construction failed (bad blocking or coloring)."""


class KernelSignatureError(Op2Error):
    """Kernel arity does not match the op_par_loop argument list."""
