"""OP2: an active library for unstructured-grid computations.

Reimplements the OP2 abstraction the paper builds on (§II-A):

- **sets** (:class:`OpSet`) — nodes, edges, cells, ...;
- **data on sets** (:class:`OpDat`, :class:`OpGlobal`) — solution vectors,
  coordinates, residuals, global reductions;
- **mappings between sets** (:class:`OpMap`) — e.g. edges -> 2 cells;
- **computation over sets** (:func:`op_par_loop`) — a kernel applied to every
  element, with declared per-argument access modes (``OP_READ``, ``OP_WRITE``,
  ``OP_RW``, ``OP_INC``) and direct (``OP_ID``) or indirect (via a map)
  addressing.

Loops over a set whose arguments all use ``OP_ID`` are *direct*; loops with
map-addressed arguments are *indirect* and require an execution plan
(:mod:`~repro.op2.plan`) that blocks the iteration set and colors blocks so
no two concurrently-executed blocks increment the same indirect element.
"""

from repro.op2.access import Access, OP_READ, OP_WRITE, OP_RW, OP_INC, OP_MIN, OP_MAX
from repro.op2.set_ import OpSet
from repro.op2.map_ import OpMap, OP_ID
from repro.op2.dat import OpDat, OpGlobal
from repro.op2.args import Arg, op_arg_dat, op_arg_gbl
from repro.op2.kernel import Kernel, KernelCost
from repro.op2.exceptions import Op2Error, PlanError
from repro.op2.plan import Plan, build_plan
from repro.op2.parloop import ParLoop, op_par_loop
from repro.op2.config import RuntimeConfig
from repro.op2.runtime import Op2Runtime, LoopRecord, SyncRecord, get_op2_runtime, op2_session
from repro.op2.deps import DatDependencyTracker

__all__ = [
    "Access",
    "OP_READ",
    "OP_WRITE",
    "OP_RW",
    "OP_INC",
    "OP_MIN",
    "OP_MAX",
    "OP_ID",
    "OpSet",
    "OpMap",
    "OpDat",
    "OpGlobal",
    "Arg",
    "op_arg_dat",
    "op_arg_gbl",
    "Kernel",
    "KernelCost",
    "Op2Error",
    "PlanError",
    "Plan",
    "build_plan",
    "ParLoop",
    "op_par_loop",
    "RuntimeConfig",
    "Op2Runtime",
    "LoopRecord",
    "SyncRecord",
    "get_op2_runtime",
    "op2_session",
    "DatDependencyTracker",
]
