"""Dataflow dependence tracking between loops over shared dats.

This is the machinery behind the paper's modified OP2 API (§III-B): each dat
carries the future of its latest producer, and a new loop's invocation is
delayed until the futures of everything it depends on are ready. The tracker
implements the full read/write/increment state machine:

- a **reader** depends on the last writer and on any increments since;
- an **incrementer** depends on the last writer and on readers since the last
  write (WAR), but *not* on other incrementers — increments commute, which is
  how ``res_calc`` and ``bres_calc`` overlap in the paper. On real threads
  floating-point increments commute only *mathematically*, not bitwise, so
  the measured scheduler constructs the tracker with
  ``ordered_increments=True`` and serializes incrementers of the same dat in
  program order — determinism over a sliver of overlap;
- a **writer** depends on everything outstanding (last writer, readers,
  incrementers) and then resets the state.

The tracker is generic over what a "token" is: the dataflow *backend* uses
HPX futures (functional execution order), while the dataflow *emitter* uses
loop ids (task-graph construction). Both therefore share one dependence
semantics, which the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Hashable, TypeVar

from repro.op2.access import Access
from repro.op2.args import Arg

T = TypeVar("T", bound=Hashable)


@dataclass
class _DatState(Generic[T]):
    last_writer: T | None = None
    readers_since_write: list[T] = field(default_factory=list)
    incs_since_write: list[T] = field(default_factory=list)


class DatDependencyTracker(Generic[T]):
    """Tracks producer/consumer tokens per dat (keyed by ``id(dat)``)."""

    def __init__(self, ordered_increments: bool = False) -> None:
        #: when True, an incrementer also depends on earlier incrementers of
        #: the same dat. Bitwise determinism on real threads needs this: two
        #: concurrent ``+=`` streams into shared rows produce
        #: schedule-dependent rounding even though the sums commute exactly
        #: in the simulator's functional model.
        self.ordered_increments = bool(ordered_increments)
        self._states: dict[int, _DatState[T]] = {}

    def _state(self, dat: object) -> _DatState[T]:
        return self._states.setdefault(id(dat), _DatState())

    def dependencies(self, args: list[Arg], *, token: T) -> list[T]:
        """Dependencies of a new loop ``token`` with arguments ``args``.

        Also records the loop's own accesses, so call this exactly once per
        loop, in program order. Duplicate dependencies are removed while
        preserving first-seen order.
        """
        deps: list[T] = []
        seen: set[T] = set()

        def need(t: T | None) -> None:
            if t is not None and t != token and t not in seen:
                seen.add(t)
                deps.append(t)

        # First pass: gather dependencies against the *pre-loop* state, so a
        # loop touching the same dat twice (e.g. res1/res2 through two map
        # columns) does not depend on itself.
        per_dat_access: dict[int, list[Access]] = {}
        for arg in args:
            st = self._state(arg.dat)
            acc = arg.access
            per_dat_access.setdefault(id(arg.dat), []).append(acc)
            if acc is Access.READ:
                need(st.last_writer)
                for t in st.incs_since_write:
                    need(t)
            elif acc.is_reduction:
                need(st.last_writer)
                for t in st.readers_since_write:
                    need(t)
                if self.ordered_increments:
                    for t in st.incs_since_write:
                        need(t)
            else:  # WRITE / RW
                need(st.last_writer)
                for t in st.readers_since_write:
                    need(t)
                for t in st.incs_since_write:
                    need(t)

        # Second pass: record this loop's effects. Strongest access wins when
        # the loop names the same dat with several modes.
        for dat_id, accesses in per_dat_access.items():
            st = self._states[dat_id]
            if any(a in (Access.WRITE, Access.RW) for a in accesses):
                st.last_writer = token
                st.readers_since_write = []
                st.incs_since_write = []
            elif any(a.is_reduction for a in accesses):
                st.incs_since_write.append(token)
            else:
                st.readers_since_write.append(token)
        return deps

    def outstanding(self) -> list[T]:
        """Every token still live in some dat state (for final synchronization)."""
        out: list[T] = []
        seen: set[T] = set()
        for st in self._states.values():
            for t in [st.last_writer, *st.readers_since_write, *st.incs_since_write]:
                if t is not None and t not in seen:
                    seen.add(t)
                    out.append(t)
        return out

    def reset(self) -> None:
        self._states.clear()
