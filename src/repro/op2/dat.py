"""Data on sets (``op_dat``) and global values (``op_gbl``)."""

from __future__ import annotations

import numpy as np

from repro.op2.exceptions import Op2Error
from repro.op2.set_ import OpSet


class OpDat:
    """A dense array of ``dim`` values per element of a set.

    Backed by a contiguous ``(set.size, dim)`` numpy array. ``version``
    counts completed writes; the dataflow backend uses it to name dat
    versions (the ``data[t]`` / ``data[t-1]`` of paper Fig 14) and tests use
    it to assert which loops touched what.
    """

    __slots__ = ("name", "set", "dim", "data", "version")

    def __init__(
        self,
        name: str,
        set_: OpSet,
        dim: int,
        data: np.ndarray | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if not name:
            raise Op2Error("dat name must be non-empty")
        if dim < 1:
            raise Op2Error(f"dat {name!r} dim must be >= 1, got {dim}")
        shape = (set_.size, dim)
        if data is None:
            data = np.zeros(shape, dtype=dtype)
        else:
            data = np.ascontiguousarray(data, dtype=dtype)
            if data.shape == (set_.size,) and dim == 1:
                data = data.reshape(shape)
            if data.shape != shape:
                raise Op2Error(
                    f"dat {name!r} data shape {data.shape} != {shape}"
                )
        self.name = name
        self.set = set_
        self.dim = int(dim)
        self.data = data
        self.version = 0

    def bump_version(self) -> int:
        """Record one completed writing loop; returns the new version."""
        self.version += 1
        return self.version

    def copy_data(self) -> np.ndarray:
        """Snapshot of the current values (for validation/rollback)."""
        return self.data.copy()

    def norm(self) -> float:
        """Frobenius norm; convenient convergence/diff metric in tests."""
        return float(np.sqrt(np.sum(self.data.astype(np.float64) ** 2)))

    def __repr__(self) -> str:
        return f"OpDat({self.name!r}, set={self.set.name}, dim={self.dim})"


class OpGlobal:
    """A global value read by all elements or reduced into by a loop."""

    __slots__ = ("name", "dim", "data")

    def __init__(
        self,
        name: str,
        dim: int,
        data: np.ndarray | float | None = None,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if not name:
            raise Op2Error("global name must be non-empty")
        if dim < 1:
            raise Op2Error(f"global {name!r} dim must be >= 1, got {dim}")
        if data is None:
            arr = np.zeros(dim, dtype=dtype)
        else:
            arr = np.atleast_1d(np.asarray(data, dtype=dtype)).copy()
            if arr.shape != (dim,):
                raise Op2Error(
                    f"global {name!r} data shape {arr.shape} != ({dim},)"
                )
        self.name = name
        self.dim = int(dim)
        self.data = arr

    def value(self) -> float | np.ndarray:
        """Scalar for dim-1 globals, array otherwise."""
        return float(self.data[0]) if self.dim == 1 else self.data.copy()

    def reset(self, fill: float = 0.0) -> None:
        self.data[:] = fill

    def __repr__(self) -> str:
        return f"OpGlobal({self.name!r}, dim={self.dim}, data={self.data!r})"


def op_decl_dat(
    set_: OpSet,
    dim: int,
    data: np.ndarray | None,
    name: str,
    dtype: np.dtype | type = np.float64,
) -> OpDat:
    """OP2-style declaration spelling."""
    return OpDat(name, set_, dim, data, dtype)
