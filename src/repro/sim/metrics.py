"""Derived metrics: speedup, efficiency, overhead decomposition."""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.engine import SimResult
from repro.util.validate import ValidationError


def speedup_series(
    threads: Sequence[int], times: Sequence[float]
) -> list[float]:
    """Strong-scaling speedup relative to the first (1-thread) entry."""
    if len(threads) != len(times) or not times:
        raise ValidationError("threads/times must be equal-length, non-empty")
    base = times[0]
    if base <= 0:
        raise ValidationError(f"baseline time must be > 0, got {base}")
    return [base / t for t in times]


def efficiency_series(
    threads: Sequence[int], times: Sequence[float], *, weak: bool = False
) -> list[float]:
    """Parallel efficiency.

    Strong scaling: ``T1 / (P * TP)``. Weak scaling (problem grows with P,
    per-thread work constant): ``T1 / TP`` — the paper's Fig 19 metric,
    'efficiency relative to the one core case'.
    """
    if len(threads) != len(times) or not times:
        raise ValidationError("threads/times must be equal-length, non-empty")
    base = times[0]
    if base <= 0:
        raise ValidationError(f"baseline time must be > 0, got {base}")
    if weak:
        return [base / t for t in times]
    return [base / (p * t) for p, t in zip(threads, times)]


def overhead_breakdown(result: SimResult) -> dict[str, float]:
    """Decompose thread-time into useful work, overhead kinds, and idle.

    Values are fractions of total thread-time (makespan * threads); they sum
    to 1 up to rounding.
    """
    span = result.makespan * result.num_threads
    if span == 0.0:
        return {"work": 1.0, "idle": 0.0}
    by_kind = result.trace.time_by_kind()
    out = {kind: t / span for kind, t in sorted(by_kind.items())}
    out["idle"] = max(0.0, 1.0 - sum(out.values()))
    return out


def crossover_point(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """x where series a first overtakes series b (linear interpolation).

    Returns None when a never overtakes b on the sampled range. Used by the
    experiment reports to locate where async/dataflow pull ahead of OpenMP.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValidationError("series must have equal length")
    prev_diff = None
    for i, x in enumerate(xs):
        diff = ys_a[i] - ys_b[i]
        if diff > 0 and prev_diff is not None and prev_diff <= 0:
            x0, x1 = xs[i - 1], x
            d0, d1 = prev_diff, diff
            if d1 == d0:
                return float(x)
            return float(x0 + (x1 - x0) * (-d0) / (d1 - d0))
        if diff > 0 and prev_diff is None:
            return float(x)
        prev_diff = diff
    return None
