"""The machine model: cores, SMT, and scheduling overhead constants.

The constants below parameterize *mechanisms* (barrier latency, task dispatch
cost, hyperthread throughput, bandwidth saturation); the reproduced figures
emerge from graph structure under these mechanisms, not from fitting each
curve. ``paper_machine()`` models the paper's testbed: two Intel Xeon E5
processors, 8 cores each at 2.4 GHz, hyperthreading enabled (16C/32T).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validate import ValidationError


@dataclass(frozen=True)
class MachineConfig:
    """Immutable machine description, all times in abstract microseconds."""

    #: Physical cores.
    num_cores: int = 16
    #: Hardware threads per core (2 = hyperthreading).
    smt_ways: int = 2
    #: Throughput of one hardware thread when its SMT sibling is also busy,
    #: relative to owning the whole core (two busy siblings -> 2*eff total).
    smt_efficiency: float = 0.62

    #: Dispatch cost added to every scheduled task (queue pop, setup).
    task_overhead: float = 0.35
    #: Extra cost when a thread executes a task another thread spawned
    #: (cold cache / steal); applied to non-affine tasks only.
    steal_overhead: float = 0.15
    #: Cost of entering a parallel region (OpenMP fork, HPX bulk spawn).
    fork_overhead: float = 1.2
    #: Per-chunk creation cost paid by the spawning thread, serialized
    #: (HPX task allocation + queue push per chunk).
    chunk_spawn_overhead: float = 0.30

    #: Barrier cost model name (see :mod:`repro.sim.barriers`).
    barrier_model: str = "linear"
    #: Barrier base latency.
    barrier_base: float = 1.0
    #: Barrier per-thread latency coefficient.
    barrier_per_thread: float = 1.5
    #: Join (when_all + future.get) cost coefficients; futures join cheaper
    #: than a full barrier because only the consumer waits.
    join_base: float = 0.5
    join_per_thread: float = 0.30

    #: Number of concurrently running memory-bound threads the memory system
    #: sustains at full speed; beyond this, memory-bound work slows down.
    bandwidth_saturation: float = 12.0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValidationError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.smt_ways < 1:
            raise ValidationError(f"smt_ways must be >= 1, got {self.smt_ways}")
        if not 0.0 < self.smt_efficiency <= 1.0:
            raise ValidationError(
                f"smt_efficiency must be in (0,1], got {self.smt_efficiency}"
            )
        for attr in (
            "task_overhead",
            "steal_overhead",
            "fork_overhead",
            "chunk_spawn_overhead",
            "barrier_base",
            "barrier_per_thread",
            "join_base",
            "join_per_thread",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be >= 0")
        if self.bandwidth_saturation <= 0:
            raise ValidationError("bandwidth_saturation must be > 0")

    @property
    def max_threads(self) -> int:
        """Hardware threads available (cores x SMT ways)."""
        return self.num_cores * self.smt_ways

    def with_(self, **kwargs) -> "MachineConfig":
        """Return a modified copy (ablation sweeps)."""
        return replace(self, **kwargs)


def paper_machine() -> MachineConfig:
    """The paper's testbed: 2x Xeon E5 8C/2.4GHz, HT on (16C/32T)."""
    return MachineConfig()


def thread_speeds(config: MachineConfig, num_threads: int) -> list[float]:
    """Static per-thread execution speed for a run with ``num_threads``.

    Threads fill physical cores first; thread ``i >= num_cores`` shares core
    ``i - num_cores`` (for 2-way SMT). Both siblings of a shared core run at
    ``smt_efficiency``. This static approximation models the throughput knee
    at ``num_cores`` threads visible in every figure of the paper.
    """
    if num_threads < 1:
        raise ValidationError(f"num_threads must be >= 1, got {num_threads}")
    if num_threads > config.max_threads:
        raise ValidationError(
            f"{num_threads} threads exceed machine capacity {config.max_threads}"
        )
    speeds = []
    for i in range(num_threads):
        core = i % config.num_cores
        # Occupancy of this thread's core (how many of the run's threads
        # landed on it).
        occupancy = sum(
            1 for j in range(num_threads) if j % config.num_cores == core
        )
        speeds.append(1.0 if occupancy == 1 else config.smt_efficiency)
    return speeds
