"""The event-driven list-scheduling simulation engine.

Schedules a :class:`~repro.sim.task.TaskGraph` onto ``num_threads`` hardware
threads of a :class:`~repro.sim.machine.MachineConfig`:

- a task with ``affinity=k`` runs only on thread ``k`` (fork-join static
  scheduling, the OpenMP model);
- a task with ``affinity=None`` runs on any idle thread, FIFO by readiness
  (HPX work stealing at the granularity the simulator cares about);
- every dispatch costs ``task_overhead``; executing a non-affine task on a
  thread other than the one that produced its first dependency adds
  ``steal_overhead`` (producer-consumer cache locality);
- a thread's execution *speed* scales task durations (SMT sharing).

The engine is deterministic: ties break by thread id and task id.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro.sim.machine import MachineConfig, thread_speeds
from repro.sim.task import TaskGraph, TaskGraphError
from repro.sim.trace import Trace, TraceRecord


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    makespan: float
    trace: Trace
    num_threads: int
    total_work: float
    critical_path: float
    tasks_executed: int
    steals: int

    def speedup_bound(self) -> float:
        """Upper bound on useful parallelism (work / critical path)."""
        if self.critical_path == 0.0:
            return float("inf")
        return self.total_work / self.critical_path


class SimulationEngine:
    """Event-driven simulator for one (graph, machine, threads) triple."""

    def __init__(self, config: MachineConfig, num_threads: int) -> None:
        self.config = config
        self.num_threads = int(num_threads)
        self.speeds = thread_speeds(config, self.num_threads)

    def run(self, graph: TaskGraph, collect_trace: bool = True) -> SimResult:
        graph.validate()
        tasks = graph.tasks
        n = len(tasks)
        succ = graph.successors()
        indeg = [len(t.deps) for t in tasks]

        for t in tasks:
            if t.affinity is not None and not 0 <= t.affinity < self.num_threads:
                raise TaskGraphError(
                    f"task {t.name!r} pinned to thread {t.affinity}, run has "
                    f"{self.num_threads} threads"
                )

        # Ready queues: one FIFO per pinned thread + one shared FIFO.
        pinned: list[deque[int]] = [deque() for _ in range(self.num_threads)]
        shared: deque[int] = deque()

        def make_ready(tid: int) -> None:
            aff = tasks[tid].affinity
            if aff is None:
                shared.append(tid)
            else:
                pinned[aff].append(tid)

        for tid in range(n):
            if indeg[tid] == 0:
                make_ready(tid)

        # producer[tid]: thread that executed the task's first dependency.
        producer = [-1] * n
        idle = set(range(self.num_threads))
        events: list[tuple[float, int, int, int]] = []  # (end, seq, thread, tid)
        seq = 0
        now = 0.0
        trace = Trace(self.num_threads)
        executed = 0
        steals = 0

        def dispatch() -> None:
            nonlocal seq, executed, steals
            # Deterministic: threads in id order; pinned work first.
            for thread in sorted(idle):
                tid: int | None = None
                if pinned[thread]:
                    tid = pinned[thread].popleft()
                elif shared:
                    tid = shared.popleft()
                if tid is None:
                    continue
                idle.discard(thread)
                task = tasks[tid]
                overhead = self.config.task_overhead
                if (
                    task.affinity is None
                    and producer[tid] >= 0
                    and producer[tid] != thread
                ):
                    overhead += self.config.steal_overhead
                    steals += 1
                duration = overhead + task.cost / self.speeds[thread]
                end = now + duration
                heapq.heappush(events, (end, seq, thread, tid))
                seq += 1
                executed += 1
                if collect_trace:
                    trace.add(
                        TraceRecord(
                            tid=tid,
                            name=task.name,
                            kind=task.kind,
                            loop=task.loop,
                            thread=thread,
                            start=now,
                            end=end,
                        )
                    )

        dispatch()
        makespan = 0.0
        while events:
            end, _, thread, tid = heapq.heappop(events)
            now = end
            makespan = max(makespan, end)
            idle.add(thread)
            for s in succ[tid]:
                if producer[s] == -1:
                    producer[s] = thread
                indeg[s] -= 1
                if indeg[s] == 0:
                    make_ready(s)
            # Drain simultaneous completions before dispatching, so all
            # successors ready at this instant compete fairly.
            while events and events[0][0] == now:
                end2, _, thread2, tid2 = heapq.heappop(events)
                idle.add(thread2)
                for s in succ[tid2]:
                    if producer[s] == -1:
                        producer[s] = thread2
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        make_ready(s)
            dispatch()

        if executed != n:
            stuck = [t.name for t in tasks if indeg[t.tid] > 0][:5]
            raise TaskGraphError(
                f"simulation stalled: {n - executed} tasks never ran "
                f"(first stuck: {stuck})"
            )

        return SimResult(
            makespan=makespan,
            trace=trace,
            num_threads=self.num_threads,
            total_work=graph.total_work(),
            critical_path=graph.critical_path(),
            tasks_executed=executed,
            steals=steals,
        )


def simulate(
    graph: TaskGraph, config: MachineConfig, num_threads: int, trace: bool = False
) -> SimResult:
    """Convenience one-shot simulation."""
    return SimulationEngine(config, num_threads).run(graph, collect_trace=trace)
