"""Discrete-event simulation of a multicore shared-memory node.

The paper measures wall-clock scaling of different loop-scheduling structures
(fork-join barriers vs futures vs dataflow DAGs) on a 2-socket Xeon with 16
cores / 32 hyperthreads. CPython's GIL makes real thread scaling of Python
tasks meaningless, so this subpackage replays the *task graphs* produced by
the OP2 backends on an event-driven machine model instead:

- :mod:`~repro.sim.task` — tasks and dependency graphs (with critical-path
  and total-work analysis);
- :mod:`~repro.sim.machine` — the machine model: cores, SMT, per-task
  overheads, barrier cost models, memory-bandwidth contention;
- :mod:`~repro.sim.engine` — the event-driven list-scheduling simulator;
- :mod:`~repro.sim.trace` / :mod:`~repro.sim.metrics` — per-core Gantt traces
  and derived metrics (makespan, speedup, efficiency, overhead breakdown).

Every quantity is in abstract microseconds; only ratios matter for the
reproduced figures.
"""

from repro.sim.task import SimTask, TaskGraph, TaskGraphError
from repro.sim.machine import MachineConfig, paper_machine, thread_speeds
from repro.sim.barriers import barrier_cost, BARRIER_MODELS
from repro.sim.bandwidth import contention_factor
from repro.sim.engine import SimulationEngine, SimResult
from repro.sim.trace import TraceRecord, Trace
from repro.sim.metrics import (
    speedup_series,
    efficiency_series,
    overhead_breakdown,
)
from repro.sim.analysis import (
    bottleneck_report,
    critical_loop_shares,
    critical_path_tasks,
    idle_gaps,
)
from repro.sim.chrometrace import export_chrome_trace, trace_events

__all__ = [
    "SimTask",
    "TaskGraph",
    "TaskGraphError",
    "MachineConfig",
    "paper_machine",
    "thread_speeds",
    "barrier_cost",
    "BARRIER_MODELS",
    "contention_factor",
    "SimulationEngine",
    "SimResult",
    "TraceRecord",
    "Trace",
    "speedup_series",
    "efficiency_series",
    "overhead_breakdown",
    "bottleneck_report",
    "critical_loop_shares",
    "critical_path_tasks",
    "idle_gaps",
    "export_chrome_trace",
    "trace_events",
]
