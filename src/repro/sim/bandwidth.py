"""Memory-bandwidth contention model.

Unstructured-mesh kernels are partly memory-bound (indirect gathers/scatters
stream cell and edge data). When more threads run memory-bound work than the
memory system sustains, each thread's memory-bound portion slows down
proportionally — a standard roofline-style throughput argument.

We apply the model analytically at task-emission time: a task whose
``mem_fraction`` of work is memory-bound gets its cost scaled by
:func:`contention_factor` for the thread count of the run. This keeps the
event simulation simple (static task costs) while capturing the sub-linear
scaling of memory-bound loops that every figure in the paper shows well
before the hyperthreading knee.
"""

from __future__ import annotations

from repro.sim.machine import MachineConfig
from repro.util.validate import ValidationError


def contention_factor(
    config: MachineConfig, num_threads: int, mem_fraction: float
) -> float:
    """Cost multiplier (>= 1) for a task under bandwidth contention.

    The compute-bound portion ``1 - mem_fraction`` is unaffected; the
    memory-bound portion dilates by ``num_threads / bandwidth_saturation``
    once the thread count exceeds saturation.
    """
    if not 0.0 <= mem_fraction <= 1.0:
        raise ValidationError(f"mem_fraction must be in [0,1], got {mem_fraction}")
    if num_threads < 1:
        raise ValidationError(f"num_threads must be >= 1, got {num_threads}")
    # Hyperthreads share core-level resources already modeled by smt_efficiency;
    # bandwidth contention counts *cores* driving the memory system.
    active_cores = min(num_threads, config.num_cores)
    if active_cores <= config.bandwidth_saturation:
        return 1.0
    dilation = active_cores / config.bandwidth_saturation
    return (1.0 - mem_fraction) + mem_fraction * dilation
