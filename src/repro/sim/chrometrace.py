"""Export schedules as Chrome trace-event JSON (simulated *and* measured).

``chrome://tracing`` / Perfetto read a simple JSON format; exporting the
simulator's per-thread trace lets the schedules be inspected interactively —
the barrier gaps of the OpenMP backend and the packed dataflow timeline are
very visible there. The generic builders (:func:`metadata_events`,
:func:`duration_event`, :func:`write_trace`) are shared with the measured
threads-mode exporter (:mod:`repro.obs.chrome`), so simulated and wall-clock
runs render in the same viewer with the same visual vocabulary.

Format: the "JSON array" flavor of the Trace Event Format — one complete
duration event (``"ph": "X"``) per executed task, timestamps in
microseconds, one row per (simulated or real) thread.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.trace import Trace

#: Perfetto color names per task kind (visual grouping of overhead types).
_KIND_COLORS = {
    "work": "thread_state_running",
    "barrier": "terrible",
    "join": "bad",
    "spawn": "generic_work",
    "prefix": "grey",
    # measured (threads-mode) kinds
    "loop": "rail_load",
    "color": "rail_animation",
    "task": "thread_state_running",
    "fold": "bad",
    "release": "startup",
    "wait": "terrible",
}


def metadata_events(
    process_name: str, thread_names: dict[int, str], pid: int = 1
) -> list[dict]:
    """Process/thread-name metadata rows heading a trace event list."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": process_name}}
    ]
    for tid, name in thread_names.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return events


def duration_event(
    name: str,
    kind: str,
    loop: str,
    tid: int,
    ts: float,
    dur: float,
    args: dict | None = None,
    pid: int = 1,
) -> dict:
    """One complete duration event; timestamps/durations in microseconds."""
    event = {
        "name": name,
        "cat": kind + ("," + loop if loop else ""),
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": ts,
        "dur": dur,
        "args": args if args is not None else {"kind": kind, "loop": loop},
    }
    color = _KIND_COLORS.get(kind)
    if color:
        event["cname"] = color
    return event


def write_trace(events: list[dict], path: str | Path) -> int:
    """Serialize an event list to ``path``; returns the number of events.

    Open the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    Path(path).write_text(json.dumps(events))
    return len(events)


def trace_events(trace: Trace, process_name: str = "repro.sim") -> list[dict]:
    """The event list: metadata rows plus one duration event per record."""
    events = metadata_events(
        process_name,
        {thread: f"sim thread {thread}" for thread in range(trace.num_threads)},
    )
    for r in trace.records:
        events.append(
            duration_event(
                r.name,
                r.kind,
                r.loop,
                r.thread,
                r.start,
                r.duration,
                args={"kind": r.kind, "loop": r.loop, "task": r.tid},
            )
        )
    return events


def export_chrome_trace(
    trace: Trace, path: str | Path, process_name: str = "repro.sim"
) -> int:
    """Write the simulated trace to ``path``; returns the event count."""
    return write_trace(trace_events(trace, process_name), path)
