"""Export simulated schedules as Chrome trace-event JSON.

``chrome://tracing`` / Perfetto read a simple JSON format; exporting the
simulator's per-thread trace lets the schedules be inspected interactively —
the barrier gaps of the OpenMP backend and the packed dataflow timeline are
very visible there.

Format: the "JSON array" flavor of the Trace Event Format — one complete
duration event (``"ph": "X"``) per executed task, timestamps in
microseconds, one row per simulated thread.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.trace import Trace

#: Perfetto color names per task kind (visual grouping of overhead types).
_KIND_COLORS = {
    "work": "thread_state_running",
    "barrier": "terrible",
    "join": "bad",
    "spawn": "generic_work",
    "prefix": "grey",
}


def trace_events(trace: Trace, process_name: str = "repro.sim") -> list[dict]:
    """The event list: metadata rows plus one duration event per record."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for thread in range(trace.num_threads):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": thread,
                "args": {"name": f"sim thread {thread}"},
            }
        )
    for r in trace.records:
        event = {
            "name": r.name,
            "cat": r.kind + ("," + r.loop if r.loop else ""),
            "ph": "X",
            "pid": 1,
            "tid": r.thread,
            "ts": r.start,
            "dur": r.duration,
            "args": {"kind": r.kind, "loop": r.loop, "task": r.tid},
        }
        color = _KIND_COLORS.get(r.kind)
        if color:
            event["cname"] = color
        events.append(event)
    return events


def export_chrome_trace(
    trace: Trace, path: str | Path, process_name: str = "repro.sim"
) -> int:
    """Write the trace to ``path``; returns the number of events written.

    Open the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = trace_events(trace, process_name)
    Path(path).write_text(json.dumps(events))
    return len(events)
