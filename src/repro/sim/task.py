"""Tasks and task graphs for the machine simulator.

A :class:`SimTask` is a unit of sequential work with a cost (abstract
microseconds) and dependencies. A :class:`TaskGraph` is the DAG the backends
emit for one run; the engine schedules it onto the machine model.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.util.validate import ReproError


class TaskGraphError(ReproError):
    """Structural problem in a task graph (cycle, unknown dependency, ...)."""


@dataclass
class SimTask:
    """One schedulable unit of work.

    Attributes:
        tid: unique id within its graph (assigned by :meth:`TaskGraph.add`).
        name: human-readable label (e.g. ``"adt_calc[3].blk7"``).
        cost: sequential execution cost in abstract microseconds.
        deps: ids of tasks that must complete first.
        affinity: pin to a specific thread id (fork-join static scheduling);
            ``None`` means any thread may run it (work stealing).
        kind: classification used by metrics — ``"work"``, ``"barrier"``,
            ``"spawn"``, ``"join"``, ``"prefix"``.
        loop: label of the op_par_loop (or phase) this task belongs to.
        mem_fraction: share of the task's time bound by memory bandwidth,
            in [0, 1]; drives the contention model.
    """

    name: str
    cost: float
    deps: tuple[int, ...] = ()
    affinity: int | None = None
    kind: str = "work"
    loop: str = ""
    mem_fraction: float = 0.0
    tid: int = -1

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise TaskGraphError(f"task {self.name!r} has negative cost {self.cost}")
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise TaskGraphError(
                f"task {self.name!r} mem_fraction {self.mem_fraction} not in [0,1]"
            )


@dataclass
class TaskGraph:
    """An append-only DAG of :class:`SimTask`.

    Tasks must be added after their dependencies (ids are handed out in
    insertion order), which makes cycles impossible by construction and keeps
    validation cheap.
    """

    tasks: list[SimTask] = field(default_factory=list)

    def add(
        self,
        name: str,
        cost: float,
        deps: Iterable[int] = (),
        *,
        affinity: int | None = None,
        kind: str = "work",
        loop: str = "",
        mem_fraction: float = 0.0,
    ) -> int:
        """Append a task; returns its id."""
        dep_tuple = tuple(deps)
        tid = len(self.tasks)
        for d in dep_tuple:
            if not 0 <= d < tid:
                raise TaskGraphError(
                    f"task {name!r} depends on {d}, which is not an earlier task"
                )
        task = SimTask(
            name=name,
            cost=float(cost),
            deps=dep_tuple,
            affinity=affinity,
            kind=kind,
            loop=loop,
            mem_fraction=mem_fraction,
            tid=tid,
        )
        self.tasks.append(task)
        return tid

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    # -- analysis -----------------------------------------------------------

    def total_work(self, kind: str | None = None) -> float:
        """Sum of task costs (optionally restricted to one kind)."""
        return sum(t.cost for t in self.tasks if kind is None or t.kind == kind)

    def critical_path(self) -> float:
        """Length of the longest cost-weighted dependency chain.

        A lower bound on makespan at any thread count (ignoring overheads).
        """
        finish = [0.0] * len(self.tasks)
        best = 0.0
        for t in self.tasks:
            start = max((finish[d] for d in t.deps), default=0.0)
            finish[t.tid] = start + t.cost
            if finish[t.tid] > best:
                best = finish[t.tid]
        return best

    def successors(self) -> list[list[int]]:
        """Adjacency: for each task, the ids that depend on it."""
        succ: list[list[int]] = [[] for _ in self.tasks]
        for t in self.tasks:
            for d in t.deps:
                succ[d].append(t.tid)
        return succ

    def roots(self) -> list[int]:
        """Tasks with no dependencies."""
        return [t.tid for t in self.tasks if not t.deps]

    def validate(self) -> None:
        """Check id/dep integrity (construction already prevents cycles)."""
        for i, t in enumerate(self.tasks):
            if t.tid != i:
                raise TaskGraphError(f"task id mismatch at {i}: {t.tid}")
            for d in t.deps:
                if not 0 <= d < i:
                    raise TaskGraphError(f"bad dep {d} on task {i}")

    def by_kind(self) -> dict[str, int]:
        """Task count per kind, for diagnostics."""
        out: dict[str, int] = {}
        for t in self.tasks:
            out[t.kind] = out.get(t.kind, 0) + 1
        return out
