"""Barrier cost models.

The cost of a global barrier is the central villain of the paper: OpenMP's
``#pragma omp parallel for`` implies one after every loop. We model three
standard implementations; the default (linear) matches centralized-counter
barriers on 2-socket machines, and the ablation bench compares them.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.sim.machine import MachineConfig
from repro.util.validate import ValidationError


def _linear(config: MachineConfig, threads: int) -> float:
    """Centralized counter: every thread updates one cache line in turn."""
    return config.barrier_base + config.barrier_per_thread * threads


def _log_tree(config: MachineConfig, threads: int) -> float:
    """Combining tree: latency grows with tree depth."""
    depth = math.ceil(math.log2(threads)) if threads > 1 else 0
    return config.barrier_base + config.barrier_per_thread * 2.0 * depth


def _flat(config: MachineConfig, threads: int) -> float:
    """Idealized constant-latency barrier (hardware barrier)."""
    return config.barrier_base


BARRIER_MODELS: dict[str, Callable[[MachineConfig, int], float]] = {
    "linear": _linear,
    "logtree": _log_tree,
    "flat": _flat,
}


def barrier_cost(config: MachineConfig, threads: int) -> float:
    """Cost of one global barrier among ``threads`` threads."""
    if threads < 1:
        raise ValidationError(f"threads must be >= 1, got {threads}")
    try:
        model = BARRIER_MODELS[config.barrier_model]
    except KeyError:
        raise ValidationError(
            f"unknown barrier model {config.barrier_model!r}; "
            f"choose from {sorted(BARRIER_MODELS)}"
        ) from None
    return model(config, threads)


def join_cost(config: MachineConfig, threads: int) -> float:
    """Cost of a future join (``when_all`` + ``get``).

    Cheaper than a barrier: only the consumer synchronizes; producers just
    flip their future's state.
    """
    if threads < 1:
        raise ValidationError(f"threads must be >= 1, got {threads}")
    return config.join_base + config.join_per_thread * threads
