"""Schedule analysis: where did the time go?

Post-mortem tools over a simulated run:

- :func:`critical_path_tasks` — one longest cost-weighted chain through the
  task graph (the scalability ceiling);
- :func:`critical_loop_shares` — that chain's cost attributed to loops: the
  loops that bound the makespan no matter how many threads are added;
- :func:`idle_gaps` — per-thread gaps in the trace, largest first: where a
  schedule starves;
- :func:`bottleneck_report` — a one-string summary combining the above.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import SimResult
from repro.sim.task import TaskGraph
from repro.sim.trace import Trace


def critical_path_tasks(graph: TaskGraph) -> list[int]:
    """Task ids of one longest cost-weighted dependency chain, in order."""
    n = len(graph.tasks)
    if n == 0:
        return []
    finish = [0.0] * n
    best_pred = [-1] * n
    for t in graph.tasks:
        start = 0.0
        pred = -1
        for d in t.deps:
            if finish[d] > start:
                start = finish[d]
                pred = d
        finish[t.tid] = start + t.cost
        best_pred[t.tid] = pred
    tail = max(range(n), key=lambda i: finish[i])
    chain = []
    while tail != -1:
        chain.append(tail)
        tail = best_pred[tail]
    return chain[::-1]


def critical_loop_shares(graph: TaskGraph) -> dict[str, float]:
    """Critical-path cost per loop label, as fractions of the path length."""
    chain = critical_path_tasks(graph)
    total = sum(graph.tasks[t].cost for t in chain)
    if total == 0.0:
        return {}
    shares: dict[str, float] = {}
    for tid in chain:
        task = graph.tasks[tid]
        label = task.loop or task.kind
        shares[label] = shares.get(label, 0.0) + task.cost / total
    return dict(sorted(shares.items(), key=lambda kv: -kv[1]))


@dataclass(frozen=True)
class IdleGap:
    """A span where a thread had nothing to run."""

    thread: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def idle_gaps(trace: Trace, min_duration: float = 0.0) -> list[IdleGap]:
    """Per-thread idle intervals within [0, makespan], largest first."""
    span = trace.makespan
    per_thread: dict[int, list[tuple[float, float]]] = {
        t: [] for t in range(trace.num_threads)
    }
    for r in trace.records:
        per_thread[r.thread].append((r.start, r.end))
    gaps: list[IdleGap] = []
    for thread, intervals in per_thread.items():
        intervals.sort()
        cursor = 0.0
        for start, end in intervals:
            if start - cursor > min_duration:
                gaps.append(IdleGap(thread, cursor, start))
            cursor = max(cursor, end)
        if span - cursor > min_duration:
            gaps.append(IdleGap(thread, cursor, span))
    gaps.sort(key=lambda g: -g.duration)
    return gaps


def bottleneck_report(graph: TaskGraph, result: SimResult) -> str:
    """Human-readable summary of what limits this schedule."""
    lines = []
    cp = graph.critical_path()
    work = graph.total_work()
    lines.append(
        f"makespan {result.makespan:.1f} us on {result.num_threads} threads; "
        f"work {work:.1f}, critical path {cp:.1f} "
        f"(max useful parallelism {work / cp:.1f}x)" if cp else "empty graph"
    )
    util = result.trace.utilization() if result.trace.records else None
    if util is not None:
        lines.append(f"utilization {util:.1%}")
    shares = critical_loop_shares(graph)
    if shares:
        top = ", ".join(f"{k} {v:.0%}" for k, v in list(shares.items())[:4])
        lines.append(f"critical path by loop: {top}")
    gaps = idle_gaps(result.trace)[:3] if result.trace.records else []
    if gaps:
        worst = ", ".join(
            f"T{g.thread} [{g.start:.0f}..{g.end:.0f}]" for g in gaps
        )
        lines.append(f"largest idle gaps: {worst}")
    return "\n".join(lines)
