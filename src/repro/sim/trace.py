"""Execution traces: who ran what when, and utilization analysis."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceRecord:
    """One scheduled task instance."""

    tid: int
    name: str
    kind: str
    loop: str
    thread: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Complete per-thread execution history of a simulation run."""

    num_threads: int
    records: list[TraceRecord] = field(default_factory=list)

    def add(self, record: TraceRecord) -> None:
        self.records.append(record)

    @property
    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    def busy_time(self, thread: int | None = None) -> float:
        """Total time spent executing tasks (optionally for one thread)."""
        return sum(
            r.duration
            for r in self.records
            if thread is None or r.thread == thread
        )

    def utilization(self) -> float:
        """Fraction of thread-time spent busy over the whole run."""
        span = self.makespan
        if span == 0.0:
            return 1.0
        return self.busy_time() / (span * self.num_threads)

    def time_by_kind(self) -> dict[str, float]:
        """Total busy time per task kind (work vs barrier vs spawn ...)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0.0) + r.duration
        return out

    def time_by_loop(self) -> dict[str, float]:
        """Total busy time per op_par_loop label."""
        out: dict[str, float] = {}
        for r in self.records:
            if r.loop:
                out[r.loop] = out.get(r.loop, 0.0) + r.duration
        return out

    def gantt(self, width: int = 78) -> str:
        """Crude ASCII Gantt chart, one row per thread."""
        span = self.makespan or 1.0
        rows = []
        glyphs = {"work": "#", "barrier": "B", "join": "J", "spawn": "s", "prefix": "p"}
        for t in range(self.num_threads):
            row = [" "] * width
            for r in self.records:
                if r.thread != t:
                    continue
                a = int(r.start / span * (width - 1))
                b = max(a + 1, int(r.end / span * (width - 1)))
                g = glyphs.get(r.kind, "#")
                for i in range(a, min(b, width)):
                    row[i] = g
            rows.append(f"T{t:02d}|" + "".join(row))
        return "\n".join(rows)
