"""Additional unstructured-grid applications built on the OP2 API.

The paper motivates OP2 with unstructured-mesh workloads in general; Airfoil
is the benchmark. :mod:`repro.apps.heat` is a second, independent application
(explicit heat conduction over mesh edges) that exercises the same API
surface — direct loops, indirect increments, global reductions — with a
different loop structure, which keeps the framework honest about not being
Airfoil-shaped.
"""

from repro.apps.heat import HeatApp, HeatResult, reference_heat_run
from repro.apps.shallow_water import (
    ShallowWaterApp,
    ShallowWaterResult,
    cell_geometry,
    make_sw_kernels,
)

__all__ = [
    "HeatApp",
    "HeatResult",
    "reference_heat_run",
    "ShallowWaterApp",
    "ShallowWaterResult",
    "cell_geometry",
    "make_sw_kernels",
]
