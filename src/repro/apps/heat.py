"""Explicit heat conduction on an unstructured mesh, via the OP2 API.

A deliberately different loop structure from Airfoil:

- ``flux``    (indirect, edges): Fourier flux between the two cells of each
  edge, incremented into both (antisymmetric);
- ``advance`` (direct, cells): explicit Euler update, plus *two* global
  reductions (max |change| and total energy) in one loop;
- every ``K`` steps the application *reads* the max-change global to decide
  convergence — a synchronization point even under the dataflow backend,
  exercising the future-of-a-global path.

The conduction graph is the edge->cell map of any generated mesh; cell
"positions" come from averaging node coordinates, so thermal coupling varies
with geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.airfoil.meshgen import AirfoilMesh
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_MAX,
    OP_READ,
    OP_RW,
    Kernel,
    KernelCost,
    OpDat,
    OpGlobal,
    Op2Runtime,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
)


@dataclass
class HeatResult:
    """Outcome of a heat run."""

    steps: int
    converged: bool
    max_change: float
    total_energy: float
    energy_history: list[float] = field(default_factory=list)


def _cell_centers(mesh: AirfoilMesh) -> np.ndarray:
    return mesh.x.data[mesh.pcell.values].mean(axis=1)


def _edge_conductance(mesh: AirfoilMesh, kappa: float) -> np.ndarray:
    centers = _cell_centers(mesh)
    c1 = centers[mesh.pecell.values[:, 0]]
    c2 = centers[mesh.pecell.values[:, 1]]
    dist = np.maximum(np.hypot(*(c1 - c2).T), 1e-12)
    return (kappa / dist)[:, None]


def make_heat_kernels(dt: float) -> dict[str, Kernel]:
    """The two heat kernels, elemental + vectorized."""

    def flux(cond, t1, t2, f1, f2):
        f = cond[0] * (t2[0] - t1[0])
        f1[0] += f
        f2[0] -= f

    def flux_vec(cond, t1, t2, f1, f2):
        f = cond * (t2 - t1)
        f1 += f
        f2 -= f

    def advance(t, f, dmax, energy):
        delta = dt * f[0]
        t[0] += delta
        f[0] = 0.0
        if abs(delta) > dmax[0]:
            dmax[0] = abs(delta)
        energy[0] += t[0]

    def advance_vec(t, f, dmax, energy):
        delta = dt * f
        t += delta
        f[:] = 0.0
        dmax[:] = np.abs(delta)
        energy[:] = t

    return {
        "flux": Kernel("flux", flux, flux_vec, KernelCost(0.3, 0.6)),
        "advance": Kernel("advance", advance, advance_vec, KernelCost(0.15, 0.8)),
    }


class HeatApp:
    """Explicit heat solver over the cells of a generated mesh."""

    def __init__(
        self,
        mesh: AirfoilMesh,
        kappa: float = 1.0,
        dt: float = 1e-3,
        hot_fraction: float = 0.1,
    ) -> None:
        self.mesh = mesh
        self.dt = dt
        self.kernels = make_heat_kernels(dt)
        ncells = mesh.cells.size
        # Hot band: the first cell layers near the wall start at T=1.
        temps = np.zeros((ncells, 1))
        hot_rows = max(1, int(mesh.nj * hot_fraction))
        temps[: mesh.ni * hot_rows] = 1.0
        self.t = OpDat("t", mesh.cells, 1, temps)
        self.flux = OpDat("flux", mesh.cells, 1)
        self.cond = OpDat(
            "cond", mesh.edges, 1, _edge_conductance(mesh, kappa)
        )
        self.g_dmax = OpGlobal("dmax", 1)
        self.g_energy = OpGlobal("energy", 1)

    def loop_flux(self):
        return op_par_loop(
            self.kernels["flux"],
            "flux",
            self.mesh.edges,
            op_arg_dat(self.cond, -1, OP_ID, OP_READ),
            op_arg_dat(self.t, 0, self.mesh.pecell, OP_READ),
            op_arg_dat(self.t, 1, self.mesh.pecell, OP_READ),
            op_arg_dat(self.flux, 0, self.mesh.pecell, OP_INC),
            op_arg_dat(self.flux, 1, self.mesh.pecell, OP_INC),
        )

    def loop_advance(self):
        return op_par_loop(
            self.kernels["advance"],
            "advance",
            self.mesh.cells,
            op_arg_dat(self.t, -1, OP_ID, OP_RW),
            op_arg_dat(self.flux, -1, OP_ID, OP_RW),
            op_arg_gbl(self.g_dmax, OP_MAX),
            op_arg_gbl(self.g_energy, OP_INC),
        )

    def run(
        self,
        rt: Op2Runtime,
        max_steps: int = 100,
        tol: float = 0.0,
        check_every: int = 10,
    ) -> HeatResult:
        """Advance until ``max_steps`` or max |change| drops below ``tol``.

        The convergence check forces completion of outstanding loops (a real
        synchronization point under async/dataflow backends).
        """
        history: list[float] = []
        converged = False
        steps = 0
        last_dmax = 0.0
        # Under the async backend the application must place its own sync
        # points (paper Fig 10): advance reads the flux the same step's flux
        # loop produced, and the next flux reads advance's temperatures, so
        # each loop syncs before its consumer is spawned. The dataflow
        # backend orders them automatically, and synchronous backends return
        # None (sync is a no-op).
        explicit_sync = rt.backend.asynchronous and rt.backend.name != "hpx_dataflow"
        # Globals may only be reset at sync points: under async/dataflow,
        # resetting on the driver while loops are in flight would race with
        # their pending reductions. Between checks, g_dmax therefore holds
        # the max |change| over the whole window (conservative for tol).
        for step in range(1, max_steps + 1):
            f1 = self.loop_flux()
            if explicit_sync:
                rt.sync(f1)
            f2 = self.loop_advance()
            if explicit_sync:
                rt.sync(f2)
            steps = step
            if step % check_every == 0 or step == max_steps:
                rt.sync(f1, f2)
                rt.finish()
                history.append(float(self.t.data.sum()))
                last_dmax = float(self.g_dmax.value())
                if tol > 0.0 and last_dmax < tol:
                    converged = True
                    break
                self.g_dmax.reset()
        rt.finish()
        return HeatResult(
            steps=steps,
            converged=converged,
            max_change=last_dmax,
            total_energy=float(self.t.data.sum()),
            energy_history=history,
        )


def reference_heat_run(
    mesh: AirfoilMesh,
    kappa: float = 1.0,
    dt: float = 1e-3,
    hot_fraction: float = 0.1,
    steps: int = 100,
) -> tuple[np.ndarray, float]:
    """Plain-numpy equivalent of ``steps`` heat steps; returns (T, energy)."""
    ncells = mesh.cells.size
    temps = np.zeros(ncells)
    hot_rows = max(1, int(mesh.nj * hot_fraction))
    temps[: mesh.ni * hot_rows] = 1.0
    cond = _edge_conductance(mesh, kappa)[:, 0]
    c1 = mesh.pecell.values[:, 0]
    c2 = mesh.pecell.values[:, 1]
    for _ in range(steps):
        f = cond * (temps[c2] - temps[c1])
        flux = np.zeros(ncells)
        np.add.at(flux, c1, f)
        np.add.at(flux, c2, -f)
        temps += dt * flux
    return temps, float(temps.sum())
