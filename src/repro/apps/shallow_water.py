"""Shallow-water equations on the unstructured mesh (a Volna-like app).

OP2's application portfolio beyond Airfoil includes Volna, a shallow-water
tsunami code. This module is a compact analogue: cell-centered finite-volume
shallow-water equations with a Rusanov (local Lax–Friedrichs) flux, solved
on the same O-mesh/sets/maps substrate, entirely through the OP2 API:

- ``sw_wavespeed`` (direct, cells): local wave-speed measure for the cell's
  stable timestep (like Airfoil's ``adt_calc`` but direct, using
  precomputed cell perimeters);
- ``sw_flux`` (indirect, edges): Rusanov interface flux, incremented into
  both neighbour cells with opposite signs;
- ``sw_bflux`` (indirect, bedges): reflective (slip-wall) boundary flux on
  every boundary — the domain is a closed basin, so mass is conserved to
  machine precision (a strong correctness invariant);
- ``sw_update`` (direct, cells): explicit Euler update with the global CFL
  timestep (OP_MIN reduction feeding the next step).

State per cell: ``U = (h, hu, hv)`` (depth and momentum). Gravity g = 9.81.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.airfoil.meshgen import AirfoilMesh
from repro.op2 import (
    OP_ID,
    OP_INC,
    OP_MIN,
    OP_READ,
    OP_RW,
    Kernel,
    KernelCost,
    OpDat,
    OpGlobal,
    Op2Runtime,
    op_arg_dat,
    op_arg_gbl,
    op_par_loop,
)

G = 9.81


def cell_geometry(mesh: AirfoilMesh) -> tuple[np.ndarray, np.ndarray]:
    """(area, perimeter) per cell, from the corner nodes (shoelace)."""
    x = mesh.x.data[mesh.pcell.values]  # (ncells, 4, 2)
    area = np.zeros(mesh.cells.size)
    perim = np.zeros(mesh.cells.size)
    for a, b in ((0, 1), (1, 2), (2, 3), (3, 0)):
        area += x[:, a, 0] * x[:, b, 1] - x[:, b, 0] * x[:, a, 1]
        perim += np.hypot(x[:, b, 0] - x[:, a, 0], x[:, b, 1] - x[:, a, 1])
    return 0.5 * area, perim


def make_sw_kernels(cfl: float) -> dict[str, Kernel]:
    """The four shallow-water kernels, elemental + vectorized."""

    # -- wavespeed: per-cell stable dt ---------------------------------------

    def wavespeed(u, area, perim, dtmin):
        h = u[0]
        inv = 1.0 / h
        speed = (u[1] * u[1] + u[2] * u[2]) ** 0.5 * inv + (G * h) ** 0.5
        dt = cfl * 2.0 * area[0] / (perim[0] * speed)
        if dt < dtmin[0]:
            dtmin[0] = dt

    def wavespeed_vec(u, area, perim, dtmin):
        h = u[:, 0]
        inv = 1.0 / h
        speed = np.sqrt(u[:, 1] ** 2 + u[:, 2] ** 2) * inv + np.sqrt(G * h)
        dtmin[:, 0] = cfl * 2.0 * area[:, 0] / (perim[:, 0] * speed)

    # -- interface flux: Rusanov ----------------------------------------------

    def _physical_flux(h, hu, hv, nx, ny):
        inv = 1.0 / h
        un = (hu * nx + hv * ny) * inv
        p = 0.5 * G * h * h
        return (
            h * un,
            hu * un + p * nx,
            hv * un + p * ny,
        )

    def flux(x1, x2, u1, u2, res1, res2):
        # Outward normal of cell1, length = face length.
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]
        nx, ny = dy, -dx
        f1 = _physical_flux(u1[0], u1[1], u1[2], nx, ny)
        f2 = _physical_flux(u2[0], u2[1], u2[2], nx, ny)
        ln = (nx * nx + ny * ny) ** 0.5
        c1 = abs((u1[1] * nx + u1[2] * ny) / (u1[0] * ln)) + (G * u1[0]) ** 0.5
        c2 = abs((u2[1] * nx + u2[2] * ny) / (u2[0] * ln)) + (G * u2[0]) ** 0.5
        lam = max(c1, c2) * ln
        for k in range(3):
            f = 0.5 * (f1[k] + f2[k]) + 0.5 * lam * (u1[k] - u2[k])
            res1[k] += f
            res2[k] -= f

    def flux_vec(x1, x2, u1, u2, res1, res2):
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        nx, ny = dy, -dx
        ln = np.sqrt(nx * nx + ny * ny)
        f1 = _physical_flux(u1[:, 0], u1[:, 1], u1[:, 2], nx, ny)
        f2 = _physical_flux(u2[:, 0], u2[:, 1], u2[:, 2], nx, ny)
        c1 = np.abs((u1[:, 1] * nx + u1[:, 2] * ny) / (u1[:, 0] * ln)) + np.sqrt(
            G * u1[:, 0]
        )
        c2 = np.abs((u2[:, 1] * nx + u2[:, 2] * ny) / (u2[:, 0] * ln)) + np.sqrt(
            G * u2[:, 0]
        )
        lam = np.maximum(c1, c2) * ln
        for k in range(3):
            f = 0.5 * (f1[k] + f2[k]) + 0.5 * lam * (u1[:, k] - u2[:, k])
            res1[:, k] += f
            res2[:, k] -= f

    # -- boundary flux: reflective wall everywhere -----------------------------

    def bflux(x1, x2, u1, res1):
        dx = x1[0] - x2[0]
        dy = x1[1] - x2[1]
        nx, ny = dy, -dx
        # Slip wall: only the pressure term crosses the face (no mass flux).
        p = 0.5 * G * u1[0] * u1[0]
        res1[1] += p * nx
        res1[2] += p * ny

    def bflux_vec(x1, x2, u1, res1):
        dx = x1[:, 0] - x2[:, 0]
        dy = x1[:, 1] - x2[:, 1]
        nx, ny = dy, -dx
        p = 0.5 * G * u1[:, 0] ** 2
        res1[:, 1] += p * nx
        res1[:, 2] += p * ny

    # -- update -----------------------------------------------------------------

    def update(u, res, area, dt, rms):
        scale = dt[0] / area[0]
        acc = 0.0
        for k in range(3):
            delta = scale * res[k]
            u[k] -= delta
            res[k] = 0.0
            acc += delta * delta
        rms[0] += acc

    def update_vec(u, res, area, dt, rms):
        scale = dt[0] / area[:, 0]
        delta = res * scale[:, None]
        u -= delta
        res[:] = 0.0
        rms[:, 0] += np.sum(delta * delta, axis=1)

    return {
        "sw_wavespeed": Kernel(
            "sw_wavespeed", wavespeed, wavespeed_vec, KernelCost(0.25, 0.5)
        ),
        "sw_flux": Kernel("sw_flux", flux, flux_vec, KernelCost(0.7, 0.5)),
        "sw_bflux": Kernel("sw_bflux", bflux, bflux_vec, KernelCost(0.3, 0.4)),
        "sw_update": Kernel("sw_update", update, update_vec, KernelCost(0.25, 0.75)),
    }


@dataclass
class ShallowWaterResult:
    steps: int
    time: float
    mass: float
    rms_total: float
    h_range: tuple[float, float]
    dt_history: list[float] = field(default_factory=list)


class ShallowWaterApp:
    """Closed-basin shallow water on the O-mesh, via op_par_loop."""

    def __init__(
        self,
        mesh: AirfoilMesh,
        cfl: float = 0.4,
        bump_height: float = 0.1,
        bump_sigma: float = 0.5,
    ) -> None:
        self.mesh = mesh
        self.kernels = make_sw_kernels(cfl)
        area, perim = cell_geometry(mesh)
        centers = mesh.x.data[mesh.pcell.values].mean(axis=1)

        ncells = mesh.cells.size
        state = np.zeros((ncells, 3))
        # Still water plus a Gaussian free-surface bump right of the airfoil.
        r2 = (centers[:, 0] - 2.0) ** 2 + centers[:, 1] ** 2
        state[:, 0] = 1.0 + bump_height * np.exp(-r2 / bump_sigma**2)
        self.u = OpDat("U", mesh.cells, 3, state)
        self.res = OpDat("swres", mesh.cells, 3)
        self.area = OpDat("area", mesh.cells, 1, area)
        self.perim = OpDat("perim", mesh.cells, 1, perim)
        self.g_dt = OpGlobal("dt", 1, np.inf)
        self.g_rms = OpGlobal("swrms", 1)
        self.time = 0.0

    # -- loops -------------------------------------------------------------------

    def loop_wavespeed(self):
        return op_par_loop(
            self.kernels["sw_wavespeed"],
            "sw_wavespeed",
            self.mesh.cells,
            op_arg_dat(self.u, -1, OP_ID, OP_READ),
            op_arg_dat(self.area, -1, OP_ID, OP_READ),
            op_arg_dat(self.perim, -1, OP_ID, OP_READ),
            op_arg_gbl(self.g_dt, OP_MIN),
        )

    def loop_flux(self):
        return op_par_loop(
            self.kernels["sw_flux"],
            "sw_flux",
            self.mesh.edges,
            op_arg_dat(self.mesh.x, 0, self.mesh.pedge, OP_READ),
            op_arg_dat(self.mesh.x, 1, self.mesh.pedge, OP_READ),
            op_arg_dat(self.u, 0, self.mesh.pecell, OP_READ),
            op_arg_dat(self.u, 1, self.mesh.pecell, OP_READ),
            op_arg_dat(self.res, 0, self.mesh.pecell, OP_INC),
            op_arg_dat(self.res, 1, self.mesh.pecell, OP_INC),
        )

    def loop_bflux(self):
        return op_par_loop(
            self.kernels["sw_bflux"],
            "sw_bflux",
            self.mesh.bedges,
            op_arg_dat(self.mesh.x, 0, self.mesh.pbedge, OP_READ),
            op_arg_dat(self.mesh.x, 1, self.mesh.pbedge, OP_READ),
            op_arg_dat(self.u, 0, self.mesh.pbecell, OP_READ),
            op_arg_dat(self.res, 0, self.mesh.pbecell, OP_INC),
        )

    def loop_update(self):
        return op_par_loop(
            self.kernels["sw_update"],
            "sw_update",
            self.mesh.cells,
            op_arg_dat(self.u, -1, OP_ID, OP_RW),
            op_arg_dat(self.res, -1, OP_ID, OP_RW),
            op_arg_dat(self.area, -1, OP_ID, OP_READ),
            op_arg_gbl(self.g_dt, OP_READ),
            op_arg_gbl(self.g_rms, OP_INC),
        )

    # -- stepping -------------------------------------------------------------------

    def step(self, rt: Op2Runtime) -> float:
        """One explicit step at the global CFL timestep; returns dt."""
        explicit_sync = rt.backend.asynchronous
        # Global dt needs the MIN reduction complete before update reads it:
        # a genuine synchronization point in every asynchronous schedule
        # (the price of global time stepping; Airfoil's adt is local). The
        # reset happens here, after the previous step fully drained.
        self.g_dt.data[0] = np.inf
        f = self.loop_wavespeed()
        rt.sync(f)
        rt.finish()

        f1 = self.loop_flux()
        if explicit_sync:
            rt.sync(f1)
        f2 = self.loop_bflux()
        if explicit_sync:
            rt.sync(f2)
        f3 = self.loop_update()
        rt.sync(f3)
        rt.finish()
        dt = float(self.g_dt.value())
        self.time += dt
        return dt

    def run(self, rt: Op2Runtime, steps: int) -> ShallowWaterResult:
        dts = [self.step(rt) for _ in range(steps)]
        rt.finish()
        return ShallowWaterResult(
            steps=steps,
            time=self.time,
            mass=self.total_mass(),
            rms_total=float(self.g_rms.value()),
            h_range=(float(self.u.data[:, 0].min()), float(self.u.data[:, 0].max())),
            dt_history=dts,
        )

    def total_mass(self) -> float:
        """Basin mass: sum of h * area (conserved exactly, closed basin)."""
        return float(np.sum(self.u.data[:, 0] * self.area.data[:, 0]))
