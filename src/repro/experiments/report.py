"""Paper-vs-measured comparison records (the source for EXPERIMENTS.md)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.config import PAPER_CLAIMS
from repro.experiments.figures import FigureSeries


@dataclass
class ClaimCheck:
    """One paper claim and what we measured."""

    claim: str
    paper_value: str
    measured_value: str
    holds: bool


@dataclass
class ExperimentReport:
    """Collected checks for a set of reproduced figures."""

    checks: list[ClaimCheck] = field(default_factory=list)

    def add(self, claim: str, paper: str, measured: str, holds: bool) -> None:
        self.checks.append(ClaimCheck(claim, paper, measured, holds))

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        lines = ["| claim | paper | measured | holds |", "|---|---|---|---|"]
        for c in self.checks:
            mark = "yes" if c.holds else "NO"
            lines.append(
                f"| {c.claim} | {c.paper_value} | {c.measured_value} | {mark} |"
            )
        return "\n".join(lines)


def claim_check(
    fig15: FigureSeries | None = None,
    fig16: FigureSeries | None = None,
    fig17: FigureSeries | None = None,
    fig18: FigureSeries | None = None,
    fig19: FigureSeries | None = None,
) -> ExperimentReport:
    """Check the paper's headline claims against reproduced figures."""
    report = ExperimentReport()

    if fig15 is not None:
        spread = fig15.notes["max_1thread_spread"]
        report.add(
            "fig15: all strategies equal at 1 thread",
            f"same performance (±{PAPER_CLAIMS['equal_at_1_thread_tol']:.0%})",
            f"1-thread spread {spread:.1%}",
            spread <= PAPER_CLAIMS["equal_at_1_thread_tol"],
        )

    if fig16 is not None:
        static_gain = fig16.notes["static_over_auto_at_max"]
        omp_gain = fig16.notes["omp_over_static_at_max"]
        report.add(
            "fig16: static chunk beats auto chunk",
            "static > auto for large loops",
            f"static over auto at 32T: {static_gain:+.1%}",
            static_gain > 0,
        )
        report.add(
            "fig16: OpenMP still beats plain for_each",
            "OpenMP > for_each(par)",
            f"OpenMP over static for_each at 32T: {omp_gain:+.1%}",
            omp_gain > 0,
        )

    if fig17 is not None:
        gain = fig17.notes["async_gain_at_max"]
        target = PAPER_CLAIMS["async_gain_at_32"]
        report.add(
            "fig17: async beats OpenMP at 32 threads",
            f"~{target:.0%} improvement",
            f"{gain:+.1%}",
            0.0 < gain,
        )

    if fig18 is not None:
        gain = fig18.notes["dataflow_gain_at_max"]
        target = PAPER_CLAIMS["dataflow_gain_at_32"]
        report.add(
            "fig18: dataflow beats OpenMP at 32 threads",
            f"~{target:.0%} improvement",
            f"{gain:+.1%}",
            gain > PAPER_CLAIMS["async_gain_at_32"],
        )

    if fig17 is not None and fig18 is not None:
        report.add(
            "dataflow gain exceeds async gain",
            "21% vs 5%",
            f"{fig18.notes['dataflow_gain_at_max']:+.1%} vs "
            f"{fig17.notes['async_gain_at_max']:+.1%}",
            fig18.notes["dataflow_gain_at_max"]
            > fig17.notes["async_gain_at_max"],
        )

    if fig19 is not None:
        report.add(
            "fig19: dataflow has best weak-scaling efficiency",
            "dataflow best",
            f"best_at_max_is_dataflow={bool(fig19.notes['best_at_max_is_dataflow'])}",
            bool(fig19.notes["best_at_max_is_dataflow"]),
        )

    return report
