"""Grain-size study: the task-size/performance trade-off (paper ref [6]).

The paper leans on Grubel et al., "The Performance Implication of Task Size
for Applications on the HPX Runtime System" (CLUSTER 2015): task grain must
be large enough to amortize per-task overhead and small enough to keep all
threads busy. This experiment reproduces that U-shaped curve on the machine
model: a fixed amount of work is split into tasks of varying size and
scheduled work-stealing on P threads.

Where Airfoil's chunk-size ablation (bench A2) sweeps the knob inside one
application, this study isolates the mechanism with a synthetic workload —
the same methodology as the cited paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.sim.machine import MachineConfig
from repro.sim.task import TaskGraph
from repro.util.validate import ValidationError


@dataclass(frozen=True)
class GrainPoint:
    """One sampled grain size."""

    task_size: float  # us of work per task
    num_tasks: int
    makespan: float
    efficiency: float  # ideal time / measured time


def grain_size_curve(
    machine: MachineConfig,
    threads: int,
    total_work: float = 100_000.0,
    task_sizes: list[float] | None = None,
) -> list[GrainPoint]:
    """Efficiency vs task size for fixed total work on ``threads`` threads.

    Efficiency compares against the ideal ``total_work / threads`` (no
    overhead, perfect balance). Small tasks drown in ``task_overhead``;
    oversized tasks leave threads idle at the tail.
    """
    if total_work <= 0:
        raise ValidationError(f"total_work must be > 0, got {total_work}")
    if task_sizes is None:
        task_sizes = [float(s) for s in np.logspace(-1, 4, 16)]
    engine = SimulationEngine(machine, threads)
    ideal = total_work / threads
    points: list[GrainPoint] = []
    for size in task_sizes:
        if size <= 0:
            raise ValidationError(f"task sizes must be > 0, got {size}")
        n = max(1, round(total_work / size))
        actual = total_work / n
        graph = TaskGraph()
        for i in range(n):
            graph.add(f"t{i}", actual)
        result = engine.run(graph, collect_trace=False)
        points.append(
            GrainPoint(
                task_size=actual,
                num_tasks=n,
                makespan=result.makespan,
                efficiency=ideal / result.makespan,
            )
        )
    return points


def best_grain(points: list[GrainPoint]) -> GrainPoint:
    """The sampled point with the highest efficiency."""
    if not points:
        raise ValidationError("no grain points sampled")
    return max(points, key=lambda p: p.efficiency)


def is_u_shaped(points: list[GrainPoint], slack: float = 0.02) -> bool:
    """True when efficiency rises to a peak then falls (within ``slack``).

    The signature finding of the grain-size study: both extremes lose.
    """
    if len(points) < 3:
        return False
    eff = [p.efficiency for p in points]
    peak = int(np.argmax(eff))
    rises = eff[peak] > eff[0] + slack
    falls = eff[peak] > eff[-1] + slack
    return bool(rises and falls)
