"""Experiment harness: regenerates every figure of the paper's evaluation.

- :mod:`~repro.experiments.config` — experiment descriptors and defaults;
- :mod:`~repro.experiments.runner` — runs an application variant, collects
  the loop log, emits the backend's task graph, simulates it on the machine
  model, and returns (numerical result, simulated time, diagnostics);
- :mod:`~repro.experiments.figures` — ``fig15`` ... ``fig19`` series
  builders with ASCII rendering;
- :mod:`~repro.experiments.report` — paper-vs-measured comparison records
  that EXPERIMENTS.md is generated from.
"""

from repro.experiments.config import ExperimentConfig, DEFAULT_THREADS, PAPER_CLAIMS
from repro.experiments.runner import BackendRun, run_backend, simulate_backend
from repro.experiments.figures import (
    FigureSeries,
    fig15_exec_time,
    fig16_foreach_chunking,
    fig17_async,
    fig18_dataflow,
    fig19_weak_scaling,
    render_figure,
)
from repro.experiments.report import ExperimentReport, claim_check
from repro.experiments.grainsize import GrainPoint, best_grain, grain_size_curve, is_u_shaped

__all__ = [
    "ExperimentConfig",
    "DEFAULT_THREADS",
    "PAPER_CLAIMS",
    "BackendRun",
    "run_backend",
    "simulate_backend",
    "FigureSeries",
    "fig15_exec_time",
    "fig16_foreach_chunking",
    "fig17_async",
    "fig18_dataflow",
    "fig19_weak_scaling",
    "render_figure",
    "ExperimentReport",
    "claim_check",
    "GrainPoint",
    "best_grain",
    "grain_size_curve",
    "is_u_shaped",
]
