"""Run one backend on the Airfoil app: simulated and measured pipelines.

Simulated pipeline per (backend, mesh):

1. run the app *functionally* under the backend (numerics + loop log);
2. validate the numerics against the plain-numpy reference;
3. for each thread count, have the backend emit its task graph from the log
   and simulate it on the machine model.

Step 1/2 are thread-count independent (the logical execution is the same),
so a full thread sweep costs one functional run plus one simulation per P.

Measured pipeline (:func:`measure_backend`): the same app runs under
``mode="threads"`` on a real thread pool and the wall-clock time is taken
with ``perf_counter`` — the numbers Figs 15-19 would show on this host
rather than on the paper's machine model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from pathlib import Path

from repro.airfoil import AirfoilApp, AirfoilResult, ReferenceAirfoil, generate_mesh
from repro.airfoil.meshgen import AirfoilMesh
from repro.airfoil.validation import compare_states
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.hpx.threadpool import PoolStats
from repro.obs.timing import TimingSummary
from repro.op2.config import RuntimeConfig
from repro.op2.runtime import LoopLog, Op2Runtime
from repro.sim.engine import SimResult, SimulationEngine
from repro.sim.task import TaskGraph


@dataclass
class BackendRun:
    """Everything one functional run produced."""

    backend: str
    mesh: AirfoilMesh
    result: AirfoilResult
    log: LoopLog
    runtime: Op2Runtime
    #: max relative deviation from the numpy reference, per field.
    validation: dict[str, float] = field(default_factory=dict)

    def emit_graph(
        self, config: ExperimentConfig, num_threads: int, cost_model: LoopCostModel
    ) -> TaskGraph:
        return self.runtime.backend.emit(
            self.log, config.machine, num_threads, cost_model
        )


def run_backend(
    backend: str,
    config: ExperimentConfig,
    mesh: AirfoilMesh | None = None,
    validate: bool = True,
) -> BackendRun:
    """Functional run of the Airfoil app under ``backend``."""
    if mesh is None:
        mesh = generate_mesh(**config.mesh_kwargs())
    rt = Op2Runtime(
        backend=backend,
        num_threads=4,  # logical workers for functional execution only
        block_size=config.block_size,
    )
    previous = rt.activate()
    try:
        app = AirfoilApp(mesh)
        result = app.run(rt, config.niter)
    finally:
        rt.deactivate(previous)

    validation: dict[str, float] = {}
    if validate:
        ref = ReferenceAirfoil(mesh)
        ref.run(config.niter)
        validation = compare_states(app, ref, tol=1e-9)

    return BackendRun(
        backend=backend,
        mesh=mesh,
        result=result,
        log=rt.log,
        runtime=rt,
        validation=validation,
    )


@dataclass
class MeasuredRun:
    """Wall-clock measurement of one threaded run."""

    backend: str
    num_workers: int
    #: best-of-``repeats`` wall time of one full app run, in seconds.
    wall_seconds: float
    #: every repeat's wall time, in run order.
    times: list[float]
    result: AirfoilResult
    #: max relative deviation from the numpy reference, per field.
    validation: dict[str, float] = field(default_factory=dict)
    #: per-kernel timing summary of the last repeat (``timing=True`` runs).
    timing: TimingSummary | None = None
    #: Chrome-trace events written (``trace_path`` runs; 0 otherwise).
    trace_events: int = 0
    #: pool scheduling counters of the last repeat (joins, batches, ...).
    pool: "PoolStats | None" = None


def measure_backend(
    backend: str,
    config: ExperimentConfig,
    mesh: AirfoilMesh | None = None,
    num_workers: int = 1,
    repeats: int = 3,
    validate: bool = False,
    backend_options: dict | None = None,
    timing: bool = False,
    trace_path: str | Path | None = None,
) -> MeasuredRun:
    """Measured (``mode="threads"``) run of the Airfoil app under ``backend``.

    Each repeat builds a fresh app state and thread pool; the reported
    ``wall_seconds`` is the best repeat (standard benchmarking practice —
    the minimum is the least noise-contaminated estimate).

    ``timing=True`` attaches the last repeat's per-kernel summary;
    ``trace_path`` additionally records per-task events and writes the
    Chrome-trace JSON there.
    """
    if mesh is None:
        mesh = generate_mesh(**config.mesh_kwargs())
    times: list[float] = []
    app = None
    result = None
    rt = None
    for _ in range(max(1, repeats)):
        rt = Op2Runtime(
            backend=backend,
            num_threads=num_workers,
            block_size=config.block_size,
            config=RuntimeConfig(
                mode="threads",
                num_workers=num_workers,
                timing=timing,
                trace=trace_path is not None,
            ),
            backend_options=backend_options,
        )
        previous = rt.activate()
        try:
            app = AirfoilApp(mesh)
            start = perf_counter()
            result = app.run(rt, config.niter)
            times.append(perf_counter() - start)
        finally:
            rt.deactivate(previous)
            rt.close()

    validation: dict[str, float] = {}
    if validate:
        ref = ReferenceAirfoil(mesh)
        ref.run(config.niter)
        validation = compare_states(app, ref, tol=1e-9)

    assert result is not None and rt is not None
    summary = rt.timing_summary() if rt.obs is not None else None
    events = rt.export_trace(trace_path) if trace_path is not None else 0
    return MeasuredRun(
        backend=backend,
        num_workers=num_workers,
        wall_seconds=min(times),
        times=times,
        result=result,
        validation=validation,
        timing=summary,
        trace_events=events,
        pool=rt.pool_stats,
    )


def simulate_backend(
    run: BackendRun,
    config: ExperimentConfig,
    num_threads: int,
    cost_model: LoopCostModel | None = None,
    trace: bool = False,
) -> SimResult:
    """Simulated execution of a recorded run at ``num_threads``."""
    if cost_model is None:
        cost_model = LoopCostModel(jitter=config.cost_jitter)
    graph = run.emit_graph(config, num_threads, cost_model)
    engine = SimulationEngine(config.machine, num_threads)
    return engine.run(graph, collect_trace=trace)


def sweep(
    backend: str,
    config: ExperimentConfig,
    mesh: AirfoilMesh | None = None,
    validate: bool = True,
) -> tuple[BackendRun, dict[int, SimResult]]:
    """Functional run + simulation across the configured thread counts."""
    run = run_backend(backend, config, mesh, validate=validate)
    cost_model = LoopCostModel(jitter=config.cost_jitter)
    results = {
        p: simulate_backend(run, config, p, cost_model) for p in config.threads
    }
    return run, results
