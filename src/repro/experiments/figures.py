"""Figure builders: one function per figure of the paper's evaluation.

Each builder returns a :class:`FigureSeries` holding the same series the
paper plots, produced by simulating the backends' task graphs on the machine
model. Times are abstract milliseconds (only ratios are meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.airfoil import generate_mesh
from repro.airfoil.meshgen import scaled_mesh_dims
from repro.backends.costs import LoopCostModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_backend, simulate_backend
from repro.sim.metrics import efficiency_series, speedup_series
from repro.util.tables import Table, ascii_plot


@dataclass
class FigureSeries:
    """The data behind one reproduced figure."""

    figure: str
    title: str
    xlabel: str
    ylabel: str
    #: series name -> (xs, ys)
    series: dict[str, tuple[list[float], list[float]]] = field(default_factory=dict)
    notes: dict[str, float] = field(default_factory=dict)

    def gain(self, better: str, baseline: str, at_x: float) -> float:
        """Relative improvement of ``better`` over ``baseline`` at ``at_x``.

        For time series (lower is better) this is time reduction; for
        speedup/efficiency series (higher is better) call with the series
        swapped semantics in mind — we define gain as
        ``better_y / baseline_y - 1`` for "higher is better" series and the
        caller picks the right orientation via :attr:`ylabel`.
        """
        xb, yb = self.series[better]
        xo, yo = self.series[baseline]
        ib = xb.index(at_x)
        io = xo.index(at_x)
        if "time" in self.ylabel.lower():
            return yo[io] / yb[ib] - 1.0
        return yb[ib] / yo[io] - 1.0


def render_figure(fig: FigureSeries, *, plot: bool = True) -> str:
    """ASCII rendering: a table of every series plus an optional plot."""
    columns = [fig.xlabel] + list(fig.series)
    table = Table(columns)
    xs = next(iter(fig.series.values()))[0]
    for i, x in enumerate(xs):
        row = [x] + [fig.series[name][1][i] for name in fig.series]
        table.add_row(row)
    parts = [f"== {fig.figure}: {fig.title} ==", table.render()]
    if fig.notes:
        notes = ", ".join(f"{k}={v:.4g}" for k, v in fig.notes.items())
        parts.append(f"notes: {notes}")
    if plot:
        parts.append(ascii_plot(fig.series, title=f"{fig.ylabel} vs {fig.xlabel}"))
    return "\n".join(parts)


def _time_sweep(
    backend: str, config: ExperimentConfig, mesh, cost_model: LoopCostModel
) -> list[float]:
    """Simulated makespans (ms) across the configured thread counts."""
    run = run_backend(backend, config, mesh)
    return [
        simulate_backend(run, config, p, cost_model).makespan / 1000.0
        for p in config.threads
    ]


def fig15_exec_time(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig 15: execution time of Airfoil under the four strategies."""
    config = config or ExperimentConfig()
    mesh = generate_mesh(**config.mesh_kwargs())
    cost_model = LoopCostModel(jitter=config.cost_jitter)
    xs = [float(p) for p in config.threads]
    fig = FigureSeries(
        figure="fig15",
        title="Airfoil execution time: OpenMP vs for_each vs async vs dataflow",
        xlabel="threads",
        ylabel="execution time (ms, simulated)",
    )
    for backend, label in (
        ("openmp", "omp parallel for"),
        ("foreach", "for_each"),
        ("hpx_async", "async"),
        ("hpx_dataflow", "dataflow"),
    ):
        fig.series[label] = (xs, _time_sweep(backend, config, mesh, cost_model))
    t1 = {name: ys[0] for name, (xs_, ys) in fig.series.items()}
    fig.notes["max_1thread_spread"] = max(t1.values()) / min(t1.values()) - 1.0
    return fig


def _speedup_figure(
    figure: str,
    title: str,
    backends: list[tuple[str, str]],
    config: ExperimentConfig,
) -> FigureSeries:
    mesh = generate_mesh(**config.mesh_kwargs())
    cost_model = LoopCostModel(jitter=config.cost_jitter)
    xs = [float(p) for p in config.threads]
    fig = FigureSeries(
        figure=figure,
        title=title,
        xlabel="threads",
        ylabel="speedup (vs 1 thread)",
    )
    for backend, label in backends:
        times = _time_sweep(backend, config, mesh, cost_model)
        fig.series[label] = (xs, speedup_series(list(config.threads), times))
    return fig


def fig16_foreach_chunking(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig 16: strong scaling, OpenMP vs for_each auto/static chunk size."""
    config = config or ExperimentConfig()
    fig = _speedup_figure(
        "fig16",
        "Strong scaling: OpenMP vs for_each(par) auto vs static chunk",
        [
            ("openmp", "omp parallel for"),
            ("foreach", "for_each auto chunk"),
            ("foreach_static", "for_each static chunk"),
        ],
        config,
    )
    last = -1
    fig.notes["static_over_auto_at_max"] = (
        fig.series["for_each static chunk"][1][last]
        / fig.series["for_each auto chunk"][1][last]
        - 1.0
    )
    fig.notes["omp_over_static_at_max"] = (
        fig.series["omp parallel for"][1][last]
        / fig.series["for_each static chunk"][1][last]
        - 1.0
    )
    return fig


def fig17_async(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig 17: strong scaling, OpenMP vs async+for_each(par(task)) (~5%)."""
    config = config or ExperimentConfig()
    fig = _speedup_figure(
        "fig17",
        "Strong scaling: OpenMP vs async with for_each(par(task))",
        [("openmp", "omp parallel for"), ("hpx_async", "async")],
        config,
    )
    fig.notes["async_gain_at_max"] = (
        fig.series["async"][1][-1] / fig.series["omp parallel for"][1][-1] - 1.0
    )
    return fig


def fig18_dataflow(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig 18: strong scaling, OpenMP vs dataflow (~21%)."""
    config = config or ExperimentConfig()
    fig = _speedup_figure(
        "fig18",
        "Strong scaling: OpenMP vs dataflow",
        [("openmp", "omp parallel for"), ("hpx_dataflow", "dataflow")],
        config,
    )
    fig.notes["dataflow_gain_at_max"] = (
        fig.series["dataflow"][1][-1] / fig.series["omp parallel for"][1][-1] - 1.0
    )
    return fig


def fig19_weak_scaling(config: ExperimentConfig | None = None) -> FigureSeries:
    """Fig 19: weak scaling efficiency (problem size grows with threads)."""
    config = config or ExperimentConfig()
    cost_model = LoopCostModel(jitter=config.cost_jitter)
    xs = [float(p) for p in config.threads]
    fig = FigureSeries(
        figure="fig19",
        title="Weak scaling efficiency relative to 1 thread",
        xlabel="threads",
        ylabel="weak-scaling efficiency",
    )
    backends = (
        ("openmp", "omp parallel for"),
        ("foreach", "for_each"),
        ("hpx_async", "async"),
        ("hpx_dataflow", "dataflow"),
    )
    # Per-thread meshes are shared across backends.
    meshes = {}
    for p in config.threads:
        ni, nj = scaled_mesh_dims(config.ni, config.nj, p)
        meshes[p] = generate_mesh(ni=ni, nj=nj)
    for backend, label in backends:
        times = []
        for p in config.threads:
            run = run_backend(backend, config, meshes[p])
            times.append(simulate_backend(run, config, p, cost_model).makespan / 1000.0)
        fig.series[label] = (
            xs,
            efficiency_series(list(config.threads), times, weak=True),
        )
    eff_at_max = {name: ys[-1] for name, (x_, ys) in fig.series.items()}
    fig.notes["best_at_max_is_dataflow"] = float(
        max(eff_at_max, key=eff_at_max.get) == "dataflow"
    )
    return fig
