"""Experiment configuration and the paper's quantitative claims."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.machine import MachineConfig, paper_machine

#: Thread sweep used by every figure (paper: up to 32, HT beyond 16).
DEFAULT_THREADS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment family's knobs.

    The default mesh (~46k cells / ~91k edges) is large enough that every
    loop has many blocks per thread at 32 threads, yet simulations of a full
    run finish in seconds.
    """

    ni: int = 240
    nj: int = 192
    niter: int = 5
    block_size: int = 128
    threads: tuple[int, ...] = DEFAULT_THREADS
    machine: MachineConfig = field(default_factory=paper_machine)
    cost_jitter: float = 0.10

    def mesh_kwargs(self) -> dict:
        return {"ni": self.ni, "nj": self.nj}


#: The paper's headline numbers, used by report generation and tests.
PAPER_CLAIMS = {
    # Fig 15 / §IV: "Airfoil had the same performance using HPX and OpenMP
    # running on 1 thread".
    "equal_at_1_thread_tol": 0.05,
    # Fig 17: async ~5% scalability improvement at 32 threads vs OpenMP.
    "async_gain_at_32": 0.05,
    # Fig 18: dataflow ~21% scalability improvement at 32 threads vs OpenMP.
    "dataflow_gain_at_32": 0.21,
    # Fig 16: OpenMP still performs better than plain for_each; static
    # chunking beats the auto partitioner on large loops.
    "openmp_beats_foreach": True,
    "static_beats_auto": True,
    # Fig 19: dataflow has the best weak-scaling efficiency.
    "dataflow_best_weak_efficiency": True,
}
