"""Command-line interface: ``python -m repro <command>``.

Subcommands:

- ``info``      — version, backends, machine model summary;
- ``figures``   — regenerate the paper's figures (15–19) and the claim table;
- ``airfoil``   — run the Airfoil solver (backend/mesh/iterations flags);
- ``heat``      — run the heat-conduction application;
- ``translate`` — source-to-source translate an application file (or the
  bundled Airfoil source) for a chosen backend target;
- ``dist``      — distributed Airfoil: validate the SPMD run and compare the
  bulk-synchronous vs overlapped cluster schedules.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.backends.registry import available_backends
    from repro.sim.machine import paper_machine

    m = paper_machine()
    print(f"repro {repro.__version__}")
    print(f"backends: {', '.join(available_backends())}")
    print(
        f"machine model: {m.num_cores} cores x {m.smt_ways} SMT "
        f"(eff {m.smt_efficiency}), barrier {m.barrier_model} "
        f"{m.barrier_base}+{m.barrier_per_thread}/thread us"
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.config import ExperimentConfig
    from repro.experiments import figures as F
    from repro.experiments.report import claim_check

    config = (
        ExperimentConfig(ni=120, nj=96, niter=2)
        if args.quick
        else ExperimentConfig(niter=3)
    )
    weak = ExperimentConfig(ni=120, nj=48, niter=config.niter)
    wanted = args.only or ["15", "16", "17", "18", "19"]
    built = {}
    builders = {
        "15": ("fig15", lambda: F.fig15_exec_time(config)),
        "16": ("fig16", lambda: F.fig16_foreach_chunking(config)),
        "17": ("fig17", lambda: F.fig17_async(config)),
        "18": ("fig18", lambda: F.fig18_dataflow(config)),
        "19": ("fig19", lambda: F.fig19_weak_scaling(weak)),
    }
    for key in wanted:
        if key not in builders:
            print(f"unknown figure {key!r}; choose from {sorted(builders)}")
            return 2
        name, build = builders[key]
        fig = build()
        built[name] = fig
        print(F.render_figure(fig, plot=args.plot))
        print()
    report = claim_check(**built)
    if report.checks:
        print(report.render())
        print(f"all claims hold: {report.all_hold}")
        return 0 if report.all_hold else 1
    return 0


def _obs_session_kwargs(args: argparse.Namespace) -> dict:
    """Session observability options: live recording only exists in threads
    mode; sim-mode traces are replayed post-hoc (:func:`_emit_observability`)."""
    if args.mode == "threads":
        return {"trace": args.trace is not None, "timing": args.timing}
    return {}


def _emit_observability(rt, args: argparse.Namespace) -> None:
    """Print the ``--timing`` table and write the ``--trace`` JSON.

    Threads mode reads the runtime's live recorder; sim mode replays the
    recorded loop log on the machine model at ``--threads`` so both modes
    produce Chrome traces that open in the same viewer.
    """
    if args.trace is None and not args.timing:
        return
    if args.mode == "threads":
        if args.timing:
            print("== per-kernel timing (op_timing_output) ==")
            print(rt.timing_summary().render())
        if args.trace is not None:
            n = rt.export_trace(args.trace)
            print(f"trace: wrote {n} events to {args.trace} (open in ui.perfetto.dev)")
        return
    from repro.backends.costs import LoopCostModel
    from repro.sim.chrometrace import export_chrome_trace
    from repro.sim.engine import SimulationEngine
    from repro.sim.machine import paper_machine
    from repro.util.tables import Table

    machine = paper_machine()
    graph = rt.backend.emit(rt.log, machine, args.threads, LoopCostModel())
    sim = SimulationEngine(machine, args.threads).run(graph, collect_trace=True)
    if args.timing:
        table = Table(["loop", "sim busy ms"])
        for name, us in sorted(sim.trace.time_by_loop().items()):
            table.add_row([name, us / 1000.0])
        print(f"== simulated per-loop busy time at {args.threads} threads ==")
        print(table.render())
    if args.trace is not None:
        n = export_chrome_trace(sim.trace, args.trace)
        print(f"trace: wrote {n} events to {args.trace} (open in ui.perfetto.dev)")


def _cmd_airfoil(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.airfoil import AirfoilApp, generate_mesh
    from repro.airfoil.metrics import compute_forces
    from repro.op2 import op2_session

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    print(mesh.summary())
    with op2_session(
        backend=args.backend,
        num_threads=args.threads,
        block_size=args.block_size,
        mode=args.mode,
        num_workers=args.workers,
        **_obs_session_kwargs(args),
    ) as rt:
        app = AirfoilApp(mesh)
        start = perf_counter()
        result = app.run(rt, args.iters)
        wall = perf_counter() - start
        forces = compute_forces(app, rt)
    print(
        f"{args.iters} iters on {args.backend}: "
        f"rms {result.final_rms(mesh.cells.size):.6f}, "
        f"c_d {forces.drag:+.5f}, c_l {forces.lift:+.5f}"
    )
    if args.mode == "threads":
        workers = args.workers if args.workers is not None else args.threads
        print(f"measured wall clock: {wall * 1000:.1f} ms on {workers} worker thread(s)")
        _print_pool_stats(rt)
    _emit_observability(rt, args)
    return 0


def _print_pool_stats(rt) -> None:
    """One-line pool scheduling summary (threads mode only).

    ``joins`` is where the orchestrator blocked on workers; ``color joins``
    the subset that is a per-color fork-join barrier — zero for the
    dependency-scheduled async/dataflow backends.
    """
    s = rt.pool_stats
    print(
        f"pool: {s.tasks_submitted} tasks, {s.batches} batches, "
        f"{s.joins} joins ({s.color_joins} color joins)"
    )


def _cmd_heat(args: argparse.Namespace) -> int:
    from repro.airfoil import generate_mesh
    from repro.apps.heat import HeatApp
    from repro.op2 import op2_session

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    with op2_session(
        backend=args.backend,
        num_threads=args.threads,
        mode=args.mode,
        num_workers=args.workers,
        **_obs_session_kwargs(args),
    ) as rt:
        app = HeatApp(mesh)
        result = app.run(rt, max_steps=args.steps, tol=args.tol, check_every=10)
    print(
        f"{result.steps} steps on {args.backend}: converged={result.converged}, "
        f"max |dT| {result.max_change:.3e}, energy {result.total_energy:.9f}"
    )
    if args.mode == "threads":
        _print_pool_stats(rt)
    _emit_observability(rt, args)
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    from repro.codegen import translate_source
    from repro.codegen.apps import AIRFOIL_SOURCE

    source = Path(args.input).read_text() if args.input else AIRFOIL_SOURCE
    text, loops = translate_source(source, args.target, static_chunk=args.chunk)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output} ({len(loops)} loops, "
              f"{len(text.splitlines())} lines)")
    else:
        print(text)
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    if args.mode == "procs":
        return _cmd_dist_procs(args)
    import numpy as np

    from repro.airfoil import ReferenceAirfoil, generate_mesh
    from repro.dist.app import DistAirfoil
    from repro.dist.emission import DistScheduleConfig, emit_distributed
    from repro.sim.engine import simulate

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    dist = DistAirfoil(mesh, args.ranks, partitioner=args.partitioner)
    dist.run(args.iters)
    ref = ReferenceAirfoil(mesh)
    ref.run(args.iters)
    err = float(np.abs(dist.gather_q() - ref.q).max())
    print(f"{dist.dplan.describe()}; max |q - q_ref| = {err:.2e}")

    config = DistScheduleConfig(threads_per_node=args.threads, niter=2)
    machine = config.cluster_machine(args.ranks)
    tb = simulate(
        emit_distributed(dist.dplan, mesh, config, "blocking"),
        machine, machine.num_cores,
    ).makespan
    to = simulate(
        emit_distributed(dist.dplan, mesh, config, "overlapped"),
        machine, machine.num_cores,
    ).makespan
    print(
        f"cluster schedule: bulk-sync {tb / 1000:.3f} ms, "
        f"overlapped {to / 1000:.3f} ms (gain {tb / to - 1.0:+.1%})"
    )
    return 0


def _cmd_dist_procs(args: argparse.Namespace) -> int:
    """Measured SPMD run: one OS process per rank over shared-memory dats."""
    import numpy as np

    from repro.airfoil import ReferenceAirfoil, generate_mesh
    from repro.procs import ProcsConfig, run_procs
    from repro.util.tables import Table

    mesh = generate_mesh(ni=args.ni, nj=args.nj)
    ref = ReferenceAirfoil(mesh)
    ref.run(args.iters)
    schedules = (
        ["blocking", "overlapped"] if args.schedule == "both" else [args.schedule]
    )
    work = mesh.cells.size * args.iters
    table = Table(
        ["schedule", "wall ms", "cells*iters/s", "max |q-q_ref|", "halo KiB"]
    )
    layout = f"{args.ranks} ranks x {args.threads_per_rank} thread(s)/rank"
    status = 0
    last = None
    for schedule in schedules:
        trace_dir = args.trace_dir
        if trace_dir is not None and len(schedules) > 1:
            trace_dir = str(Path(trace_dir) / schedule)
        res = run_procs(
            mesh,
            ProcsConfig(
                ranks=args.ranks,
                niter=args.iters,
                schedule=schedule,
                threads_per_rank=args.threads_per_rank,
                partitioner=args.partitioner,
                spawn_method=args.spawn_method,
                trace_dir=trace_dir,
                timing=args.timing,
            ),
        )
        last = res
        err = float(np.abs(res.q - ref.q).max())
        halo_kib = (
            res.comm.get("bytes_updated", 0)
            + res.comm.get("bytes_accumulated", 0)
        ) / 1024
        table.add_row(
            [schedule, res.wall_seconds * 1e3, work / res.wall_seconds, err, halo_kib]
        )
        if err > 1e-12:
            status = 1
        if args.timing:
            print(f"== per-kernel timing ({schedule}, {layout}) ==")
            print(res.timing_summary().render())
        if res.trace_path is not None:
            print(f"trace: merged per-rank lanes into {res.trace_path}")
    print(f"procs: {layout} x {args.iters} iters on {mesh.summary()}")
    print(table.render())
    if last is not None and last.fitted_comm is not None:
        fc = last.fitted_comm
        print(
            f"fitted comm model: latency {fc.latency:.3f} us, "
            f"bandwidth {fc.bandwidth:.1f} MB/s "
            f"({len(last.reports)} ranks, "
            f"{last.comm.get('messages_updated', 0) + last.comm.get('messages_accumulated', 0)}"
            " messages observed)"
        )
    if status:
        print("VALIDATION FAILED: procs solution diverged from single-rank solver")
    return status


def _add_obs_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="write a Chrome-trace JSON of the run (view at ui.perfetto.dev)",
    )
    p.add_argument(
        "--timing", action="store_true",
        help="print a per-kernel timing table (OP2 op_timing_output style)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version, backends, machine model")

    p = sub.add_parser("figures", help="regenerate the paper's figures")
    p.add_argument("--quick", action="store_true", help="smaller mesh (~5x faster)")
    p.add_argument("--plot", action="store_true", help="include ASCII plots")
    p.add_argument(
        "--only", nargs="*", metavar="N",
        help="subset of figures, e.g. --only 17 18",
    )

    p = sub.add_parser("airfoil", help="run the Airfoil solver")
    p.add_argument("--backend", default="hpx_dataflow")
    p.add_argument("--ni", type=int, default=120)
    p.add_argument("--nj", type=int, default=96)
    p.add_argument("--iters", type=int, default=20)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--block-size", type=int, default=128)
    p.add_argument(
        "--mode", default="sim", choices=["sim", "threads"],
        help="sim: cooperative simulated execution; threads: real thread pool",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="OS threads for --mode threads (default: --threads)",
    )
    _add_obs_arguments(p)

    p = sub.add_parser("heat", help="run the heat application")
    p.add_argument("--backend", default="hpx_dataflow")
    p.add_argument("--ni", type=int, default=48)
    p.add_argument("--nj", type=int, default=24)
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--tol", type=float, default=0.0)
    p.add_argument(
        "--mode", default="sim", choices=["sim", "threads"],
        help="sim: cooperative simulated execution; threads: real thread pool",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="OS threads for --mode threads (default: --threads)",
    )
    _add_obs_arguments(p)

    p = sub.add_parser("translate", help="source-to-source translate")
    p.add_argument("--target", default="hpx_dataflow")
    p.add_argument("--input", help="application source (default: bundled Airfoil)")
    p.add_argument("--output", help="write generated module here (default: stdout)")
    p.add_argument("--chunk", type=int, default=1, help="static chunk size")

    p = sub.add_parser("dist", help="distributed Airfoil")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--ni", type=int, default=96)
    p.add_argument("--nj", type=int, default=48)
    p.add_argument("--iters", type=int, default=3)
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--partitioner", default="rcb", choices=["rcb", "band"])
    p.add_argument(
        "--mode", default="sim", choices=["sim", "procs"],
        help="sim: in-process SPMD + cluster schedule simulation; "
        "procs: measured rank-per-process run over shared memory",
    )
    p.add_argument(
        "--schedule", default="both", choices=["blocking", "overlapped", "both"],
        help="halo-exchange schedule(s) to run in --mode procs",
    )
    p.add_argument(
        "--threads-per-rank", type=int, default=1, metavar="T",
        help="pool threads inside each rank process (hybrid MPI+OpenMP "
        "analogue; blocking = fork-join, overlapped = dependency-scheduled)",
    )
    p.add_argument(
        "--spawn-method", default=None, choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method (default: fork where available)",
    )
    p.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write per-rank spans and a merged Chrome trace here (procs mode)",
    )
    p.add_argument(
        "--timing", action="store_true",
        help="print per-kernel timing tables (procs mode)",
    )

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "figures": _cmd_figures,
    "airfoil": _cmd_airfoil,
    "heat": _cmd_heat,
    "translate": _cmd_translate,
    "dist": _cmd_dist,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
