"""Chrome-trace export of measured (threads-mode) recorder events.

Reuses the simulated exporter's event builders
(:mod:`repro.sim.chrometrace`), so a wall-clock run and a machine-model run
of the same application open side by side in Perfetto with identical lane
and category vocabulary. Row 0 is the orchestrating thread (serial prefixes,
reduction folds, loop/color spans); each worker thread gets its own lane of
``task`` events.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.sim.chrometrace import duration_event, metadata_events, write_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import TraceRecorder


def obs_trace_events(
    recorder: "TraceRecorder", process_name: str = "repro.threads"
) -> list[dict]:
    """Metadata rows plus one duration event per recorded span."""
    thread_names = {}
    for row, name in sorted(recorder.row_names().items()):
        role = "orchestrator" if row == 0 else "worker"
        thread_names[row] = f"{role} ({name})"
    events = metadata_events(process_name, thread_names)
    for e in recorder.events:
        events.append(
            duration_event(
                e.name,
                e.kind,
                e.loop,
                e.row,
                e.start * 1e6,
                e.duration * 1e6,
                args={"kind": e.kind, "loop": e.loop, "color": e.color},
            )
        )
    return events


def export_obs_trace(
    recorder: "TraceRecorder",
    path: str | Path,
    process_name: str = "repro.threads",
) -> int:
    """Write the measured trace to ``path``; returns the event count."""
    return write_trace(obs_trace_events(recorder, process_name), path)


# -- per-rank traces (procs mode) ----------------------------------------------
#
# Each rank process records its own spans against a shared monotonic epoch
# and dumps them as a plain JSON list before exiting; the parent merges the
# per-rank files into one Chrome trace with one lane per rank. The split
# exists because rank recorders live in different address spaces — there is
# no shared TraceRecorder to export from.


def write_rank_trace(recorder: "TraceRecorder", rank: int, path: str | Path) -> int:
    """Dump one rank's recorded spans as a raw JSON list; returns the count.

    The file is *not* a Chrome trace — it is the per-rank intermediate that
    :func:`merge_rank_traces` consumes (span dicts with seconds-based
    timestamps on the driver's shared epoch).
    """
    spans = [
        {
            "name": e.name,
            "kind": e.kind,
            "loop": e.loop,
            "row": e.row,
            "start": e.start,
            "end": e.end,
            "color": e.color,
        }
        for e in recorder.events
    ]
    Path(path).write_text(json.dumps({"rank": rank, "spans": spans}))
    return len(spans)


def merge_rank_traces(
    rank_files: dict[int, str | Path] | list[str | Path],
    path: str | Path,
    process_name: str = "repro.procs",
) -> int:
    """Merge per-rank span files into one Chrome trace.

    Lanes are keyed ``rank R / thread T``: every rank contributes one lane
    per recorder row (row 0 is the rank's orchestrating thread; hybrid runs
    add one row per pool worker), so intra-rank worker spans never collide
    on a shared rank lane. Lane ids are assigned rank-major, thread-minor.

    Accepts either ``{rank: file}`` or a plain list of files (each file
    names its own rank). Missing files are skipped — a rank that died
    before writing its trace must not prevent the survivors' lanes from
    rendering. Returns the total event count written.
    """
    if not isinstance(rank_files, dict):
        rank_files = {i: p for i, p in enumerate(rank_files)}
    per_rank: dict[int, list[dict]] = {}
    for rank, file in sorted(rank_files.items()):
        file = Path(file)
        if not file.exists():
            continue
        payload = json.loads(file.read_text())
        per_rank[int(payload.get("rank", rank))] = payload["spans"]
    lanes: dict[tuple[int, int], int] = {}
    for rank, spans in sorted(per_rank.items()):
        for row in sorted({int(s.get("row", 0)) for s in spans} | {0}):
            lanes[(rank, row)] = len(lanes)
    events = metadata_events(
        process_name,
        {tid: f"rank {r} / thread {t}" for (r, t), tid in lanes.items()},
    )
    for rank, spans in sorted(per_rank.items()):
        for s in spans:
            row = int(s.get("row", 0))
            events.append(
                duration_event(
                    s["name"],
                    s["kind"],
                    s["loop"],
                    lanes[(rank, row)],
                    s["start"] * 1e6,
                    (s["end"] - s["start"]) * 1e6,
                    args={
                        "kind": s["kind"],
                        "loop": s["loop"],
                        "color": s.get("color", -1),
                        "rank": rank,
                        "thread": row,
                    },
                )
            )
    return write_trace(events, path)
