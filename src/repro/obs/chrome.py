"""Chrome-trace export of measured (threads-mode) recorder events.

Reuses the simulated exporter's event builders
(:mod:`repro.sim.chrometrace`), so a wall-clock run and a machine-model run
of the same application open side by side in Perfetto with identical lane
and category vocabulary. Row 0 is the orchestrating thread (serial prefixes,
reduction folds, loop/color spans); each worker thread gets its own lane of
``task`` events.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.sim.chrometrace import duration_event, metadata_events, write_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.recorder import TraceRecorder


def obs_trace_events(
    recorder: "TraceRecorder", process_name: str = "repro.threads"
) -> list[dict]:
    """Metadata rows plus one duration event per recorded span."""
    thread_names = {}
    for row, name in sorted(recorder.row_names().items()):
        role = "orchestrator" if row == 0 else "worker"
        thread_names[row] = f"{role} ({name})"
    events = metadata_events(process_name, thread_names)
    for e in recorder.events:
        events.append(
            duration_event(
                e.name,
                e.kind,
                e.loop,
                e.row,
                e.start * 1e6,
                e.duration * 1e6,
                args={"kind": e.kind, "loop": e.loop, "color": e.color},
            )
        )
    return events


def export_obs_trace(
    recorder: "TraceRecorder",
    path: str | Path,
    process_name: str = "repro.threads",
) -> int:
    """Write the measured trace to ``path``; returns the event count."""
    return write_trace(obs_trace_events(recorder, process_name), path)
