"""Per-kernel wall-clock aggregation: the OP2-style ``op_timing_output`` table.

OP2's reference implementation prints a per-kernel table (count, total time,
bandwidth) at the end of every run; this module is the measured-mode
equivalent for the threads path. :class:`KernelTiming` accumulates one row per
``op_par_loop`` kernel; :class:`TimingSummary` snapshots all rows plus the
pool-level busy/idle attribution and renders the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.tables import Table


@dataclass
class KernelTiming:
    """Aggregated wall-clock behaviour of one kernel across its invocations.

    Times are in seconds. ``total``/``min``/``max`` measure the orchestrating
    thread's per-loop wall time (color barriers included); ``task_time`` sums
    the worker-side execution time of every pool task the kernel spawned, so
    ``task_time / total`` approximates the kernel's effective parallelism.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0
    colors: int = 0
    tasks: int = 0
    task_time: float = 0.0
    prefix_time: float = 0.0
    fold_time: float = 0.0

    def add(
        self,
        wall: float,
        ncolors: int,
        ntasks: int,
        task_time: float = 0.0,
        prefix_time: float = 0.0,
        fold_time: float = 0.0,
    ) -> None:
        self.count += 1
        self.total += wall
        self.min = wall if wall < self.min else self.min
        self.max = wall if wall > self.max else self.max
        self.colors = max(self.colors, ncolors)
        self.tasks += ntasks
        self.task_time += task_time
        self.prefix_time += prefix_time
        self.fold_time += fold_time

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TimingSummary:
    """A snapshot of per-kernel timings plus pool-level attribution."""

    kernels: dict[str, KernelTiming]
    #: observed span (first loop start to last loop end), seconds.
    wall: float
    #: per-row busy seconds (row 0 = orchestrator, then workers).
    busy: dict[int, float] = field(default_factory=dict)
    num_workers: int = 1
    batches: int = 0
    #: pool-level joins: every point the orchestrator blocked on workers.
    #: Fork-join execution pays one per color class; dependency-scheduled
    #: execution pays one per application sync / finish.
    joins: int = 0
    #: halo-traffic counters (procs mode / distributed runs): message and
    #: byte counts per exchange primitive, in the shape of
    #: :meth:`repro.dist.exchange.HaloExchange.comm_counters`. Empty for
    #: single-process runs; rendered as an extra footer line otherwise so
    #: transport calibration can compare modeled vs real message counts.
    comm: dict[str, int] = field(default_factory=dict)

    @property
    def total_tasks(self) -> int:
        return sum(k.tasks for k in self.kernels.values())

    @property
    def worker_busy(self) -> float:
        """Busy seconds attributed to worker rows (excludes orchestrator)."""
        return sum(t for row, t in self.busy.items() if row != 0)

    def utilization(self) -> float:
        """Worker busy time over the available worker-seconds of the span."""
        if self.wall <= 0.0 or self.num_workers <= 0:
            return 0.0
        return self.worker_busy / (self.wall * self.num_workers)

    def render(self) -> str:
        """The ``op_timing_output`` table, times in milliseconds."""
        table = Table(
            [
                "kernel",
                "count",
                "total ms",
                "avg ms",
                "min ms",
                "max ms",
                "colors",
                "tasks",
                "task ms",
                "prefix ms",
                "fold ms",
            ]
        )
        for kt in sorted(self.kernels.values(), key=lambda k: -k.total):
            table.add_row(
                [
                    kt.name,
                    kt.count,
                    kt.total * 1e3,
                    kt.mean * 1e3,
                    (0.0 if kt.count == 0 else kt.min) * 1e3,
                    kt.max * 1e3,
                    kt.colors,
                    kt.tasks,
                    kt.task_time * 1e3,
                    kt.prefix_time * 1e3,
                    kt.fold_time * 1e3,
                ]
            )
        idle = max(0.0, self.wall * self.num_workers - self.worker_busy)
        footer = (
            f"span {self.wall * 1e3:.3f} ms on {self.num_workers} worker(s): "
            f"{self.total_tasks} tasks in {self.batches} batches, "
            f"{self.joins} joins, "
            f"busy {self.worker_busy * 1e3:.3f} ms / idle {idle * 1e3:.3f} ms "
            f"({self.utilization():.1%} utilization)"
        )
        out = table.render() + "\n" + footer
        if self.comm:
            out += (
                "\nhalo: "
                f"{self.comm.get('messages_updated', 0)} update msg / "
                f"{self.comm.get('bytes_updated', 0) / 1024:.1f} KiB, "
                f"{self.comm.get('messages_accumulated', 0)} accumulate msg / "
                f"{self.comm.get('bytes_accumulated', 0) / 1024:.1f} KiB"
            )
        return out
