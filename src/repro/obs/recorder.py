"""Low-overhead monotonic event recorder for the measured (threads) path.

The recorder is the wall-clock counterpart of the simulator's
:class:`~repro.sim.trace.Trace`: per-task / per-color / per-loop spans on a
``perf_counter`` timebase, recorded live while real worker threads execute.
APEX does the same job for HPX's task scheduler; OP2's ``op_timing_output``
is the per-kernel aggregation that :meth:`TraceRecorder.summary` reproduces.

Design constraints:

- **disabled is free** — every hot-path hook is guarded by a single
  ``if rec is not None`` on the orchestrating thread; a runtime without
  tracing/timing enabled carries no recorder at all;
- **worker-side writes are cheap and safe** — task spans append to a plain
  list (atomic under the GIL) and fold their busy time into per-loop
  accumulators under one short lock per *task* (tasks are numpy-batch sized,
  so the lock is noise);
- **rows are stable** — each OS thread gets a row index in first-seen order;
  row 0 is the orchestrating thread, workers follow. Rows become ``tid``
  lanes in the Chrome trace.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter

from repro.obs.timing import KernelTiming, TimingSummary


@dataclass(frozen=True)
class ObsEvent:
    """One timed span, in seconds relative to the recorder's epoch."""

    name: str
    kind: str  # "loop" | "color" | "task" | "prefix" | "fold" | "release" | "wait"
    loop: str
    row: int  # 0 = orchestrating thread; workers in first-seen order
    start: float
    end: float
    color: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects events and per-kernel aggregates for one threaded run."""

    def __init__(self, events: bool = True) -> None:
        #: False keeps only the aggregates (``--timing`` without ``--trace``).
        self.collect_events = bool(events)
        self.epoch = perf_counter()
        self.events: list[ObsEvent] = []
        self.kernels: dict[str, KernelTiming] = {}
        #: fork-join batches dispatched (orchestrator-side counter).
        self.batches = 0
        self._busy: dict[int, float] = {}  # row -> busy seconds
        self._tasks: dict[int, int] = {}  # row -> tasks executed
        self._loop_task_time: dict[str, float] = {}
        self._loop_task_count: dict[str, int] = {}
        self._rows: dict[int, int] = {}  # thread ident -> row
        self._row_names: dict[int, str] = {}
        self._first: float | None = None  # observed span bounds
        self._last: float = 0.0
        self._lock = threading.Lock()
        # Pin row 0 to the creating (orchestrating) thread now: its first
        # span() lands only after the first batch, by which time a worker
        # would otherwise have claimed row 0 and skewed busy attribution.
        self.row()

    # -- timebase and rows ---------------------------------------------------

    def now(self) -> float:
        """Monotonic seconds since the recorder was created."""
        return perf_counter() - self.epoch

    def row(self) -> int:
        """Stable row index of the calling thread (registered on first use)."""
        ident = threading.get_ident()
        row = self._rows.get(ident)
        if row is None:
            with self._lock:
                row = self._rows.get(ident)
                if row is None:
                    row = len(self._rows)
                    self._rows[ident] = row
                    self._row_names[row] = threading.current_thread().name
        return row

    def row_names(self) -> dict[int, str]:
        """Row index -> OS thread name, for trace lane labels."""
        with self._lock:
            return dict(self._row_names)

    # -- recording -----------------------------------------------------------

    def span(
        self,
        name: str,
        kind: str,
        loop: str,
        start: float,
        end: float,
        color: int = -1,
        busy: bool = False,
    ) -> None:
        """Record one orchestrator-side span (loop / color / prefix / fold)."""
        row = self.row()
        if busy:
            self._busy[row] = self._busy.get(row, 0.0) + (end - start)
        if self.collect_events:
            self.events.append(ObsEvent(name, kind, loop, row, start, end, color))

    def task_span(
        self, loop: str, color: int, index: int, start: float, end: float
    ) -> None:
        """Record one pool task; called on the worker thread that ran it."""
        row = self.row()
        with self._lock:
            self._busy[row] = self._busy.get(row, 0.0) + (end - start)
            self._tasks[row] = self._tasks.get(row, 0) + 1
            self._loop_task_time[loop] = (
                self._loop_task_time.get(loop, 0.0) + (end - start)
            )
            self._loop_task_count[loop] = self._loop_task_count.get(loop, 0) + 1
        if self.collect_events:
            self.events.append(
                ObsEvent(
                    f"{loop}.c{color}.t{index}", "task", loop, row, start, end, color
                )
            )

    def take_task_totals(self, loop: str) -> tuple[int, float]:
        """Drain the per-loop worker-side task totals (count, seconds).

        Called by the orchestrator after the loop's last color barrier, so
        every task of this invocation has already reported.
        """
        with self._lock:
            return (
                self._loop_task_count.pop(loop, 0),
                self._loop_task_time.pop(loop, 0.0),
            )

    def record_loop(
        self,
        name: str,
        wall: float,
        ncolors: int,
        ntasks: int,
        task_time: float = 0.0,
        prefix_time: float = 0.0,
        fold_time: float = 0.0,
    ) -> None:
        """Fold one completed loop into the per-kernel aggregates.

        Thread-safe: under dependency scheduling the caller is the loop's
        inline *finalizer* task, which runs on whichever worker completed
        the loop's last chunk — two loops can finish at the same instant.
        """
        with self._lock:
            kt = self.kernels.get(name)
            if kt is None:
                kt = self.kernels[name] = KernelTiming(name)
            kt.add(wall, ncolors, ntasks, task_time, prefix_time, fold_time)
            end = self.now()
            if self._first is None:
                self._first = end - wall
            self._last = end

    # -- reporting -----------------------------------------------------------

    @property
    def total_tasks(self) -> int:
        with self._lock:
            return sum(self._tasks.values())

    def summary(self, num_workers: int = 1, joins: int = 0) -> TimingSummary:
        """Snapshot the aggregates as an ``op_timing_output``-style summary."""
        first = self._first if self._first is not None else 0.0
        with self._lock:
            busy = dict(self._busy)
        return TimingSummary(
            kernels=dict(self.kernels),
            wall=max(0.0, self._last - first),
            busy=busy,
            num_workers=num_workers,
            batches=self.batches,
            joins=joins,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceRecorder events={len(self.events)} "
            f"kernels={len(self.kernels)} batches={self.batches}>"
        )
