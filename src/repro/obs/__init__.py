"""``repro.obs`` — wall-clock observability for the measured threads mode.

Per-task / per-color / per-loop tracing (:class:`TraceRecorder`), OP2-style
per-kernel timing tables (:class:`TimingSummary`), and Chrome-trace export
(:func:`export_obs_trace`) for runs on the real thread pool. Enabled via
``RuntimeConfig(trace=..., timing=...)`` / ``op2_session(trace=True)`` / the
CLI's ``--trace FILE`` and ``--timing`` flags; when disabled the hot path
carries no recorder at all.
"""

from repro.obs.chrome import (
    export_obs_trace,
    merge_rank_traces,
    obs_trace_events,
    write_rank_trace,
)
from repro.obs.recorder import ObsEvent, TraceRecorder
from repro.obs.timing import KernelTiming, TimingSummary

__all__ = [
    "KernelTiming",
    "ObsEvent",
    "TimingSummary",
    "TraceRecorder",
    "export_obs_trace",
    "merge_rank_traces",
    "obs_trace_events",
    "write_rank_trace",
]
